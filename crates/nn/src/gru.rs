//! Gated recurrent units (the GRU4Rec baseline substrate).

use crate::ctx::Ctx;
use crate::layers::Linear;
use crate::param::ParamStore;
use pmm_tensor::{Tensor, Var};
use rand::rngs::StdRng;

/// One GRU cell: update/reset/candidate gates.
pub struct GruCell {
    wz: Linear,
    uz: Linear,
    wr: Linear,
    ur: Linear,
    wh: Linear,
    uh: Linear,
    /// Hidden dimension.
    pub d: usize,
}

impl GruCell {
    /// Registers the six gate projections under `name`.
    pub fn new(store: &mut ParamStore, name: &str, d_in: usize, d: usize, rng: &mut StdRng) -> Self {
        GruCell {
            wz: Linear::new(store, &format!("{name}.wz"), d_in, d, true, rng),
            uz: Linear::new(store, &format!("{name}.uz"), d, d, false, rng),
            wr: Linear::new(store, &format!("{name}.wr"), d_in, d, true, rng),
            ur: Linear::new(store, &format!("{name}.ur"), d, d, false, rng),
            wh: Linear::new(store, &format!("{name}.wh"), d_in, d, true, rng),
            uh: Linear::new(store, &format!("{name}.uh"), d, d, false, rng),
            d,
        }
    }

    /// One step: `x [b, d_in]`, `h [b, d]` -> new hidden `[b, d]`.
    pub fn step(&self, ctx: &mut Ctx<'_>, x: &Var, h: &Var) -> Var {
        let z = self.wz.forward(ctx, x).add(&self.uz.forward(ctx, h)).sigmoid();
        let r = self.wr.forward(ctx, x).add(&self.ur.forward(ctx, h)).sigmoid();
        let cand = self
            .wh
            .forward(ctx, x)
            .add(&self.uh.forward(ctx, &r.mul(h)))
            .tanh();
        // h' = (1 - z) * h + z * cand
        let one_minus_z = z.neg().add_scalar(1.0);
        one_minus_z.mul(h).add(&z.mul(&cand))
    }
}

/// A single-layer GRU unrolled over right-padded sequences.
pub struct Gru {
    cell: GruCell,
}

impl Gru {
    /// Registers `{name}.cell`.
    pub fn new(store: &mut ParamStore, name: &str, d_in: usize, d: usize, rng: &mut StdRng) -> Self {
        Gru {
            cell: GruCell::new(store, &format!("{name}.cell"), d_in, d, rng),
        }
    }

    /// Unrolls over `x: [b*l, d_in]` (row-major in `(b, l)` order),
    /// returning all hidden states `[b*l, d]` in the same layout.
    ///
    /// Padded steps still run; downstream losses mask them out.
    pub fn forward(&self, ctx: &mut Ctx<'_>, x: &Var, b: usize, l: usize) -> Var {
        let mut h = Var::constant(Tensor::zeros(&[b, self.cell.d]));
        let mut outputs: Vec<Var> = Vec::with_capacity(l);
        for t in 0..l {
            let idx: Vec<usize> = (0..b).map(|bi| bi * l + t).collect();
            let xt = x.gather_rows(&idx);
            h = self.cell.step(ctx, &xt, &h);
            outputs.push(h.clone());
        }
        // Stack [t][b] then permute back to (b, l) row order.
        let stacked = Var::concat0(&outputs); // [l*b, d], t-major
        let perm: Vec<usize> = (0..b * l)
            .map(|row| {
                let (bi, t) = (row / l, row % l);
                t * b + bi
            })
            .collect();
        stacked.gather_rows(&perm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn gru_output_layout_is_batch_major() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let gru = Gru::new(&mut store, "g", 3, 4, &mut rng);
        let mut ctx = Ctx::eval();
        let x = Var::constant(Tensor::randn(&[6, 3], 1.0, &mut rng)); // b=2, l=3
        let y = gru.forward(&mut ctx, &x, 2, 3);
        assert_eq!(y.shape(), &[6, 4]);
        assert!(y.value().all_finite());
    }

    #[test]
    fn gru_hidden_evolves_over_time() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let gru = Gru::new(&mut store, "g", 2, 2, &mut rng);
        let mut ctx = Ctx::eval();
        let x = Var::constant(Tensor::ones(&[3, 2])); // b=1, l=3, constant input
        let y = gru.forward(&mut ctx, &x, 1, 3);
        // Hidden state should change between steps (not a fixed point at init).
        let d = y.value().data();
        assert!((d[0] - d[2]).abs() > 1e-6 || (d[1] - d[3]).abs() > 1e-6);
    }

    #[test]
    fn gru_is_causal_by_construction() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let gru = Gru::new(&mut store, "g", 2, 2, &mut rng);
        let base = Tensor::randn(&[3, 2], 1.0, &mut rng);
        let mut pert = base.clone();
        pert.data_mut()[4] += 3.0; // t=2 input
        let mut c0 = Ctx::eval();
        let y0 = gru.forward(&mut c0, &Var::constant(base), 1, 3);
        let mut c1 = Ctx::eval();
        let y1 = gru.forward(&mut c1, &Var::constant(pert), 1, 3);
        for j in 0..4 {
            assert!((y0.value().data()[j] - y1.value().data()[j]).abs() < 1e-6);
        }
    }

    #[test]
    fn gru_gradients_reach_gates() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let gru = Gru::new(&mut store, "g", 2, 2, &mut rng);
        let mut ctx = Ctx::train(&mut rng);
        let x = Var::constant(Tensor::randn(&[4, 2], 1.0, &mut StdRng::seed_from_u64(1)));
        let y = gru.forward(&mut ctx, &x, 2, 2);
        y.mul(&y).sum_all().backward();
        for p in store.params() {
            assert!(ctx.grad_of(p).is_some(), "{} missing grad", p.name());
        }
    }
}
