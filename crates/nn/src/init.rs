//! Weight initialisation schemes.

use pmm_tensor::Tensor;
use rand::rngs::StdRng;

/// Xavier/Glorot uniform: `U(-a, a)` with `a = sqrt(6 / (fan_in + fan_out))`.
pub fn xavier_uniform(fan_in: usize, fan_out: usize, rng: &mut StdRng) -> Tensor {
    let a = (6.0 / (fan_in + fan_out) as f32).sqrt();
    Tensor::uniform(&[fan_in, fan_out], -a, a, rng)
}

/// Kaiming/He normal for ReLU fan-in: `N(0, sqrt(2/fan_in))`.
pub fn kaiming_normal(fan_in: usize, fan_out: usize, rng: &mut StdRng) -> Tensor {
    let std = (2.0 / fan_in as f32).sqrt();
    Tensor::randn(&[fan_in, fan_out], std, rng)
}

/// Plain `N(0, std)` of arbitrary shape (embedding tables, positions).
pub fn normal_init(shape: &[usize], std: f32, rng: &mut StdRng) -> Tensor {
    Tensor::randn(shape, std, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn xavier_bounds_hold() {
        let mut rng = StdRng::seed_from_u64(0);
        let w = xavier_uniform(64, 64, &mut rng);
        let a = (6.0f32 / 128.0).sqrt();
        assert!(w.data().iter().all(|&v| v.abs() <= a));
    }

    #[test]
    fn kaiming_std_is_plausible() {
        let mut rng = StdRng::seed_from_u64(0);
        let w = kaiming_normal(100, 100, &mut rng);
        let std = (w.data().iter().map(|&v| v * v).sum::<f32>() / w.len() as f32).sqrt();
        let expect = (2.0f32 / 100.0).sqrt();
        assert!((std - expect).abs() / expect < 0.15, "std {std} vs {expect}");
    }

    #[test]
    fn initialisation_is_seed_deterministic() {
        let a = xavier_uniform(8, 8, &mut StdRng::seed_from_u64(7));
        let b = xavier_uniform(8, 8, &mut StdRng::seed_from_u64(7));
        assert_eq!(a.data(), b.data());
    }
}
