//! AdamW with decoupled weight decay and global gradient clipping.

use crate::ctx::Ctx;
use crate::param::{Param, ParamStore};
use pmm_tensor::Tensor;
use std::collections::HashMap;

/// AdamW hyper-parameters (defaults follow the paper's training setup).
#[derive(Debug, Clone, Copy)]
pub struct AdamWConfig {
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical stabiliser.
    pub eps: f32,
    /// Decoupled weight-decay coefficient.
    pub weight_decay: f32,
    /// Global gradient-norm clip (disabled when `<= 0`).
    pub clip_norm: f32,
}

impl Default for AdamWConfig {
    fn default() -> Self {
        AdamWConfig {
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.01,
            clip_norm: 5.0,
        }
    }
}

struct MomentState {
    m: Tensor,
    v: Tensor,
}

/// The AdamW optimizer. Moment state is keyed by parameter id, so one
/// optimizer instance can drive any subset of a [`ParamStore`].
pub struct AdamW {
    lr: f32,
    cfg: AdamWConfig,
    step: u64,
    state: HashMap<u64, MomentState>,
}

impl AdamW {
    /// Creates an optimizer with the given learning rate.
    pub fn new(lr: f32, cfg: AdamWConfig) -> Self {
        AdamW {
            lr,
            cfg,
            step: 0,
            state: HashMap::new(),
        }
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Adjusts the learning rate (for schedules).
    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// Number of completed steps.
    pub fn steps(&self) -> u64 {
        self.step
    }

    /// Discards all moment state and the step counter, as after a
    /// parameter rollback: stale moments would steer the restored
    /// weights back towards the divergent trajectory.
    pub fn reset_state(&mut self) {
        self.step = 0;
        self.state.clear();
    }

    /// Applies one update using the gradients accumulated in `ctx`.
    ///
    /// Frozen parameters (per [`ParamStore::is_frozen`]) and parameters
    /// without gradients this step are skipped. Returns the (pre-clip)
    /// global gradient norm.
    ///
    /// A non-finite global gradient norm skips the *entire* update —
    /// no moment is touched and the step counter does not advance — so
    /// one poisoned backward pass cannot corrupt optimizer state.
    pub fn step(&mut self, store: &ParamStore, ctx: &Ctx<'_>) -> f32 {
        let mut grads: Vec<(&Param, Tensor)> = Vec::new();
        let mut sq_norm = 0.0f32;
        for p in store.params() {
            if store.is_frozen(p) {
                continue;
            }
            if let Some(g) = ctx.grad_of(p) {
                sq_norm += g.data().iter().map(|&v| v * v).sum::<f32>();
                grads.push((p, g));
            }
        }
        let norm = sq_norm.sqrt();
        if !norm.is_finite() {
            return norm;
        }
        let clip_scale = if self.cfg.clip_norm > 0.0 && norm > self.cfg.clip_norm {
            self.cfg.clip_norm / norm
        } else {
            1.0
        };

        self.step += 1;
        let t = self.step as f32;
        let bc1 = 1.0 - self.cfg.beta1.powf(t);
        let bc2 = 1.0 - self.cfg.beta2.powf(t);
        for (p, mut g) in grads {
            if !g.all_finite() {
                // A non-finite gradient poisons the moments; skip this
                // parameter for the step rather than corrupting it.
                continue;
            }
            if clip_scale != 1.0 {
                g = g.scale(clip_scale);
            }
            let st = self.state.entry(p.id()).or_insert_with(|| MomentState {
                m: Tensor::zeros(g.shape()),
                v: Tensor::zeros(g.shape()),
            });
            let (b1, b2, eps) = (self.cfg.beta1, self.cfg.beta2, self.cfg.eps);
            let (lr, wd) = (self.lr, self.cfg.weight_decay);
            for i in 0..g.len() {
                let gi = g.data()[i];
                st.m.data_mut()[i] = b1 * st.m.data()[i] + (1.0 - b1) * gi;
                st.v.data_mut()[i] = b2 * st.v.data()[i] + (1.0 - b2) * gi * gi;
            }
            let m = &st.m;
            let v = &st.v;
            p.update(|w| {
                for i in 0..w.len() {
                    let mhat = m.data()[i] / bc1;
                    let vhat = v.data()[i] / bc2;
                    let decayed = w.data()[i] * (1.0 - lr * wd);
                    w.data_mut()[i] = decayed - lr * mhat / (vhat.sqrt() + eps);
                }
            });
        }
        norm
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmm_tensor::Var;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Minimises (w - 3)^2 and expects convergence near 3.
    #[test]
    fn adamw_converges_on_quadratic() {
        let mut store = ParamStore::new();
        let w = store.register("w", Tensor::scalar(0.0));
        let mut opt = AdamW::new(
            0.1,
            AdamWConfig {
                weight_decay: 0.0,
                ..Default::default()
            },
        );
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..200 {
            let mut ctx = Ctx::train(&mut rng);
            let wv = ctx.var(&w);
            let diff = wv.add_scalar(-3.0);
            let loss = diff.mul(&diff).sum_all();
            loss.backward();
            opt.step(&store, &ctx);
        }
        assert!((w.value_cloned().scalar_value() - 3.0).abs() < 0.05);
    }

    #[test]
    fn weight_decay_shrinks_unused_directions() {
        let mut store = ParamStore::new();
        let w = store.register("w", Tensor::scalar(1.0));
        let mut opt = AdamW::new(
            0.01,
            AdamWConfig {
                weight_decay: 0.5,
                ..Default::default()
            },
        );
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..50 {
            let mut ctx = Ctx::train(&mut rng);
            // Constant tiny gradient: decay dominates.
            let wv = ctx.var(&w);
            let loss = wv.scale(1e-6).sum_all();
            loss.backward();
            opt.step(&store, &ctx);
        }
        assert!(w.value_cloned().scalar_value() < 0.9);
    }

    #[test]
    fn frozen_params_are_not_updated() {
        let mut store = ParamStore::new();
        let w = store.register("enc.w", Tensor::scalar(1.0));
        store.freeze_prefix("enc.");
        let mut opt = AdamW::new(0.1, AdamWConfig::default());
        let mut rng = StdRng::seed_from_u64(0);
        let mut ctx = Ctx::train(&mut rng);
        let loss = ctx.var(&w).mul(&ctx.var(&w)).sum_all();
        loss.backward();
        opt.step(&store, &ctx);
        assert_eq!(w.value_cloned().scalar_value(), 1.0);
    }

    #[test]
    fn clip_norm_bounds_update_magnitude() {
        let mut store = ParamStore::new();
        let w = store.register("w", Tensor::scalar(0.0));
        let mut opt = AdamW::new(
            0.1,
            AdamWConfig {
                clip_norm: 1.0,
                weight_decay: 0.0,
                ..Default::default()
            },
        );
        let mut rng = StdRng::seed_from_u64(0);
        let mut ctx = Ctx::train(&mut rng);
        // Huge gradient: loss = 1e6 * w.
        let loss = ctx.var(&w).scale(1e6).sum_all();
        loss.backward();
        let norm = opt.step(&store, &ctx);
        assert!(norm > 1e5);
        // With clipping and bias correction the first Adam step is ~lr.
        assert!(w.value_cloned().scalar_value().abs() <= 0.11);
    }

    #[test]
    fn non_finite_gradients_are_skipped() {
        let mut store = ParamStore::new();
        let w = store.register("w", Tensor::scalar(2.0));
        let mut opt = AdamW::new(0.1, AdamWConfig::default());
        let mut rng = StdRng::seed_from_u64(0);
        let mut ctx = Ctx::train(&mut rng);
        // ln(0) -> -inf path creates non-finite grads via 1/x at x=0...
        // simpler: craft a NaN loss via 0 * inf using scale.
        let v = ctx.var(&w);
        let inf = v.scale(f32::INFINITY);
        let loss = inf.scale(0.0).sum_all(); // NaN value, NaN grads
        loss.backward();
        opt.step(&store, &ctx);
        assert_eq!(w.value_cloned().scalar_value(), 2.0);
        // The poisoned step leaves no trace in optimizer state either.
        assert_eq!(opt.steps(), 0, "step counter must not advance on a NaN update");
        assert!(opt.state.is_empty(), "no moments may be created by a NaN update");
    }

    #[test]
    fn reset_state_clears_moments_and_steps() {
        let mut store = ParamStore::new();
        let w = store.register("w", Tensor::scalar(0.0));
        let mut opt = AdamW::new(0.1, AdamWConfig::default());
        let mut rng = StdRng::seed_from_u64(0);
        let mut ctx = Ctx::train(&mut rng);
        let loss = ctx.var(&w).add_scalar(-1.0).sum_all();
        loss.backward();
        opt.step(&store, &ctx);
        assert_eq!(opt.steps(), 1);
        assert!(!opt.state.is_empty());
        opt.reset_state();
        assert_eq!(opt.steps(), 0);
        assert!(opt.state.is_empty());
    }

    #[test]
    fn state_is_per_parameter() {
        let mut store = ParamStore::new();
        let a = store.register("a", Tensor::scalar(0.0));
        let b = store.register("b", Tensor::scalar(0.0));
        let mut opt = AdamW::new(
            0.1,
            AdamWConfig {
                weight_decay: 0.0,
                ..Default::default()
            },
        );
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..100 {
            let mut ctx = Ctx::train(&mut rng);
            let av = ctx.var(&a).add_scalar(-1.0);
            let bv = ctx.var(&b).add_scalar(2.0);
            let loss = av.mul(&av).add(&bv.mul(&bv)).sum_all();
            loss.backward();
            opt.step(&store, &ctx);
        }
        assert!((a.value_cloned().scalar_value() - 1.0).abs() < 0.1);
        assert!((b.value_cloned().scalar_value() + 2.0).abs() < 0.1);
        let _ = Var::constant(Tensor::scalar(0.0)); // keep import used
    }
}
