//! Named, shared model parameters.

use pmm_tensor::Tensor;
use std::cell::{Ref, RefCell};
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};

static NEXT_PARAM_ID: AtomicU64 = AtomicU64::new(0);

struct ParamInner {
    id: u64,
    name: String,
    value: RefCell<Tensor>,
    trainable: bool,
}

/// A shared handle to one named parameter tensor.
///
/// Layers hold `Param` clones; the owning [`ParamStore`] keeps the
/// canonical list for the optimizer and the checkpoint codec.
#[derive(Clone)]
pub struct Param {
    inner: Rc<ParamInner>,
}

impl std::fmt::Debug for Param {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Param")
            .field("name", &self.inner.name)
            .field("shape", &self.inner.value.borrow().shape())
            .field("trainable", &self.inner.trainable)
            .finish()
    }
}

impl Param {
    /// Stable unique id (used to key optimizer state and `Ctx` interning).
    #[inline]
    pub fn id(&self) -> u64 {
        self.inner.id
    }

    /// Fully qualified dotted name, e.g. `user_encoder.blocks.0.wq.weight`.
    #[inline]
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// Whether the optimizer should update this parameter.
    #[inline]
    pub fn trainable(&self) -> bool {
        self.inner.trainable
    }

    /// Borrows the current value.
    pub fn value(&self) -> Ref<'_, Tensor> {
        self.inner.value.borrow()
    }

    /// Clones the current value.
    pub fn value_cloned(&self) -> Tensor {
        self.inner.value.borrow().clone()
    }

    /// Replaces the value (shape must match; used by the optimizer and
    /// the checkpoint loader).
    #[track_caller]
    pub fn set_value(&self, t: Tensor) {
        let cur_shape = self.inner.value.borrow().shape().to_vec();
        assert_eq!(
            cur_shape,
            t.shape(),
            "Param::set_value({}): shape {:?} -> {:?} not allowed",
            self.inner.name,
            cur_shape,
            t.shape()
        );
        *self.inner.value.borrow_mut() = t;
    }

    /// Applies an in-place update to the value.
    pub fn update(&self, f: impl FnOnce(&mut Tensor)) {
        f(&mut self.inner.value.borrow_mut());
    }

    /// Number of scalar elements.
    pub fn numel(&self) -> usize {
        self.inner.value.borrow().len()
    }
}

/// Registry of all parameters of a model (or a family of models).
#[derive(Default)]
pub struct ParamStore {
    params: Vec<Param>,
    frozen: Vec<String>,
}

impl ParamStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a trainable parameter under `name`.
    ///
    /// Panics if the name is already taken — duplicate names would make
    /// checkpoints ambiguous.
    #[track_caller]
    pub fn register(&mut self, name: impl Into<String>, value: Tensor) -> Param {
        self.register_with(name, value, true)
    }

    /// Registers a parameter with explicit trainability (frozen
    /// parameters are saved/loaded but never updated — PMMRec freezes
    /// the lower encoder blocks this way).
    #[track_caller]
    pub fn register_with(
        &mut self,
        name: impl Into<String>,
        value: Tensor,
        trainable: bool,
    ) -> Param {
        let name = name.into();
        assert!(
            self.get(&name).is_none(),
            "ParamStore::register: duplicate parameter name {name:?}"
        );
        let p = Param {
            inner: Rc::new(ParamInner {
                id: NEXT_PARAM_ID.fetch_add(1, Ordering::Relaxed),
                name,
                value: RefCell::new(value),
                trainable,
            }),
        };
        self.params.push(p.clone());
        p
    }

    /// Looks a parameter up by exact name.
    pub fn get(&self, name: &str) -> Option<&Param> {
        self.params.iter().find(|p| p.name() == name)
    }

    /// All parameters, in registration order.
    pub fn params(&self) -> &[Param] {
        &self.params
    }

    /// Parameters whose name starts with `prefix`.
    pub fn with_prefix<'a>(&'a self, prefix: &'a str) -> impl Iterator<Item = &'a Param> + 'a {
        self.params.iter().filter(move |p| p.name().starts_with(prefix))
    }

    /// Total number of scalar parameters.
    pub fn total_numel(&self) -> usize {
        self.params.iter().map(Param::numel).sum()
    }

    /// Marks every parameter under `prefix` as non-trainable by
    /// re-registering is not possible; instead the optimizer consults
    /// [`ParamStore::frozen_prefixes`]. Freezing is additive.
    pub fn freeze_prefix(&mut self, prefix: impl Into<String>) {
        self.frozen.push(prefix.into());
    }

    /// Whether a parameter is currently frozen (either registered
    /// non-trainable or covered by a frozen prefix).
    pub fn is_frozen(&self, p: &Param) -> bool {
        !p.trainable() || self.frozen.iter().any(|f| p.name().starts_with(f))
    }
}

// Keep the frozen-prefix list out of the happy-path struct literal.
impl ParamStore {
    /// Currently frozen prefixes.
    pub fn frozen_prefixes(&self) -> &[String] {
        &self.frozen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_lookup() {
        let mut s = ParamStore::new();
        let p = s.register("a.w", Tensor::ones(&[2, 2]));
        assert_eq!(p.name(), "a.w");
        assert!(s.get("a.w").is_some());
        assert!(s.get("a.b").is_none());
        assert_eq!(s.total_numel(), 4);
    }

    #[test]
    #[should_panic(expected = "duplicate parameter name")]
    fn duplicate_names_rejected() {
        let mut s = ParamStore::new();
        s.register("w", Tensor::ones(&[1]));
        s.register("w", Tensor::ones(&[1]));
    }

    #[test]
    fn prefix_iteration() {
        let mut s = ParamStore::new();
        s.register("enc.w1", Tensor::ones(&[1]));
        s.register("enc.w2", Tensor::ones(&[1]));
        s.register("dec.w", Tensor::ones(&[1]));
        assert_eq!(s.with_prefix("enc.").count(), 2);
        assert_eq!(s.with_prefix("dec.").count(), 1);
    }

    #[test]
    fn freeze_prefix_marks_params() {
        let mut s = ParamStore::new();
        let w = s.register("enc.w", Tensor::ones(&[1]));
        let v = s.register("head.w", Tensor::ones(&[1]));
        s.freeze_prefix("enc.");
        assert!(s.is_frozen(&w));
        assert!(!s.is_frozen(&v));
    }

    #[test]
    fn set_value_enforces_shape() {
        let mut s = ParamStore::new();
        let p = s.register("w", Tensor::ones(&[2]));
        p.set_value(Tensor::zeros(&[2]));
        assert_eq!(p.value_cloned().data(), &[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "not allowed")]
    fn set_value_rejects_shape_change() {
        let mut s = ParamStore::new();
        let p = s.register("w", Tensor::ones(&[2]));
        p.set_value(Tensor::zeros(&[3]));
    }
}
