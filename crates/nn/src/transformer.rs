//! Transformer blocks and encoders (post-LN, SASRec/BERT style).

use crate::attention::MultiHeadAttention;
use crate::ctx::Ctx;
use crate::layers::{Dropout, LayerNorm, Linear};
use crate::param::ParamStore;
use pmm_tensor::{Tensor, Var};
use rand::rngs::StdRng;

/// Hyper-parameters shared by every Transformer encoder in the project.
#[derive(Debug, Clone, Copy)]
pub struct TransformerConfig {
    /// Model dimension.
    pub d: usize,
    /// Attention heads.
    pub heads: usize,
    /// Number of blocks.
    pub layers: usize,
    /// Feed-forward expansion factor (hidden = `d * ff_mult`).
    pub ff_mult: usize,
    /// Dropout probability (attention + residual branches).
    pub dropout: f32,
    /// Causal (autoregressive) attention when true; bidirectional
    /// otherwise.
    pub causal: bool,
}

impl Default for TransformerConfig {
    fn default() -> Self {
        TransformerConfig {
            d: 48,
            heads: 4,
            layers: 2,
            ff_mult: 2,
            dropout: 0.1,
            causal: false,
        }
    }
}

/// Two-layer GELU MLP.
pub struct FeedForward {
    fc1: Linear,
    fc2: Linear,
}

impl FeedForward {
    /// Registers `{name}.fc1` / `{name}.fc2`.
    pub fn new(store: &mut ParamStore, name: &str, d: usize, hidden: usize, rng: &mut StdRng) -> Self {
        FeedForward {
            fc1: Linear::new(store, &format!("{name}.fc1"), d, hidden, true, rng),
            fc2: Linear::new(store, &format!("{name}.fc2"), hidden, d, true, rng),
        }
    }

    /// `fc2(gelu(fc1(x)))`.
    pub fn forward(&self, ctx: &mut Ctx<'_>, x: &Var) -> Var {
        let _sp = pmm_obs::span("ffn");
        let h = self.fc1.forward(ctx, x).gelu();
        self.fc2.forward(ctx, &h)
    }
}

/// One post-LN Transformer block:
/// `x = LN(x + Drop(MHA(x))); x = LN(x + Drop(FFN(x)))`.
pub struct TransformerBlock {
    attn: MultiHeadAttention,
    ff: FeedForward,
    ln1: LayerNorm,
    ln2: LayerNorm,
    dropout: Dropout,
}

impl TransformerBlock {
    /// Registers all sub-layers under `name`.
    pub fn new(store: &mut ParamStore, name: &str, cfg: &TransformerConfig, rng: &mut StdRng) -> Self {
        TransformerBlock {
            attn: MultiHeadAttention::new(store, &format!("{name}.attn"), cfg.d, cfg.heads, cfg.dropout, rng),
            ff: FeedForward::new(store, &format!("{name}.ff"), cfg.d, cfg.d * cfg.ff_mult, rng),
            ln1: LayerNorm::new(store, &format!("{name}.ln1"), cfg.d),
            ln2: LayerNorm::new(store, &format!("{name}.ln2"), cfg.d),
            dropout: Dropout::new(cfg.dropout),
        }
    }

    /// Applies the block to `[b*l, d]` tokens under `mask`.
    pub fn forward(&self, ctx: &mut Ctx<'_>, x: &Var, b: usize, l: usize, mask: &Tensor) -> Var {
        let a = self.attn.forward(ctx, x, b, l, mask);
        let a = self.dropout.forward(ctx, &a);
        let x = self.ln1.forward(ctx, &x.add(&a));
        let f = self.ff.forward(ctx, &x);
        let f = self.dropout.forward(ctx, &f);
        self.ln2.forward(ctx, &x.add(&f))
    }
}

/// A stack of [`TransformerBlock`]s with a shared mask policy.
pub struct TransformerEncoder {
    blocks: Vec<TransformerBlock>,
    /// The configuration this encoder was built with.
    pub cfg: TransformerConfig,
}

impl TransformerEncoder {
    /// Registers `layers` blocks under `{name}.blocks.{i}`.
    pub fn new(store: &mut ParamStore, name: &str, cfg: TransformerConfig, rng: &mut StdRng) -> Self {
        let blocks = (0..cfg.layers)
            .map(|i| TransformerBlock::new(store, &format!("{name}.blocks.{i}"), &cfg, rng))
            .collect();
        TransformerEncoder { blocks, cfg }
    }

    /// Encodes `[b*l, d]` tokens; builds the mask from `lens` and the
    /// configured causality.
    pub fn forward(&self, ctx: &mut Ctx<'_>, x: &Var, b: usize, l: usize, lens: &[usize]) -> Var {
        let mask = crate::mask::attention_mask(b, self.cfg.heads, l, lens, self.cfg.causal);
        self.forward_masked(ctx, x, b, l, &mask)
    }

    /// Encodes with a caller-provided mask `[b*h, l, l]`.
    pub fn forward_masked(&self, ctx: &mut Ctx<'_>, x: &Var, b: usize, l: usize, mask: &Tensor) -> Var {
        let _sp = pmm_obs::span("transformer");
        let mut h = x.clone();
        for block in &self.blocks {
            h = block.forward(ctx, &h, b, l, mask);
        }
        h
    }

    /// Number of blocks.
    pub fn depth(&self) -> usize {
        self.blocks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn cfg(causal: bool) -> TransformerConfig {
        TransformerConfig {
            d: 8,
            heads: 2,
            layers: 2,
            ff_mult: 2,
            dropout: 0.0,
            causal,
        }
    }

    #[test]
    fn encoder_output_shape_and_finiteness() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let enc = TransformerEncoder::new(&mut store, "enc", cfg(false), &mut rng);
        let mut ctx = Ctx::eval();
        let x = Var::constant(Tensor::randn(&[6, 8], 1.0, &mut rng));
        let y = enc.forward(&mut ctx, &x, 2, 3, &[3, 2]);
        assert_eq!(y.shape(), &[6, 8]);
        assert!(y.value().all_finite());
    }

    #[test]
    fn causal_encoder_blocks_future_tokens() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let enc = TransformerEncoder::new(&mut store, "enc", cfg(true), &mut rng);
        let base = Tensor::randn(&[4, 8], 1.0, &mut rng);
        let mut perturbed = base.clone();
        perturbed.data_mut()[3 * 8] += 5.0; // last token

        let mut c0 = Ctx::eval();
        let y0 = enc.forward(&mut c0, &Var::constant(base), 1, 4, &[4]);
        let mut c1 = Ctx::eval();
        let y1 = enc.forward(&mut c1, &Var::constant(perturbed), 1, 4, &[4]);
        for j in 0..3 * 8 {
            assert!((y0.value().data()[j] - y1.value().data()[j]).abs() < 1e-4);
        }
    }

    #[test]
    fn parameter_count_scales_with_depth() {
        let mut s1 = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let _ = TransformerEncoder::new(&mut s1, "e", cfg(false), &mut rng);
        let mut s2 = ParamStore::new();
        let mut deep = cfg(false);
        deep.layers = 4;
        let _ = TransformerEncoder::new(&mut s2, "e", deep, &mut rng);
        assert_eq!(s2.total_numel(), 2 * s1.total_numel());
    }

    #[test]
    fn training_forward_backward_fills_every_block_param() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let enc = TransformerEncoder::new(&mut store, "enc", cfg(false), &mut rng);
        let mut ctx = Ctx::train(&mut rng);
        let x = Var::constant(Tensor::randn(&[4, 8], 1.0, &mut StdRng::seed_from_u64(9)));
        let y = enc.forward(&mut ctx, &x, 1, 4, &[4]);
        y.mul(&y).sum_all().backward();
        let missing: Vec<_> = store
            .params()
            .iter()
            .filter(|p| ctx.grad_of(p).is_none())
            .map(|p| p.name().to_string())
            .collect();
        assert!(missing.is_empty(), "params without grads: {missing:?}");
    }
}
