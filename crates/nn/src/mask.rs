//! Attention-mask construction helpers.
//!
//! Masks are plain (non-differentiable) tensors with `1.0` = attend,
//! `0.0` = blocked, shaped `[b*h, l, l]` to align with the batched
//! attention scores produced by `split_heads` + `bmm`.

use pmm_tensor::Tensor;

/// Builds the standard attention mask for `b` right-padded sequences of
/// capacity `l` with valid lengths `lens`, replicated over `h` heads.
///
/// * `causal = true`: query `t` may attend keys `0..=t` (SASRec-style).
/// * `causal = false`: full bidirectional attention over valid keys.
///
/// Padded *key* positions are always blocked. Padded *query* rows keep
/// self-attention open so softmax stays well-defined; their outputs are
/// discarded by loss masking downstream.
#[track_caller]
pub fn attention_mask(b: usize, h: usize, l: usize, lens: &[usize], causal: bool) -> Tensor {
    assert_eq!(lens.len(), b, "attention_mask: lens must have one entry per sequence");
    let mut data = vec![0.0f32; b * h * l * l];
    for (bi, &len) in lens.iter().enumerate() {
        assert!(len <= l, "attention_mask: length {len} exceeds capacity {l}");
        for hi in 0..h {
            let base = (bi * h + hi) * l * l;
            for q in 0..l {
                let row = &mut data[base + q * l..base + (q + 1) * l];
                if q < len {
                    let hi_key = if causal { q + 1 } else { len };
                    row[..hi_key.min(len)].iter_mut().for_each(|v| *v = 1.0);
                } else {
                    // Padded query: attend only itself to keep softmax finite.
                    row[q] = 1.0;
                }
            }
        }
    }
    Tensor::from_vec(data, &[b * h, l, l]).expect("mask numel")
}

/// Per-row validity weights for a flattened `[b*l]` token batch:
/// `1.0` for rows `< len`, `0.0` for padding.
pub fn row_weights(b: usize, l: usize, lens: &[usize]) -> Vec<f32> {
    assert_eq!(lens.len(), b, "row_weights: lens must have one entry per sequence");
    let mut w = vec![0.0f32; b * l];
    for (bi, &len) in lens.iter().enumerate() {
        w[bi * l..bi * l + len.min(l)].iter_mut().for_each(|v| *v = 1.0);
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn causal_mask_is_lower_triangular() {
        let m = attention_mask(1, 1, 3, &[3], true);
        let d = m.data();
        assert_eq!(d, &[1.0, 0.0, 0.0, 1.0, 1.0, 0.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn bidirectional_mask_covers_valid_keys() {
        let m = attention_mask(1, 1, 3, &[2], false);
        let d = m.data();
        // Queries 0-1 see keys 0-1; padded query 2 sees only itself.
        assert_eq!(d, &[1.0, 1.0, 0.0, 1.0, 1.0, 0.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn mask_replicates_across_heads_and_batches() {
        let m = attention_mask(2, 3, 2, &[2, 1], true);
        assert_eq!(m.shape(), &[6, 2, 2]);
        let d = m.data();
        // First sequence (heads 0..3): causal full-length.
        for hi in 0..3 {
            assert_eq!(&d[hi * 4..hi * 4 + 4], &[1.0, 0.0, 1.0, 1.0]);
        }
        // Second sequence: length 1, padded query keeps self.
        for hi in 3..6 {
            assert_eq!(&d[hi * 4..hi * 4 + 4], &[1.0, 0.0, 0.0, 1.0]);
        }
    }

    #[test]
    fn row_weights_mark_valid_positions() {
        assert_eq!(row_weights(2, 3, &[3, 1]), vec![1.0, 1.0, 1.0, 1.0, 0.0, 0.0]);
    }
}
