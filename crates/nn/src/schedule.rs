//! Learning-rate schedules (linear warmup + constant/cosine decay).

/// A step-indexed learning-rate schedule.
#[derive(Debug, Clone, Copy)]
pub enum LrSchedule {
    /// Constant rate.
    Constant {
        /// The rate.
        lr: f32,
    },
    /// Linear warmup from 0 to `lr` over `warmup_steps`, then constant.
    Warmup {
        /// Peak rate.
        lr: f32,
        /// Steps to reach the peak.
        warmup_steps: u64,
    },
    /// Linear warmup then cosine decay to `min_lr` at `total_steps`.
    WarmupCosine {
        /// Peak rate.
        lr: f32,
        /// Steps to reach the peak.
        warmup_steps: u64,
        /// Step at which the floor is reached.
        total_steps: u64,
        /// Final rate.
        min_lr: f32,
    },
}

impl LrSchedule {
    /// Learning rate at (1-based) optimizer step `step`.
    pub fn at(&self, step: u64) -> f32 {
        match *self {
            LrSchedule::Constant { lr } => lr,
            LrSchedule::Warmup { lr, warmup_steps } => {
                if warmup_steps == 0 || step >= warmup_steps {
                    lr
                } else {
                    lr * step as f32 / warmup_steps as f32
                }
            }
            LrSchedule::WarmupCosine {
                lr,
                warmup_steps,
                total_steps,
                min_lr,
            } => {
                if step < warmup_steps {
                    return lr * step as f32 / warmup_steps.max(1) as f32;
                }
                if step >= total_steps || total_steps <= warmup_steps {
                    return min_lr;
                }
                let progress =
                    (step - warmup_steps) as f32 / (total_steps - warmup_steps) as f32;
                min_lr + 0.5 * (lr - min_lr) * (1.0 + (std::f32::consts::PI * progress).cos())
            }
        }
    }

    /// Applies the schedule to an optimizer before its next step.
    pub fn apply(&self, opt: &mut crate::AdamW) {
        opt.set_lr(self.at(opt.steps() + 1));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_constant() {
        let s = LrSchedule::Constant { lr: 0.1 };
        assert_eq!(s.at(1), 0.1);
        assert_eq!(s.at(1000), 0.1);
    }

    #[test]
    fn warmup_ramps_linearly() {
        let s = LrSchedule::Warmup { lr: 1.0, warmup_steps: 10 };
        assert!((s.at(5) - 0.5).abs() < 1e-6);
        assert_eq!(s.at(10), 1.0);
        assert_eq!(s.at(50), 1.0);
    }

    #[test]
    fn cosine_decays_to_floor() {
        let s = LrSchedule::WarmupCosine {
            lr: 1.0,
            warmup_steps: 10,
            total_steps: 110,
            min_lr: 0.1,
        };
        assert!((s.at(10) - 1.0).abs() < 1e-5);
        // Midpoint of decay: (1 + 0.1)/2.
        assert!((s.at(60) - 0.55).abs() < 1e-3);
        assert_eq!(s.at(110), 0.1);
        assert_eq!(s.at(10_000), 0.1);
    }

    #[test]
    fn schedule_drives_optimizer() {
        let mut opt = crate::AdamW::new(0.0, crate::AdamWConfig::default());
        let s = LrSchedule::Warmup { lr: 1.0, warmup_steps: 4 };
        s.apply(&mut opt);
        assert!((opt.lr() - 0.25).abs() < 1e-6);
    }
}
