//! Basic layers: linear projection, layer norm and dropout.

use crate::ctx::Ctx;
use crate::init::xavier_uniform;
use crate::param::{Param, ParamStore};
use pmm_tensor::{Tensor, Var};
use rand::rngs::StdRng;

/// Affine projection `y = x W + b` with `W: [in, out]`.
pub struct Linear {
    weight: Param,
    bias: Option<Param>,
    /// Input feature dimension.
    pub d_in: usize,
    /// Output feature dimension.
    pub d_out: usize,
}

impl Linear {
    /// Registers a new linear layer under `name` (params `{name}.weight`
    /// and optionally `{name}.bias`).
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        d_in: usize,
        d_out: usize,
        bias: bool,
        rng: &mut StdRng,
    ) -> Self {
        let weight = store.register(format!("{name}.weight"), xavier_uniform(d_in, d_out, rng));
        let bias = bias.then(|| store.register(format!("{name}.bias"), Tensor::zeros(&[d_out])));
        Linear {
            weight,
            bias,
            d_in,
            d_out,
        }
    }

    /// Applies the projection to `[.., d_in]` rows (input is viewed as
    /// `[rows, d_in]`).
    #[track_caller]
    pub fn forward(&self, ctx: &mut Ctx<'_>, x: &Var) -> Var {
        let rows = x.value().len() / self.d_in;
        let x2 = if x.shape().len() == 2 && x.shape()[1] == self.d_in {
            x.clone()
        } else {
            x.reshape(&[rows, self.d_in])
        };
        let w = ctx.var(&self.weight);
        let y = x2.matmul(&w);
        match &self.bias {
            Some(b) => y.add_bias(&ctx.var(b)),
            None => y,
        }
    }

    /// The weight parameter (for weight tying / inspection).
    pub fn weight(&self) -> &Param {
        &self.weight
    }
}

/// Learnable layer normalisation over the last axis.
pub struct LayerNorm {
    gamma: Param,
    beta: Param,
    eps: f32,
}

impl LayerNorm {
    /// Registers `{name}.gamma` (ones) and `{name}.beta` (zeros).
    pub fn new(store: &mut ParamStore, name: &str, d: usize) -> Self {
        LayerNorm {
            gamma: store.register(format!("{name}.gamma"), Tensor::ones(&[d])),
            beta: store.register(format!("{name}.beta"), Tensor::zeros(&[d])),
            eps: 1e-5,
        }
    }

    /// Normalises rows of `[.., d]`.
    pub fn forward(&self, ctx: &mut Ctx<'_>, x: &Var) -> Var {
        x.layer_norm(&ctx.var(&self.gamma), &ctx.var(&self.beta), self.eps)
    }
}

/// Inverted dropout; identity in eval mode.
#[derive(Clone, Copy)]
pub struct Dropout {
    p: f32,
}

impl Dropout {
    /// Dropout with drop probability `p` in `[0, 1)`.
    #[track_caller]
    pub fn new(p: f32) -> Self {
        assert!((0.0..1.0).contains(&p), "dropout probability {p} must be in [0, 1)");
        Dropout { p }
    }

    /// Applies dropout when the context is in training mode.
    pub fn forward(&self, ctx: &mut Ctx<'_>, x: &Var) -> Var {
        match ctx.dropout_mask(x.shape(), self.p) {
            Some(mask) => x.dropout(&mask),
            None => x.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn linear_forward_shape_and_bias() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let lin = Linear::new(&mut store, "l", 3, 5, true, &mut rng);
        let mut ctx = Ctx::eval();
        let x = Var::constant(Tensor::ones(&[4, 3]));
        let y = lin.forward(&mut ctx, &x);
        assert_eq!(y.shape(), &[4, 5]);
        assert!(store.get("l.weight").is_some());
        assert!(store.get("l.bias").is_some());
    }

    #[test]
    fn linear_reshapes_higher_rank_inputs() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let lin = Linear::new(&mut store, "l", 4, 2, false, &mut rng);
        let mut ctx = Ctx::eval();
        let x = Var::constant(Tensor::ones(&[2, 3, 4]));
        let y = lin.forward(&mut ctx, &x);
        assert_eq!(y.shape(), &[6, 2]);
    }

    #[test]
    fn linear_gradients_reach_parameters() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let lin = Linear::new(&mut store, "l", 2, 2, true, &mut rng);
        let mut ctx = Ctx::train(&mut rng);
        let x = Var::constant(Tensor::ones(&[1, 2]));
        let y = lin.forward(&mut ctx, &x).sum_all();
        y.backward();
        assert!(ctx.grad_of(lin.weight()).is_some());
    }

    #[test]
    fn layer_norm_default_params_standardise() {
        let mut store = ParamStore::new();
        let ln = LayerNorm::new(&mut store, "ln", 4);
        let mut ctx = Ctx::eval();
        let x = Var::constant(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 4]).unwrap());
        let y = ln.forward(&mut ctx, &x);
        assert!(y.value().mean().abs() < 1e-5);
    }

    #[test]
    fn dropout_identity_in_eval() {
        let d = Dropout::new(0.9);
        let mut ctx = Ctx::eval();
        let x = Var::constant(Tensor::ones(&[8]));
        assert_eq!(d.forward(&mut ctx, &x).value().data(), &[1.0; 8]);
    }

    #[test]
    #[should_panic(expected = "must be in [0, 1)")]
    fn dropout_rejects_p_one() {
        let _ = Dropout::new(1.0);
    }
}
