//! Checkpoint codec: a small named-tensor binary format.
//!
//! Layout (little-endian):
//!
//! ```text
//! magic   b"PMMCKPT1"
//! u32     entry count
//! entry*: u32 name length | name bytes (utf-8)
//!         u32 rank | u64 * rank dims
//!         f32 * numel data
//! ```
//!
//! [`load_filtered`] is the mechanism behind PMMRec's plug-and-play
//! transfer: a fine-tuning run can load only `text_encoder.*` and
//! `user_encoder.*` from a pre-trained checkpoint while leaving the
//! remaining components at their fresh initialisation.

use crate::param::ParamStore;
use pmm_tensor::Tensor;
use std::collections::HashMap;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"PMMCKPT1";

/// Errors raised by the codec.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file is not a PMMCKPT1 checkpoint or is corrupt.
    Format(String),
    /// A tensor in the file does not match the destination parameter.
    ShapeMismatch {
        /// Parameter name.
        name: String,
        /// Shape stored in the file.
        file: Vec<usize>,
        /// Shape registered in the store.
        store: Vec<usize>,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint io error: {e}"),
            CheckpointError::Format(m) => write!(f, "checkpoint format error: {m}"),
            CheckpointError::ShapeMismatch { name, file, store } => write!(
                f,
                "checkpoint shape mismatch for {name}: file {file:?} vs store {store:?}"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// Saves every parameter of `store` to `path`.
pub fn save(store: &ParamStore, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(MAGIC)?;
    let n = u32::try_from(store.params().len())
        .map_err(|_| CheckpointError::Format("too many parameters".into()))?;
    w.write_all(&n.to_le_bytes())?;
    for p in store.params() {
        let name = p.name().as_bytes();
        w.write_all(&(name.len() as u32).to_le_bytes())?;
        w.write_all(name)?;
        let value = p.value();
        w.write_all(&(value.shape().len() as u32).to_le_bytes())?;
        for &d in value.shape() {
            w.write_all(&(d as u64).to_le_bytes())?;
        }
        for &x in value.data() {
            w.write_all(&x.to_le_bytes())?;
        }
    }
    w.flush()?;
    Ok(())
}

/// Reads every tensor in a checkpoint into a name-keyed map.
pub fn read_all(path: impl AsRef<Path>) -> Result<HashMap<String, Tensor>, CheckpointError> {
    let mut r = BufReader::new(File::open(path)?);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(CheckpointError::Format("bad magic".into()));
    }
    let n = read_u32(&mut r)? as usize;
    let mut out = HashMap::with_capacity(n);
    for _ in 0..n {
        let name_len = read_u32(&mut r)? as usize;
        if name_len > 1 << 16 {
            return Err(CheckpointError::Format("implausible name length".into()));
        }
        let mut name = vec![0u8; name_len];
        r.read_exact(&mut name)?;
        let name = String::from_utf8(name)
            .map_err(|_| CheckpointError::Format("non-utf8 parameter name".into()))?;
        let rank = read_u32(&mut r)? as usize;
        if rank > 8 {
            return Err(CheckpointError::Format(format!("implausible rank {rank}")));
        }
        let mut shape = Vec::with_capacity(rank);
        for _ in 0..rank {
            let mut b = [0u8; 8];
            r.read_exact(&mut b)?;
            shape.push(u64::from_le_bytes(b) as usize);
        }
        let numel: usize = shape.iter().product();
        if numel > 1 << 28 {
            return Err(CheckpointError::Format("implausible tensor size".into()));
        }
        let mut data = Vec::with_capacity(numel);
        let mut buf = [0u8; 4];
        for _ in 0..numel {
            r.read_exact(&mut buf)?;
            data.push(f32::from_le_bytes(buf));
        }
        let t = Tensor::from_vec(data, &shape)
            .map_err(|e| CheckpointError::Format(e.to_string()))?;
        out.insert(name, t);
    }
    Ok(out)
}

/// Summary of a [`load_filtered`] run.
#[derive(Debug, Default, Clone)]
pub struct LoadReport {
    /// Parameters whose values were replaced.
    pub loaded: Vec<String>,
    /// Store parameters matching the filter with no checkpoint entry.
    pub missing: Vec<String>,
    /// Checkpoint entries matching the filter with no store parameter.
    pub unused: Vec<String>,
}

/// Loads checkpoint values into `store`, restricted to parameters whose
/// name starts with one of `prefixes` (an empty slice loads everything).
///
/// Shape mismatches abort with an error before any partial write beyond
/// already-matching entries (callers treating transfers as atomic should
/// check shapes via a dry run — in this codebase architectures are
/// constructed from the same configs, so mismatch means programmer
/// error).
pub fn load_filtered(
    store: &ParamStore,
    path: impl AsRef<Path>,
    prefixes: &[&str],
) -> Result<LoadReport, CheckpointError> {
    let all = read_all(path)?;
    let wanted = |name: &str| prefixes.is_empty() || prefixes.iter().any(|p| name.starts_with(p));
    let mut report = LoadReport::default();
    for p in store.params() {
        if !wanted(p.name()) {
            continue;
        }
        match all.get(p.name()) {
            Some(t) => {
                if t.shape() != p.value().shape() {
                    return Err(CheckpointError::ShapeMismatch {
                        name: p.name().to_string(),
                        file: t.shape().to_vec(),
                        store: p.value().shape().to_vec(),
                    });
                }
                p.set_value(t.clone());
                report.loaded.push(p.name().to_string());
            }
            None => report.missing.push(p.name().to_string()),
        }
    }
    for name in all.keys() {
        if wanted(name) && store.get(name).is_none() {
            report.unused.push(name.clone());
        }
    }
    report.unused.sort();
    Ok(report)
}

fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::env;

    fn tmp(name: &str) -> std::path::PathBuf {
        env::temp_dir().join(format!("pmm_ckpt_test_{name}_{}", std::process::id()))
    }

    fn store_with(names: &[(&str, &[usize])]) -> ParamStore {
        let mut s = ParamStore::new();
        for (i, (n, sh)) in names.iter().enumerate() {
            s.register(*n, Tensor::full(sh, i as f32 + 1.0));
        }
        s
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let src = store_with(&[("a.w", &[2, 3]), ("b.w", &[4])]);
        let path = tmp("roundtrip");
        save(&src, &path).unwrap();
        let dst = store_with(&[("a.w", &[2, 3]), ("b.w", &[4])]);
        dst.get("a.w").unwrap().set_value(Tensor::zeros(&[2, 3]));
        let report = load_filtered(&dst, &path, &[]).unwrap();
        assert_eq!(report.loaded.len(), 2);
        assert_eq!(dst.get("a.w").unwrap().value_cloned().data(), &[1.0; 6]);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn prefix_filter_limits_loading() {
        let src = store_with(&[("enc.w", &[2]), ("head.w", &[2])]);
        let path = tmp("prefix");
        save(&src, &path).unwrap();
        let dst = store_with(&[("enc.w", &[2]), ("head.w", &[2])]);
        dst.get("enc.w").unwrap().set_value(Tensor::zeros(&[2]));
        dst.get("head.w").unwrap().set_value(Tensor::zeros(&[2]));
        let report = load_filtered(&dst, &path, &["enc."]).unwrap();
        assert_eq!(report.loaded, vec!["enc.w".to_string()]);
        assert_eq!(dst.get("enc.w").unwrap().value_cloned().data(), &[1.0, 1.0]);
        assert_eq!(dst.get("head.w").unwrap().value_cloned().data(), &[0.0, 0.0]);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn missing_and_unused_are_reported() {
        let src = store_with(&[("only_in_file.w", &[1])]);
        let path = tmp("missing");
        save(&src, &path).unwrap();
        let dst = store_with(&[("only_in_store.w", &[1])]);
        let report = load_filtered(&dst, &path, &[]).unwrap();
        assert_eq!(report.missing, vec!["only_in_store.w".to_string()]);
        assert_eq!(report.unused, vec!["only_in_file.w".to_string()]);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn shape_mismatch_is_an_error() {
        let src = store_with(&[("w", &[2])]);
        let path = tmp("mismatch");
        save(&src, &path).unwrap();
        let dst = store_with(&[("w", &[3])]);
        assert!(matches!(
            load_filtered(&dst, &path, &[]),
            Err(CheckpointError::ShapeMismatch { .. })
        ));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn corrupt_magic_is_rejected() {
        let path = tmp("corrupt");
        std::fs::write(&path, b"NOTACKPTxxxx").unwrap();
        assert!(matches!(read_all(&path), Err(CheckpointError::Format(_))));
        std::fs::remove_file(path).ok();
    }
}
