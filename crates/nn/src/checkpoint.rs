//! Checkpoint codec: a small named-tensor binary format, written
//! crash-safely and verified end-to-end.
//!
//! Layout of the current (v2) format, little-endian:
//!
//! ```text
//! magic   b"PMMCKPT2"
//! u32     format version (2)
//! u32     entry count
//! entry*: u32 name length | name bytes (utf-8)
//!         u32 rank | u64 * rank dims
//!         f32 * numel data
//! u32     CRC32 (IEEE) of every preceding byte
//! ```
//!
//! [`save`] writes to a temporary sibling and renames it into place, so
//! a crash mid-write never destroys the previous checkpoint, and the
//! CRC footer lets [`read_all`] reject truncated or bit-flipped files
//! before any parameter is touched. Legacy `PMMCKPT1` files (no
//! version field, no CRC) are still readable.
//!
//! [`load_filtered`] is the mechanism behind PMMRec's plug-and-play
//! transfer: a fine-tuning run can load only `text_encoder.*` and
//! `user_encoder.*` from a pre-trained checkpoint while leaving the
//! remaining components at their fresh initialisation.
//!
//! [`CheckpointRotation`] layers fault tolerance on top: it keeps a
//! retained window of the N most recent checkpoints and
//! [`CheckpointRotation::load_latest`] falls back across them when the
//! newest is corrupt — the disk half of the anomaly-guard/rollback
//! story.

use crate::param::ParamStore;
use pmm_obs::obs_warn;
use pmm_tensor::Tensor;
use std::collections::HashMap;
use std::fs::File;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

const MAGIC_V2: &[u8; 8] = b"PMMCKPT2";
const MAGIC_V1: &[u8; 8] = b"PMMCKPT1";
const FORMAT_VERSION: u32 = 2;

/// Errors raised by the codec.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file is not a PMMCKPT checkpoint or is corrupt.
    Format(String),
    /// A tensor in the file does not match the destination parameter.
    ShapeMismatch {
        /// Parameter name.
        name: String,
        /// Shape stored in the file.
        file: Vec<usize>,
        /// Shape registered in the store.
        store: Vec<usize>,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint io error: {e}"),
            CheckpointError::Format(m) => write!(f, "checkpoint format error: {m}"),
            CheckpointError::ShapeMismatch { name, file, store } => write!(
                f,
                "checkpoint shape mismatch for {name}: file {file:?} vs store {store:?}"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

// ----------------------------------------------------------------------
// CRC32 (IEEE 802.3), table-driven — the integrity footer.
// ----------------------------------------------------------------------

fn crc32_table() -> &'static [u32; 256] {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *slot = c;
        }
        table
    })
}

/// CRC32 (IEEE) of `bytes` — exposed so tests and external tooling can
/// verify checkpoint footers independently.
pub fn crc32(bytes: &[u8]) -> u32 {
    let table = crc32_table();
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = table[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Saves every parameter of `store` to `path` atomically: the encoded
/// bytes (with CRC footer) go to a temporary sibling file which is then
/// renamed over `path`, so an interrupted save leaves any previous
/// checkpoint intact.
pub fn save(store: &ParamStore, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
    let path = path.as_ref();
    let mut buf = Vec::new();
    buf.extend_from_slice(MAGIC_V2);
    buf.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    let n = u32::try_from(store.params().len())
        .map_err(|_| CheckpointError::Format("too many parameters".into()))?;
    buf.extend_from_slice(&n.to_le_bytes());
    for p in store.params() {
        let name = p.name().as_bytes();
        buf.extend_from_slice(&(name.len() as u32).to_le_bytes());
        buf.extend_from_slice(name);
        let value = p.value();
        buf.extend_from_slice(&(value.shape().len() as u32).to_le_bytes());
        for &d in value.shape() {
            buf.extend_from_slice(&(d as u64).to_le_bytes());
        }
        for &x in value.data() {
            buf.extend_from_slice(&x.to_le_bytes());
        }
    }
    let crc = crc32(&buf);
    buf.extend_from_slice(&crc.to_le_bytes());

    let tmp = tmp_sibling(path);
    let write_result = (|| -> io::Result<()> {
        let mut f = File::create(&tmp)?;
        f.write_all(&buf)?;
        f.sync_all()?;
        Ok(())
    })();
    if let Err(e) = write_result {
        std::fs::remove_file(&tmp).ok();
        return Err(e.into());
    }
    if let Err(e) = std::fs::rename(&tmp, path) {
        std::fs::remove_file(&tmp).ok();
        return Err(e.into());
    }
    Ok(())
}

fn tmp_sibling(path: &Path) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(format!(".tmp.{}", std::process::id()));
    path.with_file_name(name)
}

/// Reads every tensor in a checkpoint into a name-keyed map. The open
/// and read are retried with backoff on transient IO errors; v2 files
/// are CRC-verified before any entry is parsed.
pub fn read_all(path: impl AsRef<Path>) -> Result<HashMap<String, Tensor>, CheckpointError> {
    let path = path.as_ref();
    let bytes = pmm_fault::with_io_retry_notify(
        &format!("read checkpoint {}", path.display()),
        || std::fs::read(path),
        |attempt, e| {
            pmm_obs::counter::IO_RETRIES.add(1);
            pmm_obs::sink::emit_guard("io_retry", u64::from(attempt), &e.to_string());
            obs_warn!("checkpoint", "read {} failed (attempt {}): {e}; retrying", path.display(), attempt + 1);
        },
    )?;
    if bytes.len() < 8 {
        return Err(CheckpointError::Format(format!(
            "file is {} bytes, smaller than the magic header",
            bytes.len()
        )));
    }
    match &bytes[..8] {
        m if m == MAGIC_V2 => read_entries_v2(&bytes),
        m if m == MAGIC_V1 => read_entries(&mut &bytes[8..]),
        _ => Err(CheckpointError::Format("bad magic".into())),
    }
}

fn read_entries_v2(bytes: &[u8]) -> Result<HashMap<String, Tensor>, CheckpointError> {
    if bytes.len() < 16 {
        return Err(CheckpointError::Format("truncated v2 header".into()));
    }
    let body = &bytes[..bytes.len() - 4];
    let stored = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().unwrap());
    let actual = crc32(body);
    if stored != actual {
        return Err(CheckpointError::Format(format!(
            "CRC mismatch: footer {stored:#010x} vs computed {actual:#010x} (truncated or corrupt file)"
        )));
    }
    let mut r = &body[8..];
    let version = read_u32(&mut r)?;
    if version > FORMAT_VERSION {
        return Err(CheckpointError::Format(format!(
            "format version {version} is newer than supported {FORMAT_VERSION}"
        )));
    }
    read_entries(&mut r)
}

fn read_entries(r: &mut impl Read) -> Result<HashMap<String, Tensor>, CheckpointError> {
    let n = read_u32(r)? as usize;
    let mut out = HashMap::with_capacity(n);
    for _ in 0..n {
        let name_len = read_u32(r)? as usize;
        if name_len > 1 << 16 {
            return Err(CheckpointError::Format("implausible name length".into()));
        }
        let mut name = vec![0u8; name_len];
        r.read_exact(&mut name)?;
        let name = String::from_utf8(name)
            .map_err(|_| CheckpointError::Format("non-utf8 parameter name".into()))?;
        let rank = read_u32(r)? as usize;
        if rank > 8 {
            return Err(CheckpointError::Format(format!("implausible rank {rank}")));
        }
        let mut shape = Vec::with_capacity(rank);
        for _ in 0..rank {
            let mut b = [0u8; 8];
            r.read_exact(&mut b)?;
            shape.push(u64::from_le_bytes(b) as usize);
        }
        let numel: usize = shape.iter().product();
        if numel > 1 << 28 {
            return Err(CheckpointError::Format("implausible tensor size".into()));
        }
        let mut data = Vec::with_capacity(numel);
        let mut buf = [0u8; 4];
        for _ in 0..numel {
            r.read_exact(&mut buf)?;
            data.push(f32::from_le_bytes(buf));
        }
        let t = Tensor::from_vec(data, &shape)
            .map_err(|e| CheckpointError::Format(e.to_string()))?;
        out.insert(name, t);
    }
    Ok(out)
}

/// Summary of a [`load_filtered`] run.
#[derive(Debug, Default, Clone)]
pub struct LoadReport {
    /// Parameters whose values were replaced.
    pub loaded: Vec<String>,
    /// Store parameters matching the filter with no checkpoint entry.
    pub missing: Vec<String>,
    /// Checkpoint entries matching the filter with no store parameter.
    pub unused: Vec<String>,
}

/// Loads checkpoint values into `store`, restricted to parameters whose
/// name starts with one of `prefixes` (an empty slice loads everything).
///
/// Shape mismatches abort with an error before any partial write beyond
/// already-matching entries (callers treating transfers as atomic should
/// check shapes via a dry run — in this codebase architectures are
/// constructed from the same configs, so mismatch means programmer
/// error).
pub fn load_filtered(
    store: &ParamStore,
    path: impl AsRef<Path>,
    prefixes: &[&str],
) -> Result<LoadReport, CheckpointError> {
    let all = read_all(path)?;
    let wanted = |name: &str| prefixes.is_empty() || prefixes.iter().any(|p| name.starts_with(p));
    let mut report = LoadReport::default();
    for p in store.params() {
        if !wanted(p.name()) {
            continue;
        }
        match all.get(p.name()) {
            Some(t) => {
                if t.shape() != p.value().shape() {
                    return Err(CheckpointError::ShapeMismatch {
                        name: p.name().to_string(),
                        file: t.shape().to_vec(),
                        store: p.value().shape().to_vec(),
                    });
                }
                p.set_value(t.clone());
                report.loaded.push(p.name().to_string());
            }
            None => report.missing.push(p.name().to_string()),
        }
    }
    for name in all.keys() {
        if wanted(name) && store.get(name).is_none() {
            report.unused.push(name.clone());
        }
    }
    report.unused.sort();
    Ok(report)
}

fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

// ----------------------------------------------------------------------
// Retained-window rotation with corrupt-checkpoint fallback.
// ----------------------------------------------------------------------

/// A directory of sequence-numbered checkpoints (`{tag}-{seq:08}.ckpt`)
/// with a bounded retention window. Saves are atomic and prune the
/// oldest generations; [`CheckpointRotation::load_latest`] restores the
/// newest checkpoint that passes integrity checks, falling back across
/// the window when newer ones are corrupt or truncated.
pub struct CheckpointRotation {
    dir: PathBuf,
    tag: String,
    keep: usize,
}

impl CheckpointRotation {
    /// Creates (or reuses) the rotation directory; `keep` is clamped to
    /// at least 1 retained checkpoint.
    pub fn new(
        dir: impl Into<PathBuf>,
        tag: impl Into<String>,
        keep: usize,
    ) -> Result<CheckpointRotation, CheckpointError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(CheckpointRotation { dir, tag: tag.into(), keep: keep.max(1) })
    }

    /// Path of the checkpoint for sequence number `seq`.
    pub fn path_for(&self, seq: u64) -> PathBuf {
        self.dir.join(format!("{}-{seq:08}.ckpt", self.tag))
    }

    /// Saves `store` as generation `seq` and prunes generations beyond
    /// the retention window. An installed fault plan may corrupt the
    /// written file (simulating a crash mid-write) — deliberately
    /// *after* the save, so recovery via older generations is what gets
    /// exercised.
    pub fn save(&self, store: &ParamStore, seq: u64) -> Result<PathBuf, CheckpointError> {
        let path = self.path_for(seq);
        save(store, &path)?;
        if pmm_fault::trip_corrupt_save() {
            pmm_fault::corrupt_file(&path)?;
            obs_warn!("checkpoint", "fault plan corrupted {}", path.display());
        }
        self.prune();
        Ok(path)
    }

    /// All checkpoints in the directory for this tag, ascending by
    /// sequence number.
    pub fn list(&self) -> Vec<(u64, PathBuf)> {
        let prefix = format!("{}-", self.tag);
        let mut out: Vec<(u64, PathBuf)> = std::fs::read_dir(&self.dir)
            .into_iter()
            .flatten()
            .flatten()
            .filter_map(|entry| {
                let path = entry.path();
                let name = path.file_name()?.to_str()?;
                let seq = name
                    .strip_prefix(&prefix)?
                    .strip_suffix(".ckpt")?
                    .parse::<u64>()
                    .ok()?;
                Some((seq, path))
            })
            .collect();
        out.sort_by_key(|(seq, _)| *seq);
        out
    }

    /// Loads the newest checkpoint that passes integrity checks into
    /// `store`, returning its sequence number. Corrupt or unreadable
    /// generations are skipped (with a `ckpt_fallback` guard event and
    /// counter bump) until one loads; errors only when the whole window
    /// is exhausted.
    pub fn load_latest(&self, store: &ParamStore) -> Result<(u64, LoadReport), CheckpointError> {
        let mut window = self.list();
        window.reverse();
        if window.is_empty() {
            return Err(CheckpointError::Format(format!(
                "no {}-*.ckpt checkpoints in {}",
                self.tag,
                self.dir.display()
            )));
        }
        let newest = window[0].0;
        for (seq, path) in window {
            match load_filtered(store, &path, &[]) {
                Ok(report) => {
                    if seq != newest {
                        pmm_obs::sink::emit_guard("recovery", seq, "restored older checkpoint generation");
                    }
                    return Ok((seq, report));
                }
                Err(e) => {
                    pmm_obs::counter::CKPT_FALLBACKS.add(1);
                    pmm_obs::sink::emit_guard("ckpt_fallback", seq, &e.to_string());
                    obs_warn!(
                        "checkpoint",
                        "checkpoint {} unusable ({e}); falling back to an older generation",
                        path.display()
                    );
                }
            }
        }
        Err(CheckpointError::Format(format!(
            "every checkpoint in the {}-generation window is corrupt",
            self.keep
        )))
    }

    fn prune(&self) {
        let listed = self.list();
        if listed.len() > self.keep {
            for (_, path) in &listed[..listed.len() - self.keep] {
                std::fs::remove_file(path).ok();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::env;

    fn tmp(name: &str) -> std::path::PathBuf {
        env::temp_dir().join(format!("pmm_ckpt_test_{name}_{}", std::process::id()))
    }

    fn store_with(names: &[(&str, &[usize])]) -> ParamStore {
        let mut s = ParamStore::new();
        for (i, (n, sh)) in names.iter().enumerate() {
            s.register(*n, Tensor::full(sh, i as f32 + 1.0));
        }
        s
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let src = store_with(&[("a.w", &[2, 3]), ("b.w", &[4])]);
        let path = tmp("roundtrip");
        save(&src, &path).unwrap();
        let dst = store_with(&[("a.w", &[2, 3]), ("b.w", &[4])]);
        dst.get("a.w").unwrap().set_value(Tensor::zeros(&[2, 3]));
        let report = load_filtered(&dst, &path, &[]).unwrap();
        assert_eq!(report.loaded.len(), 2);
        assert_eq!(dst.get("a.w").unwrap().value_cloned().data(), &[1.0; 6]);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn prefix_filter_limits_loading() {
        let src = store_with(&[("enc.w", &[2]), ("head.w", &[2])]);
        let path = tmp("prefix");
        save(&src, &path).unwrap();
        let dst = store_with(&[("enc.w", &[2]), ("head.w", &[2])]);
        dst.get("enc.w").unwrap().set_value(Tensor::zeros(&[2]));
        dst.get("head.w").unwrap().set_value(Tensor::zeros(&[2]));
        let report = load_filtered(&dst, &path, &["enc."]).unwrap();
        assert_eq!(report.loaded, vec!["enc.w".to_string()]);
        assert_eq!(dst.get("enc.w").unwrap().value_cloned().data(), &[1.0, 1.0]);
        assert_eq!(dst.get("head.w").unwrap().value_cloned().data(), &[0.0, 0.0]);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn missing_and_unused_are_reported() {
        let src = store_with(&[("only_in_file.w", &[1])]);
        let path = tmp("missing");
        save(&src, &path).unwrap();
        let dst = store_with(&[("only_in_store.w", &[1])]);
        let report = load_filtered(&dst, &path, &[]).unwrap();
        assert_eq!(report.missing, vec!["only_in_store.w".to_string()]);
        assert_eq!(report.unused, vec!["only_in_file.w".to_string()]);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn shape_mismatch_is_an_error() {
        let src = store_with(&[("w", &[2])]);
        let path = tmp("mismatch");
        save(&src, &path).unwrap();
        let dst = store_with(&[("w", &[3])]);
        assert!(matches!(
            load_filtered(&dst, &path, &[]),
            Err(CheckpointError::ShapeMismatch { .. })
        ));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn corrupt_magic_is_rejected() {
        let path = tmp("corrupt");
        std::fs::write(&path, b"NOTACKPTxxxx").unwrap();
        assert!(matches!(read_all(&path), Err(CheckpointError::Format(_))));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn crc32_matches_reference_vector() {
        // The canonical IEEE CRC32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn truncated_file_fails_crc_not_parse() {
        let src = store_with(&[("w", &[8, 8])]);
        let path = tmp("truncated");
        save(&src, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        match read_all(&path) {
            Err(CheckpointError::Format(msg)) => {
                assert!(msg.contains("CRC"), "expected CRC rejection, got: {msg}")
            }
            other => panic!("expected Format error, got {other:?}"),
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn bitflip_fails_crc() {
        let src = store_with(&[("w", &[4])]);
        let path = tmp("bitflip");
        save(&src, &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(read_all(&path), Err(CheckpointError::Format(_))));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn legacy_v1_files_still_load() {
        // Hand-encode a v1 checkpoint: magic, count=1, "w", rank 1, [2], data.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(b"PMMCKPT1");
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(b"w");
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&2u64.to_le_bytes());
        bytes.extend_from_slice(&5.0f32.to_le_bytes());
        bytes.extend_from_slice(&6.0f32.to_le_bytes());
        let path = tmp("legacy_v1");
        std::fs::write(&path, &bytes).unwrap();
        let dst = store_with(&[("w", &[2])]);
        let report = load_filtered(&dst, &path, &[]).unwrap();
        assert_eq!(report.loaded, vec!["w".to_string()]);
        assert_eq!(dst.get("w").unwrap().value_cloned().data(), &[5.0, 6.0]);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn save_leaves_no_temp_files() {
        let src = store_with(&[("w", &[2])]);
        let dir = tmp("atomic_dir");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.ckpt");
        save(&src, &path).unwrap();
        save(&src, &path).unwrap(); // overwrite path also atomic
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "temp files left behind: {leftovers:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rotation_prunes_to_window() {
        let dir = tmp("rotation_prune");
        std::fs::remove_dir_all(&dir).ok();
        let rot = CheckpointRotation::new(&dir, "m", 2).unwrap();
        let src = store_with(&[("w", &[2])]);
        for seq in 0..5 {
            rot.save(&src, seq).unwrap();
        }
        let listed = rot.list();
        assert_eq!(listed.iter().map(|(s, _)| *s).collect::<Vec<_>>(), vec![3, 4]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_latest_falls_back_across_corrupt_generations() {
        let dir = tmp("rotation_fallback");
        std::fs::remove_dir_all(&dir).ok();
        let rot = CheckpointRotation::new(&dir, "m", 3).unwrap();
        let src = store_with(&[("w", &[2])]);
        src.get("w").unwrap().set_value(Tensor::full(&[2], 10.0));
        rot.save(&src, 1).unwrap();
        src.get("w").unwrap().set_value(Tensor::full(&[2], 20.0));
        rot.save(&src, 2).unwrap();
        // Corrupt the newest generation on disk.
        pmm_fault::corrupt_file(&rot.path_for(2)).unwrap();
        let dst = store_with(&[("w", &[2])]);
        let (seq, report) = rot.load_latest(&dst).unwrap();
        assert_eq!(seq, 1, "must fall back to the older good generation");
        assert_eq!(report.loaded, vec!["w".to_string()]);
        assert_eq!(dst.get("w").unwrap().value_cloned().data(), &[10.0, 10.0]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_latest_errors_when_window_exhausted() {
        let dir = tmp("rotation_exhausted");
        std::fs::remove_dir_all(&dir).ok();
        let rot = CheckpointRotation::new(&dir, "m", 2).unwrap();
        let dst = store_with(&[("w", &[2])]);
        assert!(matches!(rot.load_latest(&dst), Err(CheckpointError::Format(_))));
        let src = store_with(&[("w", &[2])]);
        rot.save(&src, 0).unwrap();
        pmm_fault::corrupt_file(&rot.path_for(0)).unwrap();
        assert!(matches!(rot.load_latest(&dst), Err(CheckpointError::Format(_))));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fault_plan_corrupts_scheduled_save() {
        let _g = pmm_fault::test_guard();
        let dir = tmp("rotation_fault");
        std::fs::remove_dir_all(&dir).ok();
        let rot = CheckpointRotation::new(&dir, "m", 3).unwrap();
        let src = store_with(&[("w", &[4])]);
        pmm_fault::install(pmm_fault::FaultPlan::parse("ckpt@1").unwrap());
        rot.save(&src, 0).unwrap();
        rot.save(&src, 1).unwrap(); // corrupted by the plan
        pmm_fault::clear();
        assert!(read_all(rot.path_for(0)).is_ok());
        assert!(read_all(rot.path_for(1)).is_err());
        let dst = store_with(&[("w", &[4])]);
        let (seq, _) = rot.load_latest(&dst).unwrap();
        assert_eq!(seq, 0);
        std::fs::remove_dir_all(&dir).ok();
    }
}
