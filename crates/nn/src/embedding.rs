//! Embedding tables (token, patch-position, sequence-position).

use crate::ctx::Ctx;
use crate::init::normal_init;
use crate::param::{Param, ParamStore};
use pmm_tensor::Var;
use rand::rngs::StdRng;

/// A `[vocab, d]` lookup table.
pub struct Embedding {
    weight: Param,
    /// Vocabulary size.
    pub vocab: usize,
    /// Embedding dimension.
    pub d: usize,
}

impl Embedding {
    /// Registers `{name}.weight` initialised `N(0, 0.02)` (the BERT
    /// convention).
    pub fn new(store: &mut ParamStore, name: &str, vocab: usize, d: usize, rng: &mut StdRng) -> Self {
        let weight = store.register(format!("{name}.weight"), normal_init(&[vocab, d], 0.02, rng));
        Embedding { weight, vocab, d }
    }

    /// Looks up `ids` producing `[ids.len(), d]`.
    #[track_caller]
    pub fn forward(&self, ctx: &mut Ctx<'_>, ids: &[usize]) -> Var {
        debug_assert!(
            ids.iter().all(|&i| i < self.vocab),
            "embedding id out of range (vocab {})",
            self.vocab
        );
        ctx.var(&self.weight).gather_rows(ids)
    }

    /// The full table as a graph node (for output projections that tie
    /// weights with the input embedding).
    pub fn table(&self, ctx: &mut Ctx<'_>) -> Var {
        ctx.var(&self.weight)
    }

    /// The table parameter.
    pub fn weight(&self) -> &Param {
        &self.weight
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn lookup_shape_and_grad_scatter() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let emb = Embedding::new(&mut store, "e", 10, 4, &mut rng);
        let mut ctx = Ctx::train(&mut rng);
        let x = emb.forward(&mut ctx, &[1, 1, 3]);
        assert_eq!(x.shape(), &[3, 4]);
        x.sum_all().backward();
        let g = ctx.grad_of(emb.weight()).unwrap();
        // Row 1 hit twice, row 3 once, others zero.
        assert_eq!(g.data()[4..8], [2.0; 4]);
        assert_eq!(g.data()[12..16], [1.0; 4]);
        assert_eq!(g.data()[..4], [0.0; 4]);
    }

    #[test]
    fn table_is_shared_with_lookup() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let emb = Embedding::new(&mut store, "e", 4, 2, &mut rng);
        let mut ctx = Ctx::train(&mut rng);
        let x = emb.forward(&mut ctx, &[0]);
        let t = emb.table(&mut ctx);
        // Tied usage: logits = x @ table^T.
        let y = x.matmul_nt(&t).sum_all();
        y.backward();
        assert!(ctx.grad_of(emb.weight()).is_some());
    }
}
