//! Per-step forward context: parameter interning, training mode and RNG.

use crate::param::Param;
use pmm_tensor::{Tensor, Var};
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::HashMap;

/// A single forward/backward step's context.
///
/// * Interns each [`Param`] into exactly one graph leaf per step, so a
///   parameter used twice (e.g. tied embeddings) accumulates gradients
///   correctly.
/// * Carries the training flag (dropout on/off) and the step RNG.
pub struct Ctx<'r> {
    training: bool,
    rng: Option<&'r mut StdRng>,
    interned: HashMap<u64, Var>,
}

impl<'r> Ctx<'r> {
    /// Training-mode context (dropout active, RNG required).
    pub fn train(rng: &'r mut StdRng) -> Self {
        Ctx {
            training: true,
            rng: Some(rng),
            interned: HashMap::new(),
        }
    }

    /// Inference-mode context: dropout is the identity, no RNG needed,
    /// and parameters are interned as constants so the graph is pruned.
    pub fn eval() -> Self {
        Ctx {
            training: false,
            rng: None,
            interned: HashMap::new(),
        }
    }

    /// Whether dropout and other stochastic regularisers are active.
    #[inline]
    pub fn training(&self) -> bool {
        self.training
    }

    /// Interns a parameter as a graph leaf (cached per step).
    pub fn var(&mut self, p: &Param) -> Var {
        if let Some(v) = self.interned.get(&p.id()) {
            return v.clone();
        }
        let v = if self.training {
            Var::leaf(p.value_cloned())
        } else {
            Var::constant(p.value_cloned())
        };
        self.interned.insert(p.id(), v.clone());
        v
    }

    /// The gradient accumulated for `p` this step, if any.
    pub fn grad_of(&self, p: &Param) -> Option<Tensor> {
        self.interned.get(&p.id()).and_then(Var::grad)
    }

    /// Every parameter leaf interned this step, as `(param id, leaf)`
    /// sorted by id — the graph auditor's view of what the optimiser
    /// will try to update.
    pub fn interned(&self) -> Vec<(u64, Var)> {
        // pmm-audit: allow(nondet) — order normalised by the sort below
        let mut out: Vec<(u64, Var)> = self.interned.iter().map(|(&id, v)| (id, v.clone())).collect();
        out.sort_by_key(|(id, _)| *id);
        out
    }

    /// Samples an inverted-scaling dropout keep-mask of the given shape.
    ///
    /// Returns `None` when not training or `p == 0`, meaning "skip the
    /// dropout op entirely".
    pub fn dropout_mask(&mut self, shape: &[usize], p: f32) -> Option<Tensor> {
        if !self.training || p <= 0.0 {
            return None;
        }
        let rng = self
            .rng
            .as_mut()
            .expect("training Ctx always carries an RNG");
        let keep = 1.0 - p;
        let scale = 1.0 / keep;
        let n: usize = shape.iter().product();
        let data: Vec<f32> = (0..n)
            .map(|_| if rng.random::<f32>() < keep { scale } else { 0.0 })
            .collect();
        Some(Tensor::from_vec(data, shape).expect("mask numel"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::ParamStore;
    use rand::SeedableRng;

    #[test]
    fn interning_is_cached_per_param() {
        let mut store = ParamStore::new();
        let p = store.register("w", Tensor::ones(&[2]));
        let mut rng = StdRng::seed_from_u64(0);
        let mut ctx = Ctx::train(&mut rng);
        let a = ctx.var(&p);
        let b = ctx.var(&p);
        // Same underlying node: gradient accumulates once.
        let y = a.add(&b).sum_all();
        y.backward();
        assert_eq!(ctx.grad_of(&p).unwrap().data(), &[2.0, 2.0]);
    }

    #[test]
    fn eval_ctx_produces_constant_leaves() {
        let mut store = ParamStore::new();
        let p = store.register("w", Tensor::ones(&[2]));
        let mut ctx = Ctx::eval();
        assert!(!ctx.var(&p).requires_grad());
        assert!(ctx.dropout_mask(&[4], 0.5).is_none());
    }

    #[test]
    fn dropout_mask_values_are_zero_or_scaled() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut ctx = Ctx::train(&mut rng);
        let m = ctx.dropout_mask(&[1000], 0.5).unwrap();
        for &v in m.data() {
            assert!(v == 0.0 || (v - 2.0).abs() < 1e-6);
        }
        let kept = m.data().iter().filter(|&&v| v > 0.0).count();
        assert!((300..700).contains(&kept), "kept {kept}");
    }

    #[test]
    fn dropout_mask_none_for_zero_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut ctx = Ctx::train(&mut rng);
        assert!(ctx.dropout_mask(&[4], 0.0).is_none());
    }
}
