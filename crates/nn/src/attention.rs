//! Multi-head attention (self- and cross-attention).

use crate::ctx::Ctx;
use crate::layers::{Dropout, Linear};
use crate::param::ParamStore;
use pmm_tensor::{Tensor, Var};
use rand::rngs::StdRng;

/// Multi-head scaled-dot-product attention.
///
/// Operates on flattened token batches `[b*l, d]`; the caller supplies
/// the `(b, l)` geometry and a `[b*h, l_q, l_k]` mask built with
/// [`crate::mask::attention_mask`].
pub struct MultiHeadAttention {
    wq: Linear,
    wk: Linear,
    wv: Linear,
    wo: Linear,
    attn_dropout: Dropout,
    /// Number of heads.
    pub heads: usize,
    /// Model dimension.
    pub d: usize,
}

impl MultiHeadAttention {
    /// Registers projections under `{name}.{wq,wk,wv,wo}`.
    #[track_caller]
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        d: usize,
        heads: usize,
        dropout: f32,
        rng: &mut StdRng,
    ) -> Self {
        assert_eq!(d % heads, 0, "attention: d={d} not divisible by heads={heads}");
        MultiHeadAttention {
            wq: Linear::new(store, &format!("{name}.wq"), d, d, true, rng),
            wk: Linear::new(store, &format!("{name}.wk"), d, d, true, rng),
            wv: Linear::new(store, &format!("{name}.wv"), d, d, true, rng),
            wo: Linear::new(store, &format!("{name}.wo"), d, d, true, rng),
            attn_dropout: Dropout::new(dropout),
            heads,
            d,
        }
    }

    /// Self-attention over `x: [b*l, d]` with mask `[b*h, l, l]`.
    pub fn forward(&self, ctx: &mut Ctx<'_>, x: &Var, b: usize, l: usize, mask: &Tensor) -> Var {
        self.forward_kv(ctx, x, x, b, l, l, mask)
    }

    /// Cross-attention: queries from `q: [b*lq, d]`, keys/values from
    /// `kv: [b*lk, d]`, mask `[b*h, lq, lk]`.
    #[allow(clippy::too_many_arguments)]
    #[track_caller]
    pub fn forward_kv(
        &self,
        ctx: &mut Ctx<'_>,
        q_in: &Var,
        kv_in: &Var,
        b: usize,
        lq: usize,
        lk: usize,
        mask: &Tensor,
    ) -> Var {
        let _sp = pmm_obs::span("attention");
        let h = self.heads;
        let dh = self.d / h;
        assert_eq!(
            mask.shape(),
            &[b * h, lq, lk],
            "attention: mask shape {:?}, expected [{}, {lq}, {lk}]",
            mask.shape(),
            b * h
        );
        let q = self.wq.forward(ctx, q_in).split_heads(b, lq, h);
        let k = self.wk.forward(ctx, kv_in).split_heads(b, lk, h);
        let v = self.wv.forward(ctx, kv_in).split_heads(b, lk, h);
        let scale = 1.0 / (dh as f32).sqrt();
        let scores = q.bmm_nt(&k).scale(scale);
        let attn = scores.masked_softmax_last(mask);
        let attn = self.attn_dropout.forward(ctx, &attn);
        let out = attn.bmm(&v).merge_heads(b, h);
        self.wo.forward(ctx, &out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mask::attention_mask;
    use rand::SeedableRng;

    fn setup(d: usize, heads: usize) -> (ParamStore, MultiHeadAttention, StdRng) {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let mha = MultiHeadAttention::new(&mut store, "attn", d, heads, 0.0, &mut rng);
        (store, mha, rng)
    }

    #[test]
    fn self_attention_preserves_shape() {
        let (_s, mha, mut rng) = setup(8, 2);
        let mut ctx = Ctx::train(&mut rng);
        let x = Var::constant(Tensor::randn(&[6, 8], 1.0, &mut StdRng::seed_from_u64(1)));
        let mask = attention_mask(2, 2, 3, &[3, 2], true);
        let y = mha.forward(&mut ctx, &x, 2, 3, &mask);
        assert_eq!(y.shape(), &[6, 8]);
        assert!(y.value().all_finite());
    }

    #[test]
    fn causal_mask_blocks_future_information() {
        // Changing a *future* token must not affect an earlier output.
        let (_s, mha, _) = setup(4, 1);
        let mask = attention_mask(1, 1, 3, &[3], true);
        let base = Tensor::randn(&[3, 4], 1.0, &mut StdRng::seed_from_u64(2));
        let mut perturbed = base.clone();
        perturbed.data_mut()[8] += 10.0; // token 2 (future for queries 0/1)

        let mut ctx = Ctx::eval();
        let y0 = mha.forward(&mut ctx, &Var::constant(base), 1, 3, &mask);
        let mut ctx2 = Ctx::eval();
        let y1 = mha.forward(&mut ctx2, &Var::constant(perturbed), 1, 3, &mask);
        for j in 0..8 {
            assert!(
                (y0.value().data()[j] - y1.value().data()[j]).abs() < 1e-5,
                "position {} leaked future info",
                j / 4
            );
        }
        // The final position must differ.
        assert!((y0.value().data()[8] - y1.value().data()[8]).abs() > 1e-4);
    }

    #[test]
    fn cross_attention_shapes() {
        let (_s, mha, _) = setup(4, 2);
        let mut ctx = Ctx::eval();
        let q = Var::constant(Tensor::randn(&[2, 4], 1.0, &mut StdRng::seed_from_u64(3)));
        let kv = Var::constant(Tensor::randn(&[5, 4], 1.0, &mut StdRng::seed_from_u64(4)));
        let mask = Tensor::ones(&[2, 2, 5]); // b=1, h=2, lq=2, lk=5
        let y = mha.forward_kv(&mut ctx, &q, &kv, 1, 2, 5, &mask);
        assert_eq!(y.shape(), &[2, 4]);
    }

    #[test]
    fn gradients_flow_to_all_projections() {
        let (store, mha, mut rng) = setup(4, 2);
        let mut ctx = Ctx::train(&mut rng);
        let x = Var::constant(Tensor::randn(&[2, 4], 1.0, &mut StdRng::seed_from_u64(5)));
        let mask = attention_mask(1, 2, 2, &[2], false);
        let y = mha.forward(&mut ctx, &x, 1, 2, &mask);
        y.sum_all().backward();
        for name in ["attn.wq.weight", "attn.wk.weight", "attn.wv.weight", "attn.wo.weight"] {
            let p = store.get(name).unwrap();
            assert!(ctx.grad_of(p).is_some(), "{name} missing grad");
        }
    }
}
