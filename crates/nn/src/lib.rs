//! # pmm-nn
//!
//! Neural-network building blocks on top of [`pmm_tensor`]: named
//! parameters, layers (linear, embedding, layer-norm, multi-head
//! attention, Transformer encoders, GRU, dilated causal convolutions),
//! the AdamW optimizer, and a checkpoint codec that supports
//! prefix-filtered loading (the mechanism behind PMMRec's plug-and-play
//! component transfer).
//!
//! ## Training-step protocol
//!
//! Parameters live in a [`ParamStore`]. Each step creates a fresh
//! [`Ctx`], the model's `forward`/`loss` methods intern parameters into
//! graph leaves through it, `loss.backward()` fills the leaf gradients,
//! and [`AdamW::step`] reads them back via the same `Ctx`:
//!
//! ```
//! use pmm_nn::{AdamW, Ctx, Linear, ParamStore};
//! use pmm_tensor::{Tensor, Var};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut store = ParamStore::new();
//! let mut rng = StdRng::seed_from_u64(0);
//! let lin = Linear::new(&mut store, "probe", 4, 1, true, &mut rng);
//! let mut opt = AdamW::new(1e-2, Default::default());
//! for _ in 0..10 {
//!     let mut ctx = Ctx::train(&mut rng);
//!     let x = Var::constant(Tensor::ones(&[2, 4]));
//!     let y = lin.forward(&mut ctx, &x);
//!     let loss = y.mul(&y).mean_all();
//!     loss.backward();
//!     opt.step(&store, &ctx);
//! }
//! ```

mod adamw;
mod attention;
pub mod checkpoint;
mod conv;
mod ctx;
mod embedding;
mod gru;
mod init;
mod layers;
pub mod mask;
mod param;
mod schedule;
mod transformer;

pub use adamw::{AdamW, AdamWConfig};
pub use attention::MultiHeadAttention;
pub use conv::{DilatedCausalConv1d, NextItNetBlock};
pub use ctx::Ctx;
pub use embedding::Embedding;
pub use gru::{Gru, GruCell};
pub use init::{kaiming_normal, normal_init, xavier_uniform};
pub use layers::{Dropout, LayerNorm, Linear};
pub use param::{Param, ParamStore};
pub use schedule::LrSchedule;
pub use transformer::{FeedForward, TransformerBlock, TransformerConfig, TransformerEncoder};
