//! Dilated causal 1-D convolutions (the NextItNet baseline substrate).

use crate::ctx::Ctx;
use crate::layers::{LayerNorm, Linear};
use crate::param::ParamStore;
use pmm_tensor::{Tensor, Var};
use rand::rngs::StdRng;

/// A causal 1-D convolution over per-sequence time axes with dilation.
///
/// Input is a flattened `[b*l, d_in]` token batch in `(b, l)` row order.
/// For each tap `j`, position `t` reads `t - j*dilation` within its own
/// sequence (zero-padded before the sequence start), so information
/// never flows backwards in time or across sequences.
pub struct DilatedCausalConv1d {
    taps: Vec<Linear>,
    bias: crate::param::Param,
    /// Kernel width.
    pub kernel: usize,
    /// Dilation factor.
    pub dilation: usize,
    /// Output dimension.
    pub d_out: usize,
}

impl DilatedCausalConv1d {
    /// Registers `kernel` tap projections under `{name}.tap.{j}` plus a
    /// shared `{name}.bias`.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        d_in: usize,
        d_out: usize,
        kernel: usize,
        dilation: usize,
        rng: &mut StdRng,
    ) -> Self {
        let taps = (0..kernel)
            .map(|j| Linear::new(store, &format!("{name}.tap.{j}"), d_in, d_out, false, rng))
            .collect();
        let bias = store.register(format!("{name}.bias"), Tensor::zeros(&[d_out]));
        DilatedCausalConv1d {
            taps,
            bias,
            kernel,
            dilation,
            d_out,
        }
    }

    /// Applies the convolution to `x: [b*l, d_in]`.
    pub fn forward(&self, ctx: &mut Ctx<'_>, x: &Var, b: usize, l: usize) -> Var {
        // Append one zero row used as the out-of-range source.
        let zero = Var::constant(Tensor::zeros(&[1, self.taps[0].d_in]));
        let x_aug = Var::concat0(&[x.clone(), zero]);
        let zero_row = b * l;
        let mut acc: Option<Var> = None;
        for (j, tap) in self.taps.iter().enumerate() {
            let shift = j * self.dilation;
            let idx: Vec<usize> = (0..b * l)
                .map(|row| {
                    let (bi, t) = (row / l, row % l);
                    if t >= shift {
                        bi * l + (t - shift)
                    } else {
                        zero_row
                    }
                })
                .collect();
            let shifted = x_aug.gather_rows(&idx);
            let term = tap.forward(ctx, &shifted);
            acc = Some(match acc {
                Some(a) => a.add(&term),
                None => term,
            });
        }
        acc.expect("kernel >= 1").add_bias(&ctx.var(&self.bias))
    }
}

/// A NextItNet residual block: `LN -> conv(dil) -> ReLU -> LN ->
/// conv(2*dil) -> ReLU`, plus the identity skip.
pub struct NextItNetBlock {
    ln1: LayerNorm,
    conv1: DilatedCausalConv1d,
    ln2: LayerNorm,
    conv2: DilatedCausalConv1d,
}

impl NextItNetBlock {
    /// Registers the block under `name` with base dilation `dilation`.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        d: usize,
        kernel: usize,
        dilation: usize,
        rng: &mut StdRng,
    ) -> Self {
        NextItNetBlock {
            ln1: LayerNorm::new(store, &format!("{name}.ln1"), d),
            conv1: DilatedCausalConv1d::new(store, &format!("{name}.conv1"), d, d, kernel, dilation, rng),
            ln2: LayerNorm::new(store, &format!("{name}.ln2"), d),
            conv2: DilatedCausalConv1d::new(store, &format!("{name}.conv2"), d, d, kernel, 2 * dilation, rng),
        }
    }

    /// Applies the residual block to `[b*l, d]`.
    pub fn forward(&self, ctx: &mut Ctx<'_>, x: &Var, b: usize, l: usize) -> Var {
        let h = self.ln1.forward(ctx, x);
        let h = self.conv1.forward(ctx, &h, b, l).relu();
        let h = self.ln2.forward(ctx, &h);
        let h = self.conv2.forward(ctx, &h, b, l).relu();
        x.add(&h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn conv_is_causal_within_sequences() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let conv = DilatedCausalConv1d::new(&mut store, "c", 3, 3, 3, 1, &mut rng);
        let base = Tensor::randn(&[4, 3], 1.0, &mut rng); // b=1, l=4
        let mut pert = base.clone();
        pert.data_mut()[9] += 5.0; // t=3
        let mut c0 = Ctx::eval();
        let y0 = conv.forward(&mut c0, &Var::constant(base), 1, 4);
        let mut c1 = Ctx::eval();
        let y1 = conv.forward(&mut c1, &Var::constant(pert), 1, 4);
        for j in 0..9 {
            assert!((y0.value().data()[j] - y1.value().data()[j]).abs() < 1e-6);
        }
        assert!((y0.value().data()[9] - y1.value().data()[9]).abs() > 1e-4);
    }

    #[test]
    fn conv_does_not_leak_across_sequences() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let conv = DilatedCausalConv1d::new(&mut store, "c", 2, 2, 2, 1, &mut rng);
        let base = Tensor::randn(&[4, 2], 1.0, &mut rng); // b=2, l=2
        let mut pert = base.clone();
        pert.data_mut()[0] += 5.0; // sequence 0, t=0
        let mut c0 = Ctx::eval();
        let y0 = conv.forward(&mut c0, &Var::constant(base), 2, 2);
        let mut c1 = Ctx::eval();
        let y1 = conv.forward(&mut c1, &Var::constant(pert), 2, 2);
        // Sequence 1's outputs (rows 2..4) unchanged.
        for j in 4..8 {
            assert!((y0.value().data()[j] - y1.value().data()[j]).abs() < 1e-6);
        }
    }

    #[test]
    fn dilation_widens_receptive_field() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let conv = DilatedCausalConv1d::new(&mut store, "c", 1, 1, 2, 2, &mut rng);
        // kernel 2, dilation 2 -> position t reads {t, t-2}.
        let base = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[4, 1]).unwrap();
        let mut pert = base.clone();
        pert.data_mut()[1] += 10.0; // t=1 should influence t=1 and t=3 only
        let mut c0 = Ctx::eval();
        let y0 = conv.forward(&mut c0, &Var::constant(base), 1, 4);
        let mut c1 = Ctx::eval();
        let y1 = conv.forward(&mut c1, &Var::constant(pert), 1, 4);
        let diff: Vec<bool> = (0..4)
            .map(|t| (y0.value().data()[t] - y1.value().data()[t]).abs() > 1e-6)
            .collect();
        assert_eq!(diff, vec![false, true, false, true]);
    }

    #[test]
    fn residual_block_shape_and_grads() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let block = NextItNetBlock::new(&mut store, "b", 4, 3, 1, &mut rng);
        let mut ctx = Ctx::train(&mut rng);
        let x = Var::constant(Tensor::randn(&[6, 4], 1.0, &mut StdRng::seed_from_u64(1)));
        let y = block.forward(&mut ctx, &x, 2, 3);
        assert_eq!(y.shape(), &[6, 4]);
        y.mul(&y).sum_all().backward();
        for p in store.params() {
            assert!(ctx.grad_of(p).is_some(), "{} missing grad", p.name());
        }
    }
}
