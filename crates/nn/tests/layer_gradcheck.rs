//! Finite-difference gradient checks for whole layers.
//!
//! The op-level checks live in `pmm-tensor`; these validate that layer
//! *compositions* (attention, Transformer block, GRU, dilated conv,
//! layer norm residuals) produce correct gradients for their parameters
//! by perturbing parameter tensors directly.

use pmm_nn::{mask, Ctx, Gru, MultiHeadAttention, NextItNetBlock, ParamStore, TransformerConfig, TransformerEncoder};
use pmm_tensor::{Tensor, Var};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Central-difference check of d(loss)/d(param) for every parameter of
/// a store against autograd, where `loss_fn` rebuilds the forward pass.
fn check_param_grads(
    store: &ParamStore,
    loss_fn: &dyn Fn(&mut Ctx<'_>) -> Var,
    eps: f32,
    tol: f32,
) {
    // Analytic gradients.
    let mut rng = StdRng::seed_from_u64(0);
    let mut ctx = Ctx::train(&mut rng);
    let loss = loss_fn(&mut ctx);
    loss.backward();

    let eval = || {
        let mut ctx = Ctx::eval();
        loss_fn(&mut ctx).value().scalar_value()
    };

    for p in store.params() {
        let g = ctx
            .grad_of(p)
            .unwrap_or_else(|| Tensor::zeros(p.value().shape()));
        // Probe a handful of coordinates per parameter to keep runtime
        // bounded; coordinates are spread deterministically.
        let n = p.numel();
        let probes: Vec<usize> = (0..n.min(4)).map(|i| i * (n / n.min(4)).max(1)).collect();
        for &k in &probes {
            let orig = p.value().data()[k];
            p.update(|t| t.data_mut()[k] = orig + eps);
            let up = eval();
            p.update(|t| t.data_mut()[k] = orig - eps);
            let down = eval();
            p.update(|t| t.data_mut()[k] = orig);
            let numeric = (up - down) / (2.0 * eps);
            let exact = g.data()[k];
            let abs = (numeric - exact).abs();
            let rel = abs / numeric.abs().max(exact.abs()).max(1e-3);
            assert!(
                abs <= tol || rel <= tol,
                "{} coord {k}: analytic {exact} vs numeric {numeric}",
                p.name()
            );
        }
    }
}

#[test]
fn attention_parameter_gradients_match_finite_differences() {
    let mut store = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(1);
    let mha = MultiHeadAttention::new(&mut store, "attn", 8, 2, 0.0, &mut rng);
    let x = Tensor::randn(&[4, 8], 0.5, &mut rng);
    let m = mask::attention_mask(2, 2, 2, &[2, 2], true);
    let loss_fn = move |ctx: &mut Ctx<'_>| {
        let y = mha.forward(ctx, &Var::constant(x.clone()), 2, 2, &m);
        y.mul(&y).sum_all()
    };
    check_param_grads(&store, &loss_fn, 1e-2, 3e-2);
}

#[test]
fn transformer_block_parameter_gradients_match() {
    let mut store = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(2);
    let cfg = TransformerConfig {
        d: 8,
        heads: 2,
        layers: 1,
        ff_mult: 2,
        dropout: 0.0,
        causal: false,
    };
    let enc = TransformerEncoder::new(&mut store, "enc", cfg, &mut rng);
    let x = Tensor::randn(&[4, 8], 0.5, &mut rng);
    let loss_fn = move |ctx: &mut Ctx<'_>| {
        let y = enc.forward(ctx, &Var::constant(x.clone()), 2, 2, &[2, 2]);
        y.mul(&y).mean_all()
    };
    check_param_grads(&store, &loss_fn, 1e-2, 5e-2);
}

#[test]
fn gru_parameter_gradients_match() {
    let mut store = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(3);
    let gru = Gru::new(&mut store, "g", 4, 4, &mut rng);
    let x = Tensor::randn(&[6, 4], 0.5, &mut rng);
    let loss_fn = move |ctx: &mut Ctx<'_>| {
        let y = gru.forward(ctx, &Var::constant(x.clone()), 2, 3);
        y.mul(&y).mean_all()
    };
    check_param_grads(&store, &loss_fn, 1e-2, 5e-2);
}

#[test]
fn nextitnet_block_parameter_gradients_match() {
    let mut store = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(4);
    let block = NextItNetBlock::new(&mut store, "b", 4, 2, 1, &mut rng);
    let x = Tensor::randn(&[4, 4], 0.5, &mut rng);
    let loss_fn = move |ctx: &mut Ctx<'_>| {
        let y = block.forward(ctx, &Var::constant(x.clone()), 1, 4);
        y.mul(&y).mean_all()
    };
    check_param_grads(&store, &loss_fn, 1e-2, 5e-2);
}
