//! `pmm-par` — a scoped-thread chunked parallel runtime.
//!
//! Std-only data parallelism for the raw `&[f32]`/`&mut [f32]` kernels
//! underneath the autograd layer. The autograd `Var` graph is `Rc`-based
//! and must stay on one thread; everything this crate runs is strictly
//! below it, on plain slices, so no `Send`/`Sync` wrapper types are
//! needed anywhere else in the workspace.
//!
//! Two primitives, both built on [`std::thread::scope`] over disjoint
//! `chunks_mut`/`chunks` partitions:
//!
//! - [`for_each_row_chunk`]: partitions a mutable output buffer into
//!   contiguous row blocks and runs one worker per block.
//! - [`map_chunks`]: partitions a shared input slice and collects one
//!   result per block, in block order.
//!
//! **Determinism.** Work is partitioned by *output row*: every output
//! element is written by exactly one worker running the same inner-loop
//! code in the same order as the sequential fallback. No reductions
//! cross a chunk boundary, so results are bit-identical to sequential
//! execution at every thread count.
//!
//! **Thread count.** Resolved per dispatch as: programmatic override
//! ([`set_threads`], used by the bench `--threads` flag) > the
//! `PMM_THREADS` environment variable > [`hardware_threads`]. A
//! dispatch falls back to a plain sequential call when the resolved
//! count is 1, when the problem is below the caller's per-worker
//! minimum, or when it is already running on a pool worker (nested
//! dispatch). Threads are spawned per call — there is no pool to keep
//! warm — so callers gate dispatch on a work threshold that amortises
//! the ~tens-of-microseconds spawn cost.
//!
//! **Observability.** Worker wall-clock is folded into the *owning*
//! thread's span path as a `par_workers` child (span stacks are
//! thread-local; a worker's own spans inherit the owner's path as a
//! base), and every dispatched block bumps the `par_tasks` counter.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Hard ceiling on the resolved thread count; a safety net against
/// absurd `PMM_THREADS` values, not a tuning knob.
const MAX_THREADS: usize = 64;

/// Programmatic override; 0 means "unset, fall back to env/hardware".
static OVERRIDE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Set while a pool worker runs its closure, so nested dispatch
    /// degrades to sequential instead of spawning threads from threads.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

fn env_threads() -> usize {
    static ENV: OnceLock<usize> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("PMM_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or(0)
    })
}

/// Hardware threads visible to this process (1 when unknown).
pub fn hardware_threads() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// The thread count dispatches resolve right now:
/// [`set_threads`] override > `PMM_THREADS` > [`hardware_threads`].
pub fn threads() -> usize {
    let o = OVERRIDE.load(Ordering::Relaxed);
    if o > 0 {
        return o.min(MAX_THREADS);
    }
    let e = env_threads();
    if e > 0 {
        return e.min(MAX_THREADS);
    }
    hardware_threads().min(MAX_THREADS)
}

/// Installs (`Some(n)`) or clears (`None`) the programmatic thread
/// count override. `Some(0)` is treated as `None`.
pub fn set_threads(n: Option<usize>) {
    OVERRIDE.store(n.unwrap_or(0), Ordering::Relaxed);
}

/// Number of worker blocks a dispatch over `units` units of work would
/// use, giving each worker at least `min_per_worker` units. Returns 1
/// (sequential) on pool workers and when threading is off. Exposed so
/// callers with layered parallelism (e.g. batched matmul: batch blocks
/// outside, row blocks inside) can pick the profitable layer.
pub fn plan_workers(units: usize, min_per_worker: usize) -> usize {
    if IN_WORKER.with(Cell::get) {
        return 1;
    }
    let t = threads();
    if t <= 1 || units <= min_per_worker.max(1) {
        return 1;
    }
    t.min(units / min_per_worker.max(1)).max(1)
}

/// Fold a finished dispatch into telemetry: one `par_workers` child
/// span under the owning thread's current path, plus the `par_tasks`
/// counter. No-op while collection is disabled.
fn fold_into_obs(tasks: u64, worker_ns: u64) {
    pmm_obs::counter::PAR_TASKS.add(tasks);
    pmm_obs::span::record_ns("par_workers", tasks, worker_ns);
}

/// Runs `f(row_offset, rows)` over disjoint contiguous row blocks of
/// `out` (`row_len` elements per row), in parallel when profitable.
///
/// `f` is called with the index of its first row and the mutable block
/// holding `rows` complete rows; blocks cover `out` exactly, in order.
/// With one worker this is a direct `f(0, out)` call on the current
/// thread; an empty `out` never invokes `f`. `out.len()` must be a
/// multiple of `row_len`.
pub fn for_each_row_chunk<F>(out: &mut [f32], row_len: usize, min_rows_per_worker: usize, f: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    let row_len = row_len.max(1);
    debug_assert_eq!(out.len() % row_len, 0, "for_each_row_chunk: ragged rows");
    let rows = out.len() / row_len;
    if rows == 0 {
        return;
    }
    let workers = plan_workers(rows, min_rows_per_worker);
    if workers <= 1 {
        f(0, out);
        return;
    }
    // Offset arithmetic invariant (pinned by `offsets_are_prefix_sums_
    // of_block_lengths`): `chunks_mut(k)` yields equal-size chunks
    // except possibly the last, so block `ci` starts exactly at row
    // `ci * chunk_rows`. A balanced partition (sizes differing by one)
    // would silently break every `ci * chunk_rows` below.
    let chunk_rows = rows.div_ceil(workers);
    let base = pmm_obs::span::current_path();
    let mut worker_ns = 0u64;
    let mut tasks = 0u64;
    std::thread::scope(|s| {
        let handles: Vec<_> = out
            .chunks_mut(chunk_rows * row_len)
            .enumerate()
            .map(|(ci, block)| {
                let f = &f;
                let base = base.clone();
                s.spawn(move || {
                    pmm_obs::span::set_base_path(base);
                    IN_WORKER.with(|w| w.set(true));
                    let t0 = Instant::now();
                    f(ci * chunk_rows, block);
                    t0.elapsed().as_nanos() as u64
                })
            })
            .collect();
        for h in handles {
            worker_ns += h.join().expect("pmm-par worker panicked");
            tasks += 1;
        }
    });
    fold_into_obs(tasks, worker_ns);
}

/// Two-buffer variant of [`for_each_row_chunk`]: partitions `out_a`
/// (`row_len_a` per row) and `out_b` (`row_len_b` per row) at the same
/// row boundaries and hands each worker the paired blocks. Used by
/// kernels that produce an output row plus per-row auxiliaries (e.g.
/// layer norm's normalised row and its cached statistics) in one pass.
/// Both buffers must describe the same number of rows.
pub fn for_each_row_chunk2<F>(
    out_a: &mut [f32],
    row_len_a: usize,
    out_b: &mut [f32],
    row_len_b: usize,
    min_rows_per_worker: usize,
    f: F,
) where
    F: Fn(usize, &mut [f32], &mut [f32]) + Sync,
{
    let (la, lb) = (row_len_a.max(1), row_len_b.max(1));
    debug_assert_eq!(out_a.len() % la, 0, "for_each_row_chunk2: ragged rows in a");
    let rows = out_a.len() / la;
    debug_assert_eq!(out_b.len(), rows * lb, "for_each_row_chunk2: row count mismatch");
    if rows == 0 {
        return;
    }
    let workers = plan_workers(rows, min_rows_per_worker);
    if workers <= 1 {
        f(0, out_a, out_b);
        return;
    }
    let chunk_rows = rows.div_ceil(workers);
    let base = pmm_obs::span::current_path();
    let mut worker_ns = 0u64;
    let mut tasks = 0u64;
    std::thread::scope(|s| {
        let handles: Vec<_> = out_a
            .chunks_mut(chunk_rows * la)
            .zip(out_b.chunks_mut(chunk_rows * lb))
            .enumerate()
            .map(|(ci, (block_a, block_b))| {
                let f = &f;
                let base = base.clone();
                s.spawn(move || {
                    pmm_obs::span::set_base_path(base);
                    IN_WORKER.with(|w| w.set(true));
                    let t0 = Instant::now();
                    f(ci * chunk_rows, block_a, block_b);
                    t0.elapsed().as_nanos() as u64
                })
            })
            .collect();
        for h in handles {
            worker_ns += h.join().expect("pmm-par worker panicked");
            tasks += 1;
        }
    });
    fold_into_obs(tasks, worker_ns);
}

/// Maps disjoint contiguous blocks of `items` (at least
/// `min_per_worker` items each) through `f(offset, block)`, returning
/// the per-block results in block order. With one worker this is a
/// direct `vec![f(0, items)]` call on the current thread; callers must
/// therefore be insensitive to the *number* of blocks (e.g. merge
/// per-block top-k candidate sets).
pub fn map_chunks<T, R, F>(items: &[T], min_per_worker: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> R + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let workers = plan_workers(items.len(), min_per_worker);
    if workers <= 1 {
        return vec![f(0, items)];
    }
    let chunk = items.len().div_ceil(workers);
    let base = pmm_obs::span::current_path();
    let mut worker_ns = 0u64;
    let mut out = Vec::with_capacity(workers);
    std::thread::scope(|s| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .enumerate()
            .map(|(ci, block)| {
                let f = &f;
                let base = base.clone();
                s.spawn(move || {
                    pmm_obs::span::set_base_path(base);
                    IN_WORKER.with(|w| w.set(true));
                    let t0 = Instant::now();
                    let r = f(ci * chunk, block);
                    (r, t0.elapsed().as_nanos() as u64)
                })
            })
            .collect();
        for h in handles {
            let (r, ns) = h.join().expect("pmm-par worker panicked");
            out.push(r);
            worker_ns += ns;
        }
    });
    fold_into_obs(out.len() as u64, worker_ns);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex, MutexGuard, OnceLock};

    /// `OVERRIDE` is process-global; tests touching it serialise here.
    fn lock() -> MutexGuard<'static, ()> {
        static GUARD: OnceLock<Mutex<()>> = OnceLock::new();
        GUARD
            .get_or_init(|| Mutex::new(()))
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn override_beats_env_and_hardware() {
        let _g = lock();
        set_threads(Some(3));
        assert_eq!(threads(), 3);
        set_threads(Some(0)); // treated as unset
        assert!(threads() >= 1);
        set_threads(None);
        assert!(threads() >= 1);
    }

    #[test]
    fn plan_respects_min_per_worker() {
        let _g = lock();
        set_threads(Some(8));
        assert_eq!(plan_workers(4, 4), 1, "work for one worker stays sequential");
        assert_eq!(plan_workers(16, 4), 4);
        assert_eq!(plan_workers(1000, 1), 8);
        assert_eq!(plan_workers(0, 1), 1);
        set_threads(None);
    }

    #[test]
    fn row_chunks_cover_exactly_and_match_sequential() {
        let _g = lock();
        for &t in &[1usize, 2, 4, 7] {
            set_threads(Some(t));
            // 13 rows of 3 do not divide evenly by any of these counts.
            let mut out = vec![0.0f32; 13 * 3];
            for_each_row_chunk(&mut out, 3, 1, |row0, rows| {
                for (ri, row) in rows.chunks_mut(3).enumerate() {
                    let r = row0 + ri;
                    for (j, v) in row.iter_mut().enumerate() {
                        *v = (r * 3 + j) as f32;
                    }
                }
            });
            let want: Vec<f32> = (0..39).map(|i| i as f32).collect();
            assert_eq!(out, want, "threads={t}");
        }
        set_threads(None);
    }

    #[test]
    fn map_chunks_returns_blocks_in_order() {
        let _g = lock();
        let items: Vec<usize> = (0..29).collect();
        for &t in &[1usize, 2, 5] {
            set_threads(Some(t));
            let parts = map_chunks(&items, 1, |off, block| (off, block.to_vec()));
            // Blocks are in order and reassemble the input exactly.
            let mut flat = Vec::new();
            let mut expect_off = 0;
            for (off, block) in parts {
                assert_eq!(off, expect_off);
                expect_off += block.len();
                flat.extend(block);
            }
            assert_eq!(flat, items, "threads={t}");
        }
        set_threads(None);
    }

    #[test]
    fn paired_buffers_split_at_the_same_rows() {
        let _g = lock();
        for &t in &[1usize, 3, 7] {
            set_threads(Some(t));
            let mut a = vec![0.0f32; 11 * 2];
            let mut b = vec![0.0f32; 11];
            for_each_row_chunk2(&mut a, 2, &mut b, 1, 1, |r0, ba, bb| {
                for (ri, (arow, bv)) in ba.chunks_mut(2).zip(bb.iter_mut()).enumerate() {
                    let r = r0 + ri;
                    arow[0] = r as f32;
                    arow[1] = (r * 2) as f32;
                    *bv = (r * 3) as f32;
                }
            });
            for r in 0..11 {
                assert_eq!(a[r * 2], r as f32, "threads={t}");
                assert_eq!(a[r * 2 + 1], (r * 2) as f32, "threads={t}");
                assert_eq!(b[r], (r * 3) as f32, "threads={t}");
            }
        }
        set_threads(None);
    }

    #[test]
    fn nested_dispatch_degrades_to_sequential() {
        let _g = lock();
        set_threads(Some(4));
        let mut out = vec![0.0f32; 64];
        for_each_row_chunk(&mut out, 1, 1, |off, chunk| {
            // Inside a worker: planning must refuse to spawn again.
            assert_eq!(plan_workers(1000, 1), 1);
            for (i, v) in chunk.iter_mut().enumerate() {
                *v = (off + i) as f32;
            }
        });
        assert_eq!(out[63], 63.0);
        set_threads(None);
    }

    #[test]
    fn offsets_are_prefix_sums_of_block_lengths() {
        let _g = lock();
        // The `ci * chunk_rows` offset passed to each worker is only
        // correct while `chunks_mut` hands out equal-size blocks with
        // the remainder in the last one. Record what the workers were
        // actually told and check it against the block lengths, across
        // divisible (12 rows / 4) and ragged (13 rows / 4) partitions
        // and all three primitives.
        for &(rows, t) in &[(12usize, 4usize), (13, 4), (13, 2), (5, 8)] {
            set_threads(Some(t));
            let row_len = 3;

            let seen = Mutex::new(Vec::new());
            let mut out = vec![0.0f32; rows * row_len];
            for_each_row_chunk(&mut out, row_len, 1, |row0, block| {
                seen.lock().unwrap().push((row0, block.len() / row_len));
            });
            let mut blocks = seen.into_inner().unwrap();
            blocks.sort_unstable();
            let mut next = 0;
            for &(row0, nrows) in &blocks {
                assert_eq!(row0, next, "rows={rows} threads={t}: offset must be the prefix sum");
                next += nrows;
            }
            assert_eq!(next, rows, "rows={rows} threads={t}: blocks must cover exactly");

            let seen2 = Mutex::new(Vec::new());
            let mut a = vec![0.0f32; rows * row_len];
            let mut b = vec![0.0f32; rows];
            for_each_row_chunk2(&mut a, row_len, &mut b, 1, 1, |row0, ba, bb| {
                assert_eq!(ba.len() / row_len, bb.len(), "paired blocks split at the same rows");
                seen2.lock().unwrap().push((row0, bb.len()));
            });
            let mut blocks2 = seen2.into_inner().unwrap();
            blocks2.sort_unstable();
            assert_eq!(blocks, blocks2, "both row primitives partition identically");

            let items: Vec<usize> = (0..rows).collect();
            let parts = map_chunks(&items, 1, |off, block| (off, block.len()));
            let mut next = 0;
            for (off, len) in parts {
                assert_eq!(off, next, "rows={rows} threads={t}: map_chunks offset drifted");
                next += len;
            }
            assert_eq!(next, rows);
        }
        set_threads(None);
    }

    #[test]
    fn empty_input_is_a_noop() {
        let _g = lock();
        let mut out: Vec<f32> = Vec::new();
        for_each_row_chunk(&mut out, 4, 1, |_, _| panic!("no rows, no calls"));
        let mut aux: Vec<f32> = Vec::new();
        for_each_row_chunk2(&mut out, 4, &mut aux, 2, 1, |_, _, _| panic!("no rows, no calls"));
        let r: Vec<usize> = map_chunks::<f32, usize, _>(&[], 1, |_, _| 0);
        assert!(r.is_empty());
    }
}
