//! Criterion micro-benchmarks for the computational kernels behind the
//! experiments: tensor ops, attention, item encoding, fusion, scoring,
//! and the relative cost of the contrastive objectives (an ablation of
//! objective *cost* complementing Table VIII's ablation of objective
//! *value*).

use criterion::{criterion_group, criterion_main, Criterion};
use pmm_data::batch::Batch;
use pmm_data::registry::{build_dataset, DatasetId, Scale};
use pmm_data::split::SplitDataset;
use pmm_data::world::{World, WorldConfig};
use pmm_eval::SeqRecommender;
use pmm_nn::{mask, Ctx, MultiHeadAttention, ParamStore};
use pmm_tensor::{Tensor, Var};
use pmmrec::objectives::{dap_masks, nicl_masks, BatchIndex};
use pmmrec::{NiclVariant, PmmRec, PmmRecConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_tensor_kernels(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0);
    let a = Tensor::randn(&[64, 64], 1.0, &mut rng);
    let b = Tensor::randn(&[64, 64], 1.0, &mut rng);
    c.bench_function("tensor/matmul_64x64", |bench| {
        bench.iter(|| black_box(a.matmul(&b)))
    });
    // Transposed-lhs paths: the kernel packs the transposed operand
    // into a contiguous scratch before multiplying, which roughly
    // halved the tt time versus the old strided walk (see EXPERIMENTS
    // "Transposed-operand packing" for the before/after numbers).
    let at = a.transpose2();
    let bt = b.transpose2();
    c.bench_function("tensor/matmul_tn_64x64", |bench| {
        bench.iter(|| black_box(at.matmul_t(&b, true, false)))
    });
    c.bench_function("tensor/matmul_tt_64x64", |bench| {
        bench.iter(|| black_box(at.matmul_t(&bt, true, true)))
    });
    let x = Tensor::randn(&[256, 64], 1.0, &mut rng);
    c.bench_function("tensor/softmax_256x64", |bench| {
        bench.iter(|| black_box(x.softmax_last()))
    });
    c.bench_function("tensor/matmul_backward", |bench| {
        bench.iter(|| {
            let va = Var::leaf(a.clone());
            let vb = Var::leaf(b.clone());
            let loss = va.matmul(&vb).sum_all();
            loss.backward();
            black_box(va.grad())
        })
    });
}

/// Telemetry overhead: the same matmul with observability disabled
/// (the default — spans and counters reduce to one relaxed atomic
/// load) versus enabled (span timing + FLOP accounting). The raw
/// `Tensor` kernel isolates the counter gate; the `Var` graph op adds
/// the span around it.
fn bench_obs_overhead(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0);
    let a = Tensor::randn(&[64, 64], 1.0, &mut rng);
    let b = Tensor::randn(&[64, 64], 1.0, &mut rng);

    pmm_obs::set_enabled(false);
    c.bench_function("obs/matmul_64x64_telemetry_off", |bench| {
        bench.iter(|| black_box(a.matmul(&b)))
    });
    c.bench_function("obs/var_matmul_64x64_telemetry_off", |bench| {
        bench.iter(|| {
            let va = Var::constant(a.clone());
            let vb = Var::constant(b.clone());
            black_box(va.matmul(&vb).value().clone())
        })
    });

    pmm_obs::set_enabled(true);
    c.bench_function("obs/matmul_64x64_telemetry_on", |bench| {
        bench.iter(|| black_box(a.matmul(&b)))
    });
    c.bench_function("obs/var_matmul_64x64_telemetry_on", |bench| {
        bench.iter(|| {
            let va = Var::constant(a.clone());
            let vb = Var::constant(b.clone());
            black_box(va.matmul(&vb).value().clone())
        })
    });
    pmm_obs::set_enabled(false);
    pmm_obs::reset();
}

fn bench_attention(c: &mut Criterion) {
    let mut store = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(0);
    let mha = MultiHeadAttention::new(&mut store, "attn", 32, 4, 0.0, &mut rng);
    let x = Tensor::randn(&[16 * 12, 32], 1.0, &mut rng);
    let m = mask::attention_mask(16, 4, 12, &[12; 16], true);
    c.bench_function("nn/attention_fwd_b16_l12_d32", |bench| {
        bench.iter(|| {
            let mut ctx = Ctx::eval();
            black_box(mha.forward(&mut ctx, &Var::constant(x.clone()), 16, 12, &m))
        })
    });
}

fn model_fixture() -> (SplitDataset, PmmRec) {
    let world = World::new(WorldConfig::default());
    let split = SplitDataset::new(build_dataset(&world, DatasetId::HmClothes, Scale::Tiny, 42));
    let mut rng = StdRng::seed_from_u64(0);
    let model = PmmRec::new(PmmRecConfig::default(), &split.dataset, &mut rng);
    (split, model)
}

fn bench_model(c: &mut Criterion) {
    let (split, mut model) = model_fixture();
    let mut rng = StdRng::seed_from_u64(1);
    c.bench_function("pmmrec/train_epoch_tiny", |bench| {
        bench.iter(|| black_box(model.train_epoch(&split.train, &mut rng)))
    });
    let (split, model) = model_fixture();
    c.bench_function("pmmrec/score_16_cases", |bench| {
        bench.iter(|| black_box(model.score_cases(&split.valid[..16.min(split.valid.len())])))
    });
}

fn bench_objective_masks(c: &mut Criterion) {
    let seqs: Vec<Vec<usize>> = (0..16).map(|u| (0..12).map(|t| (u * 7 + t * 3) % 40).collect()).collect();
    let refs: Vec<&[usize]> = seqs.iter().map(|s| s.as_slice()).collect();
    let batch = Batch::from_sequences(&refs, 12);
    let idx = BatchIndex::new(&batch);
    c.bench_function("objectives/dap_masks_b16", |bench| {
        bench.iter(|| black_box(dap_masks(&batch, &idx)))
    });
    c.bench_function("objectives/nicl_masks_full_b16", |bench| {
        bench.iter(|| black_box(nicl_masks(&batch, &idx, NiclVariant::Full)))
    });
    c.bench_function("objectives/nicl_masks_vcl_b16", |bench| {
        bench.iter(|| black_box(nicl_masks(&batch, &idx, NiclVariant::Vcl)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(std::time::Duration::from_millis(300)).measurement_time(std::time::Duration::from_secs(2));
    targets = bench_tensor_kernels, bench_obs_overhead, bench_attention, bench_model, bench_objective_masks
}
criterion_main!(benches);
