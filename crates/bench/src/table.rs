//! Fixed-width table printing with optional paper-reference columns.

/// A printable experiment table.
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Table {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (cells are padded/truncated to the header count).
    pub fn row(&mut self, cells: &[String]) {
        let mut r: Vec<String> = cells.to_vec();
        r.resize(self.header.len(), String::new());
        self.rows.push(r);
    }

    /// Convenience: row from display-able cells.
    pub fn row_display<T: std::fmt::Display>(&mut self, cells: &[T]) {
        self.row(&cells.iter().map(|c| c.to_string()).collect::<Vec<_>>());
    }

    /// Renders the table to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let hline: String = widths.iter().map(|w| "-".repeat(w + 2)).collect::<Vec<_>>().join("+");
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!(" {c:<w$} "))
                .collect::<Vec<_>>()
                .join("|")
        };
        let mut out = String::new();
        out.push_str(&format!("\n== {} ==\n", self.title));
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&hline);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Prints to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a percentage metric to two decimals.
pub fn pct(v: f32) -> String {
    format!("{v:.2}")
}

/// Formats "measured (paper: X)" comparison cells.
pub fn with_ref(measured: f32, paper: f32) -> String {
    format!("{measured:.2} (paper {paper:.2})")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("demo", &["model", "HR@10"]);
        t.row(&["SASRec".into(), "12.34".into()]);
        t.row(&["PMMRec".into(), "15.06".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("SASRec"));
        let lines: Vec<&str> = s.lines().filter(|l| l.contains('|')).collect();
        // All data lines share the same width.
        let w = lines[0].len();
        assert!(lines.iter().all(|l| l.len() == w), "{s}");
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = Table::new("demo", &["a", "b", "c"]);
        t.row(&["x".into()]);
        assert!(t.render().lines().count() >= 3);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(12.345), "12.35");
        assert_eq!(with_ref(1.0, 2.0), "1.00 (paper 2.00)");
    }
}
