//! Training/evaluation wrappers and pre-training checkpoint caching.

use crate::cli::Cli;
use pmm_data::registry::{self, DatasetId, Scale};
use pmm_data::split::SplitDataset;
use pmm_data::world::{World, WorldConfig};
use pmm_eval::{train_model, SeqRecommender, TrainConfig, TrainResult};
use pmm_obs::obs_info;
use pmmrec::{ObjectiveConfig, PmmRec, PmmRecConfig, TransferSetting};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;

/// The shared world for an experiment seed (world structure is pinned
/// to its own constant so `--seed` varies the *data*, not the physics).
pub fn world() -> World {
    World::new(WorldConfig::default())
}

/// Builds the leave-one-out split of a named dataset.
pub fn split(world: &World, id: DatasetId, cli: &Cli) -> SplitDataset {
    SplitDataset::new(registry::build_dataset(world, id, cli.scale, cli.seed))
}

/// Harness defaults: fewer epochs at tiny scale, early stopping always.
pub fn train_cfg(cli: &Cli) -> TrainConfig {
    TrainConfig {
        max_epochs: cli.epochs.unwrap_or(match cli.scale {
            Scale::Tiny => 6,
            Scale::Paper => 40,
        }),
        patience: 3,
        eval_every: 2,
        log_level: cli.log_level,
        start_epoch: 0,
        guard: pmm_eval::GuardPolicy::default(),
    }
}

/// Trains a model on a split with the harness defaults (the 40-epoch
/// source budget).
pub fn run(model: &mut dyn SeqRecommender, split: &SplitDataset, cli: &Cli) -> TrainResult {
    let mut rng = StdRng::seed_from_u64(cli.seed ^ 0x5EED);
    train_model(model, split, &train_cfg(cli), &mut rng)
}

/// Trains with the shorter *target* budget (downstream datasets are
/// small and converge quickly; fine-tuning even faster).
pub fn run_target(model: &mut dyn SeqRecommender, split: &SplitDataset, cli: &Cli) -> TrainResult {
    let mut cfg = train_cfg(cli);
    cfg.max_epochs = cli.epochs.unwrap_or(match cli.scale {
        Scale::Tiny => 6,
        Scale::Paper => 24,
    });
    let mut rng = StdRng::seed_from_u64(cli.seed ^ 0x5EED);
    train_model(model, split, &cfg, &mut rng)
}

/// The effective pre-training epoch budget for a CLI.
pub fn pretrain_epochs(cli: &Cli) -> usize {
    cli.epochs.unwrap_or(match cli.scale {
        Scale::Tiny => 4,
        Scale::Paper => 24,
    })
}

fn fnv1a(mut h: u64, word: u64) -> u64 {
    for i in 0..8 {
        h ^= (word >> (8 * i)) & 0xff;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// FNV-1a fingerprint of everything (beyond tag/scale/seed) that
/// changes what a pre-training run produces: the objective switches
/// and the epoch budget. Folding it into the checkpoint filename keeps
/// a cached checkpoint from being silently reused after the recipe
/// changed.
pub fn pretrain_fingerprint(obj: &ObjectiveConfig, epochs: usize) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    h = fnv1a(h, obj.nicl as u64);
    h = fnv1a(h, obj.nid as u64);
    h = fnv1a(h, obj.rcl as u64);
    h = fnv1a(h, u64::from(obj.nicl_temperature.to_bits()));
    h = fnv1a(h, u64::from(obj.aux_weight.to_bits()));
    h = fnv1a(h, epochs as u64);
    h
}

/// Location of the cached pre-training checkpoint for a source set and
/// pre-training recipe. Errors carry the directory that could not be
/// created, like every other checkpoint-path failure in this module.
pub fn checkpoint_path(
    tag: &str,
    cli: &Cli,
    obj: &ObjectiveConfig,
    epochs: usize,
) -> Result<PathBuf, String> {
    let dir = std::env::temp_dir().join("pmmrec_checkpoints");
    std::fs::create_dir_all(&dir)
        .map_err(|e| format!("cannot create checkpoint dir {}: {e}", dir.display()))?;
    let scale = match cli.scale {
        Scale::Tiny => "tiny",
        Scale::Paper => "paper",
    };
    let fp = pretrain_fingerprint(obj, epochs);
    Ok(dir.join(format!("pmmrec_{tag}_{scale}_seed{}_{fp:016x}.ckpt", cli.seed)))
}

/// Pre-trains PMMRec on the given source corpus and saves a checkpoint;
/// reuses a cached file when present (delete the file to force a
/// re-run). Returns the checkpoint path, or a contextual error when the
/// checkpoint cannot be written.
pub fn pretrain_cached(
    tag: &str,
    sources: &[DatasetId],
    obj: ObjectiveConfig,
    cli: &Cli,
    world: &World,
) -> Result<PathBuf, String> {
    let epochs = pretrain_epochs(cli);
    let path = checkpoint_path(tag, cli, &obj, epochs)?;
    if path.exists() {
        obs_info!("pretrain", "[{tag}] reusing cached checkpoint {}", path.display());
        pmm_obs::sink::emit_cache(tag, true, &path.display().to_string());
        return Ok(path);
    }
    pmm_obs::sink::emit_cache(tag, false, &path.display().to_string());
    let fused = if sources.len() == 1 {
        registry::build_dataset(world, sources[0], cli.scale, cli.seed)
    } else {
        let parts: Vec<_> = sources
            .iter()
            .map(|&id| registry::build_dataset(world, id, cli.scale, cli.seed))
            .collect();
        pmm_data::dataset::Dataset::fuse("Source", &parts)
    };
    let split = SplitDataset::new(fused);
    let mut rng = StdRng::seed_from_u64(cli.seed ^ 0x9E1A);
    let mut model = PmmRec::with_objectives(PmmRecConfig::default(), obj, &split.dataset, &mut rng);
    model.set_pretraining(true);
    let cfg = TrainConfig {
        max_epochs: epochs,
        patience: 0, // pre-training uses the full budget
        eval_every: 2,
        log_level: cli.log_level,
        start_epoch: 0,
        guard: pmm_eval::GuardPolicy::default(),
    };
    obs_info!("pretrain", "[{tag}] pre-training on {} users…", split.train.len());
    let result = train_model(&mut model, &split, &cfg, &mut rng);
    obs_info!(
        "pretrain",
        "[{tag}] done at epoch {} (valid {})",
        result.best_epoch,
        result.valid
    );
    model
        .save(&path)
        .map_err(|e| format!("[{tag}] cannot save pre-trained checkpoint {}: {e}", path.display()))?;
    Ok(path)
}

/// Builds a PMMRec for a target dataset and loads pre-trained
/// components per the setting; errors carry the checkpoint path and
/// transfer setting for context.
pub fn finetune_model(
    split: &SplitDataset,
    setting: TransferSetting,
    ckpt: &std::path::Path,
    cli: &Cli,
) -> Result<PmmRec, String> {
    let mut rng = StdRng::seed_from_u64(cli.seed ^ 0xF17E);
    let cfg = PmmRecConfig {
        modality: setting.modality(),
        ..PmmRecConfig::default()
    };
    let mut model = PmmRec::new(cfg, &split.dataset, &mut rng);
    let report = model
        .load_transfer(ckpt, setting)
        .map_err(|e| format!("cannot load checkpoint {} for {setting:?}: {e}", ckpt.display()))?;
    if report.loaded.is_empty() {
        return Err(format!("transfer from {} loaded nothing for {setting:?}", ckpt.display()));
    }
    Ok(model)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cli() -> Cli {
        Cli {
            scale: Scale::Tiny,
            seed: 1717,
            epochs: Some(1),
            ..Cli::default()
        }
    }

    #[test]
    fn cache_fingerprint_distinguishes_recipes() {
        let cli = tiny_cli();
        let full = ObjectiveConfig::default();
        let ablated = ObjectiveConfig { nid: false, ..Default::default() };
        let e = pretrain_epochs(&cli);
        // Same recipe -> same file; any recipe change -> a fresh file.
        assert_eq!(checkpoint_path("t", &cli, &full, e).unwrap(), checkpoint_path("t", &cli, &full, e).unwrap());
        assert_ne!(checkpoint_path("t", &cli, &full, e).unwrap(), checkpoint_path("t", &cli, &ablated, e).unwrap());
        assert_ne!(checkpoint_path("t", &cli, &full, e).unwrap(), checkpoint_path("t", &cli, &full, e + 1).unwrap());
    }

    #[test]
    fn pretrain_cache_roundtrip() -> Result<(), String> {
        let cli = tiny_cli();
        let w = world();
        let path = checkpoint_path("test_cache", &cli, &ObjectiveConfig::default(), pretrain_epochs(&cli))?;
        std::fs::remove_file(&path).ok();
        let p1 = pretrain_cached("test_cache", &[DatasetId::Amazon], ObjectiveConfig::default(), &cli, &w)?;
        assert!(p1.exists());
        // Second call reuses the file (fast path).
        let p2 = pretrain_cached("test_cache", &[DatasetId::Amazon], ObjectiveConfig::default(), &cli, &w)?;
        assert_eq!(p1, p2);
        std::fs::remove_file(&p1).ok();
        Ok(())
    }

    #[test]
    fn finetune_model_loads_components() -> Result<(), String> {
        let cli = tiny_cli();
        let w = world();
        let path = checkpoint_path("test_ft", &cli, &ObjectiveConfig::default(), pretrain_epochs(&cli))?;
        std::fs::remove_file(&path).ok();
        let ckpt = pretrain_cached("test_ft", &[DatasetId::Hm], ObjectiveConfig::default(), &cli, &w)?;
        let target = split(&w, DatasetId::HmClothes, &cli);
        for setting in TransferSetting::ALL {
            let model = finetune_model(&target, setting, &ckpt, &cli)?;
            assert_eq!(model.n_items(), target.n_items(), "{setting:?}");
        }
        std::fs::remove_file(ckpt).ok();
        Ok(())
    }

    #[test]
    fn finetune_errors_carry_checkpoint_context() {
        let cli = tiny_cli();
        let w = world();
        let target = split(&w, DatasetId::HmClothes, &cli);
        let err = match finetune_model(
            &target,
            TransferSetting::Full,
            std::path::Path::new("/nonexistent/missing.ckpt"),
            &cli,
        ) {
            Ok(_) => panic!("finetune from a missing checkpoint must fail"),
            Err(e) => e,
        };
        assert!(err.contains("/nonexistent/missing.ckpt"), "{err}");
        assert!(err.contains("Full"), "{err}");
    }
}
