//! # pmm-bench
//!
//! The experiment harness that regenerates every table and figure of
//! the PMMRec paper (see DESIGN.md §5 for the experiment index).
//!
//! Each table is a binary (`cargo run --release -p pmm-bench --bin
//! table3_source_performance -- --scale paper --seed 42`); shared
//! plumbing lives here:
//!
//! * [`cli::Cli`] — a tiny flag parser (`--scale`, `--seed`,
//!   `--epochs`, `--log-level`, `--obs`) shared by all binaries.
//! * [`models::ModelKind`] — uniform construction of PMMRec and all
//!   eight baselines.
//! * [`runner`] — train/evaluate wrappers and pre-training checkpoint
//!   caching (pre-train once on the fused sources, reuse across
//!   binaries).
//! * [`table`] — fixed-width table printing with paper-reference
//!   columns.
//! * [`obs`] — telemetry setup (`--obs` / `PMM_OBS`) plus the end-of-
//!   run profile table and `BENCH_obs.json` summary.

pub mod cli;
pub mod models;
pub mod obs;
pub mod runner;
pub mod table;
