//! Uniform model construction for the experiment binaries.

use pmm_baselines::{carca, common::BaselineConfig, fdsa, gru_rec, morec, nextitnet, sasrec, unisrec, vqrec};
use pmm_data::dataset::Dataset;
use pmm_eval::SeqRecommender;
use pmmrec::{PmmRec, PmmRecConfig};
use rand::rngs::StdRng;

/// Every method compared in the paper's tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelKind {
    /// GRU4Rec (IDSR).
    GruRec,
    /// NextItNet (IDSR).
    NextItNet,
    /// SASRec (IDSR).
    SasRec,
    /// FDSA (IDSR + side features).
    Fdsa,
    /// CARCA++ (IDSR + multi-modal side features).
    CarcaPP,
    /// UniSRec (transferable, text-only, frozen embeddings).
    UniSRec,
    /// VQRec (transferable, quantised text codes).
    VqRec,
    /// MoRec++ (transferable, multi-modal, no alignment objectives).
    MoRecPP,
    /// PMMRec (ours).
    PmmRec,
}

impl ModelKind {
    /// Table III's nine methods, in column order.
    pub const TABLE3: [ModelKind; 9] = [
        ModelKind::GruRec,
        ModelKind::NextItNet,
        ModelKind::SasRec,
        ModelKind::Fdsa,
        ModelKind::CarcaPP,
        ModelKind::UniSRec,
        ModelKind::VqRec,
        ModelKind::MoRecPP,
        ModelKind::PmmRec,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            ModelKind::GruRec => "GRURec",
            ModelKind::NextItNet => "NextItNet",
            ModelKind::SasRec => "SASRec",
            ModelKind::Fdsa => "FDSA",
            ModelKind::CarcaPP => "CARCA++",
            ModelKind::UniSRec => "UniSRec",
            ModelKind::VqRec => "VQRec",
            ModelKind::MoRecPP => "MoRec++",
            ModelKind::PmmRec => "PMMRec",
        }
    }

    /// Builds a fresh model of this kind over `dataset`.
    pub fn build(self, dataset: &Dataset, rng: &mut StdRng) -> Box<dyn SeqRecommender> {
        let cfg = BaselineConfig::default();
        match self {
            ModelKind::GruRec => Box::new(gru_rec::build(cfg, dataset, rng)),
            ModelKind::NextItNet => Box::new(nextitnet::build(cfg, dataset, rng)),
            ModelKind::SasRec => Box::new(sasrec::build(cfg, dataset, rng)),
            ModelKind::Fdsa => Box::new(fdsa::build(cfg, dataset, rng)),
            ModelKind::CarcaPP => Box::new(carca::build(cfg, dataset, rng)),
            ModelKind::UniSRec => Box::new(unisrec::build(cfg, dataset, rng)),
            ModelKind::VqRec => Box::new(vqrec::build(cfg, dataset, rng)),
            ModelKind::MoRecPP => Box::new(morec::build(cfg, dataset, rng)),
            ModelKind::PmmRec => {
                // Training PMMRec "on a dataset" means its full Eq. 12
                // multi-task objective (fine-tuning after transfer is
                // the only DAP-only mode, per Section III-E2).
                let mut model = PmmRec::new(PmmRecConfig::default(), dataset, rng);
                model.set_pretraining(true);
                Box::new(model)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmm_data::registry::{build_dataset, DatasetId, Scale};
    use pmm_data::world::{World, WorldConfig};
    use rand::SeedableRng;

    #[test]
    fn every_kind_builds() {
        let world = World::new(WorldConfig::default());
        let ds = build_dataset(&world, DatasetId::HmClothes, Scale::Tiny, 42);
        let mut rng = StdRng::seed_from_u64(0);
        for kind in ModelKind::TABLE3 {
            let model = kind.build(&ds, &mut rng);
            assert_eq!(model.n_items(), ds.items.len(), "{}", kind.name());
            assert_eq!(model.name(), kind.name());
        }
    }
}
