//! Minimal command-line parsing shared by the experiment binaries.

use pmm_data::registry::Scale;
use pmm_obs::Level;

/// Common experiment flags.
#[derive(Debug, Clone)]
pub struct Cli {
    /// Dataset scale (`--scale tiny|paper`, default `paper`).
    pub scale: Scale,
    /// Experiment seed (`--seed N`, default 42).
    pub seed: u64,
    /// Maximum training epochs (`--epochs N`; harness defaults vary by
    /// binary when absent).
    pub epochs: Option<usize>,
    /// Harness verbosity (`--log-level error|warn|info|debug|trace`,
    /// default `warn`; `--verbose` is an alias for `--log-level info`).
    pub log_level: Level,
    /// JSONL telemetry sink path (`--obs PATH`; the `PMM_OBS`
    /// environment variable is honoured when the flag is absent).
    pub obs: Option<String>,
    /// Deterministic fault-injection plan (`--fault-plan SPEC`, e.g.
    /// `nan@3,ckpt@0,io@1`; see `pmm_fault::FaultPlan::parse`). Absent
    /// means no faults are injected.
    pub fault_plan: Option<String>,
    /// Worker threads for the pmm-par kernel runtime (`--threads N`).
    /// Absent defers to `PMM_THREADS` or the hardware count; results
    /// are bit-identical at every setting.
    pub threads: Option<usize>,
    /// Run the pre-backward autograd-graph audit on every training
    /// step even in release builds (`--audit-graph`). Debug builds
    /// always audit; `PMM_AUDIT_GRAPH=1` is the env equivalent.
    pub audit_graph: bool,
    /// Prometheus-style metrics exposition output path
    /// (`--metrics PATH`; the `PMM_METRICS` environment variable is
    /// honoured when the flag is absent). Written at run end.
    pub metrics: Option<String>,
    /// Exit non-zero when the run's metrics window breaches the SLO
    /// policy (`--slo-gate`) — the CI switch for serving binaries.
    pub slo_gate: bool,
    /// Trigger a snapshot hot-swap after the N-th submission
    /// (`--swap-at N`; `serve_load` only). Absent means no mid-run
    /// swap unless the scenario defaults one in.
    pub swap_at: Option<u64>,
}

impl Default for Cli {
    fn default() -> Self {
        Cli {
            scale: Scale::Paper,
            seed: 42,
            epochs: None,
            log_level: Level::Warn,
            obs: None,
            fault_plan: None,
            threads: None,
            audit_graph: false,
            metrics: None,
            slo_gate: false,
            swap_at: None,
        }
    }
}

impl Cli {
    /// Parses `std::env::args`, panicking with usage on bad input.
    pub fn from_env() -> Cli {
        Cli::parse(std::env::args().skip(1))
    }

    /// Parses an explicit token stream (testable).
    pub fn parse(args: impl IntoIterator<Item = String>) -> Cli {
        let mut cli = Cli::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--scale" => {
                    let v = it.next().expect("--scale needs a value");
                    cli.scale = match v.as_str() {
                        "tiny" => Scale::Tiny,
                        "paper" => Scale::Paper,
                        other => panic!("unknown scale {other:?} (use tiny|paper)"),
                    };
                }
                "--seed" => {
                    cli.seed = it
                        .next()
                        .expect("--seed needs a value")
                        .parse()
                        .expect("--seed must be an integer");
                }
                "--epochs" => {
                    cli.epochs = Some(
                        it.next()
                            .expect("--epochs needs a value")
                            .parse()
                            .expect("--epochs must be an integer"),
                    );
                }
                "--log-level" => {
                    let v = it.next().expect("--log-level needs a value");
                    cli.log_level = Level::parse(&v)
                        .unwrap_or_else(|| panic!("unknown log level {v:?} (use error|warn|info|debug|trace)"));
                }
                "--verbose" => cli.log_level = Level::Info,
                "--obs" => cli.obs = Some(it.next().expect("--obs needs a path")),
                "--fault-plan" => {
                    let spec = it.next().expect("--fault-plan needs a spec");
                    // Fail fast on a bad spec, at parse time not mid-run.
                    if let Err(e) = pmm_fault::FaultPlan::parse(&spec) {
                        panic!("invalid --fault-plan {spec:?}: {e}");
                    }
                    cli.fault_plan = Some(spec);
                }
                "--threads" => {
                    let n: usize = it
                        .next()
                        .expect("--threads needs a value")
                        .parse()
                        .expect("--threads must be an integer");
                    assert!(n >= 1, "--threads must be at least 1");
                    cli.threads = Some(n);
                }
                "--audit-graph" => cli.audit_graph = true,
                "--metrics" => cli.metrics = Some(it.next().expect("--metrics needs a path")),
                "--slo-gate" => cli.slo_gate = true,
                "--swap-at" => {
                    cli.swap_at = Some(
                        it.next()
                            .expect("--swap-at needs a value")
                            .parse()
                            .expect("--swap-at must be an integer"),
                    );
                }
                other => panic!(
                    "unknown flag {other:?} (flags: --scale --seed --epochs --log-level --verbose --obs --fault-plan --threads --audit-graph --metrics --slo-gate --swap-at)"
                ),
            }
        }
        cli
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &[&str]) -> Cli {
        Cli::parse(s.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_are_paper_scale_seed_42() {
        let cli = parse(&[]);
        assert_eq!(cli.scale, Scale::Paper);
        assert_eq!(cli.seed, 42);
        assert!(cli.epochs.is_none());
        assert_eq!(cli.log_level, Level::Warn);
        assert!(cli.obs.is_none());
    }

    #[test]
    fn parses_all_flags() {
        let cli = parse(&[
            "--scale", "tiny", "--seed", "7", "--epochs", "3", "--log-level", "debug", "--obs",
            "/tmp/t.jsonl",
        ]);
        assert_eq!(cli.scale, Scale::Tiny);
        assert_eq!(cli.seed, 7);
        assert_eq!(cli.epochs, Some(3));
        assert_eq!(cli.log_level, Level::Debug);
        assert_eq!(cli.obs.as_deref(), Some("/tmp/t.jsonl"));
    }

    #[test]
    fn parses_fault_plan() {
        let cli = parse(&["--fault-plan", "nan@2,ckpt@0,io@1"]);
        assert_eq!(cli.fault_plan.as_deref(), Some("nan@2,ckpt@0,io@1"));
        assert!(parse(&[]).fault_plan.is_none());
    }

    #[test]
    #[should_panic(expected = "invalid --fault-plan")]
    fn rejects_malformed_fault_plan() {
        parse(&["--fault-plan", "nan@x"]);
    }

    #[test]
    fn parses_threads() {
        assert_eq!(parse(&["--threads", "4"]).threads, Some(4));
        assert!(parse(&[]).threads.is_none());
    }

    #[test]
    #[should_panic(expected = "--threads must be at least 1")]
    fn rejects_zero_threads() {
        parse(&["--threads", "0"]);
    }

    #[test]
    fn parses_audit_graph() {
        assert!(parse(&["--audit-graph"]).audit_graph);
        assert!(!parse(&[]).audit_graph);
    }

    #[test]
    fn parses_metrics_and_slo_gate() {
        let cli = parse(&["--metrics", "BENCH_metrics.prom", "--slo-gate"]);
        assert_eq!(cli.metrics.as_deref(), Some("BENCH_metrics.prom"));
        assert!(cli.slo_gate);
        let off = parse(&[]);
        assert!(off.metrics.is_none());
        assert!(!off.slo_gate);
    }

    #[test]
    fn parses_swap_at() {
        assert_eq!(parse(&["--swap-at", "12"]).swap_at, Some(12));
        assert!(parse(&[]).swap_at.is_none());
    }

    #[test]
    fn verbose_is_an_info_alias() {
        assert_eq!(parse(&["--verbose"]).log_level, Level::Info);
        // An explicit later --log-level still wins.
        assert_eq!(parse(&["--verbose", "--log-level", "trace"]).log_level, Level::Trace);
    }

    #[test]
    #[should_panic(expected = "unknown flag")]
    fn rejects_unknown_flags() {
        parse(&["--bogus"]);
    }
}
