//! Table V: versatility of PMMRec under the five transfer settings —
//! text-only, vision-only, item-encoders, user-encoder, full — each
//! with and without pre-training on the fused sources.
//!
//! Expected shape (paper): full transfer best; item-encoder transfer
//! close behind and clearly ahead of user-encoder transfer; the
//! single-modality settings stay competitive, with text-only usually
//! ahead of vision-only.

use pmm_bench::cli::Cli;
use pmm_bench::runner;
use pmm_bench::table::Table;
use pmm_data::registry::{SOURCES, TARGETS};
use pmm_eval::MetricSet;
use pmmrec::{Modality, ObjectiveConfig, PmmRec, PmmRecConfig, TransferSetting};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn scratch(split: &pmm_data::split::SplitDataset, modality: Modality, cli: &Cli) -> MetricSet {
    let mut rng = StdRng::seed_from_u64(cli.seed ^ 0x5C);
    let cfg = PmmRecConfig {
        modality,
        ..PmmRecConfig::default()
    };
    let mut model = PmmRec::new(cfg, &split.dataset, &mut rng);
    model.set_pretraining(true); // from-scratch = full Eq. 12 objective
    runner::run_target(&mut model, split, cli).test
}

fn transferred(
    split: &pmm_data::split::SplitDataset,
    setting: TransferSetting,
    ckpt: &std::path::Path,
    cli: &Cli,
) -> Result<MetricSet, String> {
    let mut model = runner::finetune_model(split, setting, ckpt, cli)?;
    Ok(runner::run_target(&mut model, split, cli).test)
}

fn main() -> Result<(), String> {
    let cli = Cli::from_env();
    pmm_bench::obs::setup(&cli);
    let world = runner::world();
    let ckpt = runner::pretrain_cached("fused", &SOURCES, ObjectiveConfig::default(), &cli, &world)?;

    let mut t = Table::new(
        "Table V — versatile transfer settings (HR@10 / NG@10)",
        &[
            "Dataset",
            "T w/o PT", "T w. PT",
            "V w/o PT", "V w. PT",
            "MM w/o PT", "w. PT-I", "w. PT-U", "w. PT (full)",
        ],
    );
    let fmt = |m: MetricSet| format!("{:.2}/{:.2}", m.hr10(), m.ndcg10());

    for id in TARGETS {
        let split = runner::split(&world, id, &cli);
        pmm_obs::obs_info!("table5", "{}", id.name());
        let row = [
            fmt(scratch(&split, Modality::TextOnly, &cli)),
            fmt(transferred(&split, TransferSetting::TextOnly, &ckpt, &cli)?),
            fmt(scratch(&split, Modality::VisionOnly, &cli)),
            fmt(transferred(&split, TransferSetting::VisionOnly, &ckpt, &cli)?),
            fmt(scratch(&split, Modality::Both, &cli)),
            fmt(transferred(&split, TransferSetting::ItemEncoders, &ckpt, &cli)?),
            fmt(transferred(&split, TransferSetting::UserEncoder, &ckpt, &cli)?),
            fmt(transferred(&split, TransferSetting::Full, &ckpt, &cli)?),
        ];
        let mut cells = vec![id.name().to_string()];
        cells.extend(row);
        t.row(&cells);
    }
    t.print();
    println!(
        "\nPaper shape: full >= PT-I > PT-U; single-modality transfers remain\n\
         competitive; text-only transfers better than vision-only on average."
    );
    pmm_bench::obs::finish("table5_versatility");
    Ok(())
}
