//! Table VIII: ablation of the pre-training objectives. Six variants —
//! w/o NICL, only VCL, only NCL, w/o NID, w/o RCL, full PMMRec — are
//! each pre-trained on the fused sources and fine-tuned on four
//! representative targets.
//!
//! Expected shape (paper): the full model wins (or ties); removing
//! NICL hurts most; VCL < NCL < NICL (positives and intra-modality
//! negatives both matter); dropping NID or RCL costs a smaller margin.

use pmm_bench::cli::Cli;
use pmm_bench::runner;
use pmm_bench::table::Table;
use pmm_data::registry::{DatasetId, SOURCES};
use pmmrec::{ObjectiveConfig, TransferSetting};

const ABLATION_TARGETS: [DatasetId; 4] = [
    DatasetId::BiliMovie,
    DatasetId::KwaiMovie,
    DatasetId::HmShoes,
    DatasetId::AmazonShoes,
];

/// Paper HR@10 per target for (w/o NICL, only VCL, only NCL, w/o NID,
/// w/o RCL, PMMRec).
const PAPER_HR10: [(&str, [f32; 6]); 4] = [
    ("Bili_Movie", [14.24, 14.86, 14.55, 14.76, 14.81, 15.02]),
    ("Kwai_Movie", [7.74, 7.68, 8.15, 8.44, 8.93, 8.84]),
    ("HM_Shoes", [13.01, 12.67, 13.95, 14.21, 14.52, 14.70]),
    ("Amazon_Shoes", [39.13, 40.80, 42.24, 42.25, 43.83, 43.98]),
];

fn main() -> Result<(), String> {
    let cli = Cli::from_env();
    pmm_bench::obs::setup(&cli);
    let world = runner::world();
    let variants = ObjectiveConfig::table8_variants();

    // One pre-training run per ablation variant (cached on disk).
    let ckpts: Vec<(String, std::path::PathBuf)> = variants
        .iter()
        .map(|(name, obj)| {
            // The full model shares the checkpoint used by Tables IV/V.
            let tag = if *name == "PMMRec" {
                "fused".to_string()
            } else {
                format!("abl_{}", name.replace([' ', '/'], "_"))
            };
            let ckpt = runner::pretrain_cached(&tag, &SOURCES, *obj, &cli, &world)?;
            Ok((name.to_string(), ckpt))
        })
        .collect::<Result<_, String>>()?;

    let mut header: Vec<&str> = vec!["Dataset"];
    header.extend(variants.iter().map(|(n, _)| *n));
    header.push("paper full");
    let mut t = Table::new("Table VIII — objective ablation (HR@10 / NG@10)", &header);

    for (ti, id) in ABLATION_TARGETS.into_iter().enumerate() {
        let split = runner::split(&world, id, &cli);
        pmm_obs::obs_info!("table8", "{}", id.name());
        let mut cells = vec![id.name().to_string()];
        for (name, ckpt) in &ckpts {
            let mut model = runner::finetune_model(&split, TransferSetting::Full, ckpt, &cli)?;
            let m = runner::run_target(&mut model, &split, &cli).test;
            cells.push(format!("{:.2}/{:.2}", m.hr10(), m.ndcg10()));
            pmm_obs::obs_info!("table8", "  {name}: HR@10 {:.2}", m.hr10());
        }
        cells.push(format!("{:.2}", PAPER_HR10[ti].1[5]));
        t.row(&cells);
    }
    t.print();
    println!(
        "\nPaper shape: full PMMRec >= every ablation; 'w/o NICL' is the\n\
         costliest removal; 'only VCL' < 'only NCL' < full NICL."
    );
    pmm_bench::obs::finish("table8_ablation");
    Ok(())
}
