//! Table VI: single-source transfer — PMMRec pre-trained on ONE source
//! platform at a time, fine-tuned on all ten targets; compared against
//! the ID baseline (SASRec) and PMMRec trained from scratch.
//!
//! Expected shape (paper): the diagonal (homogeneous platform) wins;
//! transfers from complex platforms (Bili/Kwai) to simple targets
//! (HM/Amazon) hold up, while simple -> complex (especially -> Kwai)
//! often drops below from-scratch training ("v" markers).

use pmm_bench::cli::Cli;
use pmm_bench::runner;
use pmm_bench::table::Table;
use pmm_data::registry::{DatasetId, SOURCES, TARGETS};
use pmmrec::{ObjectiveConfig, PmmRec, PmmRecConfig, TransferSetting};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), String> {
    let cli = Cli::from_env();
    pmm_bench::obs::setup(&cli);
    let world = runner::world();

    // One checkpoint per single source.
    let ckpts: Vec<(DatasetId, std::path::PathBuf)> = SOURCES
        .into_iter()
        .map(|src| {
            let tag = format!("single_{}", src.name());
            let ckpt = runner::pretrain_cached(&tag, &[src], ObjectiveConfig::default(), &cli, &world)?;
            Ok((src, ckpt))
        })
        .collect::<Result<_, String>>()?;

    let mut t = Table::new(
        "Table VI — single-source transfer (HR@10; 'v' = below w/o PT)",
        &["Dataset", "ID (SASRec)", "w/o PT", "Bili", "Kwai", "HM", "Amazon"],
    );

    for id in TARGETS {
        let split = runner::split(&world, id, &cli);
        pmm_obs::obs_info!("table6", "{}", id.name());
        let mut rng = StdRng::seed_from_u64(cli.seed ^ 0x66);
        let mut sas = pmm_baselines::sasrec::build(Default::default(), &split.dataset, &mut rng);
        let sas_m = runner::run_target(&mut sas, &split, &cli).test;
        let mut scratch = PmmRec::new(PmmRecConfig::default(), &split.dataset, &mut rng);
        scratch.set_pretraining(true); // from-scratch = full Eq. 12 objective
        let scratch_m = runner::run_target(&mut scratch, &split, &cli).test;

        let mut cells = vec![
            id.name().to_string(),
            format!("{:.2}", sas_m.hr10()),
            format!("{:.2}", scratch_m.hr10()),
        ];
        for (src, ckpt) in &ckpts {
            let mut model = runner::finetune_model(&split, TransferSetting::Full, ckpt, &cli)?;
            let m = runner::run_target(&mut model, &split, &cli).test;
            let homogeneous = id.platform() == src.platform();
            let marker = if m.hr10() < scratch_m.hr10() { " v" } else if homogeneous { " *" } else { "" };
            cells.push(format!("{:.2}{marker}", m.hr10()));
        }
        t.row(&cells);
    }
    t.print();
    println!(
        "\n'*' marks the homogeneous (same-platform) source — expected to be the\n\
         best column per the paper's diagonal; 'v' marks negative transfer."
    );
    pmm_bench::obs::finish("table6_single_source");
    Ok(())
}
