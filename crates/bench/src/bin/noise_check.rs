//! Noise quantification: how stable are single-seed model comparisons
//! at this reproduction's scale? Trains PMMRec and SASRec on one source
//! and runs a paired bootstrap over their per-case NDCG contributions —
//! the calibration behind EXPERIMENTS.md's "within noise" annotations.

use pmm_bench::cli::Cli;
use pmm_bench::models::ModelKind;
use pmm_bench::runner;
use pmm_data::registry::DatasetId;
use pmm_eval::metrics::ranks_for_cases;
use pmm_eval::significance::{ndcg_contributions, paired_bootstrap};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let cli = Cli::from_env();
    pmm_bench::obs::setup(&cli);
    let world = runner::world();
    let split = runner::split(&world, DatasetId::Hm, &cli);
    pmm_obs::obs_info!("noise", "training PMMRec and SASRec on {}…", split.dataset.name);

    let mut rng = StdRng::seed_from_u64(cli.seed);
    let mut pmm = ModelKind::PmmRec.build(&split.dataset, &mut rng);
    runner::run(pmm.as_mut(), &split, &cli);
    let mut sas = ModelKind::SasRec.build(&split.dataset, &mut rng);
    runner::run(sas.as_mut(), &split, &cli);

    let pmm_ranks = ranks_for_cases(pmm.as_ref(), &split.test);
    let sas_ranks = ranks_for_cases(sas.as_ref(), &split.test);
    let a = ndcg_contributions(&pmm_ranks, 10);
    let b = ndcg_contributions(&sas_ranks, 10);
    let mut brng = StdRng::seed_from_u64(cli.seed ^ 0xB007);
    let report = paired_bootstrap(&a, &b, 2000, &mut brng);

    println!("== Paired bootstrap: PMMRec vs SASRec (NDCG@10 contributions) ==");
    println!("cases:            {}", a.len());
    println!("observed diff:    {:+.4} ({:+.2} NDCG@10 points)", report.observed_diff, 100.0 * report.observed_diff);
    println!("sign stability:   {:.3} over {} resamples", report.sign_stability, report.resamples);
    println!("significant(95%): {}", report.significant());
    println!(
        "\nInterpretation: differences whose sign stability is below 0.95 are\n\
         annotated as 'within noise' in EXPERIMENTS.md."
    );
    pmm_bench::obs::finish("noise_check");
}
