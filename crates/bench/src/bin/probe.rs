use pmm_bench::cli::Cli;
use pmm_bench::runner;
use pmm_data::cold::{cold_items, cold_start_cases};
use pmm_data::registry::DatasetId;
use pmm_data::split::LeaveOneOut;
use pmm_eval::metrics::ranks_for_cases;
use pmmrec::{PmmRec, PmmRecConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let cli = Cli::from_env();
    pmm_bench::obs::setup(&cli);
    let world = runner::world();
    let split = runner::split(&world, DatasetId::Amazon, &cli);
    let cold = cold_items(&split, 7);
    let cases: Vec<LeaveOneOut> = cold_start_cases(&split, 7)
        .into_iter().map(|c| LeaveOneOut { prefix: c.prefix, target: c.target }).collect();
    for pretrain in [false, true] {
        let mut rng = StdRng::seed_from_u64(cli.seed ^ 0x77);
        let mut model = PmmRec::new(PmmRecConfig::default(), &split.dataset, &mut rng);
        model.set_pretraining(pretrain);
        runner::run(&mut model, &split, &cli);
        let ranks = ranks_for_cases(&model, &cases);
        let mean: f32 = ranks.iter().sum::<f32>() / ranks.len() as f32;
        let min = ranks.iter().cloned().fold(f32::INFINITY, f32::min);
        let hits = ranks.iter().filter(|&&r| r < 10.0).count();
        pmm_obs::obs_info!(
            "probe",
            "pretrain={pretrain}: mean rank {mean:.1}, min {min}, hits@10 {hits}/{}",
            ranks.len()
        );
    }
    // Where do cold items rank on average regardless of case? (scores for one popular prefix)
    let _ = cold;
    pmm_bench::obs::finish("probe");
}
