//! Table III: performance comparison of all nine methods on the four
//! source datasets (HR/NDCG @ 10/20/50, full-catalogue ranking).
//!
//! Expected shape (paper): PMMRec best or tied-best; CARCA++ the
//! strongest baseline; MoRec++ close behind; SASRec/FDSA mid-pack;
//! GRURec/NextItNet weaker; UniSRec/VQRec weakest (frozen features).
//! PMMRec's margin over CARCA++ grows on the noisy platforms
//! (Bili/Kwai) relative to HM/Amazon.

use pmm_bench::cli::Cli;
use pmm_bench::models::ModelKind;
use pmm_bench::runner;
use pmm_bench::table::Table;
use pmm_data::registry::SOURCES;
use pmm_obs::obs_info;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Paper HR@10 / NDCG@10 reference values per (dataset, method).
const PAPER_HR10: [(&str, [f32; 9]); 4] = [
    ("Bili", [3.06, 2.66, 4.04, 4.46, 5.25, 0.64, 1.75, 4.87, 5.49]),
    ("Kwai", [4.62, 3.69, 5.56, 5.79, 6.94, 1.87, 2.73, 6.93, 7.53]),
    ("HM", [8.39, 8.46, 11.60, 11.73, 14.65, 3.75, 6.25, 14.54, 15.06]),
    ("Amazon", [19.25, 18.00, 22.95, 20.12, 23.67, 7.88, 21.26, 23.10, 23.57]),
];

fn main() {
    let cli = Cli::from_env();
    pmm_bench::obs::setup(&cli);
    let world = runner::world();
    for (di, id) in SOURCES.into_iter().enumerate() {
        let split = runner::split(&world, id, &cli);
        let stats = split.dataset.stats();
        obs_info!(
            "table3",
            "{}: {} users, {} items",
            id.name(),
            stats.users,
            stats.items
        );
        let mut t = Table::new(
            format!("Table III — {} (test metrics at best-valid epoch)", id.name()),
            &["Method", "HR@10", "HR@20", "HR@50", "NG@10", "NG@20", "NG@50", "paper HR@10"],
        );
        for (mi, kind) in ModelKind::TABLE3.into_iter().enumerate() {
            let start = Instant::now();
            let mut rng = StdRng::seed_from_u64(cli.seed ^ ((mi as u64) << 8));
            let mut model = kind.build(&split.dataset, &mut rng);
            let result = runner::run(model.as_mut(), &split, &cli);
            let m = result.test;
            t.row(&[
                kind.name().to_string(),
                format!("{:.2}", m.hr[0]),
                format!("{:.2}", m.hr[1]),
                format!("{:.2}", m.hr[2]),
                format!("{:.2}", m.ndcg[0]),
                format!("{:.2}", m.ndcg[1]),
                format!("{:.2}", m.ndcg[2]),
                format!("{:.2}", PAPER_HR10[di].1[mi]),
            ]);
            obs_info!(
                "table3",
                "{} / {}: HR@10 {:.2} ({}s)",
                id.name(),
                kind.name(),
                m.hr10(),
                start.elapsed().as_secs()
            );
        }
        t.print();
    }
    pmm_bench::obs::finish("table3_source_performance");
}
