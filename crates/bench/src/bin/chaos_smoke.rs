//! Chaos smoke test: one end-to-end training run under a deterministic
//! fault plan — injected NaN losses (isolated and consecutive), a
//! corrupted checkpoint write, and a transient IO failure — asserting
//! the resilience invariants of the fault-tolerant runtime:
//!
//! * anomalous steps are skipped without advancing the optimizer;
//! * an isolated anomaly backs the learning rate off and recovers;
//! * consecutive anomalies roll the model back to epoch-start weights;
//! * a corrupt newest checkpoint falls back to an older generation;
//! * the injected IO failure is absorbed by the bounded retry;
//! * the restored model serves finite scores end to end.
//!
//! The process exits non-zero when any invariant is violated, so
//! `scripts/verify.sh` runs this binary as its fault-injection smoke
//! test (`--scale tiny --epochs 3`).

use pmm_bench::cli::Cli;
use pmm_bench::runner;
use pmm_data::registry::DatasetId;
use pmm_eval::{evaluate_cases, SeqRecommender};
use pmm_nn::checkpoint::CheckpointRotation;
use pmm_obs::obs_info;
use pmmrec::{GuardConfig, PmmRec, PmmRecConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), String> {
    let mut cli = Cli::from_env();
    let epochs = cli.epochs.unwrap_or(3).max(2);
    cli.epochs = Some(epochs);
    // Default chaos recipe (overridable with --fault-plan): two
    // consecutive NaN steps force a rollback, a later isolated NaN
    // exercises skip + LR-backoff + recovery, the FINAL checkpoint
    // save is corrupted so restore must fall back a generation, and
    // the first guarded IO read fails once.
    let default_plan = cli.fault_plan.is_none();
    if default_plan {
        cli.fault_plan = Some(format!("nan@1,nan@2,nan@4,ckpt@{},io@0", epochs - 1));
    }
    pmm_bench::obs::setup(&cli);
    // The end-of-run summary reports per-kind fault counters; they only
    // record while collection is on, so force it for this binary.
    pmm_obs::set_enabled(true);
    let spec = cli.fault_plan.clone().unwrap_or_default();
    println!("== chaos smoke — fault plan {spec:?}, {epochs} epochs ==");

    let world = runner::world();
    let split = runner::split(&world, DatasetId::HmClothes, &cli);
    let mut rng = StdRng::seed_from_u64(cli.seed ^ 0xC4A05);
    let mut model = PmmRec::new(PmmRecConfig::default(), &split.dataset, &mut rng);
    // Two consecutive anomalies are enough to trigger a rollback, so
    // the default plan exercises the whole escalation ladder.
    model.set_guard_config(GuardConfig { max_consecutive: 2, ..GuardConfig::default() });

    let ckpt_dir = std::env::temp_dir().join(format!("pmmrec_chaos_{}", std::process::id()));
    let rot = CheckpointRotation::new(&ckpt_dir, "chaos", 3)
        .map_err(|e| format!("cannot create checkpoint rotation in {}: {e}", ckpt_dir.display()))?;

    let mut last_loss = f32::NAN;
    for epoch in 1..=epochs {
        last_loss = model.train_epoch(&split.train, &mut rng);
        let report = model.guard_report();
        println!(
            "  epoch {epoch}: loss {last_loss:.4} (anomalies {}, rollbacks {}, recoveries {}, opt steps {})",
            report.anomalies,
            report.rollbacks,
            report.recoveries,
            model.optimizer_steps()
        );
        let path = rot
            .save(model.param_store(), epoch as u64)
            .map_err(|e| format!("epoch {epoch}: cannot save rotating checkpoint: {e}"))?;
        obs_info!("chaos", "epoch {epoch} checkpointed at {}", path.display());
    }

    // Restore into a fresh model; the corrupted newest generation must
    // fall back to an older one (CRC failure + injected IO error on the
    // first read are both absorbed here).
    let mut fresh_rng = StdRng::seed_from_u64(cli.seed ^ 0xC4A05);
    let restored = PmmRec::new(PmmRecConfig::default(), &split.dataset, &mut fresh_rng);
    let (seq, load) = rot
        .load_latest(restored.param_store())
        .map_err(|e| format!("cannot restore from rotation {}: {e}", ckpt_dir.display()))?;
    let metrics = evaluate_cases(&restored, &split.valid);
    let (nan_fired, ckpt_fired, io_fired) = pmm_fault::fired();
    let report = model.guard_report();
    println!(
        "  restored generation {seq}/{epochs} ({} tensors); valid {metrics}",
        load.loaded.len()
    );
    println!("  faults fired: nan {nan_fired}, ckpt {ckpt_fired}, io {io_fired}");
    // Injection coverage by kind, as the obs layer saw it — a
    // cross-check that telemetry observed the same chaos the fault
    // plan reports firing.
    {
        use pmm_obs::counter as ctr;
        println!(
            "  obs fault counters: nan {}, ckpt {}, io {}, slow {}, err {}",
            ctr::FAULTS_NAN.get(),
            ctr::FAULTS_CKPT.get(),
            ctr::FAULTS_IO.get(),
            ctr::FAULTS_SLOW.get(),
            ctr::FAULTS_ERR.get(),
        );
    }
    std::fs::remove_dir_all(&ckpt_dir).ok();

    // Resilience invariants. The guard/fallback-specific ones only hold
    // under the default plan; a custom --fault-plan may inject nothing.
    let mut failures = Vec::new();
    let mut check = |ok: bool, what: &str| {
        if !ok {
            failures.push(what.to_string());
        }
    };
    check(last_loss.is_finite(), "final epoch loss is finite");
    check(!load.loaded.is_empty(), "restore loaded parameters");
    check(metrics.hr10().is_finite() && metrics.ndcg10().is_finite(), "restored model serves finite metrics");
    if default_plan {
        check(report.anomalies >= 3, "all injected NaN steps were caught");
        check(report.rollbacks >= 1, "consecutive anomalies triggered a rollback");
        check(report.recoveries >= 1, "an isolated anomaly recovered");
        check(nan_fired == 3 && ckpt_fired == 1 && io_fired == 1, "every planned fault fired");
        check(
            pmm_obs::counter::FAULTS_NAN.get() == nan_fired
                && pmm_obs::counter::FAULTS_CKPT.get() == ckpt_fired
                && pmm_obs::counter::FAULTS_IO.get() == io_fired,
            "obs fault counters agree with the plan's fired counts",
        );
        check(seq == epochs as u64 - 1, "restore fell back past the corrupted generation");
    }
    pmm_fault::clear();
    pmm_bench::obs::finish("chaos_smoke");
    if failures.is_empty() {
        println!("chaos smoke PASSED: training rode through every injected fault");
        Ok(())
    } else {
        Err(format!("chaos smoke FAILED: {}", failures.join("; ")))
    }
}
