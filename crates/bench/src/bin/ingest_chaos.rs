//! Kill-and-replay chaos harness for the crash-safe ingestion path
//! and the sharded scatter-gather.
//!
//! Three scenarios run by default, each proving one leg of the
//! durability contract:
//!
//! * `kill_and_replay` — items stream into the WAL while the
//!   injected `wal_corrupt@N` fault tears one append mid-frame; the
//!   writer is then dropped mid-stream (the crash) with a garbage
//!   half-frame appended to the live segment (the record the process
//!   died inside). Replay must recover **every acknowledged item
//!   exactly once, in order, bit-identical**, truncate each damaged
//!   tail (counted in `wal_truncated`, never a panic), and a second
//!   replay must find nothing left to repair.
//! * `ingest_under_load` — a live server over a truncated base
//!   catalog; the missing tail is WAL-appended, crash-replayed, and
//!   handed to [`Server::ingest`]. Served top-k answers over
//!   base + delta must be **bit-identical** to a cold server built
//!   over the full catalog, before *and* after
//!   [`Server::fold_delta`] retires the delta into a fresh snapshot
//!   epoch — with zero requests shed along the way.
//! * `shard_quarantine` — `shard_panic@0` takes out one of four
//!   catalog shards; the response must come back **tagged partial**
//!   (3/4 shards, coverage ≥ 0.75, inside the `shard_miss_rate`
//!   SLO), and the very next request must probe a rebuild and heal
//!   back to full coverage.
//!
//! `--fault-plan SPEC` replaces the default scenarios with a single
//! custom `kill_and_replay`; `--no-replay` skips the recovery step so
//! acknowledged items are lost — which MUST fail the run. That pair
//! is the must-fail leg `scripts/verify.sh` uses to prove this gate
//! can actually reject a durability regression. Results land in
//! `BENCH_ingest.json`.

use pmm_baselines::Popularity;
use pmm_bench::cli::Cli;
use pmm_bench::runner;
use pmm_data::dataset::Dataset;
use pmm_data::registry::{self, DatasetId, Scale};
use pmm_data::world::Item;
use pmm_ingest::{encode_item, fold, replay, Wal, WalConfig};
use pmm_obs::json::JsonObj;
use pmm_serve::{
    BreakerConfig, PmmEngine, Request, Response, Server, ServerConfig, ShardConfig,
    SupervisorConfig,
};
use pmm_trace::{MetricsSnapshot, SloPolicy};
use pmmrec::{PmmRec, PmmRecConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::Write;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Small serving model, seeded identically per replica (the same
/// geometry `serve_load` drives).
fn model_cfg() -> PmmRecConfig {
    PmmRecConfig {
        d: 16,
        heads: 2,
        text_layers: 1,
        vision_layers: 1,
        fusion_layers: 1,
        user_layers: 1,
        dropout: 0.0,
        ..Default::default()
    }
}

fn engine_factory(
    ds: Arc<Dataset>,
    seed: u64,
) -> impl Fn() -> PmmEngine + Send + Sync + 'static {
    move || PmmEngine::new(PmmRec::new(model_cfg(), &ds, &mut StdRng::seed_from_u64(seed)))
}

/// One worker + four shards + a breaker that never trips: injected
/// faults exercise the ingestion/shard machinery, not the ladder.
fn server_cfg() -> ServerConfig {
    ServerConfig {
        workers: Some(1),
        deadline: Duration::from_secs(10),
        breaker: BreakerConfig { window: 8, trip_failures: 1_000_000, cooldown_denials: 1_000_000 },
        shards: ShardConfig { shards: Some(4), ..ShardConfig::default() },
        supervisor: SupervisorConfig {
            restart_backoff: Duration::from_millis(2),
            watchdog_interval: Duration::from_millis(5),
            ..SupervisorConfig::default()
        },
        ..ServerConfig::default()
    }
}

/// A fresh, empty WAL directory for one scenario.
fn wal_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pmm_ingest_chaos_{}_{tag}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Byte-level fingerprint of an item — two items are "the same
/// record" iff their WAL encodings match bit for bit.
fn item_bytes(item: &Item) -> Vec<u8> {
    encode_item(item)
}

/// Blockingly serve one request and return the response; submit
/// errors and serve errors are scenario failures, not panics.
fn ask(server: &Server<PmmEngine>, prefix: &[usize], user: u64) -> Result<Response, String> {
    let req =
        Request { user, prefix: prefix.to_vec(), k: 10, exclude_seen: true, deadline: None };
    server
        .submit(req)
        .map_err(|e| format!("submit shed under ingest load: {e}"))?
        .wait()
        .map_err(|e| format!("request failed under ingest load: {e}"))
}

/// What one scenario produced, ready for the JSON report.
struct Outcome {
    name: &'static str,
    wall: Duration,
    window: MetricsSnapshot,
    detail: Vec<(&'static str, u64)>,
    slo_ok: bool,
    failures: Vec<String>,
}

/// Stream items into a WAL with injected corruption, crash the
/// writer mid-append, replay, and check the durability contract.
fn kill_and_replay(items: &[Item], plan: &str, no_replay: bool) -> Outcome {
    let started = Instant::now();
    let base = MetricsSnapshot::capture();
    let mut failures = Vec::new();
    let dir = wal_dir("kill");
    match pmm_fault::FaultPlan::parse(plan) {
        Ok(p) => pmm_fault::install(p),
        Err(e) => failures.push(format!("bad fault plan {plan:?}: {e}")),
    }

    // Acknowledged-items ledger: exactly the records append() fsynced.
    let mut acked: Vec<Vec<u8>> = Vec::new();
    match Wal::with_config(&dir, WalConfig { segment_bytes: 512 }) {
        Ok(mut wal) => {
            for item in items {
                match wal.append(item) {
                    Ok(true) => acked.push(item_bytes(item)),
                    Ok(false) => {} // torn by the injected fault: unacknowledged
                    Err(e) => failures.push(format!("append failed: {e}")),
                }
            }
            // The crash: the writer dies inside its next append,
            // leaving a garbage half-frame on the live segment. The
            // Wal handle is dropped without any clean shutdown.
            let seg = wal.current_segment().to_path_buf();
            let torn = std::fs::OpenOptions::new().append(true).open(&seg).and_then(|mut f| {
                f.write_all(&200u32.to_le_bytes())?;
                f.write_all(&[0xAB; 14])
            });
            if let Err(e) = torn {
                failures.push(format!("could not simulate the torn tail on {}: {e}", seg.display()));
            }
        }
        Err(e) => failures.push(format!("cannot open wal at {}: {e}", dir.display())),
    }
    let (wal_fired, _) = pmm_fault::fired_ingest();
    pmm_fault::clear();

    let mut recovered = 0u64;
    let mut truncated = 0u64;
    if no_replay {
        println!("  --no-replay: skipping recovery, acknowledged items are LOST");
        if !acked.is_empty() {
            failures.push(format!(
                "{} acknowledged item(s) lost without replay — the durability contract is void",
                acked.len()
            ));
        }
    } else {
        match replay(&dir) {
            Ok(r) => {
                recovered = r.items.len() as u64;
                truncated = r.truncated as u64;
                let got: Vec<Vec<u8>> = r.items.iter().map(item_bytes).collect();
                if got != acked {
                    failures.push(format!(
                        "replay recovered {} item(s), acknowledged {} — not the exact ledger",
                        got.len(),
                        acked.len()
                    ));
                }
                // One truncation per torn tail: each injected tear
                // rotates into its own segment, plus the crash frame.
                let want_truncated = wal_fired as usize + 1;
                if r.truncated != want_truncated {
                    failures.push(format!(
                        "replay truncated {} tail(s), expected {want_truncated} ({} injected + 1 crash)",
                        r.truncated, wal_fired
                    ));
                }
            }
            Err(e) => failures.push(format!("replay failed: {e}")),
        }
        // Idempotence: the first replay repaired the damage, so a
        // second pass recovers the same ledger with nothing to cut.
        match replay(&dir) {
            Ok(r2) => {
                if r2.truncated != 0 {
                    failures.push(format!("second replay still truncated {} tail(s)", r2.truncated));
                }
                if r2.items.iter().map(item_bytes).collect::<Vec<_>>() != acked {
                    failures.push("second replay diverged from the acknowledged ledger".into());
                }
            }
            Err(e) => failures.push(format!("second replay failed: {e}")),
        }
        match fold(&dir) {
            Ok(removed) => {
                if removed == 0 {
                    failures.push("fold retired no segments".into());
                }
                match replay(&dir) {
                    Ok(r3) if !r3.items.is_empty() => {
                        failures.push("items survived a fold".into())
                    }
                    Ok(_) => {}
                    Err(e) => failures.push(format!("post-fold replay failed: {e}")),
                }
            }
            Err(e) => failures.push(format!("fold failed: {e}")),
        }
    }
    std::fs::remove_dir_all(&dir).ok();
    Outcome {
        name: "kill_and_replay",
        wall: started.elapsed(),
        window: MetricsSnapshot::capture().delta_since(&base),
        detail: vec![
            ("appended", items.len() as u64),
            ("acknowledged", acked.len() as u64),
            ("torn_injected", wal_fired),
            ("recovered", recovered),
            ("truncated", truncated),
        ],
        slo_ok: true,
        failures,
    }
}

/// Serve over a truncated base while the missing tail arrives via
/// WAL → replay → [`Server::ingest`] → [`Server::fold_delta`];
/// every answer must match a cold build over the full catalog.
fn ingest_under_load(full: &Arc<Dataset>, prefixes: &[Vec<usize>], seed: u64) -> Outcome {
    let started = Instant::now();
    let base_snap = MetricsSnapshot::capture();
    let mut failures = Vec::new();
    pmm_fault::clear();

    let n = full.items.len();
    let delta: Vec<Item> = full.items[n - 6..].to_vec();
    let mut base = (**full).clone();
    base.items.truncate(n - 6);
    let base = Arc::new(base);

    // The missing tail takes the durable path: WAL-append, crash the
    // writer, recover by replay. Only recovered items are ingested.
    let dir = wal_dir("load");
    let mut durable = 0usize;
    match Wal::open(&dir) {
        Ok(mut wal) => {
            for item in &delta {
                match wal.append(item) {
                    Ok(true) => durable += 1,
                    Ok(false) => failures.push("unexpected torn append in a clean stream".into()),
                    Err(e) => failures.push(format!("append failed: {e}")),
                }
            }
        }
        Err(e) => failures.push(format!("cannot open wal at {}: {e}", dir.display())),
    }
    let replayed = match replay(&dir) {
        Ok(r) => {
            if r.items.len() != durable {
                failures.push(format!(
                    "replay recovered {} of {durable} durable item(s)",
                    r.items.len()
                ));
            }
            r.items
        }
        Err(e) => {
            failures.push(format!("replay failed: {e}"));
            Vec::new()
        }
    };

    let popularity = || Popularity::from_sequences(full.items.len(), &full.sequences);
    let cold = Server::start(server_cfg(), engine_factory(Arc::clone(full), seed), popularity());
    let live = Server::start(server_cfg(), engine_factory(Arc::clone(&base), seed), popularity());

    // Phase 1: the base catalog serves while the delta is still in
    // flight (answers legitimately differ from the cold union here).
    for (i, p) in prefixes.iter().enumerate() {
        if let Err(e) = ask(&live, p, i as u64) {
            failures.push(format!("pre-ingest: {e}"));
        }
    }

    // Phase 2: recovered items go live without a rebuild; every
    // answer must now be bit-identical to the cold union build.
    live.ingest(replayed);
    let mut delta_matches = 0u64;
    for (i, p) in prefixes.iter().enumerate() {
        match (ask(&live, p, 100 + i as u64), ask(&cold, p, 100 + i as u64)) {
            (Ok(a), Ok(b)) => {
                if a.items == b.items {
                    delta_matches += 1;
                } else {
                    failures.push(format!("delta-serving answer diverged from cold build on prefix {i}"));
                }
                if a.shards.coverage() < 1.0 {
                    failures.push(format!("delta-serving answer lost shards: {}", a.shards));
                }
                if a.epoch != 0 {
                    failures.push(format!("delta answer claims epoch {} before any fold", a.epoch));
                }
            }
            (Err(e), _) | (_, Err(e)) => failures.push(format!("post-ingest: {e}")),
        }
    }

    // Phase 3: fold the delta into a new snapshot epoch; the WAL
    // segments retire only after the new snapshot is live.
    let report = live.fold_delta(engine_factory(Arc::clone(full), seed));
    if report.epoch != 1 {
        failures.push(format!("fold published epoch {}, expected 1", report.epoch));
    }
    if live.delta_len() != 0 {
        failures.push(format!("{} delta item(s) survived the fold", live.delta_len()));
    }
    match fold(&dir) {
        Ok(_) => {}
        Err(e) => failures.push(format!("wal fold failed: {e}")),
    }
    let mut fold_matches = 0u64;
    for (i, p) in prefixes.iter().enumerate() {
        match (ask(&live, p, 200 + i as u64), ask(&cold, p, 200 + i as u64)) {
            (Ok(a), Ok(b)) => {
                if a.items == b.items {
                    fold_matches += 1;
                } else {
                    failures.push(format!("post-fold answer diverged from cold build on prefix {i}"));
                }
                if a.epoch != 1 {
                    failures.push(format!("post-fold answer claims epoch {}, expected 1", a.epoch));
                }
            }
            (Err(e), _) | (_, Err(e)) => failures.push(format!("post-fold: {e}")),
        }
    }
    drop(live);
    drop(cold);
    std::fs::remove_dir_all(&dir).ok();
    let window = MetricsSnapshot::capture().delta_since(&base_snap);
    let slo = pmm_trace::slo::evaluate(&window, &SloPolicy::default());
    if !slo.ok() {
        let names: Vec<&str> = slo.breaches().iter().map(|c| c.name).collect();
        failures.push(format!("SLO breached under ingest load: {}", names.join(", ")));
    }
    Outcome {
        name: "ingest_under_load",
        wall: started.elapsed(),
        window,
        detail: vec![
            ("delta_items", delta.len() as u64),
            ("durable", durable as u64),
            ("delta_matches", delta_matches),
            ("fold_matches", fold_matches),
            ("fold_epoch", report.epoch),
        ],
        slo_ok: slo.ok(),
        failures,
    }
}

/// One shard panics; the answer must come back tagged partial inside
/// the coverage SLO, and the next request must heal the pool.
fn shard_quarantine(full: &Arc<Dataset>, prefixes: &[Vec<usize>], seed: u64) -> Outcome {
    let started = Instant::now();
    let base_snap = MetricsSnapshot::capture();
    let mut failures = Vec::new();
    match pmm_fault::FaultPlan::parse("shard_panic@0") {
        Ok(p) => pmm_fault::install(p),
        Err(e) => failures.push(format!("bad built-in plan: {e}")),
    }
    let popularity = Popularity::from_sequences(full.items.len(), &full.sequences);
    let server = Server::start(server_cfg(), engine_factory(Arc::clone(full), seed), popularity);

    let mut partial_coverage = 0.0f64;
    match ask(&server, &prefixes[0], 0) {
        Ok(resp) => {
            partial_coverage = resp.shards.coverage();
            if !resp.shards.is_partial() {
                failures.push(format!(
                    "quarantined shard did not tag the response partial (got {})",
                    resp.shards
                ));
            }
            if resp.shards.coverage() < 0.75 {
                failures.push(format!(
                    "coverage {:.2} fell below the 0.75 SLO floor",
                    resp.shards.coverage()
                ));
            }
            if resp.items.is_empty() {
                failures.push("partial response carried no items".into());
            }
        }
        Err(e) => failures.push(format!("quarantine request: {e}")),
    }
    // The next request probes a rebuild of the quarantined shard; the
    // fault fires once, so the probe succeeds and coverage heals.
    match ask(&server, &prefixes[0], 1) {
        Ok(resp) => {
            if resp.shards.is_partial() {
                failures.push(format!("pool did not heal on the rebuild probe: {}", resp.shards));
            }
        }
        Err(e) => failures.push(format!("heal request: {e}")),
    }
    let (_, shard_fired) = pmm_fault::fired_ingest();
    pmm_fault::clear();
    if shard_fired != 1 {
        failures.push(format!("expected exactly one injected shard panic, saw {shard_fired}"));
    }
    drop(server);
    let window = MetricsSnapshot::capture().delta_since(&base_snap);
    let slo = pmm_trace::slo::evaluate(&window, &SloPolicy::default());
    if !slo.ok() {
        let names: Vec<&str> = slo.breaches().iter().map(|c| c.name).collect();
        failures.push(format!("SLO breached under quarantine: {}", names.join(", ")));
    }
    let detail = vec![
        ("shard_panics", window.counter("serve_shard_panics")),
        ("quarantines", window.counter("serve_shard_quarantines")),
        ("rebuilds", window.counter("serve_shard_rebuilds")),
        ("partial_responses", window.counter("serve_partial_responses")),
        ("coverage_pct", (partial_coverage * 100.0) as u64),
    ];
    Outcome {
        name: "shard_quarantine",
        wall: started.elapsed(),
        window,
        detail,
        slo_ok: slo.ok(),
        failures,
    }
}

fn outcome_json(o: &Outcome) -> String {
    let detail =
        o.detail.iter().fold(JsonObj::new(), |obj, (k, v)| obj.u64(k, *v)).finish();
    format!(
        "    {{\n      \"scenario\": \"{}\",\n      \"wall_s\": {:.6},\n      \"wal_appends\": {},\n      \"wal_segments\": {},\n      \"wal_replayed\": {},\n      \"wal_truncated\": {},\n      \"ingest_items\": {},\n      \"ingest_folds\": {},\n      \"shards_served\": {},\n      \"shards_total\": {},\n      \"slo_ok\": {},\n      \"passed\": {},\n      \"detail\": {detail}\n    }}",
        o.name,
        o.wall.as_secs_f64(),
        o.window.counter("wal_appends"),
        o.window.counter("wal_segments"),
        o.window.counter("wal_replayed"),
        o.window.counter("wal_truncated"),
        o.window.counter("ingest_items"),
        o.window.counter("ingest_folds"),
        o.window.counter("serve_shards_served"),
        o.window.counter("serve_shards_total"),
        o.slo_ok,
        o.failures.is_empty(),
    )
}

fn main() -> Result<(), String> {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let no_replay = raw.iter().any(|a| a.as_str() == "--no-replay");
    let cli = Cli::parse(raw.into_iter().filter(|a| a.as_str() != "--no-replay"));
    pmm_bench::obs::setup(&cli);
    pmm_obs::set_enabled(true);

    // Injected shard panics are the scenario, not a crash: keep their
    // backtraces out of the transcript.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<&str>()
            .map(|s| s.contains("injected shard panic"))
            .or_else(|| {
                info.payload()
                    .downcast_ref::<String>()
                    .map(|s| s.contains("injected shard panic"))
            })
            .unwrap_or(false);
        if !injected {
            default_hook(info);
        }
    }));

    let world = runner::world();
    // The streaming corpus: pinned seed so the 6-item tail exists at
    // every `--seed` (the model weights still follow the CLI seed).
    let full = Arc::new(registry::build_dataset(&world, DatasetId::Hm, Scale::Tiny, 42));
    if full.items.len() <= 12 {
        return Err(format!(
            "dataset too small to stream a tail: {} item(s)",
            full.items.len()
        ));
    }
    // Prefixes stay inside the truncated base catalog: the streaming
    // scenario serves them before the 6-item tail has been ingested.
    let base_len = full.items.len() - 6;
    let prefixes: Vec<Vec<usize>> = full
        .sequences
        .iter()
        .map(|s| {
            s.iter().copied().filter(|&i| i < base_len).take(3).collect::<Vec<usize>>()
        })
        .filter(|p| !p.is_empty())
        .take(4)
        .collect();
    if prefixes.is_empty() {
        return Err("dataset produced no non-empty prefixes".into());
    }
    let seed = cli.seed ^ 0x16E5;
    let stream: Vec<Item> = full.items.iter().take(12).cloned().collect();

    // A custom fault plan (or --no-replay) narrows the run to the
    // kill-and-replay leg — how verify.sh drives the must-fail gate.
    let custom = cli.fault_plan.is_some() || no_replay;
    let plan = cli.fault_plan.clone().unwrap_or_else(|| "wal_corrupt@2".into());

    let mut outcomes = Vec::new();
    println!("== ingest_chaos: kill_and_replay (faults {plan}) ==");
    outcomes.push(kill_and_replay(&stream, &plan, no_replay));
    if !custom {
        println!("== ingest_chaos: ingest_under_load ==");
        outcomes.push(ingest_under_load(&full, &prefixes, seed));
        println!("== ingest_chaos: shard_quarantine (faults shard_panic@0) ==");
        outcomes.push(shard_quarantine(&full, &prefixes, seed));
    }

    for o in &outcomes {
        let detail: Vec<String> =
            o.detail.iter().map(|(k, v)| format!("{k} {v}")).collect();
        println!(
            "  {}: {} in {:.2}s ({})",
            o.name,
            if o.failures.is_empty() { "ok" } else { "FAILED" },
            o.wall.as_secs_f64(),
            detail.join(", "),
        );
        for f in &o.failures {
            println!("    breach: {f}");
        }
    }

    let json = format!(
        "{{\n  \"bin\": \"ingest_chaos\",\n  \"scenarios\": [\n{}\n  ]\n}}\n",
        outcomes.iter().map(outcome_json).collect::<Vec<_>>().join(",\n"),
    );
    std::fs::write("BENCH_ingest.json", &json)
        .map_err(|e| format!("cannot write BENCH_ingest.json: {e}"))?;
    println!("ingest_chaos: wrote BENCH_ingest.json");
    pmm_bench::obs::finish("ingest_chaos");

    let failures: Vec<String> = outcomes
        .iter()
        .flat_map(|o| o.failures.iter().map(move |f| format!("{}: {f}", o.name)))
        .collect();
    if failures.is_empty() {
        println!("ingest_chaos PASSED: {} scenario(s) honored the durability contract", outcomes.len());
        Ok(())
    } else {
        Err(format!("ingest_chaos FAILED: {}", failures.join("; ")))
    }
}
