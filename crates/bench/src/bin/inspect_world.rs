//! World-model diagnostics: prints, for every dataset, the calibration
//! quantities DESIGN.md §6 is based on — popularity Gini, transition
//! entropy, and the cross-dataset content-similarity structure that
//! makes transfer possible (same-category > cross-category overlap).

use pmm_bench::cli::Cli;
use pmm_bench::runner;
use pmm_bench::table::Table;
use pmm_data::analysis::{content_similarity, popularity_gini, transition_entropy};
use pmm_data::registry::{build_dataset, DatasetId, SOURCES, TARGETS};

fn main() {
    let cli = Cli::from_env();
    pmm_bench::obs::setup(&cli);
    let world = runner::world();

    let mut t = Table::new(
        "World diagnostics — per-dataset structure",
        &["Dataset", "users", "items", "pop. Gini", "trans. entropy (bits)"],
    );
    for id in SOURCES.into_iter().chain(TARGETS) {
        let ds = build_dataset(&world, id, cli.scale, cli.seed);
        let st = ds.stats();
        t.row(&[
            id.name().to_string(),
            st.users.to_string(),
            st.items.to_string(),
            format!("{:.3}", popularity_gini(&ds)),
            format!("{:.2}", transition_entropy(&ds, 3)),
        ]);
    }
    t.print();

    // Content-similarity structure across the food/clothes slices.
    let probes = [
        DatasetId::BiliFood,
        DatasetId::KwaiFood,
        DatasetId::HmClothes,
        DatasetId::AmazonClothes,
    ];
    let datasets: Vec<_> = probes
        .iter()
        .map(|&id| build_dataset(&world, id, cli.scale, cli.seed))
        .collect();
    let mut sim = Table::new(
        "Cross-dataset content similarity (cosine of mean item latents)",
        &["", probes[0].name(), probes[1].name(), probes[2].name(), probes[3].name()],
    );
    for (i, a) in datasets.iter().enumerate() {
        let mut row = vec![probes[i].name().to_string()];
        for b in &datasets {
            row.push(format!("{:.2}", content_similarity(a, b)));
        }
        sim.row(&row);
    }
    sim.print();
    println!(
        "\nExpected structure: food-food and clothes-clothes pairs (cross-\n\
         platform) similar; food-clothes pairs dissimilar — items never\n\
         transfer, content geometry does."
    );
    pmm_bench::obs::finish("inspect_world");
}
