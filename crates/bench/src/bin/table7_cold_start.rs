//! Table VII: cold-start comparison on the four source datasets —
//! SASRec vs PMMRec-T vs PMMRec-V vs full PMMRec, evaluated on
//! truncated sub-sequences ending in a cold item (< 10 train
//! occurrences in the paper; threshold scales with our corpus).
//!
//! Expected shape (paper): every content-based variant beats the
//! ID-based SASRec by an order of magnitude; PMMRec-T beats PMMRec-V
//! (text carries denser information than images).

use pmm_bench::cli::Cli;
use pmm_bench::runner;
use pmm_bench::table::Table;
use pmm_data::cold::cold_holdout;
use pmm_data::registry::{Scale, SOURCES};
use pmm_data::split::LeaveOneOut;
use pmm_eval::evaluate_cases;
use pmmrec::{Modality, PmmRec, PmmRecConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Paper HR@10 values (SASRec, PMMRec-T, PMMRec-V, PMMRec).
const PAPER_HR10: [(&str, [f32; 4]); 4] = [
    ("Bili", [0.0883, 1.1476, 0.6886, 1.0240]),
    ("Kwai", [0.0311, 2.9490, 2.9191, 3.5106]),
    ("HM", [0.0576, 2.1767, 1.3893, 2.0387]),
    ("Amazon", [0.1276, 3.6437, 3.3248, 4.1646]),
];

fn main() {
    let cli = Cli::from_env();
    pmm_bench::obs::setup(&cli);
    let world = runner::world();
    // Our corpora are ~500x smaller than the paper's; a lower cold
    // threshold keeps a comparable fraction of items "cold".
    let threshold = match cli.scale {
        Scale::Tiny => 6,
        Scale::Paper => 7,
    };

    let mut t = Table::new(
        "Table VII — cold-start performance (HR@10 / NG@10)",
        &["Dataset", "#cold cases", "SASRec", "PMMRec-T", "PMMRec-V", "PMMRec", "paper (SAS vs PMM)"],
    );

    for (di, id) in SOURCES.into_iter().enumerate() {
        let mut split = runner::split(&world, id, &cli);
        // Strict holdout: cold items never appear in training, so ID
        // embeddings for them are untrained while content remains
        // readable (see pmm_data::cold::cold_holdout).
        let (train, cases_raw) = cold_holdout(&split, threshold);
        split.train = train;
        let cases: Vec<LeaveOneOut> = cases_raw
            .into_iter()
            .map(|c| LeaveOneOut {
                prefix: c.prefix,
                target: c.target,
            })
            .collect();
        pmm_obs::obs_info!("table7", "{}: {} cold cases", id.name(), cases.len());
        if cases.is_empty() {
            t.row(&[id.name().to_string(), "0".to_string()]);
            continue;
        }

        let mut rng = StdRng::seed_from_u64(cli.seed ^ 0x77);
        let fmt = |m: pmm_eval::MetricSet| format!("{:.2}/{:.2}", m.hr10(), m.ndcg10());

        let mut sas = pmm_baselines::sasrec::build(Default::default(), &split.dataset, &mut rng);
        runner::run(&mut sas, &split, &cli);
        let sas_m = evaluate_cases(&sas, &cases);

        let mut row = vec![id.name().to_string(), cases.len().to_string(), fmt(sas_m)];
        for modality in [Modality::TextOnly, Modality::VisionOnly, Modality::Both] {
            let cfg = PmmRecConfig {
                modality,
                ..PmmRecConfig::default()
            };
            let mut model = PmmRec::new(cfg, &split.dataset, &mut rng);
            model.set_pretraining(true); // full Eq. 12 objective, as on sources
            runner::run(&mut model, &split, &cli);
            let m = evaluate_cases(&model, &cases);
            row.push(fmt(m));
        }
        let p = PAPER_HR10[di].1;
        row.push(format!("{:.2} vs {:.2}", p[0], p[3]));
        t.row(&row);
    }
    t.print();
    println!(
        "\nPaper shape: content-based variants dominate the ID baseline on cold\n\
         items; PMMRec-T > PMMRec-V (information density of text vs images)."
    );
    pmm_bench::obs::finish("table7_cold_start");
}
