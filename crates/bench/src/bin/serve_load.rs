//! Open-loop load generator for the supervised serving stack.
//!
//! Unlike `serve_chaos` (closed-loop, one request at a time, proving
//! ladder *correctness*), this binary drives the server the way real
//! traffic does: arrivals follow a seeded Poisson process with
//! occasional bursts, submitted on schedule whether or not earlier
//! requests have finished. Three scenarios run by default:
//!
//! * `clean` — no faults; every SLO must hold;
//! * `panic_storm` — injected worker panics (`panic@N`) mid-stream;
//!   retries and respawns must keep every request resolving inside the
//!   restart- and retry-rate budgets;
//! * `mid_swap` — a snapshot hot-swap fires halfway through the
//!   stream; nothing may shed on account of the reload and every
//!   response must be attributable to exactly one epoch.
//!
//! `--fault-plan SPEC` and/or `--swap-at N` replace the default
//! scenarios with a single custom one (how `scripts/verify.sh` runs
//! the faulted gate). Per scenario the run reports p50/p95/p99 request
//! latency, throughput, and the shed/retry/restart/swap counters, all
//! into `BENCH_serve.json`; with `--slo-gate` any SLO breach in any
//! scenario exits non-zero.
//!
//! With `--gate`, the previously recorded clean-scenario numbers in
//! `BENCH_serve.json` become a regression baseline (the `kernel_bench`
//! pattern): p99 latency more than 10% over the recording, or
//! throughput more than 10% under it, fails the run. The first gated
//! run seeds the baseline.

use pmm_baselines::Popularity;
use pmm_bench::cli::Cli;
use pmm_bench::runner;
use pmm_data::dataset::Dataset;
use pmm_data::registry::DatasetId;
use pmm_obs::json::JsonObj;
use pmm_serve::{
    BreakerConfig, PmmEngine, Request, Server, ServeError, ServerConfig, SupervisorConfig,
};
use pmm_trace::{MetricsSnapshot, SloPolicy};
use pmmrec::{PmmRec, PmmRecConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Small serving model, seeded identically per replica.
fn model_cfg() -> PmmRecConfig {
    PmmRecConfig {
        d: 16,
        heads: 2,
        text_layers: 1,
        vision_layers: 1,
        fusion_layers: 1,
        user_layers: 1,
        dropout: 0.0,
        ..Default::default()
    }
}

fn engine_factory(
    ds: Arc<Dataset>,
    seed: u64,
) -> impl Fn() -> PmmEngine + Send + Sync + 'static {
    move || PmmEngine::new(PmmRec::new(model_cfg(), &ds, &mut StdRng::seed_from_u64(seed)))
}

/// One load scenario: a fault plan, an optional mid-run swap point,
/// and the request count.
struct Scenario {
    name: &'static str,
    fault_plan: Option<String>,
    swap_at: Option<u64>,
    requests: u64,
}

/// Requests per scenario; small enough to keep the three-scenario run
/// inside a few seconds at tiny scale, large enough that rates (shed,
/// restart, retry) are meaningful against their SLO budgets.
const REQUESTS: u64 = 48;

fn scenarios(cli: &Cli) -> Vec<Scenario> {
    if cli.fault_plan.is_some() || cli.swap_at.is_some() {
        return vec![Scenario {
            name: "custom",
            fault_plan: cli.fault_plan.clone(),
            swap_at: cli.swap_at,
            requests: REQUESTS,
        }];
    }
    vec![
        Scenario { name: "clean", fault_plan: None, swap_at: None, requests: REQUESTS },
        Scenario {
            name: "panic_storm",
            fault_plan: Some("panic@3,panic@17,panic@31".into()),
            swap_at: None,
            requests: REQUESTS,
        },
        Scenario {
            name: "mid_swap",
            fault_plan: None,
            swap_at: Some(REQUESTS / 2),
            requests: REQUESTS,
        },
    ]
}

/// Open-loop arrival schedule: the delay before each submission.
/// Inter-arrival gaps are exponential (Poisson process, ~`mean_gap`
/// apart) and every arrival has a 10% chance of trailing a 3-deep
/// burst of back-to-back submissions — the bunching that makes
/// open-loop load different from a polite closed loop.
fn arrival_schedule(seed: u64, n: u64, mean_gap: Duration) -> Vec<Duration> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x4C0AD);
    let mut gaps = Vec::with_capacity(n as usize);
    while (gaps.len() as u64) < n {
        let u: f64 = rng.random();
        // Inverse-CDF exponential sample; clamp away u == 0.
        let gap = mean_gap.as_secs_f64() * -(1.0 - u).max(1e-12).ln();
        gaps.push(Duration::from_secs_f64(gap));
        if rng.random_bool(0.10) {
            for _ in 0..3 {
                if (gaps.len() as u64) < n {
                    gaps.push(Duration::ZERO);
                }
            }
        }
    }
    gaps
}

/// What one scenario produced, ready for the JSON report.
struct Outcome {
    name: &'static str,
    submitted: u64,
    served: u64,
    shed: u64,
    missed: u64,
    wall: Duration,
    window: MetricsSnapshot,
    report: pmm_trace::SloReport,
    tiers: Vec<(&'static str, u64)>,
    epoch_mismatch: u64,
}

fn run_scenario(
    sc: &Scenario,
    dataset: &Arc<Dataset>,
    train: &[Vec<usize>],
    prefixes: &[Vec<usize>],
    seed: u64,
) -> Outcome {
    if let Some(spec) = &sc.fault_plan {
        match pmm_fault::FaultPlan::parse(spec) {
            Ok(plan) => pmm_fault::install(plan),
            Err(e) => {
                // Validated at CLI parse time for custom plans; the
                // built-in plans are constants.
                println!("serve_load: ignoring bad fault plan {spec:?}: {e}");
            }
        }
    } else {
        pmm_fault::clear();
    }
    let base = MetricsSnapshot::capture();
    let popularity = Popularity::from_sequences(dataset.items.len(), train);
    // One worker keeps fault-plan occurrences aligned with submission
    // order; the breaker never trips so injected panics exercise the
    // supervisor, not the tier ladder.
    let server = Arc::new(Server::start(
        ServerConfig {
            workers: Some(1),
            deadline: Duration::from_secs(5),
            breaker: BreakerConfig {
                window: 8,
                trip_failures: 1_000_000,
                cooldown_denials: 1_000_000,
            },
            supervisor: SupervisorConfig {
                restart_backoff: Duration::from_millis(2),
                watchdog_interval: Duration::from_millis(5),
                ..SupervisorConfig::default()
            },
            ..ServerConfig::default()
        },
        engine_factory(Arc::clone(dataset), seed),
        popularity,
    ));

    let gaps = arrival_schedule(seed, sc.requests, Duration::from_millis(2));
    let started = Instant::now();
    let mut handles = Vec::with_capacity(gaps.len());
    let mut shed = 0u64;
    let mut swapper = None;
    for (i, gap) in gaps.iter().enumerate() {
        if !gap.is_zero() {
            std::thread::sleep(*gap);
        }
        let prefix = prefixes[i % prefixes.len()].clone();
        let req = Request { user: i as u64, prefix, k: 10, exclude_seen: true, deadline: None };
        match server.submit(req) {
            Ok(h) => handles.push(h),
            Err(ServeError::Rejected { .. }) => shed += 1,
            Err(e) => println!("serve_load: unexpected submit error: {e}"),
        }
        if sc.swap_at == Some(i as u64 + 1) {
            // Swap mid-stream from its own thread so the drain overlaps
            // live arrivals — the zero-downtime claim under test.
            let server = Arc::clone(&server);
            let ds = Arc::clone(dataset);
            swapper = Some(std::thread::spawn(move || {
                server.swap_snapshot(engine_factory(ds, seed ^ 0xBEEF))
            }));
        }
    }
    // The swap (if any) finishes while the backlog drains; join it
    // first so `snapshot_epoch` below is the final published epoch.
    if let Some(t) = swapper.take() {
        let report = t.join().expect("swap thread");
        println!(
            "  swap: epoch {} drained in {:.1}ms across {} worker(s), {} given up",
            report.epoch,
            report.drain.as_secs_f64() * 1e3,
            report.workers,
            report.given_up,
        );
    }
    // Open loop: nothing waited until every arrival is in flight.
    let (mut served, mut missed) = (0u64, 0u64);
    let mut tiers: Vec<(&'static str, u64)> = Vec::new();
    let mut epoch_mismatch = 0u64;
    let swap_epoch = server.snapshot_epoch();
    for h in handles {
        match h.wait() {
            Ok(resp) => {
                served += 1;
                if resp.epoch > swap_epoch {
                    epoch_mismatch += 1;
                }
                match tiers.iter_mut().find(|(t, _)| *t == resp.tier.label()) {
                    Some((_, n)) => *n += 1,
                    None => tiers.push((resp.tier.label(), 1)),
                }
            }
            Err(ServeError::DeadlineExceeded { .. }) => missed += 1,
            Err(e) => println!("serve_load: unexpected serve error: {e}"),
        }
    }
    let wall = started.elapsed();
    drop(server);
    pmm_fault::clear();
    let window = MetricsSnapshot::capture().delta_since(&base);
    let report = pmm_trace::slo::evaluate(&window, &SloPolicy::default());
    Outcome {
        name: sc.name,
        submitted: sc.requests,
        served,
        shed,
        missed,
        wall,
        window,
        report,
        tiers,
        epoch_mismatch,
    }
}

/// Latency quantiles of the request-total histogram in this window.
fn latency(window: &MetricsSnapshot) -> (u64, u64, u64) {
    window.hist("request_total_ns").map_or((0, 0, 0), |h| {
        (h.quantile_ns(0.50), h.quantile_ns(0.95), h.quantile_ns(0.99))
    })
}

fn outcome_json(o: &Outcome) -> String {
    let (p50, p95, p99) = latency(&o.window);
    let tier_obj =
        o.tiers.iter().fold(JsonObj::new(), |obj, (t, n)| obj.u64(t, *n)).finish();
    let slo_rows: Vec<String> = o
        .report
        .checks
        .iter()
        .map(|c| {
            format!(
                "        {}",
                JsonObj::new()
                    .str("check", c.name)
                    .f64("value", c.value)
                    .f64("threshold", c.threshold)
                    .bool("breached", c.breached())
                    .finish()
            )
        })
        .collect();
    format!(
        "    {{\n      \"scenario\": \"{}\",\n      \"submitted\": {},\n      \"served\": {},\n      \"shed\": {},\n      \"missed\": {},\n      \"retries\": {},\n      \"retries_denied\": {},\n      \"restarts\": {},\n      \"panics\": {},\n      \"wedges\": {},\n      \"swaps\": {},\n      \"swap_drain_ns\": {},\n      \"wall_s\": {:.6},\n      \"throughput_rps\": {:.2},\n      \"p50_ns\": {p50},\n      \"p95_ns\": {p95},\n      \"p99_ns\": {p99},\n      \"tiers\": {tier_obj},\n      \"slo_ok\": {},\n      \"slo\": [\n{}\n      ]\n    }}",
        o.name,
        o.submitted,
        o.served,
        o.shed,
        o.missed,
        o.window.counter("serve_retries"),
        o.window.counter("serve_retries_denied"),
        o.window.counter("serve_worker_restarts"),
        o.window.counter("serve_worker_panics"),
        o.window.counter("serve_worker_wedges"),
        o.window.counter("serve_swaps"),
        o.window.counter("serve_swap_drain_ns"),
        o.wall.as_secs_f64(),
        o.served as f64 / o.wall.as_secs_f64().max(1e-9),
        o.report.ok(),
        slo_rows.join(",\n"),
    )
}

/// Pulls `"key": <number>` out of a previously written
/// `BENCH_serve.json` (no JSON dependency in the workspace). The clean
/// scenario is emitted first, so the first occurrence is its value.
fn read_baseline(src: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let at = src.find(&pat)? + pat.len();
    let rest = src[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn main() -> Result<(), String> {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let gate = raw.iter().any(|a| a.as_str() == "--gate");
    let cli = Cli::parse(raw.into_iter().filter(|a| a.as_str() != "--gate"));
    pmm_bench::obs::setup(&cli);
    pmm_obs::set_enabled(true);

    // Read the recorded baseline BEFORE this run overwrites the file.
    let baseline = std::fs::read_to_string("BENCH_serve.json").ok().and_then(|s| {
        Some((read_baseline(&s, "p99_ns")?, read_baseline(&s, "throughput_rps")?))
    });

    // Injected panics are the scenario, not a crash: silence their
    // backtraces so the run's output stays readable, and let every
    // other panic report through the default hook.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<&str>()
            .map(|s| s.contains("injected worker panic"))
            .or_else(|| {
                info.payload()
                    .downcast_ref::<String>()
                    .map(|s| s.contains("injected worker panic"))
            })
            .unwrap_or(false);
        if !injected {
            default_hook(info);
        }
    }));

    let world = runner::world();
    let split = runner::split(&world, DatasetId::HmClothes, &cli);
    let prefixes: Vec<Vec<usize>> = split
        .valid
        .iter()
        .take(6)
        .map(|c| c.prefix.clone())
        .filter(|p| !p.is_empty())
        .collect();
    if prefixes.is_empty() {
        return Err("dataset produced no non-empty validation prefixes".into());
    }
    let train = split.train.clone();
    let dataset = Arc::new(split.dataset);
    let seed = cli.seed ^ 0x10AD;

    let mut outcomes = Vec::new();
    for sc in scenarios(&cli) {
        println!(
            "== serve_load: {} ({} requests{}{}) ==",
            sc.name,
            sc.requests,
            sc.fault_plan.as_deref().map(|p| format!(", faults {p}")).unwrap_or_default(),
            sc.swap_at.map(|n| format!(", swap@{n}")).unwrap_or_default(),
        );
        let o = run_scenario(&sc, &dataset, &train, &prefixes, seed);
        let (p50, p95, p99) = latency(&o.window);
        println!(
            "  {} submitted: {} served, {} shed, {} missed in {:.2}s ({:.0} req/s)",
            o.submitted,
            o.served,
            o.shed,
            o.missed,
            o.wall.as_secs_f64(),
            o.served as f64 / o.wall.as_secs_f64().max(1e-9),
        );
        println!(
            "  latency p50 {:.2}ms p95 {:.2}ms p99 {:.2}ms; retries {} restarts {} swaps {}",
            p50 as f64 / 1e6,
            p95 as f64 / 1e6,
            p99 as f64 / 1e6,
            o.window.counter("serve_retries"),
            o.window.counter("serve_worker_restarts"),
            o.window.counter("serve_swaps"),
        );
        for c in o.report.breaches() {
            println!("  slo {} BREACHED: {:.4} over {:.4}", c.name, c.value, c.threshold);
        }
        outcomes.push(o);
    }

    let json = format!(
        "{{\n  \"bin\": \"serve_load\",\n  \"scenarios\": [\n{}\n  ]\n}}\n",
        outcomes.iter().map(outcome_json).collect::<Vec<_>>().join(",\n"),
    );
    match std::fs::write("BENCH_serve.json", &json) {
        Ok(()) => println!("serve_load: wrote BENCH_serve.json"),
        Err(e) => println!("serve_load: cannot write BENCH_serve.json: {e}"),
    }
    pmm_bench::obs::finish("serve_load");

    // Hard invariants, gate or no gate: every accepted request
    // resolved, and no response claimed an epoch newer than the final
    // published snapshot.
    let mut failures: Vec<String> = Vec::new();
    for o in &outcomes {
        if o.served + o.missed + o.shed != o.submitted {
            failures.push(format!(
                "{}: {} served + {} missed + {} shed != {} submitted",
                o.name, o.served, o.missed, o.shed, o.submitted
            ));
        }
        if o.epoch_mismatch > 0 {
            failures.push(format!("{}: {} responses with impossible epochs", o.name, o.epoch_mismatch));
        }
        if o.served == 0 {
            failures.push(format!("{}: stream fully starved", o.name));
        }
    }
    if cli.slo_gate {
        for o in &outcomes {
            if !o.report.ok() {
                let names: Vec<&str> = o.report.breaches().iter().map(|c| c.name).collect();
                failures.push(format!("{}: SLO gate failed ({})", o.name, names.join(", ")));
            }
        }
    }
    // Recorded-baseline regression gate over the clean scenario: >10%
    // p99 or throughput regression against the last recorded numbers
    // fails. A 2ms absolute p99 allowance keeps scheduler jitter on
    // millisecond-scale baselines from tripping the relative gate.
    if gate && cli.fault_plan.is_none() && cli.swap_at.is_none() {
        let clean = &outcomes[0];
        let (_, _, p99) = latency(&clean.window);
        let tput = clean.served as f64 / clean.wall.as_secs_f64().max(1e-9);
        match baseline {
            Some((base_p99, base_tput)) => {
                println!(
                    "serve_load: gate — p99 {:.2}ms vs recorded {:.2}ms, throughput {tput:.0} rps vs recorded {base_tput:.0} rps",
                    p99 as f64 / 1e6,
                    base_p99 / 1e6,
                );
                let p99_budget = (base_p99 * 1.10).max(base_p99 + 2e6);
                if p99 as f64 > p99_budget {
                    failures.push(format!(
                        "clean: p99 {:.2}ms regressed >10% against the recorded {:.2}ms",
                        p99 as f64 / 1e6,
                        base_p99 / 1e6
                    ));
                }
                if tput < base_tput * 0.90 {
                    failures.push(format!(
                        "clean: throughput {tput:.0} rps regressed >10% against the recorded {base_tput:.0} rps"
                    ));
                }
            }
            None => println!("serve_load: gate — no recorded baseline, this run seeds it"),
        }
    }
    if failures.is_empty() {
        println!("serve_load PASSED: {} scenario(s) within budget", outcomes.len());
        Ok(())
    } else {
        Err(format!("serve_load FAILED: {}", failures.join("; ")))
    }
}
