//! Matmul-kernel and quantization benchmark with regression gates.
//!
//! Measures, at one worker (kernel quality, not parallel scaling):
//!
//! - the packed register-tiled f32 path against the forced strided
//!   scalar path at 256³ — gated at ≥2x, and bit-identity of the
//!   dispatched kernel is asserted at threads {1, 2, 4, 7};
//! - the dispatch threshold: below `TILE_MIN_MULADDS` the scalar path
//!   must actually be the faster one (the threshold exists so tiny
//!   products never pay the O(m·k) packing pass) — gated at ≤10%
//!   overhead versus the forced tiled path;
//! - the dequant-free int8 kernel against the f32 product on a
//!   ranking-shaped workload (informational);
//! - a quantized-rank smoke: a briefly-trained model evaluated over
//!   the validation cases at f32 and int8 — HR@10 must agree within
//!   1% relative, and `recommend_top_k` must serve end-to-end at Int8.
//!
//! Writes `BENCH_kernel.json`. With `--gate`, the previously recorded
//! file is read *before* being overwritten and the run fails if the
//! tiled speedup regressed more than 10% against it.

use pmm_bench::cli::Cli;
use pmm_data::registry::{build_dataset, DatasetId, Scale};
use pmm_data::split::SplitDataset;
use pmm_data::world::{World, WorldConfig};
use pmm_eval::{evaluate_ranks, rank_of_target, train_model, MetricSet, TrainConfig};
use pmm_obs::json::JsonObj;
use pmm_tensor::kernel_testing as kt;
use pmm_tensor::{QTensor, Tensor};
use pmmrec::{Modality, PmmRec, PmmRecConfig, Precision};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Best-of-`reps` wall time of `f`, in seconds.
fn time_best(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

/// Pulls `"key": <number>` out of a previously written
/// `BENCH_kernel.json` (no JSON dependency in the workspace).
fn read_baseline(src: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let at = src.find(&pat)? + pat.len();
    let rest = src[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let gate = raw.iter().any(|a| a.as_str() == "--gate");
    let cli = Cli::parse(raw.into_iter().filter(|a| a.as_str() != "--gate"));
    pmm_bench::obs::setup(&cli);

    let baseline = std::fs::read_to_string("BENCH_kernel.json")
        .ok()
        .and_then(|s| read_baseline(&s, "tiled_speedup_256"));

    let mut rng = StdRng::seed_from_u64(cli.seed);
    let a = Tensor::randn(&[256, 256], 1.0, &mut rng);
    let b = Tensor::randn(&[256, 256], 1.0, &mut rng);

    // --- Tiled vs scalar at 256³, one worker. The public matmul must
    // dispatch this shape to the tiled path; the scalar time comes from
    // forcing the pre-tiling kernel on the same inputs.
    assert!(kt::takes_tiled_path(256, 256, 256));
    pmm_par::set_threads(Some(1));
    let tiled_s = time_best(7, || {
        let _ = a.matmul(&b);
    });
    let scalar_s = time_best(7, || {
        let _ = kt::matmul_small(&a, &b, false, false);
    });
    pmm_par::set_threads(None);
    let speedup = scalar_s / tiled_s;
    println!(
        "kernel_bench: matmul 256^3  scalar {:.3} ms  tiled {:.3} ms  speedup {speedup:.2}x",
        scalar_s * 1e3,
        tiled_s * 1e3
    );

    // --- Bit-identity of the dispatched kernel across worker counts,
    // all four transpose modes.
    let mut identical = true;
    for (trans_a, trans_b) in [(false, false), (false, true), (true, false), (true, true)] {
        let mut reference: Option<Tensor> = None;
        for threads in [1usize, 2, 4, 7] {
            pmm_par::set_threads(Some(threads));
            let got = a.matmul_t(&b, trans_a, trans_b);
            pmm_par::set_threads(None);
            match &reference {
                None => reference = Some(got),
                Some(want) if *want != got => {
                    identical = false;
                    println!("kernel_bench: DIVERGED ta={trans_a} tb={trans_b} threads={threads}");
                }
                Some(_) => {}
            }
        }
    }

    // --- Dispatch-threshold guard: a tiny product (512 multiply-adds,
    // far below TILE_MIN_MULADDS) stays on the scalar path, and that
    // path must be no slower than paying the packing pass would be.
    let ta = Tensor::randn(&[4, 8], 1.0, &mut rng);
    let tb = Tensor::randn(&[8, 16], 1.0, &mut rng);
    assert!(!kt::takes_tiled_path(4, 8, 16), "tiny shape must dispatch to the scalar path");
    pmm_par::set_threads(Some(1));
    let tiny_dispatch_s = time_best(9, || {
        for _ in 0..20_000 {
            let _ = ta.matmul(&tb);
        }
    });
    let tiny_tiled_s = time_best(9, || {
        for _ in 0..20_000 {
            let _ = kt::matmul_tiled(&ta, &tb, false, false);
        }
    });
    pmm_par::set_threads(None);
    let small_overhead = tiny_dispatch_s / tiny_tiled_s;
    println!(
        "kernel_bench: tiny 4x8x16 x20k  dispatched {:.3} ms  forced-tiled {:.3} ms  ratio {small_overhead:.2}",
        tiny_dispatch_s * 1e3,
        tiny_tiled_s * 1e3
    );

    // --- int8 kernel vs f32 on a ranking-shaped product: a [2048, 64]
    // catalogue scored for 8 users (quantization outside the timer —
    // the serving path amortizes it through the catalogue cache).
    let cat = Tensor::randn(&[2048, 64], 1.0, &mut rng);
    let users = Tensor::randn(&[8, 64], 1.0, &mut rng);
    let qcat = QTensor::quantize_rows(&cat);
    let qusers = QTensor::quantize_rows(&users);
    pmm_par::set_threads(Some(1));
    let f32_rank_s = time_best(9, || {
        for _ in 0..50 {
            let _ = users.matmul_t(&cat, false, true);
        }
    });
    let q_rank_s = time_best(9, || {
        for _ in 0..50 {
            let _ = qusers.matmul_nt(&qcat);
        }
    });
    pmm_par::set_threads(None);
    let q_speedup = f32_rank_s / q_rank_s;
    println!(
        "kernel_bench: rank 8x64x2048 x50  f32 {:.3} ms  int8 {:.3} ms  ratio {q_speedup:.2}x",
        f32_rank_s * 1e3,
        q_rank_s * 1e3
    );

    // --- Quantized-rank smoke: brief training, then the validation
    // cases scored through the same staged path at both precisions.
    let world = World::new(WorldConfig::default());
    let ds = build_dataset(&world, DatasetId::HmClothes, Scale::Tiny, cli.seed);
    let split = SplitDataset::new(ds);
    let cfg = PmmRecConfig {
        d: 16,
        heads: 2,
        text_layers: 1,
        vision_layers: 1,
        fusion_layers: 1,
        user_layers: 1,
        dropout: 0.0,
        ..Default::default()
    };
    let mut model = PmmRec::new(cfg, &split.dataset, &mut StdRng::seed_from_u64(7));
    let _ = train_model(
        &mut model,
        &split,
        &TrainConfig {
            max_epochs: cli.epochs.unwrap_or(2),
            patience: 0,
            ..TrainConfig::default()
        },
        &mut StdRng::seed_from_u64(cli.seed),
    );

    let catalog = model.serve_catalog(Modality::Both).expect("both modalities present");
    let qcatalog = model.serve_catalog_q(Modality::Both).expect("both modalities present");
    let (mut ranks_f32, mut ranks_q) = (Vec::new(), Vec::new());
    for case in &split.valid {
        let user = model
            .serve_user_vector(&catalog, &case.prefix)
            .expect("validation prefixes are non-empty and in range");
        let s32 = user.matmul_t(&catalog, false, true);
        let sq = QTensor::quantize_rows(&user).matmul_nt(&qcatalog);
        ranks_f32.push(rank_of_target(s32.data(), case.target));
        ranks_q.push(rank_of_target(sq.data(), case.target));
    }
    let m32: MetricSet = evaluate_ranks(&ranks_f32);
    let mq: MetricSet = evaluate_ranks(&ranks_q);
    let hr_rel_delta = if m32.hr10() > 0.0 {
        ((mq.hr10() - m32.hr10()) / m32.hr10()).abs() as f64
    } else {
        0.0
    };
    println!("kernel_bench: f32  valid {m32}");
    println!("kernel_bench: int8 valid {mq}  (HR@10 rel delta {:.3}%)", hr_rel_delta * 100.0);

    // End-to-end: the Int8 knob serves a full top-k.
    let n_items = pmm_eval::SeqRecommender::n_items(&model);
    let prefix = &split.valid[0].prefix;
    let topk = model
        .recommend_top_k_with(Precision::Int8, prefix, 10, true)
        .expect("int8 recommend_top_k serves end-to-end");
    let distinct_seen = {
        let mut p = prefix.clone();
        p.sort_unstable();
        p.dedup();
        p.len()
    };
    assert_eq!(
        topk.len(),
        10.min(n_items.saturating_sub(distinct_seen)),
        "int8 path must fill the requested k"
    );

    let json = format!(
        "{{\n  \"bin\": \"kernel_bench\",\n  \"tiled_speedup_256\": {speedup:.3},\n  \"bit_identical\": {identical},\n  \"small_shape_dispatch_ratio\": {small_overhead:.3},\n  \"qmatmul_vs_f32_rank\": {q_speedup:.3},\n  \"results\": [\n{}\n  ]\n}}\n",
        [
            JsonObj::new().str("bench", "matmul_tiled_256").f64("wall_s", tiled_s).finish(),
            JsonObj::new().str("bench", "matmul_scalar_256").f64("wall_s", scalar_s).finish(),
            JsonObj::new().str("bench", "tiny_dispatch_20k").f64("wall_s", tiny_dispatch_s).finish(),
            JsonObj::new().str("bench", "tiny_forced_tiled_20k").f64("wall_s", tiny_tiled_s).finish(),
            JsonObj::new().str("bench", "rank_f32_8x64x2048_x50").f64("wall_s", f32_rank_s).finish(),
            JsonObj::new().str("bench", "rank_int8_8x64x2048_x50").f64("wall_s", q_rank_s).finish(),
            JsonObj::new()
                .str("bench", "quantized_rank_valid")
                .f64("hr10_f32", m32.hr10() as f64)
                .f64("hr10_int8", mq.hr10() as f64)
                .f64("ndcg10_f32", m32.ndcg10() as f64)
                .f64("ndcg10_int8", mq.ndcg10() as f64)
                .f64("hr10_rel_delta", hr_rel_delta)
                .u64("cases", m32.cases as u64)
                .finish(),
        ]
        .map(|r| format!("    {r}"))
        .join(",\n"),
    );
    match std::fs::write("BENCH_kernel.json", &json) {
        Ok(()) => println!("kernel_bench: wrote BENCH_kernel.json"),
        Err(e) => println!("kernel_bench: cannot write BENCH_kernel.json: {e}"),
    }
    pmm_bench::obs::finish("kernel_bench");

    // --- Gates. Machine-relative, so they hold on any host: the tiled
    // kernel must beat the scalar one 2x at 256³, the dispatch
    // threshold must pick the faster path for tiny shapes, and int8
    // ranking quality must track f32 within 1% relative HR@10.
    assert!(identical, "kernel diverged across worker counts");
    assert!(
        speedup >= 2.0,
        "tiled matmul speedup {speedup:.2}x at 256^3 is below the 2x floor"
    );
    assert!(
        small_overhead <= 1.10,
        "tiny-shape dispatch is {small_overhead:.2}x the forced-tiled path — the threshold no longer picks the fast path"
    );
    assert!(
        hr_rel_delta <= 0.01,
        "int8 HR@10 deviates {:.2}% (>1%) from f32",
        hr_rel_delta * 100.0
    );
    if gate {
        match baseline {
            Some(base) => {
                println!(
                    "kernel_bench: gate — speedup {speedup:.2}x vs recorded baseline {base:.2}x"
                );
                assert!(
                    speedup >= base * 0.9,
                    "tiled speedup {speedup:.2}x regressed >10% against the recorded {base:.2}x"
                );
            }
            None => println!("kernel_bench: gate — no recorded baseline, this run seeds it"),
        }
    }
    println!("kernel_bench: OK");
}
