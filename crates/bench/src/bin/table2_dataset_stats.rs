//! Table II: dataset statistics after preprocessing.
//!
//! Regenerates the statistics of all 14 datasets (4 sources + 10
//! targets) plus the fused source corpus at the chosen scale. Absolute
//! counts are scaled down from the paper (see DESIGN.md §2); the table
//! prints the paper's numbers alongside for the ratio comparison.

use pmm_bench::cli::Cli;
use pmm_bench::runner;
use pmm_bench::table::Table;
use pmm_data::registry::{build_dataset, fused_sources, SOURCES, TARGETS};

/// Paper Table II values: (users, items, actions, avg_len).
const PAPER: [(&str, usize, usize, usize, f32); 15] = [
    ("Source", 600_000, 232_772, 6_953_503, 11.59),
    ("Bili", 100_000, 44_887, 1_537_850, 15.38),
    ("Kwai", 200_000, 39_410, 1_512_646, 7.56),
    ("HM", 200_000, 85_019, 3_160_543, 15.80),
    ("Amazon", 100_000, 63_456, 742_464, 7.42),
    ("Bili_Food", 6_485, 1_574, 39_152, 6.04),
    ("Bili_Movie", 16_452, 3_493, 114_239, 6.94),
    ("Bili_Cartoon", 30_102, 4_702, 211_497, 7.03),
    ("Kwai_Food", 8_549, 2_097, 72_741, 8.51),
    ("Kwai_Movie", 8_477, 7_024, 60_208, 7.10),
    ("Kwai_Cartoon", 17_429, 7_284, 131_733, 7.56),
    ("HM_Clothes", 27_883, 2_742, 185_297, 6.65),
    ("HM_Shoes", 21_666, 3_743, 164_621, 7.60),
    ("Amazon_Clothes", 5_009, 5_855, 30_383, 6.06),
    ("Amazon_Shoes", 15_264, 16_852, 93_999, 6.16),
];

fn paper_row(name: &str) -> Option<&'static (&'static str, usize, usize, usize, f32)> {
    PAPER.iter().find(|r| r.0 == name)
}

fn main() {
    let cli = Cli::from_env();
    pmm_bench::obs::setup(&cli);
    let world = runner::world();
    let mut t = Table::new(
        format!("Table II — dataset statistics ({:?} scale, seed {})", cli.scale, cli.seed),
        &["Dataset", "#users", "#items", "#actions", "avg.len", "sparsity", "paper avg.len"],
    );
    let mut emit = |name: &str, ds: &pmm_data::dataset::Dataset| {
        let s = ds.stats();
        let p = paper_row(name).map(|r| format!("{:.2}", r.4)).unwrap_or_default();
        t.row(&[
            name.to_string(),
            s.users.to_string(),
            s.items.to_string(),
            s.actions.to_string(),
            format!("{:.2}", s.avg_length),
            format!("{:.2}%", 100.0 * s.sparsity),
            p,
        ]);
    };
    let fused = fused_sources(&world, cli.scale, cli.seed);
    emit("Source", &fused);
    for id in SOURCES.into_iter().chain(TARGETS) {
        let ds = build_dataset(&world, id, cli.scale, cli.seed);
        emit(id.name(), &ds);
    }
    t.print();
    println!(
        "\nShape checks mirrored from the paper: sources >> targets; HM is the\n\
         largest source; video targets have shorter sequences than sources."
    );
    pmm_bench::obs::finish("table2_dataset_stats");
}
