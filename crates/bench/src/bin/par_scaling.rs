//! Thread-scaling benchmark for the pmm-par kernel runtime.
//!
//! Times the parallelised tensor kernels plus the catalogue
//! encode/score path at several worker counts, verifies every output is
//! bit-identical to the single-threaded run, and writes
//! `BENCH_par.json`. At threads=1 the runtime dispatches as a plain
//! direct call, so that column *is* the sequential baseline; speedups
//! at higher counts only materialise where the hardware has cores to
//! give (the JSON records `hardware_threads` so readers can tell).
//!
//! This binary sweeps thread counts itself, overriding any `--threads`
//! flag or `PMM_THREADS` setting for the duration of each measurement.

use pmm_bench::cli::Cli;
use pmm_data::registry::{build_dataset, DatasetId, Scale};
use pmm_data::split::LeaveOneOut;
use pmm_data::world::{World, WorldConfig};
use pmm_eval::SeqRecommender;
use pmm_obs::json::JsonObj;
use pmm_tensor::Tensor;
use pmmrec::{PmmRec, PmmRecConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

struct BenchResult {
    name: &'static str,
    threads: usize,
    wall_s: f64,
}

/// Runs `f` `reps` times at the given thread count; returns the best
/// wall time and the last output for the bit-identity check.
fn time_at(threads: usize, reps: usize, mut f: impl FnMut() -> Vec<f32>) -> (f64, Vec<f32>) {
    pmm_par::set_threads(Some(threads));
    let mut best = f64::INFINITY;
    let mut out = Vec::new();
    for _ in 0..reps {
        let t0 = Instant::now();
        out = f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    pmm_par::set_threads(None);
    (best, out)
}

/// A small model over the tiny catalogue; the same seed gives the same
/// weights, so outputs are comparable bitwise across thread counts.
fn model() -> PmmRec {
    let world = World::new(WorldConfig::default());
    let ds = build_dataset(&world, DatasetId::HmClothes, Scale::Tiny, 42);
    let mut rng = StdRng::seed_from_u64(7);
    PmmRec::new(PmmRecConfig::default(), &ds, &mut rng)
}

fn main() {
    let cli = Cli::from_env();
    pmm_bench::obs::setup(&cli);
    let hw = pmm_par::hardware_threads();
    println!("par_scaling: hardware_threads={hw} (threads=1 is the sequential baseline)");
    for &t in THREAD_COUNTS.iter().filter(|&&t| t > hw) {
        println!(
            "par_scaling: WARNING threads={t} oversubscribes the {hw} hardware thread(s) — those rows measure contention, not scaling"
        );
    }

    let mut rng = StdRng::seed_from_u64(cli.seed);
    let a = Tensor::randn(&[256, 256], 1.0, &mut rng);
    let b = Tensor::randn(&[256, 256], 1.0, &mut rng);
    let a3 = Tensor::randn(&[8, 128, 64], 1.0, &mut rng);
    let b3 = Tensor::randn(&[8, 64, 128], 1.0, &mut rng);
    let sm = Tensor::randn(&[2048, 512], 1.0, &mut rng);

    let mut results: Vec<BenchResult> = Vec::new();
    let mut identical = true;

    type Kernel<'k> = Box<dyn Fn() -> Vec<f32> + 'k>;
    let kernels: Vec<(&'static str, usize, Kernel)> = vec![
        ("matmul_nn_256", 5, Box::new(|| a.matmul(&b).into_vec())),
        ("matmul_tt_256", 5, Box::new(|| a.matmul_t(&b, true, true).into_vec())),
        ("bmm_nn_8x128x64x128", 5, Box::new(|| a3.bmm_t(&b3, false, false).into_vec())),
        ("softmax_2048x512", 5, Box::new(|| sm.softmax_last().into_vec())),
        // Fresh model per call so the catalogue cache cannot serve the
        // encode; construction happens inside the timer but is the same
        // work at every thread count.
        ("catalog_encode_tiny", 2, Box::new(|| model().item_representations().into_vec())),
    ];
    for (name, reps, f) in &kernels {
        let mut reference: Option<Vec<f32>> = None;
        for &t in &THREAD_COUNTS {
            let (wall_s, out) = time_at(t, *reps, f);
            match &reference {
                None => reference = Some(out),
                Some(r) if *r != out => {
                    identical = false;
                    println!("par_scaling: {name} DIVERGED at threads={t}");
                }
                Some(_) => {}
            }
            println!("  {name:<24} threads={t}  {:.3} ms", wall_s * 1e3);
            results.push(BenchResult { name, threads: t, wall_s });
        }
    }

    // Catalogue scoring with a warm cache: times the score matmul and
    // the rank/top-k loops that sit on it.
    {
        let m = model();
        let _ = m.item_representations();
        let cases: Vec<LeaveOneOut> = (0..32)
            .map(|i| LeaveOneOut { prefix: vec![i % 8, (i + 1) % 8, (i + 2) % 8], target: 0 })
            .collect();
        let mut reference: Option<Vec<f32>> = None;
        for &t in &THREAD_COUNTS {
            let (wall_s, out) = time_at(t, 3, || {
                m.score_cases(&cases).into_iter().flatten().collect()
            });
            match &reference {
                None => reference = Some(out),
                Some(r) if *r != out => {
                    identical = false;
                    println!("par_scaling: score_cases DIVERGED at threads={t}");
                }
                Some(_) => {}
            }
            println!("  {:<24} threads={t}  {:.3} ms", "score_cases_32", wall_s * 1e3);
            results.push(BenchResult { name: "score_cases_32", threads: t, wall_s });
        }
    }

    let result_items: Vec<String> = results
        .iter()
        .map(|r| {
            format!(
                "    {}",
                JsonObj::new()
                    .str("bench", r.name)
                    .u64("threads", r.threads as u64)
                    // What the sweep could actually get: requested
                    // workers clamped to the hardware. Readers judging
                    // speedups should use this, not the request.
                    .u64("threads_effective", r.threads.min(hw) as u64)
                    .bool("oversubscribed", r.threads > hw)
                    .f64("wall_s", r.wall_s)
                    .finish()
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bin\": \"par_scaling\",\n  \"hardware_threads\": {hw},\n  \"bit_identical\": {identical},\n  \"results\": [\n{}\n  ]\n}}\n",
        result_items.join(",\n"),
    );
    match std::fs::write("BENCH_par.json", &json) {
        Ok(()) => println!("par_scaling: wrote BENCH_par.json ({} rows)", results.len()),
        Err(e) => println!("par_scaling: cannot write BENCH_par.json: {e}"),
    }
    pmm_bench::obs::finish("par_scaling");
    assert!(identical, "parallel kernels diverged from the sequential baseline");
}
