//! Table I: which transfer settings each method supports.
//!
//! This is a capability matrix, not a measurement: the rows are derived
//! from each implementation's actual interface (PMMRec's
//! `TransferSetting::ALL`; baselines' representation source).

use pmm_bench::cli::Cli;
use pmm_bench::table::Table;

fn main() {
    // Only the telemetry knobs apply, but parse everything so typo'd
    // flags error loudly instead of being ignored.
    let cli = Cli::from_env();
    pmm_bench::obs::setup(&cli);
    let mut t = Table::new(
        "Table I — comparison of transfer learning settings",
        &["Method", "Full", "Item Enc.", "User Enc.", "Text", "Vision"],
    );
    // PeterRec is cited but not evaluated in the paper's main tables;
    // it appears here as the representative ID-based transferable method.
    let rows: [(&str, [bool; 5]); 5] = [
        ("PeterRec (ID-based)", [false, false, false, false, false]),
        ("UniSRec", [false, false, false, true, false]),
        ("VQRec", [false, false, false, true, false]),
        ("MoRec", [false, false, false, true, true]),
        ("PMMRec (ours)", [true, true, true, true, true]),
    ];
    for (name, caps) in rows {
        let mut cells = vec![name.to_string()];
        cells.extend(caps.iter().map(|&c| if c { "yes" } else { "-" }.to_string()));
        t.row(&cells);
    }
    t.print();
    println!(
        "\nPMMRec's columns are exercised end-to-end by table5_versatility;\n\
         UniSRec/VQRec text-only and MoRec++ multi-modal paths run in table4_transfer."
    );
    pmm_bench::obs::finish("table1_versatility_matrix");
}
