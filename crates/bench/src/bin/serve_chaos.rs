//! Serving chaos test: drives the pmm-serve runtime through its four
//! resilience guarantees, each staged deterministically:
//!
//! * (a) overflowing the bounded queue sheds with `Rejected` (carrying
//!   the observed depth) instead of blocking or growing without bound;
//! * (b) a tripped encoder breaker routes requests down the degradation
//!   ladder — single surviving modality, then the last-good cache, then
//!   the popularity floor — with every response tier-tagged;
//! * (c) deadline-expired requests are cancelled between pipeline
//!   stages (queue and encode boundaries here) and counted;
//! * (d) with no faults injected, served top-k lists are bit-identical
//!   to direct `recommend_top_k` calls at every worker count.
//!
//! With `--fault-plan SPEC` the scripted scenarios are replaced by a
//! smoke batch under that plan: a fixed request stream is served and
//! the binary asserts zero panics, every accepted request answered
//! exactly once, and every response tier-tagged. `scripts/verify.sh`
//! runs both modes at tiny scale.
//!
//! The process exits non-zero when any invariant is violated.

use pmm_baselines::Popularity;
use pmm_bench::cli::Cli;
use pmm_bench::runner;
use pmm_data::dataset::Dataset;
use pmm_data::registry::DatasetId;
use pmm_obs::counter as ctr;
use pmm_serve::{
    BreakerConfig, BreakerState, Component, PmmEngine, Request, Server, ServeError, ServerConfig,
    Tier,
};
use pmmrec::{PmmRec, PmmRecConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Duration;

/// Small serving model; every replica is seeded identically so worker
/// engines (and the direct-call reference) are bit-identical.
fn model_cfg() -> PmmRecConfig {
    PmmRecConfig {
        d: 16,
        heads: 2,
        text_layers: 1,
        vision_layers: 1,
        fusion_layers: 1,
        user_layers: 1,
        dropout: 0.0,
        ..Default::default()
    }
}

fn engine_factory(
    ds: Arc<Dataset>,
    seed: u64,
) -> impl Fn() -> PmmEngine + Send + Sync + 'static {
    move || PmmEngine::new(PmmRec::new(model_cfg(), &ds, &mut StdRng::seed_from_u64(seed)))
}

struct Ctx {
    dataset: Arc<Dataset>,
    train: Vec<Vec<usize>>,
    prefixes: Vec<Vec<usize>>,
    seed: u64,
}

impl Ctx {
    fn server(&self, cfg: ServerConfig) -> Server<PmmEngine> {
        Server::start(
            cfg,
            engine_factory(Arc::clone(&self.dataset), self.seed),
            Popularity::from_sequences(self.dataset.items.len(), &self.train),
        )
    }
}

/// Generous deadline for scenarios where time is not the subject.
const RELAXED: Duration = Duration::from_secs(60);

fn relaxed_cfg() -> ServerConfig {
    ServerConfig {
        workers: Some(1),
        deadline: RELAXED,
        breaker: BreakerConfig { window: 8, trip_failures: 1, cooldown_denials: 1_000_000 },
        ..ServerConfig::default()
    }
}

fn request(user: u64, prefix: Vec<usize>, k: usize) -> Request {
    Request { user, prefix, k, exclude_seen: true, deadline: None }
}

/// (a) Queue overflow sheds deterministically: consumers are paused, so
/// capacity + 1 submissions must shed exactly the overflow.
fn scenario_overflow(ctx: &Ctx, check: &mut dyn FnMut(bool, &str)) {
    let shed_before = ctr::SERVE_SHED.get();
    let server = ctx.server(ServerConfig {
        queue_capacity: 4,
        start_paused: true,
        ..relaxed_cfg()
    });
    let accepted: Vec<_> = (0..4)
        .map(|u| server.submit(request(u, ctx.prefixes[0].clone(), 5)).unwrap())
        .collect();
    let mut sheds = 0;
    for u in 4..6 {
        match server.submit(request(u, ctx.prefixes[0].clone(), 5)) {
            Err(ServeError::Rejected { queue_depth }) => {
                sheds += 1;
                check(queue_depth == 4, "shed rejection reports the full queue depth");
            }
            other => check(false, &format!("overflow submission must shed, got {other:?}")),
        }
    }
    check(sheds == 2, "every submission beyond capacity shed");
    check(ctr::SERVE_SHED.get() - shed_before == 2, "shed counter tracked both rejections");
    server.set_paused(false);
    let served = accepted.into_iter().map(|h| h.wait()).collect::<Vec<_>>();
    check(
        served.iter().all(|r| matches!(r, Ok(resp) if resp.tier == Tier::Full)),
        "accepted backlog drained untouched at the full tier",
    );
    println!("  (a) overflow: 4 accepted, {sheds} shed at depth 4, backlog served in full");
}

/// (b) A tripped encoder breaker walks the ladder: single surviving
/// modality, then the last-good cache, then the popularity floor.
fn scenario_ladder(ctx: &Ctx, check: &mut dyn FnMut(bool, &str)) {
    let trips_before = ctr::SERVE_BREAKER_TRIPS.get();
    let server = ctx.server(relaxed_cfg());
    // Occurrences (single worker): req0 errs the text gate (occ 0) and
    // serves vision (occ 1 healthy); req1 reaches the vision rung
    // directly (breaker denies text rungs without consuming gates) and
    // errs it at occ 2 -> last-good cache; req2 is an unknown user with
    // every model rung open -> popularity.
    pmm_fault::install(pmm_fault::FaultPlan::parse("err@0,err@2").unwrap());
    let degraded = server.call(request(7, ctx.prefixes[0].clone(), 5)).unwrap();
    check(degraded.tier == Tier::VisionOnly, "text outage degrades to the vision rung");
    check(
        server.breaker_state(Component::TextEncoder) == BreakerState::Open,
        "text breaker tripped open",
    );
    let cached = server.call(request(7, ctx.prefixes[0].clone(), 5)).unwrap();
    check(cached.tier == Tier::CachedTopK, "known user falls back to the last-good cache");
    check(cached.items == degraded.items, "cache replays the last good top-k");
    check(
        server.breaker_state(Component::VisionEncoder) == BreakerState::Open,
        "vision breaker tripped open",
    );
    let floor = server.call(request(99, ctx.prefixes[1].clone(), 5)).unwrap();
    pmm_fault::clear();
    check(floor.tier == Tier::Popularity, "unknown user falls to the popularity floor");
    check(!floor.items.is_empty(), "popularity floor returns items");
    check(ctr::SERVE_BREAKER_TRIPS.get() - trips_before >= 2, "both encoder trips counted");
    println!(
        "  (b) ladder: tiers {} -> {} -> {} with text+vision breakers open",
        degraded.tier.label(),
        cached.tier.label(),
        floor.tier.label()
    );
}

/// (c) Deadline expiry cancels between stages — at the queue boundary
/// and at the encode boundary — and each miss is counted.
fn scenario_deadline(ctx: &Ctx, check: &mut dyn FnMut(bool, &str)) {
    let misses_before = ctr::SERVE_DEADLINE_MISSES.get();
    let server = ctx.server(ServerConfig {
        start_paused: true,
        slow_fault: Duration::from_millis(200),
        ..relaxed_cfg()
    });
    // Queue-boundary miss: the deadline expires while consumers pause.
    let stale = server
        .submit(Request {
            deadline: Some(Duration::from_millis(1)),
            ..request(1, ctx.prefixes[0].clone(), 5)
        })
        .unwrap();
    std::thread::sleep(Duration::from_millis(50));
    server.set_paused(false);
    check(
        stale.wait() == Err(ServeError::DeadlineExceeded { stage: "queue" }),
        "expired request cancelled at the queue boundary",
    );
    // Encode-boundary miss: an injected stall (200 ms) blows a 25 ms
    // budget; the stalled component is charged and trips.
    pmm_fault::install(pmm_fault::FaultPlan::parse("slow@0").unwrap());
    let slow = server.call(Request {
        deadline: Some(Duration::from_millis(25)),
        ..request(2, ctx.prefixes[0].clone(), 5)
    });
    check(
        slow == Err(ServeError::DeadlineExceeded { stage: "encode" }),
        "stalled encode cancelled at the encode boundary",
    );
    check(
        server.breaker_state(Component::TextEncoder) == BreakerState::Open,
        "the stalled component was charged with the timeout",
    );
    pmm_fault::clear();
    // Service continues around the tripped path.
    let after = server.call(request(3, ctx.prefixes[1].clone(), 5)).unwrap();
    check(after.tier == Tier::VisionOnly, "traffic routes around the tripped component");
    check(
        ctr::SERVE_DEADLINE_MISSES.get() - misses_before == 2,
        "both deadline misses counted",
    );
    println!("  (c) deadlines: cancelled at queue and encode boundaries, 2 misses counted");
}

/// (d) No faults: served results are bit-identical to direct
/// `recommend_top_k` calls at every worker count.
fn scenario_parity(ctx: &Ctx, check: &mut dyn FnMut(bool, &str)) {
    let reference = PmmRec::new(model_cfg(), &ctx.dataset, &mut StdRng::seed_from_u64(ctx.seed));
    let direct: Vec<_> = ctx
        .prefixes
        .iter()
        .map(|p| reference.recommend_top_k(p, 10, true).unwrap())
        .collect();
    for workers in [1usize, 2, 4] {
        let server = ctx.server(ServerConfig { workers: Some(workers), ..relaxed_cfg() });
        for (i, (prefix, want)) in ctx.prefixes.iter().zip(&direct).enumerate() {
            match server.call(request(i as u64, prefix.clone(), 10)) {
                Ok(resp) => {
                    check(resp.tier == Tier::Full, "healthy requests serve the full tier");
                    check(
                        &resp.items == want,
                        &format!("served top-k differs from direct call (workers {workers}, prefix {i})"),
                    );
                }
                Err(e) => check(false, &format!("healthy request failed: {e}")),
            }
        }
        server.shutdown();
    }
    println!(
        "  (d) parity: {} prefixes bit-identical to direct recommend_top_k at 1/2/4 workers",
        ctx.prefixes.len()
    );
}

/// `--fault-plan` smoke: serve a fixed stream under the caller's plan;
/// every accepted request must resolve exactly once, tier-tagged.
fn smoke(ctx: &Ctx, spec: &str, check: &mut dyn FnMut(bool, &str)) {
    println!("  smoke under fault plan {spec:?}");
    let server = ctx.server(ServerConfig {
        workers: None, // follow --threads / PMM_THREADS
        deadline: Duration::from_millis(250),
        slow_fault: Duration::from_millis(400),
        ..ServerConfig::default()
    });
    let (mut served, mut shed, mut missed) = (0u64, 0u64, 0u64);
    let mut tiers: Vec<&'static str> = Vec::new();
    for round in 0..3u64 {
        for (i, prefix) in ctx.prefixes.iter().enumerate() {
            let user = round * 100 + i as u64;
            match server.submit(request(user, prefix.clone(), 10)) {
                Err(ServeError::Rejected { .. }) => shed += 1,
                Err(e) => check(false, &format!("unexpected submit error: {e}")),
                Ok(handle) => match handle.wait() {
                    Ok(resp) => {
                        served += 1;
                        tiers.push(resp.tier.label());
                        check(!resp.items.is_empty(), "every response carries items");
                    }
                    Err(ServeError::DeadlineExceeded { .. }) => missed += 1,
                    Err(e) => check(false, &format!("unexpected serve error: {e}")),
                },
            }
        }
    }
    let submitted = 3 * ctx.prefixes.len() as u64;
    check(
        served + shed + missed == submitted,
        "every submission resolved exactly once (served, shed, or missed)",
    );
    check(served > 0, "the stream was not fully starved");
    let (slow_fired, err_fired) = pmm_fault::fired_encode();
    pmm_fault::clear();
    println!(
        "  {submitted} submitted: {served} served, {shed} shed, {missed} deadline-missed; encoder faults fired: slow {slow_fired}, err {err_fired}"
    );
    let mut dist: Vec<(&str, usize)> = Vec::new();
    for t in tiers {
        match dist.iter_mut().find(|(name, _)| *name == t) {
            Some((_, n)) => *n += 1,
            None => dist.push((t, 1)),
        }
    }
    let dist = dist.iter().map(|(t, n)| format!("{t} {n}")).collect::<Vec<_>>().join(", ");
    println!("  tier distribution: {dist}");
}

fn main() -> Result<(), String> {
    let cli = Cli::from_env();
    let custom_plan = cli.fault_plan.clone();
    pmm_bench::obs::setup(&cli);
    // Counters are the evidence this binary checks; force them on even
    // without a sink.
    pmm_obs::set_enabled(true);

    let world = runner::world();
    let split = runner::split(&world, DatasetId::HmClothes, &cli);
    let prefixes: Vec<Vec<usize>> = split
        .valid
        .iter()
        .take(6)
        .map(|c| c.prefix.clone())
        .filter(|p| !p.is_empty())
        .collect();
    let ctx = Ctx {
        dataset: Arc::new(split.dataset),
        train: split.train,
        prefixes,
        seed: cli.seed ^ 0x5E84E,
    };
    if ctx.prefixes.is_empty() {
        return Err("dataset produced no non-empty validation prefixes".into());
    }

    let mut failures = Vec::new();
    let mut check = |ok: bool, what: &str| {
        if !ok {
            failures.push(what.to_string());
        }
    };

    match &custom_plan {
        Some(spec) => {
            println!("== serve chaos — smoke mode ==");
            smoke(&ctx, spec, &mut check);
        }
        None => {
            println!("== serve chaos — scripted scenarios ==");
            scenario_overflow(&ctx, &mut check);
            scenario_ladder(&ctx, &mut check);
            scenario_deadline(&ctx, &mut check);
            scenario_parity(&ctx, &mut check);
        }
    }

    let requests = ctr::SERVE_REQUESTS.get();
    let shed = ctr::SERVE_SHED.get();
    let shed_rate = if requests > 0 { 100.0 * shed as f64 / requests as f64 } else { 0.0 };
    println!("== serve summary ==");
    println!(
        "  requests {requests}, shed {shed} ({shed_rate:.1}%), deadline misses {}, breaker trips {}, queue peak {}",
        ctr::SERVE_DEADLINE_MISSES.get(),
        ctr::SERVE_BREAKER_TRIPS.get(),
        ctr::serve_queue_peak(),
    );
    println!(
        "  tiers: full {}, single {}, cached {}, popularity {}",
        ctr::SERVE_TIER_FULL.get(),
        ctr::SERVE_TIER_SINGLE.get(),
        ctr::SERVE_TIER_CACHED.get(),
        ctr::SERVE_TIER_POP.get(),
    );
    pmm_bench::obs::finish("serve_chaos");
    if failures.is_empty() {
        match &custom_plan {
            Some(_) => println!(
                "serve chaos PASSED: stream served under the fault plan, every response tier-tagged"
            ),
            None => println!("serve chaos PASSED: shedding, ladder, deadlines, and parity all held"),
        }
        Ok(())
    } else {
        Err(format!("serve chaos FAILED: {}", failures.join("; ")))
    }
}
