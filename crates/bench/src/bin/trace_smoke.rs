//! Tracing smoke benchmark: serves a fixed request stream through the
//! pmm-serve runtime with full tracing on, then checks the three
//! observability contracts end to end:
//!
//! * every accepted request carries a `TraceId` whose buffered events
//!   reconstruct into a single causal chain — `enqueue` at seq 0,
//!   contiguous sequence numbers, exactly one `respond`, `request`
//!   last;
//! * the stage latency histograms (queue wait, encode, user encode,
//!   rank) each saw every request, with non-zero p50/p95/p99;
//! * the run's metrics window evaluates against the default
//!   [`pmm_trace::SloPolicy`]; with `--slo-gate` a breach exits
//!   non-zero, which is how `scripts/verify.sh` gates CI.
//!
//! With `--fault-plan SPEC` (e.g. `slow@0,slow@4,...`) injected stalls
//! burn the 250 ms deadline, the miss-rate budget blows, and the gate
//! must fail — verify.sh runs that as an expected-failure check. The
//! breaker is configured to never trip here so every stall converts
//! deterministically into a deadline miss rather than a tier change.
//!
//! Writes `BENCH_trace.json` (stage quantiles, tier counts, SLO burn
//! rates) and, via `--metrics PATH` / `PMM_METRICS`, the
//! Prometheus-style exposition of the end-of-run snapshot.

use pmm_baselines::Popularity;
use pmm_bench::cli::Cli;
use pmm_bench::runner;
use pmm_data::dataset::Dataset;
use pmm_data::registry::DatasetId;
use pmm_obs::json::JsonObj;
use pmm_serve::{BreakerConfig, PmmEngine, Request, Server, ServeError, ServerConfig};
use pmm_trace::{MetricsSnapshot, SloPolicy, TraceEvent, TraceId};
use pmmrec::{PmmRec, PmmRecConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Duration;

/// Small serving model, seeded identically per replica.
fn model_cfg() -> PmmRecConfig {
    PmmRecConfig {
        d: 16,
        heads: 2,
        text_layers: 1,
        vision_layers: 1,
        fusion_layers: 1,
        user_layers: 1,
        dropout: 0.0,
        ..Default::default()
    }
}

fn engine_factory(
    ds: Arc<Dataset>,
    seed: u64,
) -> impl Fn() -> PmmEngine + Send + Sync + 'static {
    move || PmmEngine::new(PmmRec::new(model_cfg(), &ds, &mut StdRng::seed_from_u64(seed)))
}

/// The stage histograms whose quantiles the smoke run reports; the
/// bool says whether the clean run must see a non-zero p50 (user
/// encode can legitimately be sub-bucket fast on an empty prefix, so
/// only admission-to-rank stages are asserted).
const STAGES: [(&str, bool); 5] = [
    ("stage_queue_wait_ns", true),
    ("stage_encode_ns", true),
    ("stage_user_encode_ns", false),
    ("stage_rank_ns", true),
    ("request_total_ns", true),
];

/// Per-trace chain invariants over the buffered events: contiguous
/// seq from 0, `enqueue` first, exactly one `respond`, `request` last.
fn check_chain(trace: TraceId, events: &[TraceEvent], check: &mut dyn FnMut(bool, &str)) {
    // Ring order is push order; the submit-side enqueue event races
    // the worker's first events, so reconstruction orders by seq.
    let mut chain: Vec<&TraceEvent> = events.iter().filter(|e| e.trace == trace).collect();
    chain.sort_by_key(|e| e.seq);
    check(!chain.is_empty(), &format!("{trace}: no events buffered"));
    if chain.is_empty() {
        return;
    }
    let seqs: Vec<u32> = chain.iter().map(|e| e.seq).collect();
    let contiguous = seqs.iter().enumerate().all(|(i, &s)| s == i as u32);
    check(contiguous, &format!("{trace}: seq not contiguous from 0: {seqs:?}"));
    check(
        chain.first().is_some_and(|e| e.stage == "enqueue"),
        &format!("{trace}: chain does not start with enqueue"),
    );
    check(
        chain.last().is_some_and(|e| e.stage == "request"),
        &format!("{trace}: chain does not end with the request event"),
    );
    let responds = chain.iter().filter(|e| e.stage == "respond").count();
    check(responds == 1, &format!("{trace}: {responds} respond events (want exactly 1)"));
    // Worker-side events are causally ordered in time. Excluded from
    // the monotonicity check: seq 0 (enqueue, submitter clock), seq 1
    // (queue wait, start backdated by its duration), and the trailing
    // request event (emitted last but started at handler entry).
    let upper = chain.len().saturating_sub(1).max(2);
    let worker = &chain[2.min(chain.len())..upper];
    let ordered = worker.windows(2).all(|w| w[0].start_ns <= w[1].start_ns);
    check(ordered, &format!("{trace}: worker event start times regress"));
}

fn main() -> Result<(), String> {
    let cli = Cli::from_env();
    let chaos = cli.fault_plan.is_some();
    pmm_bench::obs::setup(&cli);
    // Histograms, counters, and trace events are the subject of this
    // binary; force collection on even without a sink.
    pmm_obs::set_enabled(true);

    let world = runner::world();
    let split = runner::split(&world, DatasetId::HmClothes, &cli);
    let prefixes: Vec<Vec<usize>> = split
        .valid
        .iter()
        .take(6)
        .map(|c| c.prefix.clone())
        .filter(|p| !p.is_empty())
        .collect();
    if prefixes.is_empty() {
        return Err("dataset produced no non-empty validation prefixes".into());
    }
    let dataset = Arc::new(split.dataset);
    let popularity = Popularity::from_sequences(dataset.items.len(), &split.train);
    let seed = cli.seed ^ 0x7ACE;

    let base = MetricsSnapshot::capture();
    pmm_trace::ring::clear();

    // One worker so fault-plan occurrences line up with request order;
    // the breaker never trips, so an injected 400 ms stall always
    // converts into a deadline miss instead of a tier change.
    let server = Server::start(
        ServerConfig {
            workers: Some(1),
            deadline: Duration::from_millis(250),
            slow_fault: Duration::from_millis(400),
            breaker: BreakerConfig {
                window: 8,
                trip_failures: 1_000_000,
                cooldown_denials: 1_000_000,
            },
            ..ServerConfig::default()
        },
        engine_factory(Arc::clone(&dataset), seed),
        popularity,
    );

    let mut failures: Vec<String> = Vec::new();
    let mut check = |ok: bool, what: &str| {
        if !ok {
            failures.push(what.to_string());
        }
    };

    println!("== trace smoke{} ==", if chaos { " (chaos mode)" } else { "" });
    let (mut served, mut shed, mut missed) = (0u64, 0u64, 0u64);
    let mut tiers: Vec<&'static str> = Vec::new();
    let mut accepted: Vec<TraceId> = Vec::new();
    for round in 0..3u64 {
        for (i, prefix) in prefixes.iter().enumerate() {
            let user = round * 100 + i as u64;
            let req =
                Request { user, prefix: prefix.clone(), k: 10, exclude_seen: true, deadline: None };
            match server.submit(req) {
                Err(ServeError::Rejected { .. }) => shed += 1,
                Err(e) => check(false, &format!("unexpected submit error: {e}")),
                Ok(handle) => {
                    let trace = handle.trace;
                    accepted.push(trace);
                    match handle.wait() {
                        Ok(resp) => {
                            served += 1;
                            tiers.push(resp.tier.label());
                            check(
                                resp.trace == trace,
                                "response trace id matches the submit handle",
                            );
                            check(!resp.items.is_empty(), "every response carries items");
                        }
                        Err(ServeError::DeadlineExceeded { .. }) => missed += 1,
                        Err(e) => check(false, &format!("unexpected serve error: {e}")),
                    }
                }
            }
        }
    }
    server.shutdown();
    if chaos {
        pmm_fault::clear();
    }

    let submitted = 3 * prefixes.len() as u64;
    check(
        served + shed + missed == submitted,
        "every submission resolved exactly once (served, shed, or missed)",
    );
    check(served > 0, "the stream was not fully starved");

    // Chain reconstruction over the buffered events, before anything
    // flushes the ring.
    let events = pmm_trace::ring::snapshot();
    for &trace in &accepted {
        check_chain(trace, &events, &mut check);
    }

    let window = MetricsSnapshot::capture().delta_since(&base);
    if !chaos {
        check(missed == 0 && shed == 0, "clean run serves everything");
        for (name, _) in STAGES {
            let count = window.hist(name).map_or(0, |h| h.count);
            check(
                count == served,
                &format!("{name} saw {count} observations (want {served})"),
            );
        }
    }
    println!("  {submitted} submitted: {served} served, {shed} shed, {missed} deadline-missed");
    println!("  {:<22} {:>6} {:>12} {:>12} {:>12} {:>12}", "stage", "count", "p50", "p95", "p99", "mean");
    let mut stage_rows: Vec<String> = Vec::new();
    for (name, require_nonzero) in STAGES {
        let h = match window.hist(name) {
            Some(h) => h.clone(),
            None => {
                check(false, &format!("histogram {name} is not registered"));
                continue;
            }
        };
        let (p50, p90, p95, p99) = (
            h.quantile_ns(0.50),
            h.quantile_ns(0.90),
            h.quantile_ns(0.95),
            h.quantile_ns(0.99),
        );
        if !chaos && require_nonzero {
            check(
                p50 > 0 && p95 > 0 && p99 > 0,
                &format!("{name} quantiles must be non-zero (p50={p50} p95={p95} p99={p99})"),
            );
        }
        println!(
            "  {:<22} {:>6} {:>9.3}us {:>9.3}us {:>9.3}us {:>9.3}us",
            name,
            h.count,
            p50 as f64 / 1e3,
            p95 as f64 / 1e3,
            p99 as f64 / 1e3,
            h.mean_ns() / 1e3,
        );
        stage_rows.push(format!(
            "    {}",
            JsonObj::new()
                .str("stage", name)
                .u64("count", h.count)
                .u64("p50_ns", p50)
                .u64("p90_ns", p90)
                .u64("p95_ns", p95)
                .u64("p99_ns", p99)
                .f64("mean_ns", h.mean_ns())
                .finish()
        ));
    }

    // SLO evaluation over this run's window; breaches are logged and
    // emitted as "ev":"slo" sink events by the evaluator itself.
    let report = pmm_trace::slo::evaluate(&window, &SloPolicy::default());
    let mut slo_rows: Vec<String> = Vec::new();
    for c in &report.checks {
        println!(
            "  slo {:<20} {:>10.4} / {:<10.4} burn {:>6.2}x {}",
            c.name,
            c.value,
            c.threshold,
            c.burn_rate(),
            if c.breached() { "BREACHED" } else { "ok" },
        );
        slo_rows.push(format!(
            "    {}",
            JsonObj::new()
                .str("check", c.name)
                .f64("value", c.value)
                .f64("threshold", c.threshold)
                .f64("burn_rate", c.burn_rate())
                .bool("breached", c.breached())
                .finish()
        ));
    }
    if !chaos {
        check(report.ok(), "clean run must hold every SLO");
    }

    let mut dist: Vec<(&str, usize)> = Vec::new();
    for t in tiers {
        match dist.iter_mut().find(|(name, _)| *name == t) {
            Some((_, n)) => *n += 1,
            None => dist.push((t, 1)),
        }
    }
    let tier_obj = dist
        .iter()
        .fold(JsonObj::new(), |obj, (t, n)| obj.u64(t, *n as u64))
        .finish();
    let json = format!(
        "{{\n  \"bin\": \"trace_smoke\",\n  \"chaos\": {chaos},\n  \"requests\": {submitted},\n  \"served\": {served},\n  \"shed\": {shed},\n  \"missed\": {missed},\n  \"tiers\": {tier_obj},\n  \"trace_events\": {},\n  \"trace_dropped\": {},\n  \"stages\": [\n{}\n  ],\n  \"slo_ok\": {},\n  \"slo\": [\n{}\n  ]\n}}\n",
        window.counter("trace_events"),
        window.counter("trace_dropped"),
        stage_rows.join(",\n"),
        report.ok(),
        slo_rows.join(",\n"),
    );
    match std::fs::write("BENCH_trace.json", &json) {
        Ok(()) => println!("trace_smoke: wrote BENCH_trace.json"),
        Err(e) => println!("trace_smoke: cannot write BENCH_trace.json: {e}"),
    }
    pmm_bench::obs::finish("trace_smoke");

    if cli.slo_gate && !report.ok() {
        let names: Vec<&str> = report.breaches().iter().map(|c| c.name).collect();
        return Err(format!("SLO gate failed: {} breached", names.join(", ")));
    }
    if failures.is_empty() {
        println!(
            "trace smoke PASSED: {} traces reconstructed, stage histograms populated, SLO {}",
            accepted.len(),
            if report.ok() { "held" } else { "breached (gate off)" },
        );
        Ok(())
    } else {
        Err(format!("trace smoke FAILED: {}", failures.join("; ")))
    }
}
