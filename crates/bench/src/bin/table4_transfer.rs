//! Table IV: transfer-learning comparison on the ten downstream
//! datasets — SASRec (from scratch) vs UniSRec / VQRec / MoRec++ /
//! PMMRec, each without pre-training and with pre-training on the
//! fused four sources.
//!
//! Expected shape (paper): PMMRec w. PT best everywhere; MoRec++ the
//! runner-up; pre-training helps the multi-modal models consistently
//! while UniSRec/VQRec sometimes *degrade* with PT (marked "v"); both
//! frozen-text methods trail SASRec.

use pmm_baselines::{common::BaselineConfig, morec, unisrec, vqrec};
use pmm_bench::cli::Cli;
use pmm_bench::runner::{self, checkpoint_path};
use pmm_bench::table::Table;
use pmm_data::dataset::Dataset;
use pmm_data::registry::{self, SOURCES, TARGETS};
use pmm_data::split::SplitDataset;
use pmm_eval::SeqRecommender;
use pmm_obs::obs_info;
use pmmrec::{ObjectiveConfig, PmmRec, PmmRecConfig, TransferSetting};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Paper (HR@10 w/o PT, HR@10 w. PT) for PMMRec per target, for the
/// reference column.
const PAPER_PMM: [(&str, f32, f32); 10] = [
    ("Bili_Food", 20.05, 22.67),
    ("Bili_Movie", 13.50, 15.02),
    ("Bili_Cartoon", 14.49, 15.82),
    ("Kwai_Food", 37.03, 38.51),
    ("Kwai_Movie", 7.43, 8.84),
    ("Kwai_Cartoon", 15.39, 16.42),
    ("HM_Clothes", 10.13, 14.70),
    ("HM_Shoes", 14.30, 18.97),
    ("Amazon_Clothes", 40.42, 43.78),
    ("Amazon_Shoes", 11.85, 15.97),
];

fn fused_dataset(cli: &Cli, world: &pmm_data::world::World) -> Dataset {
    let parts: Vec<_> = SOURCES
        .iter()
        .map(|&id| registry::build_dataset(world, id, cli.scale, cli.seed))
        .collect();
    Dataset::fuse("Source", &parts)
}

/// Pre-trains a baseline on the fused sources (cached on disk).
fn pretrain_baseline(
    tag: &str,
    cli: &Cli,
    fused: &Dataset,
    build: impl FnOnce(&Dataset, &mut StdRng) -> Box<dyn PretrainableBaseline>,
) -> Result<std::path::PathBuf, String> {
    let cfg = runner::train_cfg(cli);
    // Baselines have no objective switches; keying the cache on the
    // default config still folds the epoch budget into the filename.
    let path = checkpoint_path(tag, cli, &ObjectiveConfig::default(), cfg.max_epochs)?;
    if path.exists() {
        obs_info!("table4", "reusing {tag} checkpoint");
        pmm_obs::sink::emit_cache(tag, true, &path.display().to_string());
        return Ok(path);
    }
    pmm_obs::sink::emit_cache(tag, false, &path.display().to_string());
    let split = SplitDataset::new(fused.clone());
    let mut rng = StdRng::seed_from_u64(cli.seed ^ 0xBA5E);
    let mut model = build(&split.dataset, &mut rng);
    obs_info!("table4", "pre-training {tag} on {} users…", split.train.len());
    let result = pmm_eval::train_model(model.as_mut_rec(), &split, &cfg, &mut rng);
    obs_info!("table4", "{tag} pre-trained (valid {})", result.valid);
    model.save_to(&path)?;
    Ok(path)
}

/// Object-safe facade over the three transferable baselines.
trait PretrainableBaseline {
    fn as_mut_rec(&mut self) -> &mut dyn SeqRecommender;
    fn save_to(&self, path: &std::path::Path) -> Result<(), String>;
}

macro_rules! pretrainable {
    ($core:ty) => {
        impl PretrainableBaseline for pmm_baselines::common::Baseline<$core> {
            fn as_mut_rec(&mut self) -> &mut dyn SeqRecommender {
                self
            }
            fn save_to(&self, path: &std::path::Path) -> Result<(), String> {
                self.save(path)
                    .map_err(|e| format!("cannot save baseline checkpoint {}: {e}", path.display()))
            }
        }
    };
}
pretrainable!(pmm_baselines::unisrec::UniSRecCore);
pretrainable!(pmm_baselines::vqrec::VqRecCore);
pretrainable!(pmm_baselines::morec::MoRecCore);

fn main() -> Result<(), String> {
    let cli = Cli::from_env();
    pmm_bench::obs::setup(&cli);
    let world = runner::world();
    let bcfg = BaselineConfig::default();
    let fused = fused_dataset(&cli, &world);

    // Pre-train all four transferable models (cached).
    let pmm_ckpt = runner::pretrain_cached("fused", &SOURCES, ObjectiveConfig::default(), &cli, &world)?;
    let uni_ckpt = pretrain_baseline("unisrec_fused", &cli, &fused, |d, rng| {
        Box::new(unisrec::build(bcfg, d, rng))
    })?;
    let vq_src = vqrec::fit_quantizer(&fused);
    let vq_ckpt = pretrain_baseline("vqrec_fused", &cli, &fused, |d, rng| {
        Box::new(vqrec::build(bcfg, d, rng))
    })?;
    let morec_ckpt = pretrain_baseline("morec_fused", &cli, &fused, |d, rng| {
        Box::new(morec::build(bcfg, d, rng))
    })?;

    let mut t = Table::new(
        "Table IV — transfer learning on downstream datasets (HR@10 / NG@10)",
        &[
            "Dataset", "SASRec",
            "UniSRec w/o", "UniSRec w.PT",
            "VQRec w/o", "VQRec w.PT",
            "MoRec++ w/o", "MoRec++ w.PT",
            "PMMRec w/o", "PMMRec w.PT",
            "paper PMMRec w/o->w.PT",
        ],
    );

    for (ti, id) in TARGETS.into_iter().enumerate() {
        let split = runner::split(&world, id, &cli);
        obs_info!("table4", "{} ({} users)", id.name(), split.train.len());
        let mut rng = StdRng::seed_from_u64(cli.seed ^ ((ti as u64) << 4));
        let fmt = |m: pmm_eval::MetricSet| format!("{:.2}/{:.2}", m.hr10(), m.ndcg10());
        let down = |wo: f32, w: f32| if w < wo { " v" } else { "" };

        // SASRec from scratch.
        let mut sas = pmm_baselines::sasrec::build(bcfg, &split.dataset, &mut rng);
        let sas_m = runner::run_target(&mut sas, &split, &cli).test;

        // UniSRec.
        let mut uni_wo = unisrec::build(bcfg, &split.dataset, &mut rng);
        let uni_wo_m = runner::run_target(&mut uni_wo, &split, &cli).test;
        let mut uni_w = unisrec::build(bcfg, &split.dataset, &mut rng);
        uni_w
            .load_filtered(&uni_ckpt, &[])
            .map_err(|e| format!("cannot load UniSRec checkpoint {}: {e}", uni_ckpt.display()))?;
        let uni_w_m = runner::run_target(&mut uni_w, &split, &cli).test;

        // VQRec (codebook transferred via source centroids).
        let mut vq_wo = vqrec::build(bcfg, &split.dataset, &mut rng);
        let vq_wo_m = runner::run_target(&mut vq_wo, &split, &cli).test;
        let target_pq = vqrec::recode_for(&vq_src, &split.dataset);
        let mut vq_w = vqrec::build_with_quantizer(bcfg, &split.dataset, target_pq, &mut rng);
        vq_w.load_filtered(&vq_ckpt, &[])
            .map_err(|e| format!("cannot load VQRec checkpoint {}: {e}", vq_ckpt.display()))?;
        let vq_w_m = runner::run_target(&mut vq_w, &split, &cli).test;

        // MoRec++.
        let mut mo_wo = morec::build(bcfg, &split.dataset, &mut rng);
        let mo_wo_m = runner::run_target(&mut mo_wo, &split, &cli).test;
        let mut mo_w = morec::build(bcfg, &split.dataset, &mut rng);
        mo_w.load_filtered(&morec_ckpt, &[])
            .map_err(|e| format!("cannot load MoRec++ checkpoint {}: {e}", morec_ckpt.display()))?;
        let mo_w_m = runner::run_target(&mut mo_w, &split, &cli).test;

        // PMMRec.
        let mut pmm_wo = PmmRec::new(PmmRecConfig::default(), &split.dataset, &mut rng);
        pmm_wo.set_pretraining(true); // from-scratch = full Eq. 12 objective
        let pmm_wo_m = runner::run_target(&mut pmm_wo, &split, &cli).test;
        let mut pmm_w = runner::finetune_model(&split, TransferSetting::Full, &pmm_ckpt, &cli)?;
        let pmm_w_m = runner::run_target(&mut pmm_w, &split, &cli).test;

        let paper = PAPER_PMM[ti];
        t.row(&[
            id.name().to_string(),
            fmt(sas_m),
            fmt(uni_wo_m),
            format!("{}{}", fmt(uni_w_m), down(uni_wo_m.hr10(), uni_w_m.hr10())),
            fmt(vq_wo_m),
            format!("{}{}", fmt(vq_w_m), down(vq_wo_m.hr10(), vq_w_m.hr10())),
            fmt(mo_wo_m),
            format!("{}{}", fmt(mo_w_m), down(mo_wo_m.hr10(), mo_w_m.hr10())),
            fmt(pmm_wo_m),
            format!("{}{}", fmt(pmm_w_m), down(pmm_wo_m.hr10(), pmm_w_m.hr10())),
            format!("{:.2} -> {:.2}", paper.1, paper.2),
        ]);
        obs_info!(
            "table4",
            "{}: PMMRec {:.2} -> {:.2} HR@10",
            id.name(),
            pmm_wo_m.hr10(),
            pmm_w_m.hr10()
        );
    }
    t.print();
    println!("\n'v' marks cases where pre-training reduced HR@10 (the paper's down-arrows).");
    pmm_bench::obs::finish("table4_transfer");
    Ok(())
}
