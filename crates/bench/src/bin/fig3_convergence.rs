//! Figure 3: convergence curves on downstream datasets under four
//! settings — train from scratch (w/o PT), transfer item encoders
//! (w. PT-I), transfer user encoder (w. PT-U), and full transfer
//! (w. PT). Emits the per-epoch validation NDCG@10 series as both an
//! ASCII chart and a CSV block for external plotting.
//!
//! Expected shape (paper): the pre-trained settings reach their best
//! metric within the first few epochs, from a much higher starting
//! point; w/o PT climbs slowly; PT-I ≈ full PT; PT-U only marginally
//! above w/o PT.

use pmm_bench::cli::Cli;
use pmm_bench::runner;
use pmm_data::registry::{DatasetId, SOURCES};
use pmm_eval::{train_model, ConvergencePoint, TrainConfig};
use pmmrec::{ObjectiveConfig, PmmRec, PmmRecConfig, TransferSetting};
use rand::rngs::StdRng;
use rand::SeedableRng;

const CURVE_TARGETS: [DatasetId; 4] = [
    DatasetId::BiliFood,
    DatasetId::KwaiMovie,
    DatasetId::HmShoes,
    DatasetId::AmazonClothes,
];

fn curve(
    split: &pmm_data::split::SplitDataset,
    setting: Option<TransferSetting>,
    ckpt: &std::path::Path,
    cli: &Cli,
) -> Result<Vec<ConvergencePoint>, String> {
    let mut rng = StdRng::seed_from_u64(cli.seed ^ 0xF16);
    let mut model = match setting {
        Some(s) => runner::finetune_model(split, s, ckpt, cli)?,
        None => PmmRec::new(PmmRecConfig::default(), &split.dataset, &mut rng),
    };
    let cfg = TrainConfig {
        max_epochs: cli.epochs.unwrap_or(16),
        patience: 0, // full curves, no early stop
        eval_every: 1,
        log_level: cli.log_level,
        start_epoch: 0,
        guard: pmm_eval::GuardPolicy::default(),
    };
    Ok(train_model(&mut model, split, &cfg, &mut rng).curve)
}

fn ascii_chart(series: &[(&str, Vec<ConvergencePoint>)]) -> String {
    let max: f32 = series
        .iter()
        .flat_map(|(_, c)| c.iter().map(|p| p.valid.ndcg10()))
        .fold(1e-6, f32::max);
    let mut out = String::new();
    for (name, c) in series {
        out.push_str(&format!("  {name:<12} "));
        for p in c {
            let level = (p.valid.ndcg10() / max * 7.0).round() as usize;
            out.push(['.', ':', '-', '=', '+', '*', '#', '@'][level.min(7)]);
        }
        out.push_str(&format!(
            "  (best {:.2} @ epoch {})\n",
            c.iter().map(|p| p.valid.ndcg10()).fold(0.0, f32::max),
            c.iter()
                .max_by(|a, b| a.valid.ndcg10().total_cmp(&b.valid.ndcg10()))
                .map(|p| p.epoch)
                .unwrap_or(0)
        ));
    }
    out
}

fn main() -> Result<(), String> {
    let cli = Cli::from_env();
    pmm_bench::obs::setup(&cli);
    let world = runner::world();
    let ckpt = runner::pretrain_cached("fused", &SOURCES, ObjectiveConfig::default(), &cli, &world)?;

    println!("== Figure 3 — convergence curves (validation NDCG@10 per epoch) ==");
    for id in CURVE_TARGETS {
        let split = runner::split(&world, id, &cli);
        pmm_obs::obs_info!("fig3", "{}", id.name());
        let series = [
            ("w/o PT", curve(&split, None, &ckpt, &cli)?),
            ("w. PT-I", curve(&split, Some(TransferSetting::ItemEncoders), &ckpt, &cli)?),
            ("w. PT-U", curve(&split, Some(TransferSetting::UserEncoder), &ckpt, &cli)?),
            ("w. PT", curve(&split, Some(TransferSetting::Full), &ckpt, &cli)?),
        ];
        println!("\n{} (epochs left to right):", id.name());
        print!("{}", ascii_chart(&series));
        println!("  csv:");
        println!("  epoch,{}", series.iter().map(|(n, _)| *n).collect::<Vec<_>>().join(","));
        let epochs = series[0].1.len();
        for e in 0..epochs {
            let cells: Vec<String> = series
                .iter()
                .map(|(_, c)| c.get(e).map(|p| format!("{:.3}", p.valid.ndcg10())).unwrap_or_default())
                .collect();
            println!("  {},{}", e + 1, cells.join(","));
        }
    }
    println!(
        "\nPaper shape: pre-trained settings start high and peak within a few\n\
         epochs; PT-I tracks full PT; PT-U barely improves on w/o PT."
    );
    pmm_bench::obs::finish("fig3_convergence");
    Ok(())
}
