//! Bench-side observability wiring: sink setup from CLI/env, the
//! end-of-run hierarchical profile table, and the `BENCH_obs.json`
//! performance summary that seeds the repo's perf trajectory.

use crate::cli::Cli;
use pmm_obs::{obs_info, obs_warn, EpochRecord, Level, SpanStat};
use std::path::Path;
use std::sync::OnceLock;

/// Where [`finish`] writes the Prometheus-style metrics exposition;
/// set once in [`setup`] from `--metrics` or `PMM_METRICS`.
static METRICS_PATH: OnceLock<String> = OnceLock::new();

/// Configure telemetry for a table binary: honour `PMM_OBS` /
/// `PMM_OBS_LOG`, then let `--obs` and `--log-level` override. Call
/// once at the top of `main`.
pub fn setup(cli: &Cli) {
    pmm_obs::init_from_env();
    if let Some(path) = &cli.obs {
        match pmm_obs::sink::open(Path::new(path)) {
            Ok(()) => {
                pmm_obs::set_enabled(true);
                obs_info!("obs", "telemetry on, JSONL trace -> {path}");
            }
            Err(e) => obs_warn!("obs", "cannot open --obs {path}: {e}; telemetry stays off"),
        }
    }
    // Metrics exposition target: the flag wins over PMM_METRICS.
    if let Some(path) = cli.metrics.clone().or_else(|| std::env::var("PMM_METRICS").ok()) {
        let _ = METRICS_PATH.set(path);
    }
    // The CLI can raise verbosity but never silences what the
    // environment asked for.
    if cli.log_level > pmm_obs::log::max_level() {
        pmm_obs::log::set_max_level(cli.log_level);
    }
    // Apply the kernel thread count before any tensor work runs; the
    // flag wins over PMM_THREADS and the hardware default.
    pmm_par::set_threads(cli.threads);
    if let Some(n) = cli.threads {
        obs_info!("par", "kernel threads pinned to {n}");
    }
    // Opt the trainer's pre-backward graph audit in for this release
    // run (debug builds always audit).
    if cli.audit_graph {
        pmm_audit::graph::set_enabled(true);
        obs_info!("audit", "autograd-graph audit enabled for every training step");
    }
    // Arm deterministic fault injection for chaos runs. The spec was
    // validated at CLI parse time.
    if let Some(spec) = &cli.fault_plan {
        match pmm_fault::FaultPlan::parse(spec) {
            Ok(plan) => {
                pmm_fault::install(plan);
                obs_info!("fault", "fault plan armed: {spec}");
            }
            Err(e) => obs_warn!("fault", "ignoring fault plan {spec:?}: {e}"),
        }
    }
}

/// Summarize a finished run: print the aggregated span profile, write
/// `BENCH_obs.json`, dump profile events into the JSONL sink, and
/// close it. A no-op when telemetry is off.
pub fn finish(bin: &str) {
    if !pmm_obs::enabled() {
        return;
    }
    let profile = pmm_obs::span::profile_snapshot();
    let epochs = pmm_obs::stats::epoch_records();
    for line in profile_table(&profile) {
        pmm_obs::log::log(Level::Info, "profile", &line);
    }
    if let Some(cov) = epoch_coverage(&profile) {
        obs_info!("profile", "child spans cover {:.1}% of epoch wall-clock", cov * 100.0);
    }
    let summary = summary_json(bin, &epochs, &profile);
    match std::fs::write("BENCH_obs.json", summary) {
        Ok(()) => obs_info!("obs", "wrote BENCH_obs.json ({} epochs)", epochs.len()),
        Err(e) => obs_warn!("obs", "cannot write BENCH_obs.json: {e}"),
    }
    if let Some(path) = METRICS_PATH.get() {
        let text = pmm_trace::MetricsSnapshot::capture().to_prometheus();
        match std::fs::write(path, text) {
            Ok(()) => obs_info!("obs", "wrote metrics exposition -> {path}"),
            Err(e) => obs_warn!("obs", "cannot write metrics exposition {path}: {e}"),
        }
    }
    // Buffered trace events become "ev":"trace" JSONL lines (a no-op
    // when no sink is open).
    pmm_trace::ring::flush_to_sink();
    pmm_obs::sink::flush_profile();
    pmm_obs::sink::close();
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else {
        format!("{:.1}us", ns as f64 / 1e3)
    }
}

/// Whether `path` is a direct child of `parent` in the slash hierarchy.
fn is_direct_child(parent: &str, path: &str) -> bool {
    path.len() > parent.len() + 1
        && path.starts_with(parent)
        && path.as_bytes()[parent.len()] == b'/'
        && !path[parent.len() + 1..].contains('/')
}

fn self_ns(profile: &[(String, SpanStat)], idx: usize) -> u64 {
    let (path, stat) = &profile[idx];
    let children: u64 = profile
        .iter()
        .filter(|(p, _)| is_direct_child(path, p))
        .map(|(_, s)| s.total_ns)
        .sum();
    stat.total_ns.saturating_sub(children)
}

/// Render the aggregated span profile as fixed-width table lines.
/// `total` is inclusive time, `self` excludes direct children.
pub fn profile_table(profile: &[(String, SpanStat)]) -> Vec<String> {
    if profile.is_empty() {
        return Vec::new();
    }
    let mut lines = vec![format!("{:<44} {:>10} {:>10} {:>10}", "span", "count", "total", "self")];
    for (i, (path, stat)) in profile.iter().enumerate() {
        let depth = path.matches('/').count();
        let label = format!("{}{}", "  ".repeat(depth), path.rsplit('/').next().unwrap_or(path));
        lines.push(format!(
            "{label:<44} {:>10} {:>10} {:>10}",
            stat.count,
            fmt_ns(stat.total_ns),
            fmt_ns(self_ns(profile, i))
        ));
    }
    lines
}

/// Fraction of `epoch` wall-clock accounted for by its direct child
/// spans; `None` when no epoch span was recorded.
pub fn epoch_coverage(profile: &[(String, SpanStat)]) -> Option<f64> {
    let epoch = profile.iter().find(|(p, _)| p == "epoch")?;
    if epoch.1.total_ns == 0 {
        return Some(1.0);
    }
    let children: u64 = profile
        .iter()
        .filter(|(p, _)| is_direct_child("epoch", p))
        .map(|(_, s)| s.total_ns)
        .sum();
    Some(children as f64 / epoch.1.total_ns as f64)
}

/// Build the `BENCH_obs.json` document: one object with per-epoch
/// wall-clock / FLOP-rate / tape-peak entries, final counter values,
/// and the span profile.
pub fn summary_json(bin: &str, epochs: &[EpochRecord], profile: &[(String, SpanStat)]) -> String {
    use pmm_obs::json::{escape, JsonObj};
    let epoch_items: Vec<String> = epochs
        .iter()
        .map(|r| {
            let mut obj = JsonObj::new()
                .u64("epoch", r.epoch as u64)
                .f64("wall_s", r.wall_s)
                .u64("flops", r.flops)
                .f64("flops_per_sec", r.flops_per_sec())
                .u64("tape_peak", r.tape_peak)
                .f64("loss", f64::from(r.stats.loss))
                .f64("grad_norm", f64::from(r.stats.grad_norm))
                .f64("param_norm", f64::from(r.stats.param_norm));
            if let Some(b) = r.stats.breakdown {
                obj = obj
                    .f64("dap", f64::from(b.dap))
                    .f64("nicl", f64::from(b.nicl))
                    .f64("nid", f64::from(b.nid))
                    .f64("rcl", f64::from(b.rcl));
            }
            format!("    {}", obj.finish())
        })
        .collect();
    let counter_items: Vec<String> = pmm_obs::counter::counters_snapshot()
        .iter()
        .map(|(name, value)| format!("    \"{}\": {value}", escape(name)))
        .collect();
    let profile_items: Vec<String> = profile
        .iter()
        .map(|(path, stat)| {
            format!(
                "    {}",
                JsonObj::new()
                    .str("path", path)
                    .u64("count", stat.count)
                    .u64("total_ns", stat.total_ns)
                    .finish()
            )
        })
        .collect();
    format!(
        "{{\n  \"bin\": \"{}\",\n  \"epochs\": [\n{}\n  ],\n  \"counters\": {{\n{}\n  }},\n  \"profile\": [\n{}\n  ]\n}}\n",
        escape(bin),
        epoch_items.join(",\n"),
        counter_items.join(",\n"),
        profile_items.join(",\n"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stat(count: u64, total_ns: u64) -> SpanStat {
        SpanStat { count, total_ns }
    }

    fn sample_profile() -> Vec<(String, SpanStat)> {
        vec![
            ("epoch".into(), stat(2, 1_000)),
            ("epoch/backward".into(), stat(10, 300)),
            ("epoch/forward".into(), stat(10, 600)),
            ("epoch/forward/matmul".into(), stat(40, 450)),
        ]
    }

    #[test]
    fn self_time_subtracts_direct_children_only() {
        let p = sample_profile();
        assert_eq!(self_ns(&p, 0), 100); // 1000 - (300 + 600)
        assert_eq!(self_ns(&p, 2), 150); // 600 - 450
        assert_eq!(self_ns(&p, 3), 450); // leaf keeps everything
    }

    #[test]
    fn coverage_uses_direct_children_of_epoch() {
        let cov = epoch_coverage(&sample_profile()).unwrap();
        assert!((cov - 0.9).abs() < 1e-9);
        assert!(epoch_coverage(&[]).is_none());
    }

    #[test]
    fn table_indents_by_depth() {
        let lines = profile_table(&sample_profile());
        assert_eq!(lines.len(), 5);
        assert!(lines[1].starts_with("epoch "));
        assert!(lines[3].starts_with("  forward"));
        assert!(lines[4].starts_with("    matmul"));
    }

    #[test]
    fn summary_json_mentions_every_section() {
        let r = EpochRecord {
            epoch: 1,
            wall_s: 0.5,
            flops: 1_000_000,
            tape_peak: 42,
            stats: pmm_obs::EpochStats::from_loss(2.0),
        };
        let s = summary_json("test_bin", &[r], &sample_profile());
        for needle in ["\"bin\": \"test_bin\"", "\"epochs\"", "\"counters\"", "\"profile\"", "flops_per_sec"] {
            assert!(s.contains(needle), "missing {needle} in {s}");
        }
    }
}
