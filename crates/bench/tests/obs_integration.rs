//! Telemetry through the tensor stack: FLOP accounting for a known
//! matmul shape, and a guard that disabled telemetry stays out of the
//! matmul hot path. Globals are process-wide, so tests serialize on
//! `guard()` and leave collection disabled.

use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

use pmm_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn guard() -> MutexGuard<'static, ()> {
    static GUARD: OnceLock<Mutex<()>> = OnceLock::new();
    let g = GUARD
        .get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner());
    pmm_obs::reset();
    g
}

fn finish(g: MutexGuard<'static, ()>) {
    pmm_obs::set_enabled(false);
    pmm_obs::reset();
    drop(g);
}

#[test]
fn matmul_flops_counted_from_actual_shapes() {
    let g = guard();
    pmm_obs::set_enabled(true);
    let mut rng = StdRng::seed_from_u64(0);
    let a = Tensor::randn(&[8, 16], 1.0, &mut rng);
    let b = Tensor::randn(&[16, 4], 1.0, &mut rng);

    let before = pmm_obs::counter::MATMUL_FLOPS.get();
    let c = a.matmul(&b);
    assert_eq!(c.shape(), &[8, 4]);
    let delta = pmm_obs::counter::MATMUL_FLOPS.get() - before;
    assert_eq!(delta, 2 * 8 * 16 * 4);
    assert_eq!(delta, pmm_obs::counter::matmul_flop_estimate(8, 16, 4));

    // Transposed layouts charge the same logical product.
    let before = pmm_obs::counter::MATMUL_FLOPS.get();
    let _ = b.matmul_t(&a, true, true);
    assert_eq!(pmm_obs::counter::MATMUL_FLOPS.get() - before, 2 * 4 * 16 * 8);
    finish(g);
}

#[test]
fn disabled_telemetry_overhead_is_under_five_percent_of_a_matmul() {
    let g = guard();
    pmm_obs::set_enabled(false);
    let mut rng = StdRng::seed_from_u64(1);
    let a = Tensor::randn(&[64, 64], 1.0, &mut rng);
    let b = Tensor::randn(&[64, 64], 1.0, &mut rng);

    for _ in 0..8 {
        std::hint::black_box(a.matmul(&b));
    }
    const MAT_ITERS: u32 = 64;
    let clock = Instant::now();
    for _ in 0..MAT_ITERS {
        std::hint::black_box(a.matmul(&b));
    }
    let per_matmul_ns = clock.elapsed().as_nanos() as f64 / f64::from(MAT_ITERS);

    // Exactly the instrumentation a matmul executes when collection is
    // off: one span guard plus one gated counter add — measured alone
    // so the bound holds regardless of kernel speed.
    const OBS_ITERS: u32 = 100_000;
    let clock = Instant::now();
    for _ in 0..OBS_ITERS {
        let _sp = pmm_obs::span("overhead_probe");
        pmm_obs::record_matmul(64, 64, 64);
    }
    let per_probe_ns = clock.elapsed().as_nanos() as f64 / f64::from(OBS_ITERS);

    assert!(
        per_probe_ns < 0.05 * per_matmul_ns,
        "disabled telemetry costs {per_probe_ns:.1}ns per op vs {per_matmul_ns:.1}ns per 64x64 matmul"
    );
    assert!(
        pmm_obs::span::profile_snapshot().is_empty(),
        "disabled spans must not touch the profile"
    );
    finish(g);
}
