//! # pmm-fault
//!
//! Deterministic fault injection for chaos-testing the training and
//! serving runtime. A [`FaultPlan`] names exactly *which* occurrence of
//! each guarded operation misbehaves, so every recovery path (anomaly
//! skip, LR backoff, rollback, checkpoint fallback, IO retry) can be
//! exercised reproducibly in tests and in the `chaos_smoke` binary.
//!
//! Five trip points are offered to the rest of the workspace:
//!
//! * [`trip_nan_loss`] — consulted once per optimisation step; when it
//!   fires, the training loop poisons that step's loss with NaN.
//! * [`trip_corrupt_save`] — consulted once per rotating checkpoint
//!   save; when it fires, the freshly written file is truncated to
//!   simulate a crash mid-write / on-disk corruption.
//! * [`with_io_retry`] — wraps a fallible IO operation; the plan can
//!   force the first attempt of the N-th guarded operation to fail,
//!   exercising the retry-with-backoff path.
//! * [`trip_encode`] — consulted once per serving-side encoder call;
//!   the plan can make the N-th call fail (`err@N`) or stall (`slow@N`)
//!   so the serving runtime's circuit breakers, deadlines, and
//!   degradation ladder can be exercised deterministically.
//! * [`trip_worker`] — consulted once per serving-worker request
//!   execution; the plan can make the N-th execution panic
//!   (`panic@N`) or wedge (`stall@N`) so the supervisor's panic
//!   isolation, restart budget, and heartbeat watchdog can be
//!   exercised deterministically.
//!
//! With no plan installed every trip point is a no-op costing one
//! atomic load, so production code can call them unconditionally.
//!
//! Every fault that actually fires also bumps the per-kind
//! `pmm_obs::counter::FAULTS_*` counter (when collection is enabled),
//! so chaos binaries can report injection coverage by kind.
//!
//! Plans are process-global (faults cross crate boundaries exactly as
//! real ones do). Tests that install plans must serialise on
//! [`test_guard`] so parallel tests cannot observe each other's faults.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Duration;

/// Which occurrences (0-based) of each guarded operation misbehave.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Optimisation steps whose loss is poisoned with NaN.
    pub nan_steps: Vec<u64>,
    /// Rotating checkpoint saves whose file is truncated after write.
    pub corrupt_saves: Vec<u64>,
    /// Guarded IO operations whose first attempt fails with an
    /// injected `io::Error` (the retry succeeds).
    pub io_failures: Vec<u64>,
    /// Serving-side encoder calls that stall (simulated overload; the
    /// caller sleeps its configured slow duration, typically long
    /// enough to blow a request deadline).
    pub slow_encodes: Vec<u64>,
    /// Serving-side encoder calls that fail outright (the circuit
    /// breaker's error window sees these).
    pub err_encodes: Vec<u64>,
    /// Serving-worker request executions that panic mid-request (the
    /// supervisor's `catch_unwind` + respawn path sees these).
    pub panic_workers: Vec<u64>,
    /// Serving-worker request executions that wedge — stall well past
    /// the heartbeat deadline so the watchdog declares the worker
    /// stuck and replaces it.
    pub stall_workers: Vec<u64>,
    /// WAL record appends whose frame is torn mid-write (only a prefix
    /// of the frame reaches the log, simulating a crash between the
    /// write and the fsync). Replay must truncate and count the tail.
    pub wal_corrupts: Vec<u64>,
    /// Per-shard rank executions that panic — the scatter-gather's
    /// shard quarantine and rebuild-budget path sees these.
    pub shard_panics: Vec<u64>,
}

impl FaultPlan {
    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.nan_steps.is_empty()
            && self.corrupt_saves.is_empty()
            && self.io_failures.is_empty()
            && self.slow_encodes.is_empty()
            && self.err_encodes.is_empty()
            && self.panic_workers.is_empty()
            && self.stall_workers.is_empty()
            && self.wal_corrupts.is_empty()
            && self.shard_panics.is_empty()
    }

    /// Parses a plan spec: comma-separated `kind@N` tokens where kind
    /// is `nan` (training step), `ckpt` (rotating save), `io` (guarded
    /// IO operation), `slow` or `err` (serving encoder call), `panic`
    /// or `stall` (serving-worker request execution), `wal_corrupt`
    /// (WAL record append) or `shard_panic` (per-shard rank execution),
    /// e.g. `"nan@3,ckpt@1,io@0,slow@2,err@5,panic@3,wal_corrupt@4"`.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for token in spec.split(',').map(str::trim).filter(|t| !t.is_empty()) {
            let (kind, idx) = token
                .split_once('@')
                .ok_or_else(|| format!("fault token {token:?} is not kind@N"))?;
            let n: u64 = idx
                .parse()
                .map_err(|_| format!("fault token {token:?}: {idx:?} is not an integer"))?;
            match kind {
                "nan" => plan.nan_steps.push(n),
                "ckpt" => plan.corrupt_saves.push(n),
                "io" => plan.io_failures.push(n),
                "slow" => plan.slow_encodes.push(n),
                "err" => plan.err_encodes.push(n),
                "panic" => plan.panic_workers.push(n),
                "stall" => plan.stall_workers.push(n),
                "wal_corrupt" => plan.wal_corrupts.push(n),
                "shard_panic" => plan.shard_panics.push(n),
                other => {
                    return Err(format!(
                        "unknown fault kind {other:?} (use nan|ckpt|io|slow|err|panic|stall|wal_corrupt|shard_panic)"
                    ))
                }
            }
        }
        plan.nan_steps.sort_unstable();
        plan.corrupt_saves.sort_unstable();
        plan.io_failures.sort_unstable();
        plan.slow_encodes.sort_unstable();
        plan.err_encodes.sort_unstable();
        plan.panic_workers.sort_unstable();
        plan.stall_workers.sort_unstable();
        plan.wal_corrupts.sort_unstable();
        plan.shard_panics.sort_unstable();
        Ok(plan)
    }
}

/// An installed plan plus per-kind occurrence counters.
#[derive(Debug, Default)]
struct ActivePlan {
    plan: FaultPlan,
    steps_seen: u64,
    saves_seen: u64,
    ios_seen: u64,
    encodes_seen: u64,
    workers_seen: u64,
    wal_appends_seen: u64,
    shard_ranks_seen: u64,
    fired_nan: u64,
    fired_corrupt: u64,
    fired_io: u64,
    fired_slow: u64,
    fired_err: u64,
    fired_panic: u64,
    fired_stall: u64,
    fired_wal: u64,
    fired_shard: u64,
}

/// Fast-path switch: true only while a plan is installed.
static ARMED: AtomicBool = AtomicBool::new(false);

fn active() -> &'static Mutex<Option<ActivePlan>> {
    static ACTIVE: OnceLock<Mutex<Option<ActivePlan>>> = OnceLock::new();
    ACTIVE.get_or_init(|| Mutex::new(None))
}

/// Install `plan`, replacing any previous one and resetting counters.
pub fn install(plan: FaultPlan) {
    let mut a = active().lock().unwrap();
    ARMED.store(!plan.is_empty(), Ordering::Relaxed);
    *a = Some(ActivePlan { plan, ..Default::default() });
}

/// Remove the installed plan; all trip points become no-ops again.
pub fn clear() {
    ARMED.store(false, Ordering::Relaxed);
    *active().lock().unwrap() = None;
}

/// Counts of faults actually fired so far: `(nan, corrupt, io)`.
pub fn fired() -> (u64, u64, u64) {
    match active().lock().unwrap().as_ref() {
        Some(a) => (a.fired_nan, a.fired_corrupt, a.fired_io),
        None => (0, 0, 0),
    }
}

/// Counts of serving-encoder faults fired so far: `(slow, err)`.
pub fn fired_encode() -> (u64, u64) {
    match active().lock().unwrap().as_ref() {
        Some(a) => (a.fired_slow, a.fired_err),
        None => (0, 0),
    }
}

/// Counts of serving-worker faults fired so far: `(panic, stall)`.
pub fn fired_worker() -> (u64, u64) {
    match active().lock().unwrap().as_ref() {
        Some(a) => (a.fired_panic, a.fired_stall),
        None => (0, 0),
    }
}

/// Counts of ingestion/sharding faults fired so far:
/// `(wal_corrupt, shard_panic)`.
pub fn fired_ingest() -> (u64, u64) {
    match active().lock().unwrap().as_ref() {
        Some(a) => (a.fired_wal, a.fired_shard),
        None => (0, 0),
    }
}

#[inline]
fn armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// Consume one optimisation-step occurrence; true when this step's
/// loss should be poisoned with NaN.
pub fn trip_nan_loss() -> bool {
    if !armed() {
        return false;
    }
    let mut guard = active().lock().unwrap();
    let Some(a) = guard.as_mut() else { return false };
    let n = a.steps_seen;
    a.steps_seen += 1;
    let hit = a.plan.nan_steps.binary_search(&n).is_ok();
    if hit {
        a.fired_nan += 1;
        pmm_obs::counter::FAULTS_NAN.add(1);
    }
    hit
}

/// What an injected serving-encoder fault does to the guarded call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EncodeFault {
    /// The call stalls (the caller sleeps its configured slow
    /// duration) and then succeeds — a tail-latency fault.
    Slow,
    /// The call fails outright — a component-error fault.
    Err,
}

/// Consume one serving-encoder-call occurrence; `Some` when this call
/// should misbehave. When the same occurrence is listed under both
/// `slow@N` and `err@N`, the error wins (it is the harsher fault).
pub fn trip_encode() -> Option<EncodeFault> {
    if !armed() {
        return None;
    }
    let mut guard = active().lock().unwrap();
    let a = guard.as_mut()?;
    let n = a.encodes_seen;
    a.encodes_seen += 1;
    if a.plan.err_encodes.binary_search(&n).is_ok() {
        a.fired_err += 1;
        pmm_obs::counter::FAULTS_ERR.add(1);
        Some(EncodeFault::Err)
    } else if a.plan.slow_encodes.binary_search(&n).is_ok() {
        a.fired_slow += 1;
        pmm_obs::counter::FAULTS_SLOW.add(1);
        Some(EncodeFault::Slow)
    } else {
        None
    }
}

/// What an injected serving-worker fault does to the guarded request
/// execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerFault {
    /// The execution panics mid-request — the supervisor's
    /// `catch_unwind` isolation and respawn path see this.
    Panic,
    /// The execution wedges: the worker stalls without stamping its
    /// heartbeat until the watchdog declares it stuck.
    Stall,
}

/// Consume one serving-worker request-execution occurrence; `Some`
/// when this execution should misbehave. When the same occurrence is
/// listed under both `panic@N` and `stall@N`, the panic wins (it is
/// the harsher fault).
pub fn trip_worker() -> Option<WorkerFault> {
    if !armed() {
        return None;
    }
    let mut guard = active().lock().unwrap();
    let a = guard.as_mut()?;
    let n = a.workers_seen;
    a.workers_seen += 1;
    if a.plan.panic_workers.binary_search(&n).is_ok() {
        a.fired_panic += 1;
        pmm_obs::counter::FAULTS_PANIC.add(1);
        Some(WorkerFault::Panic)
    } else if a.plan.stall_workers.binary_search(&n).is_ok() {
        a.fired_stall += 1;
        pmm_obs::counter::FAULTS_STALL.add(1);
        Some(WorkerFault::Stall)
    } else {
        None
    }
}

/// Consume one WAL record-append occurrence; true when the frame
/// should be torn mid-write (only a prefix of the frame reaches the
/// log, as if the process crashed between write and fsync).
pub fn trip_wal_corrupt() -> bool {
    if !armed() {
        return false;
    }
    let mut guard = active().lock().unwrap();
    let Some(a) = guard.as_mut() else { return false };
    let n = a.wal_appends_seen;
    a.wal_appends_seen += 1;
    let hit = a.plan.wal_corrupts.binary_search(&n).is_ok();
    if hit {
        a.fired_wal += 1;
        pmm_obs::counter::FAULTS_WAL.add(1);
    }
    hit
}

/// Consume one per-shard rank-execution occurrence; true when this
/// shard execution should panic (the scatter-gather quarantines the
/// shard and serves a partial result).
pub fn trip_shard_panic() -> bool {
    if !armed() {
        return false;
    }
    let mut guard = active().lock().unwrap();
    let Some(a) = guard.as_mut() else { return false };
    let n = a.shard_ranks_seen;
    a.shard_ranks_seen += 1;
    let hit = a.plan.shard_panics.binary_search(&n).is_ok();
    if hit {
        a.fired_shard += 1;
        pmm_obs::counter::FAULTS_SHARD.add(1);
    }
    hit
}

/// Consume one rotating-save occurrence; true when the written file
/// should be corrupted afterwards.
pub fn trip_corrupt_save() -> bool {
    if !armed() {
        return false;
    }
    let mut guard = active().lock().unwrap();
    let Some(a) = guard.as_mut() else { return false };
    let n = a.saves_seen;
    a.saves_seen += 1;
    let hit = a.plan.corrupt_saves.binary_search(&n).is_ok();
    if hit {
        a.fired_corrupt += 1;
        pmm_obs::counter::FAULTS_CKPT.add(1);
    }
    hit
}

/// Consume one guarded-IO occurrence; true when its first attempt
/// should fail.
fn trip_io_failure() -> bool {
    if !armed() {
        return false;
    }
    let mut guard = active().lock().unwrap();
    let Some(a) = guard.as_mut() else { return false };
    let n = a.ios_seen;
    a.ios_seen += 1;
    let hit = a.plan.io_failures.binary_search(&n).is_ok();
    if hit {
        a.fired_io += 1;
        pmm_obs::counter::FAULTS_IO.add(1);
    }
    hit
}

/// Maximum attempts [`with_io_retry`] makes (1 initial + 2 retries).
pub const IO_ATTEMPTS: u32 = 3;

/// Runs a fallible IO operation with bounded retry and exponential
/// backoff (1 ms, 4 ms). An installed plan can force the first attempt
/// of the N-th guarded operation to fail with an injected error.
/// Returns the first success or the last error.
pub fn with_io_retry<T>(
    what: &str,
    op: impl FnMut() -> std::io::Result<T>,
) -> std::io::Result<T> {
    with_io_retry_notify(what, op, |_, _| {})
}

/// [`with_io_retry`] with an `on_retry(attempt, error)` callback fired
/// before each backoff sleep — the hook observability layers use to
/// count retries without this crate depending on them.
pub fn with_io_retry_notify<T>(
    what: &str,
    mut op: impl FnMut() -> std::io::Result<T>,
    mut on_retry: impl FnMut(u32, &std::io::Error),
) -> std::io::Result<T> {
    let inject = trip_io_failure();
    let mut last_err = None;
    for attempt in 0..IO_ATTEMPTS {
        if attempt == 0 && inject {
            last_err = Some(std::io::Error::other(format!("injected fault: {what}")));
        } else {
            match op() {
                Ok(v) => return Ok(v),
                Err(e) => last_err = Some(e),
            }
        }
        if attempt + 1 < IO_ATTEMPTS {
            if let Some(e) = &last_err {
                on_retry(attempt, e);
            }
            std::thread::sleep(Duration::from_millis(1 << (2 * attempt)));
        }
    }
    Err(last_err.unwrap_or_else(|| std::io::Error::other(format!("{what}: no attempts made"))))
}

/// Truncate `path` to half its length (at least cutting one byte) —
/// the canonical "crashed mid-write" corruption used when
/// [`trip_corrupt_save`] fires.
pub fn corrupt_file(path: &std::path::Path) -> std::io::Result<()> {
    let len = std::fs::metadata(path)?.len();
    let keep = (len / 2).min(len.saturating_sub(1));
    let f = std::fs::OpenOptions::new().write(true).open(path)?;
    f.set_len(keep)?;
    Ok(())
}

/// Serialises tests (and other callers) that install process-global
/// plans. Hold the guard for the whole install..clear window.
pub fn test_guard() -> MutexGuard<'static, ()> {
    static GUARD: OnceLock<Mutex<()>> = OnceLock::new();
    GUARD
        .get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|poison| poison.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_all_kinds_and_sorts() {
        let p = FaultPlan::parse("nan@4, nan@2,ckpt@1,io@0,slow@7,err@3,err@1").unwrap();
        assert_eq!(p.nan_steps, vec![2, 4]);
        assert_eq!(p.corrupt_saves, vec![1]);
        assert_eq!(p.io_failures, vec![0]);
        assert_eq!(p.slow_encodes, vec![7]);
        assert_eq!(p.err_encodes, vec![1, 3]);
        assert!(FaultPlan::parse("").unwrap().is_empty());
    }

    #[test]
    fn encode_trips_fire_on_exact_occurrences_with_err_precedence() {
        let _g = test_guard();
        install(FaultPlan::parse("slow@0,slow@2,err@2").unwrap());
        assert_eq!(trip_encode(), Some(EncodeFault::Slow)); // call 0
        assert_eq!(trip_encode(), None); // call 1
        assert_eq!(trip_encode(), Some(EncodeFault::Err)); // call 2: err wins
        assert_eq!(trip_encode(), None); // call 3
        assert_eq!(fired_encode(), (1, 1));
        clear();
        assert_eq!(trip_encode(), None);
    }

    #[test]
    fn worker_trips_fire_on_exact_occurrences_with_panic_precedence() {
        let _g = test_guard();
        install(FaultPlan::parse("panic@0,stall@2,panic@2,stall@3").unwrap());
        assert_eq!(trip_worker(), Some(WorkerFault::Panic)); // execution 0
        assert_eq!(trip_worker(), None); // execution 1
        assert_eq!(trip_worker(), Some(WorkerFault::Panic)); // execution 2: panic wins
        assert_eq!(trip_worker(), Some(WorkerFault::Stall)); // execution 3
        assert_eq!(trip_worker(), None); // execution 4
        assert_eq!(fired_worker(), (2, 1));
        clear();
        assert_eq!(trip_worker(), None);
    }

    #[test]
    fn parse_accepts_worker_kinds() {
        let p = FaultPlan::parse("panic@3, panic@1,stall@5").unwrap();
        assert_eq!(p.panic_workers, vec![1, 3]);
        assert_eq!(p.stall_workers, vec![5]);
        assert!(!p.is_empty());
    }

    #[test]
    fn parse_accepts_ingest_kinds() {
        let p = FaultPlan::parse("wal_corrupt@3, wal_corrupt@1,shard_panic@2").unwrap();
        assert_eq!(p.wal_corrupts, vec![1, 3]);
        assert_eq!(p.shard_panics, vec![2]);
        assert!(!p.is_empty());
    }

    #[test]
    fn wal_and_shard_trips_fire_on_exact_occurrences() {
        let _g = test_guard();
        install(FaultPlan::parse("wal_corrupt@1,shard_panic@0,shard_panic@2").unwrap());
        assert!(!trip_wal_corrupt()); // append 0
        assert!(trip_wal_corrupt()); // append 1
        assert!(!trip_wal_corrupt()); // append 2
        assert!(trip_shard_panic()); // shard rank 0
        assert!(!trip_shard_panic()); // shard rank 1
        assert!(trip_shard_panic()); // shard rank 2
        assert_eq!(fired_ingest(), (1, 2));
        clear();
        assert!(!trip_wal_corrupt());
        assert!(!trip_shard_panic());
    }

    #[test]
    fn parse_rejects_malformed_tokens() {
        assert!(FaultPlan::parse("nan").is_err());
        assert!(FaultPlan::parse("nan@x").is_err());
        assert!(FaultPlan::parse("disk@3").is_err());
    }

    #[test]
    fn trips_fire_on_exact_occurrences() {
        let _g = test_guard();
        install(FaultPlan::parse("nan@1,ckpt@0").unwrap());
        assert!(!trip_nan_loss()); // step 0
        assert!(trip_nan_loss()); // step 1
        assert!(!trip_nan_loss()); // step 2
        assert!(trip_corrupt_save()); // save 0
        assert!(!trip_corrupt_save()); // save 1
        assert_eq!(fired(), (1, 1, 0));
        clear();
        assert!(!trip_nan_loss());
    }

    #[test]
    fn io_retry_recovers_from_injected_failure() {
        let _g = test_guard();
        install(FaultPlan::parse("io@0").unwrap());
        let mut calls = 0;
        let out = with_io_retry("read", || {
            calls += 1;
            Ok::<_, std::io::Error>(7)
        });
        assert_eq!(out.unwrap(), 7);
        assert_eq!(calls, 1, "first attempt consumed by the injected error");
        assert_eq!(fired().2, 1);
        clear();
    }

    #[test]
    fn io_retry_surfaces_persistent_errors() {
        let _g = test_guard();
        clear();
        let mut calls = 0;
        let out: std::io::Result<()> = with_io_retry("read", || {
            calls += 1;
            Err(std::io::Error::other("always down"))
        });
        assert!(out.is_err());
        assert_eq!(calls, IO_ATTEMPTS);
    }

    #[test]
    fn corrupt_file_truncates() {
        let path = std::env::temp_dir().join(format!("pmm_fault_corrupt_{}", std::process::id()));
        std::fs::write(&path, vec![7u8; 100]).unwrap();
        corrupt_file(&path).unwrap();
        assert_eq!(std::fs::metadata(&path).unwrap().len(), 50);
        std::fs::remove_file(&path).ok();
    }
}
