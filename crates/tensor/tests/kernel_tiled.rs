//! Property sweep for the matmul kernel paths: for every shape in the
//! edge grid (all dims through the register-tile sizes ±1, plus the
//! KC k-block boundary), all four transpose modes, and worker counts
//! {1, 4}, the packed register-tiled path, the strided scalar path,
//! and the public dispatching `matmul_t` must all be bit-identical to
//! a naive triple-loop reference.

use pmm_tensor::kernel_testing as kt;
use pmm_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Naive i-k-j reference: ascending-k accumulation per output element,
/// the exact summation order every kernel path must reproduce.
fn naive(a: &Tensor, b: &Tensor, trans_a: bool, trans_b: bool) -> Tensor {
    let (m, k) = if trans_a {
        (a.shape()[1], a.shape()[0])
    } else {
        (a.shape()[0], a.shape()[1])
    };
    let n = if trans_b { b.shape()[0] } else { b.shape()[1] };
    let at = |i: usize, kk: usize| {
        if trans_a {
            a.data()[kk * a.shape()[1] + i]
        } else {
            a.data()[i * a.shape()[1] + kk]
        }
    };
    let bt = |kk: usize, j: usize| {
        if trans_b {
            b.data()[j * b.shape()[1] + kk]
        } else {
            b.data()[kk * b.shape()[1] + j]
        }
    };
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for kk in 0..k {
                acc += at(i, kk) * bt(kk, j);
            }
            out[i * n + j] = acc;
        }
    }
    Tensor::from_vec(out, &[m, n]).unwrap()
}

/// Builds the `[m, k]` logical lhs and `[k, n]` logical rhs for a
/// mode, stored pre-transposed when the flag asks for it. Every fourth
/// lhs element is zeroed so the zero-skip branches run in the sweep.
fn operands(
    m: usize,
    k: usize,
    n: usize,
    trans_a: bool,
    trans_b: bool,
    rng: &mut StdRng,
) -> (Tensor, Tensor) {
    let mut a = if trans_a {
        Tensor::randn(&[k, m], 1.0, rng)
    } else {
        Tensor::randn(&[m, k], 1.0, rng)
    };
    for (i, v) in a.data_mut().iter_mut().enumerate() {
        if i % 4 == 0 {
            *v = 0.0;
        }
    }
    let b = if trans_b {
        Tensor::randn(&[n, k], 1.0, rng)
    } else {
        Tensor::randn(&[k, n], 1.0, rng)
    };
    (a, b)
}

fn sweep(dims: &[usize], ks: &[usize], rng: &mut StdRng) {
    for &m in dims {
        for &k in ks {
            for &n in dims {
                for (trans_a, trans_b) in [(false, false), (false, true), (true, false), (true, true)]
                {
                    let (a, b) = operands(m, k, n, trans_a, trans_b, rng);
                    let want = naive(&a, &b, trans_a, trans_b);
                    for threads in [1usize, 4] {
                        pmm_par::set_threads(Some(threads));
                        let tiled = kt::matmul_tiled(&a, &b, trans_a, trans_b);
                        let small = kt::matmul_small(&a, &b, trans_a, trans_b);
                        let public = a.matmul_t(&b, trans_a, trans_b);
                        pmm_par::set_threads(None);
                        let tag = format!(
                            "m={m} k={k} n={n} ta={trans_a} tb={trans_b} threads={threads}"
                        );
                        assert_eq!(tiled, want, "tiled vs naive: {tag}");
                        assert_eq!(small, want, "small vs naive: {tag}");
                        assert_eq!(public, want, "dispatch vs naive: {tag}");
                    }
                }
            }
        }
    }
}

#[test]
fn edge_shape_sweep_all_modes_bit_identical() {
    let (mr, nr, _) = kt::TILE;
    // 1..17 covers MR±1 and NR±1 for the shipped tile sizes; assert
    // that so a tile retune forces this grid to be revisited.
    assert!(mr < 17 && nr < 17, "sweep grid no longer covers tile±1");
    let dims = [1usize, 2, 3, mr - 1, mr, mr + 1, 7, 8, 9, nr - 1, nr, nr + 1];
    let ks = [1usize, 2, 3, mr, 7, 8, nr - 1, nr, nr + 1, 17];
    let mut rng = StdRng::seed_from_u64(42);
    sweep(&dims, &ks, &mut rng);
}

#[test]
fn kc_block_boundary_sweep_bit_identical() {
    let (_, _, kc) = kt::TILE;
    // k crossing the cache-block depth exercises the k-block resume
    // (load partial sums, extend the ascending-k chain, store back).
    let dims = [3usize, 5, 16];
    let ks = [kc - 1, kc, kc + 1];
    let mut rng = StdRng::seed_from_u64(7);
    sweep(&dims, &ks, &mut rng);
}

#[test]
fn dispatch_threshold_picks_tiled_for_large_scalar_for_small() {
    assert!(
        !kt::takes_tiled_path(4, 4, 4),
        "tiny shapes must stay on the scalar path (packing cannot amortize)"
    );
    assert!(
        !kt::takes_tiled_path(1, 4096, 4096),
        "single-row products must stay on the scalar path (A panel is 3/4 padding)"
    );
    assert!(kt::takes_tiled_path(256, 256, 256), "256^3 must take the tiled path");
    assert!(kt::takes_tiled_path(64, 32, 64), "ranking-scale products must take the tiled path");
}

#[test]
fn thread_sweep_at_acceptance_shape_is_bit_identical() {
    // The acceptance-criteria shape: 256^3 at threads {1, 2, 4, 7}.
    let mut rng = StdRng::seed_from_u64(3);
    let a = Tensor::randn(&[256, 256], 1.0, &mut rng);
    let b = Tensor::randn(&[256, 256], 1.0, &mut rng);
    for (trans_a, trans_b) in [(false, false), (false, true), (true, false), (true, true)] {
        let mut reference: Option<Tensor> = None;
        for threads in [1usize, 2, 4, 7] {
            pmm_par::set_threads(Some(threads));
            let got = a.matmul_t(&b, trans_a, trans_b);
            pmm_par::set_threads(None);
            match &reference {
                None => reference = Some(got),
                Some(want) => {
                    assert_eq!(&got, want, "ta={trans_a} tb={trans_b} threads={threads}")
                }
            }
        }
    }
}
