//! Bit-identity of every parallelised kernel across thread counts.
//!
//! The pmm-par runtime partitions work by output rows, and each row is
//! computed by exactly one worker running the same inner-loop order as
//! the sequential kernel — so results must be *bit-identical* at any
//! thread count, not merely close. These tests pin that contract:
//! every kernel runs at threads ∈ {1, 2, 4, 7} on odd sizes that do
//! not divide evenly by the chunk count, and every output is compared
//! bitwise against the threads=1 run (which dispatches as a plain
//! direct call, i.e. *is* the sequential baseline).
//!
//! Sizes are chosen to actually cross the dispatch thresholds in
//! `tensor.rs` (`PAR_MIN_MULADDS` = 2^21, `PAR_MIN_ELEMS` = 2^18);
//! smaller inputs would take the sequential fallback and the test
//! would pass vacuously.

use pmm_tensor::{Tensor, Var};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// 1 is the sequential baseline; 7 is odd so the row counts below
/// never split into equal chunks.
const THREADS: [usize; 4] = [1, 2, 4, 7];

/// `pmm_par::set_threads` is process-global, so every test serialises
/// on this lock for its whole body.
fn lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(())).lock().unwrap_or_else(|e| e.into_inner())
}

/// Deterministic LCG fill in [-2, 2) with exact zeros sprinkled in
/// (~20%) so the matmul zero-skip path is exercised, not just the
/// dense one.
fn filled(n: usize, seed: u32) -> Vec<f32> {
    let mut s = seed.wrapping_mul(0x9E37_79B9).wrapping_add(12345);
    (0..n)
        .map(|_| {
            s = s.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
            if s.is_multiple_of(5) {
                0.0
            } else {
                ((s >> 8) as f32 / (1u32 << 24) as f32) * 4.0 - 2.0
            }
        })
        .collect()
}

fn tensor(shape: &[usize], seed: u32) -> Tensor {
    Tensor::from_vec(filled(shape.iter().product(), seed), shape).unwrap()
}

/// Runs `f` once per thread count and asserts every output is
/// bit-identical to the threads=1 run.
fn assert_bit_identical(name: &str, f: impl Fn() -> Vec<f32>) {
    let _g = lock();
    pmm_par::set_threads(Some(1));
    let reference = f();
    for &t in &THREADS[1..] {
        pmm_par::set_threads(Some(t));
        let out = f();
        assert_eq!(reference.len(), out.len(), "{name}: output length changed at threads={t}");
        for (i, (a, b)) in reference.iter().zip(&out).enumerate() {
            assert!(
                a.to_bits() == b.to_bits(),
                "{name}: element {i} differs at threads={t}: {a:?} vs {b:?}"
            );
        }
    }
    pmm_par::set_threads(None);
}

#[test]
fn matmul_all_transpose_modes_match_sequential() {
    // k*n = 16129 puts min_rows at 130, so m = 911 = 7*130 + 1 yields
    // up to 7 workers with an uneven tail chunk at every count.
    const M: usize = 911;
    const K: usize = 127;
    const N: usize = 127;
    let a = tensor(&[M, K], 1);
    let b = tensor(&[K, N], 2);
    let at = tensor(&[K, M], 3);
    let bt = tensor(&[N, K], 4);
    assert_bit_identical("matmul_nn", || a.matmul_t(&b, false, false).into_vec());
    assert_bit_identical("matmul_nt", || a.matmul_t(&bt, false, true).into_vec());
    assert_bit_identical("matmul_tn", || at.matmul_t(&b, true, false).into_vec());
    assert_bit_identical("matmul_tt", || at.matmul_t(&bt, true, true).into_vec());
}

#[test]
fn bmm_batch_parallel_matches_sequential() {
    // Each batch element is ~1.1M muladds, so min_batch resolves to 1
    // and the 7 batch elements spread over up to 7 workers; the nested
    // per-element kernel stays sequential (rows < its own threshold),
    // exercising the IN_WORKER degradation path.
    let a = tensor(&[7, 131, 65], 5);
    let b_nn = tensor(&[7, 65, 127], 6);
    let b_nt = tensor(&[7, 127, 65], 7);
    assert_bit_identical("bmm_nn", || a.bmm_t(&b_nn, false, false).into_vec());
    assert_bit_identical("bmm_nt", || a.bmm_t(&b_nt, false, true).into_vec());
}

#[test]
fn elementwise_kernels_match_sequential() {
    // 4 * 2^18 + 1 elements: up to 4 workers, odd tail element.
    const LEN: usize = (4 << 18) + 1;
    let x = tensor(&[LEN], 8);
    let y = tensor(&[LEN], 9);
    assert_bit_identical("map", || x.map(|v| v * v + 0.5).into_vec());
    assert_bit_identical("zip_map", || x.zip_map(&y, |a, b| a * b + a).into_vec());
    assert_bit_identical("add_assign", || {
        let mut z = x.clone();
        z.add_assign(&y);
        z.into_vec()
    });
    assert_bit_identical("axpy", || {
        let mut z = x.clone();
        z.axpy(0.5, &y);
        z.into_vec()
    });
}

#[test]
fn softmax_and_transpose_match_sequential() {
    // 4099 rows of 257: min_rows = 2^18/257 = 1020 -> up to 4 workers.
    let x = tensor(&[4099, 257], 10);
    assert_bit_identical("softmax_last", || x.softmax_last().into_vec());
    // transpose2 parallelises over *output* rows: 2049 rows of length
    // 513, min_rows = 2^18/513 = 511 -> up to 4 workers.
    let t2 = tensor(&[513, 2049], 11);
    assert_bit_identical("transpose2", || t2.transpose2().into_vec());
}

#[test]
fn norm_ops_match_sequential_forward_and_backward() {
    // layer_norm: min_rows = 2^18/8/65 = 504, rows = 3547 -> 7 workers.
    let x = tensor(&[3547, 65], 12);
    let gamma = tensor(&[65], 13);
    let beta = tensor(&[65], 14);
    assert_bit_identical("layer_norm", || {
        Var::constant(x.clone())
            .layer_norm(&Var::constant(gamma.clone()), &Var::constant(beta.clone()), 1e-5)
            .value()
            .clone()
            .into_vec()
    });

    // l2_normalize_rows: min_rows = 2^18/4/65 = 1008, rows = 4097 -> 4
    // workers; the backward dx loop parallelises the same way.
    let x2 = tensor(&[4097, 65], 15);
    let w2 = tensor(&[4097, 65], 16);
    assert_bit_identical("l2_normalize_rows", || {
        Var::constant(x2.clone()).l2_normalize_rows().value().clone().into_vec()
    });
    assert_bit_identical("l2_normalize_rows_backward", || {
        let vx = Var::leaf(x2.clone());
        vx.l2_normalize_rows().mul(&Var::constant(w2.clone())).sum_all().backward();
        vx.grad().expect("leaf grad").into_vec()
    });

    // softmax backward dx is row-parallel too.
    let x3 = tensor(&[4099, 257], 17);
    let w3 = tensor(&[4099, 257], 18);
    assert_bit_identical("softmax_backward", || {
        let vx = Var::leaf(x3.clone());
        vx.softmax_last().mul(&Var::constant(w3.clone())).sum_all().backward();
        vx.grad().expect("leaf grad").into_vec()
    });
}
