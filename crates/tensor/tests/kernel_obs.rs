//! Kernel accounting: pack scratch must be visible in the obs
//! counters, FLOP accounting must be zero-skip-consistent across all
//! four transpose modes, and the quantized path must report its own
//! storage and integer-op counters.
//!
//! Everything lives in ONE test function: the counters are process
//! globals and the test harness runs `#[test]` fns concurrently, so a
//! second test in this binary would race the deltas.

use pmm_obs::counter as c;
use pmm_tensor::kernel_testing as kt;
use pmm_tensor::{QTensor, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn pack_scratch_flops_and_qtensor_counters_account_every_kernel() {
    let was_enabled = pmm_obs::enabled();
    pmm_obs::set_enabled(true);

    let (mr, nr, _) = kt::TILE;
    let (m, k, n) = (64usize, 32, 64);
    assert!(kt::takes_tiled_path(m, k, n), "shape must dispatch to the tiled path");

    let mut rng = StdRng::seed_from_u64(11);
    let mut a = Tensor::randn(&[m, k], 1.0, &mut rng);
    for (i, v) in a.data_mut().iter_mut().enumerate() {
        if i % 3 == 0 {
            *v = 0.0;
        }
    }
    let zeros = a.data().iter().filter(|&&v| v == 0.0).count();
    assert!(zeros > 0, "the sweep must exercise the zero-skip accounting");
    let b = Tensor::randn(&[k, n], 1.0, &mut rng);

    // --- Satellite 1: pack scratch buffers are counted. One A pack +
    // one B pack per tiled product, with exact panel geometry.
    let (allocs0, bytes0) = (c::PACK_ALLOCS.get(), c::PACK_ALLOC_BYTES.get());
    let _ = a.matmul(&b);
    let pack_elems = m.div_ceil(mr) * k * mr + n.div_ceil(nr) * k * nr;
    assert_eq!(c::PACK_ALLOCS.delta_since(allocs0), 2, "one A pack + one B pack");
    assert_eq!(
        c::PACK_ALLOC_BYTES.delta_since(bytes0),
        (pack_elems * std::mem::size_of::<f32>()) as u64,
        "pack bytes must match the padded panel geometry"
    );

    // --- Satellite 3: all four transpose modes charge the same
    // zero-skip-adjusted FLOPs for the same logical product.
    let want_flops = 2 * ((m * k - zeros) as u64) * (n as u64);
    // Pre-transposed operands hold the same logical values; their zero
    // patterns (and so the skip credit) are identical by construction.
    let at = transpose2(&a);
    let bt = transpose2(&b);
    for (lhs, rhs, trans_a, trans_b) in [
        (&a, &b, false, false),
        (&a, &bt, false, true),
        (&at, &b, true, false),
        (&at, &bt, true, true),
    ] {
        let flops0 = c::MATMUL_FLOPS.get();
        let _ = lhs.matmul_t(rhs, trans_a, trans_b);
        assert_eq!(
            c::MATMUL_FLOPS.delta_since(flops0),
            want_flops,
            "ta={trans_a} tb={trans_b} must charge skip-adjusted FLOPs"
        );
    }

    // --- Quantized path: storage and integer ops are attributed to
    // their own counters, not folded into the float ones.
    let (qa0, qb0) = (c::QTENSOR_ALLOCS.get(), c::QTENSOR_ALLOC_BYTES.get());
    let qa = QTensor::quantize_rows(&a);
    let qb = QTensor::quantize_rows(&transpose2(&b));
    assert_eq!(c::QTENSOR_ALLOCS.delta_since(qa0), 2);
    assert_eq!(
        c::QTENSOR_ALLOC_BYTES.delta_since(qb0),
        (qa.storage_bytes() + qb.storage_bytes()) as u64,
        "qtensor bytes must match the reported storage"
    );
    let (iops0, flops0) = (c::QMATMUL_INT_OPS.get(), c::MATMUL_FLOPS.get());
    let _ = qa.matmul_nt(&qb);
    assert_eq!(
        c::QMATMUL_INT_OPS.delta_since(iops0),
        2 * (m as u64) * (k as u64) * (n as u64),
        "int8 products charge 2·m·k·n integer multiply-adds"
    );
    assert_eq!(
        c::MATMUL_FLOPS.delta_since(flops0),
        0,
        "int8 products must not leak into the float FLOP counter"
    );

    pmm_obs::set_enabled(was_enabled);
}

/// Out-of-place transpose of a rank-2 tensor via raw indexing, so the
/// counter math above doesn't depend on library transpose internals.
fn transpose2(t: &Tensor) -> Tensor {
    let (r, c) = (t.shape()[0], t.shape()[1]);
    let mut out = vec![0.0f32; r * c];
    for i in 0..r {
        for j in 0..c {
            out[j * r + i] = t.data()[i * c + j];
        }
    }
    Tensor::from_vec(out, &[c, r]).unwrap()
}
