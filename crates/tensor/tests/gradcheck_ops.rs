//! Finite-difference validation for every differentiable op.
//!
//! Each test builds a small random input, composes the op under test
//! into a scalar loss, and asserts the analytic gradient matches central
//! finite differences. Proptest drives the randomisation so shapes and
//! values vary between runs while staying shrinkable.

use pmm_tensor::gradcheck::check_gradients;
use pmm_tensor::{Tensor, Var};
use proptest::prelude::*;

const EPS: f32 = 1e-2;
const TOL: f32 = 2e-2;

fn small_tensor(shape: Vec<usize>) -> impl Strategy<Value = Tensor> {
    let n: usize = shape.iter().product();
    let sh = shape.clone();
    proptest::collection::vec(-2.0f32..2.0, n)
        .prop_map(move |v| Tensor::from_vec(v, &sh).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn grad_add_mul_sub(x in small_tensor(vec![2, 3]), y in small_tensor(vec![2, 3])) {
        check_gradients(&[x, y], |v| v[0].mul(&v[1]).add(&v[0]).sub(&v[1]).sum_all(), EPS, TOL);
    }

    #[test]
    fn grad_add_bias(x in small_tensor(vec![3, 4]), b in small_tensor(vec![4])) {
        check_gradients(&[x, b], |v| v[0].add_bias(&v[1]).mul(&v[0].add_bias(&v[1])).sum_all(), EPS, TOL);
    }

    #[test]
    fn grad_matmul_all_transpose_modes(a in small_tensor(vec![3, 2]), b in small_tensor(vec![2, 4])) {
        check_gradients(&[a.clone(), b.clone()], |v| v[0].matmul(&v[1]).sum_all(), EPS, TOL);
        check_gradients(&[a.clone(), b.clone()], |v| v[1].matmul_tn(&v[1]).matmul(&v[0].matmul(&v[1]).transpose2()).sum_all(), EPS, TOL);
        check_gradients(std::slice::from_ref(&a), |v| v[0].matmul_nt(&v[0]).sum_all(), EPS, TOL);
    }

    #[test]
    fn grad_bmm(a in small_tensor(vec![2, 2, 3]), b in small_tensor(vec![2, 3, 2])) {
        check_gradients(&[a.clone(), b.clone()], |v| v[0].bmm(&v[1]).sum_all(), EPS, TOL);
        check_gradients(&[a], |v| v[0].bmm_nt(&v[0]).sum_all(), EPS, TOL);
    }

    #[test]
    fn grad_activations(x in small_tensor(vec![2, 3])) {
        check_gradients(std::slice::from_ref(&x), |v| v[0].relu().mul(&v[0]).sum_all(), EPS, 5e-2);
        check_gradients(std::slice::from_ref(&x), |v| v[0].gelu().sum_all(), EPS, TOL);
        check_gradients(std::slice::from_ref(&x), |v| v[0].tanh().sum_all(), EPS, TOL);
        check_gradients(std::slice::from_ref(&x), |v| v[0].sigmoid().sum_all(), EPS, TOL);
        check_gradients(&[x], |v| v[0].exp().sum_all(), EPS, 5e-2);
    }

    #[test]
    fn grad_ln_positive_inputs(x in proptest::collection::vec(0.2f32..3.0, 6)) {
        let t = Tensor::from_vec(x, &[2, 3]).unwrap();
        check_gradients(&[t], |v| v[0].ln().sum_all(), 1e-3, TOL);
    }

    #[test]
    fn grad_softmax(x in small_tensor(vec![2, 4]), w in small_tensor(vec![2, 4])) {
        check_gradients(&[x, w], |v| v[0].softmax_last().mul(&v[1]).sum_all(), EPS, TOL);
    }

    #[test]
    fn grad_masked_softmax(x in small_tensor(vec![2, 4]), w in small_tensor(vec![2, 4])) {
        let mask = Tensor::from_vec(vec![1.0, 1.0, 0.0, 1.0, 1.0, 0.0, 1.0, 1.0], &[2, 4]).unwrap();
        check_gradients(&[x, w], move |v| v[0].masked_softmax_last(&mask).mul(&v[1]).sum_all(), EPS, TOL);
    }

    #[test]
    fn grad_layer_norm(
        x in small_tensor(vec![3, 4]),
        g in small_tensor(vec![4]),
        b in small_tensor(vec![4]),
        w in small_tensor(vec![3, 4]),
    ) {
        check_gradients(
            &[x, g, b, w],
            |v| v[0].layer_norm(&v[1], &v[2], 1e-5).mul(&v[3]).sum_all(),
            EPS,
            5e-2,
        );
    }

    #[test]
    fn grad_l2_normalize(x in proptest::collection::vec(0.5f32..2.0, 6), w in small_tensor(vec![2, 3])) {
        let t = Tensor::from_vec(x, &[2, 3]).unwrap();
        check_gradients(&[t, w], |v| v[0].l2_normalize_rows().mul(&v[1]).sum_all(), 1e-3, TOL);
    }

    #[test]
    fn grad_structural_ops(x in small_tensor(vec![4, 4])) {
        check_gradients(std::slice::from_ref(&x), |v| v[0].reshape(&[2, 8]).mul(&v[0].reshape(&[2, 8])).sum_all(), EPS, TOL);
        check_gradients(std::slice::from_ref(&x), |v| v[0].gather_rows(&[0, 2, 2, 3]).mul(&v[0]).sum_all(), EPS, TOL);
        check_gradients(std::slice::from_ref(&x), |v| v[0].slice_rows(1, 2).mul(&v[0].slice_rows(0, 2)).sum_all(), EPS, TOL);
        check_gradients(std::slice::from_ref(&x), |v| {
            v[0].split_heads(2, 2, 2).bmm_nt(&v[0].split_heads(2, 2, 2)).sum_all()
        }, EPS, TOL);
        check_gradients(&[x], |v| v[0].mean_pool(2, 2, &[1.0, 1.0, 1.0, 0.0]).mul(&v[0].slice_rows(0, 2)).sum_all(), EPS, TOL);
    }

    #[test]
    fn grad_concat(a in small_tensor(vec![2, 3]), b in small_tensor(vec![3, 3])) {
        check_gradients(&[a, b], |v| {
            let c = Var::concat0(&[v[0].clone(), v[1].clone()]);
            c.mul(&c).sum_all()
        }, EPS, TOL);
    }

    #[test]
    fn grad_cross_entropy(x in small_tensor(vec![3, 5])) {
        check_gradients(std::slice::from_ref(&x), |v| v[0].cross_entropy_logits(&[0, 2, 4], None), 1e-3, TOL);
        check_gradients(&[x], |v| v[0].cross_entropy_logits(&[1, 1, 3], Some(&[1.0, 0.0, 2.0])), 1e-3, TOL);
    }

    #[test]
    fn grad_group_contrastive(x in small_tensor(vec![3, 5])) {
        let pos = Tensor::from_vec(
            vec![
                1.0, 0.0, 1.0, 0.0, 0.0, //
                0.0, 1.0, 0.0, 0.0, 0.0, //
                0.0, 0.0, 0.0, 1.0, 1.0,
            ],
            &[3, 5],
        )
        .unwrap();
        let den = Tensor::from_vec(
            vec![
                1.0, 1.0, 0.0, 1.0, 1.0, //
                0.0, 1.0, 1.0, 1.0, 1.0, //
                1.0, 1.0, 1.0, 1.0, 0.0,
            ],
            &[3, 5],
        )
        .unwrap();
        check_gradients(
            &[x],
            move |v| v[0].group_contrastive_loss(&pos, &den, Some(&[1.0, 0.5, 2.0])),
            1e-3,
            TOL,
        );
    }

    #[test]
    fn grad_dropout(x in small_tensor(vec![2, 4])) {
        let mask = Tensor::from_vec(vec![2.0, 0.0, 2.0, 0.0, 0.0, 2.0, 2.0, 2.0], &[2, 4]).unwrap();
        check_gradients(&[x], move |v| v[0].dropout(&mask).mul(&v[0].dropout(&mask)).sum_all(), EPS, TOL);
    }

    #[test]
    fn grad_composite_attention_like(x in small_tensor(vec![4, 4]), w in small_tensor(vec![4, 4])) {
        // A miniature attention block: q=k=v=xW, scores softmaxed, then
        // a weighted sum — exercises the op chain end to end.
        check_gradients(&[x, w], |v| {
            let h = v[0].matmul(&v[1]);
            let q = h.split_heads(2, 2, 2);
            let scores = q.bmm_nt(&q).scale(0.5);
            let attn = scores.softmax_last();
            attn.bmm(&q).merge_heads(2, 2).sum_all()
        }, EPS, 5e-2);
    }
}
