//! # pmm-tensor
//!
//! Dense `f32` tensors with reverse-mode automatic differentiation.
//!
//! This crate is the numerical substrate for the PMMRec reproduction: a
//! deliberately small, dependency-free (besides `rand`) tensor library
//! that provides exactly the operator set needed to train Transformer
//! encoders, GRUs and dilated convolutions on CPU, with gradients that
//! are property-tested against finite differences.
//!
//! ## Layout
//!
//! * [`Tensor`] — row-major `Vec<f32>` storage plus a shape. All
//!   non-autograd numerical kernels live here.
//! * [`Var`] — a node in a dynamically built computation graph. Calling
//!   an op method on a [`Var`] records the backward closure; calling
//!   [`Var::backward`] on a scalar propagates gradients to every
//!   reachable leaf that requires them.
//! * [`gradcheck`] — central finite-difference utilities used by the
//!   test-suite to validate every differentiable op.
//!
//! ## Conventions
//!
//! * Shapes are checked eagerly; shape mismatches are *programmer
//!   errors* and panic with a descriptive message (the same contract as
//!   `ndarray`).
//! * "Row ops" (softmax, layer-norm, l2-normalize, …) operate over the
//!   **last** axis and are defined for any rank by viewing the tensor as
//!   `[numel / last, last]`.
//! * Batched matmul ([`Var::bmm`]) treats the first axis as the batch.
//!
//! ```
//! use pmm_tensor::{Tensor, Var};
//!
//! let a = Var::leaf(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap());
//! let b = Var::leaf(Tensor::from_vec(vec![0.5, 0.0, 0.0, 0.5], &[2, 2]).unwrap());
//! let loss = a.matmul(&b).sum_all();
//! loss.backward();
//! assert_eq!(a.grad().unwrap().shape(), &[2, 2]);
//! ```

mod graph;
pub mod gradcheck;
mod ops;
mod shape;
mod tensor;

pub mod qtensor;

pub use graph::Var;
pub use qtensor::QTensor;
pub use shape::{check_same_shape, numel, ShapeError};
pub use tensor::Tensor;

#[doc(hidden)]
pub use tensor::testing as kernel_testing;
