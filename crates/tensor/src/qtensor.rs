//! Per-row affine int8 quantization and dequant-free integer ranking
//! kernels.
//!
//! PMMRec serves items from raw text/image encodings, so the serving
//! hot loop is `user · catalog^T` over the item CLS rows. [`QTensor`]
//! stores such a matrix as one `i8` per element plus a per-row
//! `(scale, zero_point, row_sum)` triple; with
//!
//! ```text
//! a = s_a (q_a − z_a)        b = s_b (q_b − z_b)
//! a · b = s_a s_b ( Σ q_a q_b − z_a Σ q_b − z_b Σ q_a + k z_a z_b )
//! ```
//!
//! the whole dot product runs in `i32` accumulators — no per-element
//! dequantization — and the precomputed row sums turn the affine
//! correction into four scalar terms per output element. Quantization
//! is value-preserving at zero (the zero point is an exact `i8`), so
//! padded or masked entries stay exactly zero through a round trip.
//!
//! Every output element is computed independently in ascending-`k`
//! order, so results are bit-identical at every thread count, exactly
//! like the f32 kernels (`tests/par_determinism.rs` convention).

use crate::tensor::Tensor;

/// A rank-2 matrix quantized to int8 with per-row affine parameters.
///
/// Rows keep independent scales because catalogue CLS rows differ in
/// magnitude after layer-norm + projection: a single tensor-wide scale
/// would burn most of the 8-bit budget on the widest row.
#[derive(Debug, Clone, PartialEq)]
pub struct QTensor {
    /// Row-major `[rows, cols]` int8 payload.
    data: Vec<i8>,
    rows: usize,
    cols: usize,
    /// Per-row dequantization scale (`v ≈ scale * (q - zero)`).
    scale: Vec<f32>,
    /// Per-row zero point, in the quantized domain.
    zero: Vec<i32>,
    /// Per-row sum of quantized entries, precomputed for the affine
    /// correction terms of the integer dot product.
    row_sum: Vec<i32>,
}

impl QTensor {
    /// Quantizes a rank-2 tensor row by row: each row's `[lo, hi]`
    /// range (widened to include 0.0 so the zero point is exact) maps
    /// onto the full `[-128, 127]` int8 range.
    #[track_caller]
    pub fn quantize_rows(t: &Tensor) -> QTensor {
        let _sp = pmm_obs::span("quantize_rows");
        assert_eq!(t.shape().len(), 2, "quantize_rows: rank must be 2");
        let (rows, cols) = (t.shape()[0], t.shape()[1]);
        let mut data = Vec::with_capacity(rows * cols);
        let mut scale = Vec::with_capacity(rows);
        let mut zero = Vec::with_capacity(rows);
        let mut row_sum = Vec::with_capacity(rows);
        for r in 0..rows {
            let row = &t.data()[r * cols..(r + 1) * cols];
            let lo = row.iter().copied().fold(0.0f32, f32::min);
            let hi = row.iter().copied().fold(0.0f32, f32::max);
            let s = if hi > lo { (hi - lo) / 255.0 } else { 1.0 };
            // v = s (q − z) with lo ↦ −128: z = −128 − lo/s, rounded so
            // v = 0 quantizes to exactly z (zeros survive round trips).
            let z = (-128.0 - lo / s).round().clamp(-128.0, 127.0) as i32;
            let mut sum = 0i32;
            for &v in row {
                let q = ((v / s).round() as i32 + z).clamp(-128, 127);
                sum += q;
                data.push(q as i8);
            }
            scale.push(s);
            zero.push(z);
            row_sum.push(sum);
        }
        pmm_obs::counter::record_qtensor_alloc(
            data.len() + (scale.len() + zero.len() + row_sum.len()) * 4,
        );
        QTensor { data, rows, cols, scale, zero, row_sum }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (the contraction axis of [`QTensor::matmul_nt`]).
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `[rows, cols]`, mirroring [`Tensor::shape`].
    pub fn shape(&self) -> [usize; 2] {
        [self.rows, self.cols]
    }

    /// Total payload bytes (int8 elements plus per-row parameters) —
    /// the number [`pmm_obs::counter::record_qtensor_alloc`] charged.
    pub fn storage_bytes(&self) -> usize {
        self.data.len() + (self.scale.len() + self.zero.len() + self.row_sum.len()) * 4
    }

    /// The dequantization step of row `r` — the worst-case per-element
    /// reconstruction error is `scale(r) / 2`, which tests use to pin
    /// round-trip error bounds.
    pub fn row_scale(&self, r: usize) -> f32 {
        self.scale[r]
    }

    /// Reconstructs the f32 matrix (`scale * (q - zero)` per element).
    /// Test/diagnostic path: serving never dequantizes.
    pub fn dequantize(&self) -> Tensor {
        let _sp = pmm_obs::span("dequantize");
        pmm_obs::counter::record_op_flops(self.data.len() as u64);
        let mut out = Vec::with_capacity(self.data.len());
        for r in 0..self.rows {
            let s = self.scale[r];
            let z = self.zero[r];
            for &q in &self.data[r * self.cols..(r + 1) * self.cols] {
                out.push(s * (q as i32 - z) as f32);
            }
        }
        Tensor::from_vec(out, &[self.rows, self.cols]).expect("dequantize numel")
    }

    /// `self @ other^T` entirely in integer arithmetic: returns the
    /// `[self.rows, other.rows]` score matrix. This is the ranking
    /// product (`user · catalog^T`) — both operands are `[_, k]` with
    /// contraction over `k`, i32 accumulation, and one affine
    /// correction per output element.
    ///
    /// Dispatched through `pmm-par` by output row; every element is an
    /// independent ascending-`k` integer sum, so the result is
    /// bit-identical at every thread count.
    #[track_caller]
    pub fn matmul_nt(&self, other: &QTensor) -> Tensor {
        let _sp = pmm_obs::span("qmatmul_nt");
        assert_eq!(
            self.cols, other.cols,
            "qmatmul: inner dimensions differ: [{}, {}] x [{}, {}]^T",
            self.rows, self.cols, other.rows, other.cols
        );
        let (m, k, n) = (self.rows, self.cols, other.rows);
        pmm_obs::counter::record_qmatmul(m, k, n);
        let mut out = vec![0.0f32; m * n];
        if m == 0 || n == 0 {
            return Tensor::from_vec(out, &[m, n]).expect("qmatmul numel");
        }
        // ~4 integer muladds per f32 muladd of the float kernels'
        // threshold keeps spawn overhead amortized identically.
        let min_rows = ((1usize << 23) / (k * n).max(1)).max(1);
        pmm_par::for_each_row_chunk(&mut out, n, min_rows, |row0, rows| {
            for (ri, orow) in rows.chunks_mut(n).enumerate() {
                let i = row0 + ri;
                let arow = &self.data[i * k..(i + 1) * k];
                let (za, sum_a, sa) = (self.zero[i], self.row_sum[i], self.scale[i]);
                for (j, o) in orow.iter_mut().enumerate() {
                    let brow = &other.data[j * k..(j + 1) * k];
                    let mut acc = 0i32;
                    for (&qa, &qb) in arow.iter().zip(brow) {
                        acc += qa as i32 * qb as i32;
                    }
                    let (zb, sum_b, sb) = (other.zero[j], other.row_sum[j], other.scale[j]);
                    let corrected = acc - za * sum_b - zb * sum_a + (k as i32) * za * zb;
                    *o = (sa * sb) * corrected as f32;
                }
            }
        });
        Tensor::from_vec(out, &[m, n]).expect("qmatmul numel")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn round_trip_error_bounded_by_half_step() {
        let mut rng = StdRng::seed_from_u64(11);
        let t = Tensor::randn(&[7, 33], 1.5, &mut rng);
        let q = QTensor::quantize_rows(&t);
        let back = q.dequantize();
        for r in 0..7 {
            let bound = q.row_scale(r) * 0.5 + 1e-6;
            for (a, b) in t.data()[r * 33..(r + 1) * 33]
                .iter()
                .zip(&back.data()[r * 33..(r + 1) * 33])
            {
                assert!((a - b).abs() <= bound, "row {r}: {a} vs {b} (bound {bound})");
            }
        }
    }

    #[test]
    fn zeros_survive_round_trip_exactly() {
        let t = Tensor::from_vec(vec![0.0, 1.0, -3.0, 0.0, 0.5, 0.0], &[2, 3]).unwrap();
        let back = QTensor::quantize_rows(&t).dequantize();
        for (i, (&a, &b)) in t.data().iter().zip(back.data()).enumerate() {
            if a == 0.0 {
                assert_eq!(b, 0.0, "element {i} was exactly zero before quantization");
            }
        }
    }

    #[test]
    fn constant_and_empty_rows_are_degenerate_but_finite() {
        let t = Tensor::from_vec(vec![2.5, 2.5, 2.5, 0.0, 0.0, 0.0], &[2, 3]).unwrap();
        let q = QTensor::quantize_rows(&t);
        let back = q.dequantize();
        assert!(back.all_finite());
        // The constant row reconstructs within its step.
        for &v in &back.data()[..3] {
            assert!((v - 2.5).abs() <= q.row_scale(0) * 0.5 + 1e-6);
        }
        // The all-zero row is exact.
        assert_eq!(&back.data()[3..], &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn qmatmul_matches_f32_within_analytic_bound() {
        let mut rng = StdRng::seed_from_u64(5);
        let a = Tensor::randn(&[4, 48], 1.0, &mut rng);
        let b = Tensor::randn(&[9, 48], 2.0, &mut rng);
        let (qa, qb) = (QTensor::quantize_rows(&a), QTensor::quantize_rows(&b));
        let exact = a.matmul_t(&b, false, true);
        let quant = qa.matmul_nt(&qb);
        assert_eq!(quant.shape(), &[4, 9]);
        let k = 48.0f32;
        for i in 0..4 {
            let amax = a.data()[i * 48..(i + 1) * 48].iter().fold(0.0f32, |m, v| m.max(v.abs()));
            for j in 0..9 {
                let bmax =
                    b.data()[j * 48..(j + 1) * 48].iter().fold(0.0f32, |m, v| m.max(v.abs()));
                let (ea, eb) = (qa.row_scale(i) * 0.5, qb.row_scale(j) * 0.5);
                // |Σ (a+εa)(b+εb) − Σ ab| ≤ k (εa·|b|max + εb·|a|max + εa·εb)
                let bound = k * (ea * bmax + eb * amax + ea * eb) + 1e-4;
                let diff = (exact.at2(i, j) - quant.at2(i, j)).abs();
                assert!(diff <= bound, "({i},{j}): diff {diff} exceeds bound {bound}");
            }
        }
    }

    #[test]
    fn qmatmul_is_bit_identical_across_thread_counts() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = Tensor::randn(&[33, 64], 1.0, &mut rng);
        let b = Tensor::randn(&[257, 64], 1.0, &mut rng);
        let (qa, qb) = (QTensor::quantize_rows(&a), QTensor::quantize_rows(&b));
        let reference = qa.matmul_nt(&qb);
        for t in [1usize, 2, 4, 7] {
            pmm_par::set_threads(Some(t));
            let got = qa.matmul_nt(&qb);
            pmm_par::set_threads(None);
            assert_eq!(got, reference, "threads={t}");
        }
    }

    #[test]
    #[should_panic(expected = "inner dimensions differ")]
    fn mismatched_inner_dims_panic() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[2, 4]);
        let _ = QTensor::quantize_rows(&a).matmul_nt(&QTensor::quantize_rows(&b));
    }
}
