//! Shape bookkeeping shared by [`crate::Tensor`] and the autograd ops.

use std::fmt;

/// Error returned by fallible tensor constructors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShapeError {
    /// The flat buffer length does not match the product of the shape.
    LengthMismatch {
        /// Number of elements in the provided buffer.
        len: usize,
        /// Requested shape.
        shape: Vec<usize>,
    },
    /// A shape contained a zero-sized axis where one is not allowed.
    ZeroAxis {
        /// Offending shape.
        shape: Vec<usize>,
    },
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShapeError::LengthMismatch { len, shape } => write!(
                f,
                "buffer of length {len} cannot be viewed as shape {shape:?} \
                 ({} elements)",
                numel(shape)
            ),
            ShapeError::ZeroAxis { shape } => {
                write!(f, "shape {shape:?} has a zero-sized axis")
            }
        }
    }
}

impl std::error::Error for ShapeError {}

/// Number of elements implied by `shape` (product of axes; 1 for rank 0).
#[inline]
pub fn numel(shape: &[usize]) -> usize {
    shape.iter().product()
}

/// Panics with a descriptive message unless the two shapes are identical.
///
/// Shape mismatches are programmer errors throughout this crate, mirroring
/// the `ndarray` contract.
#[inline]
#[track_caller]
pub fn check_same_shape(op: &str, a: &[usize], b: &[usize]) {
    assert_eq!(
        a, b,
        "{op}: shape mismatch between operands: {a:?} vs {b:?}"
    );
}

/// Splits a shape into `(rows, last)` for row-wise ops over the last axis.
#[inline]
#[track_caller]
pub fn rows_last(op: &str, shape: &[usize]) -> (usize, usize) {
    assert!(!shape.is_empty(), "{op}: rank-0 tensor has no last axis");
    let last = *shape.last().expect("non-empty");
    assert!(last > 0, "{op}: last axis must be non-empty, shape {shape:?}");
    (numel(shape) / last, last)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numel_of_scalar_shape_is_one() {
        assert_eq!(numel(&[]), 1);
    }

    #[test]
    fn numel_multiplies_axes() {
        assert_eq!(numel(&[2, 3, 4]), 24);
    }

    #[test]
    fn rows_last_splits() {
        assert_eq!(rows_last("t", &[2, 3, 4]), (6, 4));
        assert_eq!(rows_last("t", &[5]), (1, 5));
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn check_same_shape_panics_on_mismatch() {
        check_same_shape("add", &[2, 2], &[2, 3]);
    }

    #[test]
    fn shape_error_display_mentions_sizes() {
        let e = ShapeError::LengthMismatch {
            len: 5,
            shape: vec![2, 3],
        };
        let msg = e.to_string();
        assert!(msg.contains('5') && msg.contains('6'), "{msg}");
    }
}
