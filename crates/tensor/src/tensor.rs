//! Dense row-major `f32` tensor storage and the non-autograd kernels.
//!
//! Kernels dispatch through `pmm-par` when the problem is large enough:
//! work is partitioned by output row, each row is produced by exactly
//! one worker running the same inner loop as the sequential path, so
//! results are bit-identical at every thread count (see
//! `tests/par_determinism.rs`).

use crate::shape::{check_same_shape, numel, rows_last, ShapeError};
use rand::Rng;

/// Minimum multiply-adds per worker before a matmul dispatch spawns
/// threads: ~2M muladds is roughly a millisecond of scalar work, which
/// amortises the tens-of-microseconds per-call thread spawn.
const PAR_MIN_MULADDS: usize = 1 << 21;

/// Minimum elements per worker for elementwise / transpose / softmax
/// dispatch, where per-element work is a few ops at most.
pub(crate) const PAR_MIN_ELEMS: usize = 1 << 18;

/// A dense, row-major, heap-allocated `f32` tensor.
///
/// `Tensor` is plain data: all methods that combine tensors allocate a
/// fresh output (or write into `self` for the `_inplace` variants). The
/// autograd layer ([`crate::Var`]) wraps `Tensor`s into graph nodes.
///
/// Every materialization (constructor, kernel output, or clone) funnels
/// through [`Tensor::from_parts`], which feeds the `pmm-obs` allocation
/// counters when telemetry is enabled; in-place reshapes are not
/// counted because they reuse the buffer.
#[derive(Debug, PartialEq)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Vec<usize>,
}

impl Clone for Tensor {
    fn clone(&self) -> Self {
        Tensor::from_parts(self.data.clone(), self.shape.clone())
    }
}

impl Tensor {
    /// The single construction funnel: counts the materialization and
    /// assembles the tensor. Callers have already validated the shape.
    #[inline]
    fn from_parts(data: Vec<f32>, shape: Vec<usize>) -> Self {
        pmm_obs::counter::record_tensor_alloc(data.len());
        Self { data, shape }
    }
    // ------------------------------------------------------------------
    // Constructors
    // ------------------------------------------------------------------

    /// Builds a tensor from a flat buffer, validating the shape.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Result<Self, ShapeError> {
        if data.len() != numel(shape) {
            return Err(ShapeError::LengthMismatch {
                len: data.len(),
                shape: shape.to_vec(),
            });
        }
        Ok(Self::from_parts(data, shape.to_vec()))
    }

    /// A tensor filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        Self::from_parts(vec![value; numel(shape)], shape.to_vec())
    }

    /// All-zeros tensor.
    pub fn zeros(shape: &[usize]) -> Self {
        Self::full(shape, 0.0)
    }

    /// All-ones tensor.
    pub fn ones(shape: &[usize]) -> Self {
        Self::full(shape, 1.0)
    }

    /// Rank-1 "scalar" tensor (shape `[1]`), used for loss values.
    pub fn scalar(value: f32) -> Self {
        Self::from_parts(vec![value], vec![1])
    }

    /// Samples i.i.d. `N(0, std^2)` entries (Box–Muller, driven by `rng`).
    pub fn randn<R: Rng + ?Sized>(shape: &[usize], std: f32, rng: &mut R) -> Self {
        let n = numel(shape);
        let mut data = Vec::with_capacity(n);
        while data.len() < n {
            // Box–Muller transform: two uniforms -> two gaussians.
            let u1: f32 = rng.random::<f32>().max(1e-12);
            let u2: f32 = rng.random();
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f32::consts::PI * u2;
            data.push(r * theta.cos() * std);
            if data.len() < n {
                data.push(r * theta.sin() * std);
            }
        }
        Self::from_parts(data, shape.to_vec())
    }

    /// Samples i.i.d. `U(lo, hi)` entries.
    pub fn uniform<R: Rng + ?Sized>(shape: &[usize], lo: f32, hi: f32, rng: &mut R) -> Self {
        let n = numel(shape);
        let data = (0..n).map(|_| rng.random_range(lo..hi)).collect();
        Self::from_parts(data, shape.to_vec())
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// Tensor shape.
    #[inline]
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat read-only view of the storage.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Flat mutable view of the storage.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its flat buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Value of a rank-1 single-element tensor.
    #[track_caller]
    pub fn scalar_value(&self) -> f32 {
        assert_eq!(
            self.len(),
            1,
            "scalar_value: tensor has {} elements (shape {:?})",
            self.len(),
            self.shape
        );
        self.data[0]
    }

    /// Element at a 2-D index (for tests/diagnostics; not a hot path).
    #[track_caller]
    pub fn at2(&self, i: usize, j: usize) -> f32 {
        assert_eq!(self.shape.len(), 2, "at2 on rank-{} tensor", self.shape.len());
        self.data[i * self.shape[1] + j]
    }

    /// Reinterprets the buffer under a new shape with equal element count.
    #[track_caller]
    pub fn reshaped(mut self, shape: &[usize]) -> Self {
        assert_eq!(
            self.len(),
            numel(shape),
            "reshape: cannot view {:?} as {:?}",
            self.shape,
            shape
        );
        self.shape = shape.to_vec();
        self
    }

    /// Borrowing variant of [`Tensor::reshaped`].
    #[track_caller]
    pub fn reshape_ref(&self, shape: &[usize]) -> Self {
        self.clone().reshaped(shape)
    }

    /// Row `i` of a 2-D view `[rows, last]` over the last axis.
    #[inline]
    pub(crate) fn row(&self, last: usize, i: usize) -> &[f32] {
        &self.data[i * last..(i + 1) * last]
    }

    // ------------------------------------------------------------------
    // Elementwise kernels
    // ------------------------------------------------------------------

    /// `self + other` (same shape).
    #[track_caller]
    pub fn add(&self, other: &Tensor) -> Tensor {
        check_same_shape("add", &self.shape, &other.shape);
        self.zip_map(other, |a, b| a + b)
    }

    /// `self - other` (same shape).
    #[track_caller]
    pub fn sub(&self, other: &Tensor) -> Tensor {
        check_same_shape("sub", &self.shape, &other.shape);
        self.zip_map(other, |a, b| a - b)
    }

    /// Hadamard product (same shape).
    #[track_caller]
    pub fn mul(&self, other: &Tensor) -> Tensor {
        check_same_shape("mul", &self.shape, &other.shape);
        self.zip_map(other, |a, b| a * b)
    }

    /// `self * c`.
    pub fn scale(&self, c: f32) -> Tensor {
        self.map(|a| a * c)
    }

    /// Applies `f` elementwise.
    pub fn map(&self, f: impl Fn(f32) -> f32 + Sync) -> Tensor {
        let mut out = vec![0.0f32; self.data.len()];
        let src = &self.data;
        pmm_par::for_each_row_chunk(&mut out, 1, PAR_MIN_ELEMS, |off, chunk| {
            let end = off + chunk.len();
            for (o, &s) in chunk.iter_mut().zip(&src[off..end]) {
                *o = f(s);
            }
        });
        Tensor::from_parts(out, self.shape.clone())
    }

    /// Applies `f` elementwise against `other`.
    #[track_caller]
    pub fn zip_map(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32 + Sync) -> Tensor {
        check_same_shape("zip_map", &self.shape, &other.shape);
        let mut out = vec![0.0f32; self.data.len()];
        let (sa, sb) = (&self.data, &other.data);
        pmm_par::for_each_row_chunk(&mut out, 1, PAR_MIN_ELEMS, |off, chunk| {
            let end = off + chunk.len();
            for ((o, &a), &b) in chunk.iter_mut().zip(&sa[off..end]).zip(&sb[off..end]) {
                *o = f(a, b);
            }
        });
        Tensor::from_parts(out, self.shape.clone())
    }

    /// `self += other` (same shape), reusing `self`'s allocation.
    #[track_caller]
    pub fn add_assign(&mut self, other: &Tensor) {
        check_same_shape("add_assign", &self.shape, &other.shape);
        let src = &other.data;
        pmm_par::for_each_row_chunk(&mut self.data, 1, PAR_MIN_ELEMS, |off, chunk| {
            let end = off + chunk.len();
            for (a, &b) in chunk.iter_mut().zip(&src[off..end]) {
                *a += b;
            }
        });
    }

    /// `self += c * other` (same shape); the AXPY kernel.
    #[track_caller]
    pub fn axpy(&mut self, c: f32, other: &Tensor) {
        check_same_shape("axpy", &self.shape, &other.shape);
        let src = &other.data;
        pmm_par::for_each_row_chunk(&mut self.data, 1, PAR_MIN_ELEMS, |off, chunk| {
            let end = off + chunk.len();
            for (a, &b) in chunk.iter_mut().zip(&src[off..end]) {
                *a += c * b;
            }
        });
    }

    /// Overwrites every element with zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|a| *a = 0.0);
    }

    // ------------------------------------------------------------------
    // Matmul kernels
    // ------------------------------------------------------------------

    /// 2-D matrix product with optional transposes:
    /// `op_a(self) @ op_b(other)` where `op_x` transposes when the flag is set.
    #[track_caller]
    pub fn matmul_t(&self, other: &Tensor, trans_a: bool, trans_b: bool) -> Tensor {
        assert_eq!(self.shape.len(), 2, "matmul: lhs must be rank 2");
        assert_eq!(other.shape.len(), 2, "matmul: rhs must be rank 2");
        let (m, ka) = if trans_a {
            (self.shape[1], self.shape[0])
        } else {
            (self.shape[0], self.shape[1])
        };
        let (kb, n) = if trans_b {
            (other.shape[1], other.shape[0])
        } else {
            (other.shape[0], other.shape[1])
        };
        assert_eq!(
            ka, kb,
            "matmul: inner dimensions differ: lhs {:?} (trans={trans_a}) rhs {:?} (trans={trans_b})",
            self.shape, other.shape
        );
        // Every kernel path — scalar and tiled, all four transpose
        // modes — short-circuits zero lhs entries, so charge only the
        // multiply-adds actually run. The zero scan is O(m·k) against
        // an O(m·k·n) product and only runs when collection is on.
        if pmm_obs::enabled() {
            let zeros = self.data.iter().filter(|&&v| v == 0.0).count();
            pmm_obs::counter::record_matmul_skipping(m, ka, n, zeros);
        }
        let mut out = vec![0.0f32; m * n];
        matmul_kernel(
            &self.data,
            self.shape[1],
            &other.data,
            other.shape[1],
            &mut out,
            m,
            ka,
            n,
            trans_a,
            trans_b,
        );
        Tensor::from_parts(out, vec![m, n])
    }

    /// Plain 2-D matrix product `self @ other`.
    #[track_caller]
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        self.matmul_t(other, false, false)
    }

    /// Batched matmul over the leading axis with optional transposes:
    /// `[b, m, k] @ [b, k, n] -> [b, m, n]`.
    #[track_caller]
    pub fn bmm_t(&self, other: &Tensor, trans_a: bool, trans_b: bool) -> Tensor {
        assert_eq!(self.shape.len(), 3, "bmm: lhs must be rank 3");
        assert_eq!(other.shape.len(), 3, "bmm: rhs must be rank 3");
        assert_eq!(
            self.shape[0], other.shape[0],
            "bmm: batch dims differ: {:?} vs {:?}",
            self.shape, other.shape
        );
        let b = self.shape[0];
        let (m, ka) = if trans_a {
            (self.shape[2], self.shape[1])
        } else {
            (self.shape[1], self.shape[2])
        };
        let (kb, n) = if trans_b {
            (other.shape[2], other.shape[1])
        } else {
            (other.shape[1], other.shape[2])
        };
        assert_eq!(
            ka, kb,
            "bmm: inner dimensions differ: lhs {:?} (trans={trans_a}) rhs {:?} (trans={trans_b})",
            self.shape, other.shape
        );
        // Same honest-FLOP convention as matmul_t: every mode skips
        // zero lhs entries, so every mode reports net of skips.
        if pmm_obs::enabled() {
            let zeros = self.data.iter().filter(|&&v| v == 0.0).count();
            pmm_obs::counter::record_bmm_skipping(b, m, ka, n, zeros);
        }
        let a_stride = self.shape[1] * self.shape[2];
        let b_stride = other.shape[1] * other.shape[2];
        let o_stride = m * n;
        let mut out = vec![0.0f32; b * o_stride];
        if o_stride > 0 {
            // Parallelism layers: batch blocks here when the batch is
            // big enough; otherwise each per-element kernel may still
            // split its own rows. Nested dispatch inside a worker
            // degrades to sequential, so the layers never multiply.
            let min_batch = (PAR_MIN_MULADDS / (m * ka * n).max(1)).max(1);
            let (adata, bdata) = (&self.data, &other.data);
            let (alast, blast) = (self.shape[2], other.shape[2]);
            pmm_par::for_each_row_chunk(&mut out, o_stride, min_batch, |i0, block| {
                for (bi, oblock) in block.chunks_mut(o_stride).enumerate() {
                    let i = i0 + bi;
                    matmul_kernel(
                        &adata[i * a_stride..(i + 1) * a_stride],
                        alast,
                        &bdata[i * b_stride..(i + 1) * b_stride],
                        blast,
                        oblock,
                        m,
                        ka,
                        n,
                        trans_a,
                        trans_b,
                    );
                }
            });
        }
        Tensor::from_parts(out, vec![b, m, n])
    }

    /// 2-D transpose.
    #[track_caller]
    pub fn transpose2(&self) -> Tensor {
        assert_eq!(self.shape.len(), 2, "transpose2: rank must be 2");
        let (m, n) = (self.shape[0], self.shape[1]);
        let mut out = vec![0.0f32; m * n];
        if m > 0 && n > 0 {
            let src = &self.data;
            let min_rows = (PAR_MIN_ELEMS / m).max(1);
            pmm_par::for_each_row_chunk(&mut out, m, min_rows, |j0, rows| {
                for (jr, orow) in rows.chunks_mut(m).enumerate() {
                    let j = j0 + jr;
                    for (i, o) in orow.iter_mut().enumerate() {
                        *o = src[i * n + j];
                    }
                }
            });
        }
        Tensor::from_parts(out, vec![n, m])
    }

    // ------------------------------------------------------------------
    // Reductions & row ops
    // ------------------------------------------------------------------

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for empty tensors).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Softmax over the last axis, numerically stabilised.
    pub fn softmax_last(&self) -> Tensor {
        let (rows, last) = rows_last("softmax", &self.shape);
        let mut out = vec![0.0f32; self.data.len()];
        if rows > 0 && last > 0 {
            let src = &self.data;
            let min_rows = (PAR_MIN_ELEMS / last).max(1);
            pmm_par::for_each_row_chunk(&mut out, last, min_rows, |r0, block| {
                for (ri, dst) in block.chunks_mut(last).enumerate() {
                    let r = r0 + ri;
                    softmax_row(&src[r * last..(r + 1) * last], dst);
                }
            });
        }
        Tensor::from_parts(out, self.shape.clone())
    }

    /// Index of the maximum element in each row of the last axis.
    pub fn argmax_last(&self) -> Vec<usize> {
        let (rows, last) = rows_last("argmax", &self.shape);
        (0..rows)
            .map(|r| {
                let row = self.row(last, r);
                row.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(i, _)| i)
                    // pmm-audit: allow(hot-unwrap) — rows_last rejects a zero last axis, so every row has at least one element
                    .expect("non-empty row")
            })
            .collect()
    }

    /// Euclidean norm of the whole tensor.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|&a| a * a).sum::<f32>().sqrt()
    }

    /// True when every element is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|a| a.is_finite())
    }

    /// Number of non-finite (NaN or ±inf) elements.
    pub fn count_non_finite(&self) -> usize {
        self.data.iter().filter(|a| !a.is_finite()).count()
    }

    /// Flat index and value of the first non-finite element, if any —
    /// the diagnostic an anomaly guard wants in its log line.
    pub fn first_non_finite(&self) -> Option<(usize, f32)> {
        self.data
            .iter()
            .enumerate()
            .find(|(_, a)| !a.is_finite())
            .map(|(i, &a)| (i, a))
    }

    /// Gathers rows `ids` from a 2-D tensor into a new `[ids.len(), d]` tensor.
    #[track_caller]
    pub fn gather_rows(&self, ids: &[usize]) -> Tensor {
        assert_eq!(self.shape.len(), 2, "gather_rows: rank must be 2");
        let d = self.shape[1];
        let mut data = Vec::with_capacity(ids.len() * d);
        for &i in ids {
            assert!(
                i < self.shape[0],
                "gather_rows: index {i} out of bounds for {} rows",
                self.shape[0]
            );
            data.extend_from_slice(&self.data[i * d..(i + 1) * d]);
        }
        Tensor::from_parts(data, vec![ids.len(), d])
    }
}

/// Stable softmax of one row into `dst`.
pub(crate) fn softmax_row(src: &[f32], dst: &mut [f32]) {
    let max = src.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    // A fully masked row (all -inf) degenerates to all zeros.
    if max == f32::NEG_INFINITY {
        dst.iter_mut().for_each(|d| *d = 0.0);
        return;
    }
    let mut sum = 0.0f32;
    for (d, &s) in dst.iter_mut().zip(src) {
        let e = (s - max).exp();
        *d = e;
        sum += e;
    }
    // A fully masked row (all -inf) degenerates to uniform zeros.
    if sum > 0.0 {
        let inv = 1.0 / sum;
        dst.iter_mut().for_each(|d| *d *= inv);
    }
}

// ---------------------------------------------------------------------
// Matmul kernel internals
// ---------------------------------------------------------------------
//
// Large products run a cache-blocked, register-tiled microkernel: both
// operands are packed into contiguous zero-padded micro-panels (A into
// MR-row panels laid out `[k][MR]`, B into NR-column panels laid out
// `[k][NR]`), and an MR×NR accumulator tile stays in registers while
// the packed panels stream through cache in KC-deep k-blocks. The
// inner loop runs over fixed-size arrays so LLVM autovectorizes it.
// Small or skinny shapes take a strided scalar path instead: the
// packing pass costs O(m·k) + O(k·n) against O(m·k·n) multiply-adds
// (roughly a 1/n + 1/m overhead fraction) and cannot amortize when the
// output is tiny or only a few columns wide — see `kernel_bench` for
// the threshold guard.
//
// Every path accumulates each output element in strictly ascending-k
// order and skips zero lhs entries, so scalar, tiled, and every thread
// count produce bit-identical results (`tests/kernel_tiled.rs` sweeps
// the edge shapes; `tests/par_determinism.rs` pins the thread axis).

/// Register-tile height: rows of A per microkernel invocation.
const MR: usize = 4;
/// Register-tile width: columns of B per microkernel invocation
/// (16 f32 = two 8-lane vector registers per accumulator row).
const NR: usize = 16;
/// k-block depth: one packed `[KC, NR]` B slice (32 KiB) stays
/// cache-resident while every row tile of a worker streams past it.
const KC: usize = 512;
/// Minimum multiply-adds before packing + tiling pays for itself;
/// below this the strided scalar path is at least as fast and avoids
/// the two scratch allocations.
const TILE_MIN_MULADDS: usize = 1 << 13;

/// True when a `[m, k] x [k, n]` product should take the tiled path:
/// big enough to amortize packing, and wide/tall enough that the MR×NR
/// tile isn't mostly padding.
#[inline]
pub(crate) fn use_tiled(m: usize, k: usize, n: usize) -> bool {
    m.saturating_mul(k).saturating_mul(n) >= TILE_MIN_MULADDS && m >= MR && n >= NR / 2
}

/// Shared matmul kernel with transpose flags.
///
/// `a` is `[?, lda]`-strided, `b` is `[?, ldb]`-strided; writes
/// `out[m, n] = sum_k opA(a)[m, k] * opB(b)[k, n]`. Dispatches to the
/// packed tiled path or the strided small path per [`use_tiled`]; both
/// partition `out` by row through `pmm-par`.
#[allow(clippy::too_many_arguments)]
fn matmul_kernel(
    a: &[f32],
    lda: usize,
    b: &[f32],
    ldb: usize,
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    trans_a: bool,
    trans_b: bool,
) {
    if m == 0 || n == 0 {
        return;
    }
    if use_tiled(m, k, n) {
        matmul_tiled(a, lda, b, ldb, out, m, k, n, trans_a, trans_b);
    } else {
        matmul_small(a, lda, b, ldb, out, m, k, n, trans_a, trans_b);
    }
}

/// Strided scalar path for shapes below the tiling threshold. No
/// scratch: all four transpose modes walk the operands in place, each
/// output element accumulates in ascending-k order, and zero lhs
/// entries are skipped exactly as in the tiled path.
#[allow(clippy::too_many_arguments)]
pub(crate) fn matmul_small(
    a: &[f32],
    lda: usize,
    b: &[f32],
    ldb: usize,
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    trans_a: bool,
    trans_b: bool,
) {
    if m == 0 || n == 0 {
        return;
    }
    let min_rows = (PAR_MIN_MULADDS / (k * n).max(1)).max(1);
    pmm_par::for_each_row_chunk(out, n, min_rows, |row0, rows| {
        if trans_b {
            // b is [n, k]: its rows are contiguous in k, so dot each
            // output element.
            for (ri, orow) in rows.chunks_mut(n).enumerate() {
                let i = row0 + ri;
                for (j, o) in orow.iter_mut().enumerate() {
                    let brow = &b[j * ldb..j * ldb + k];
                    let mut acc = *o;
                    for (kk, &bv) in brow.iter().enumerate() {
                        let av = if trans_a { a[kk * lda + i] } else { a[i * lda + kk] };
                        // Zero-skip: uniform across all four modes so
                        // `record_matmul_skipping` stays honest.
                        if av == 0.0 {
                            continue;
                        }
                        acc += av * bv;
                    }
                    *o = acc;
                }
            }
        } else {
            // b is [k, n]: i-k-j ordering keeps the inner loop
            // contiguous so the optimizer can vectorise it.
            for (ri, orow) in rows.chunks_mut(n).enumerate() {
                let i = row0 + ri;
                for kk in 0..k {
                    let av = if trans_a { a[kk * lda + i] } else { a[i * lda + kk] };
                    if av == 0.0 {
                        continue;
                    }
                    let brow = &b[kk * ldb..kk * ldb + n];
                    for (o, &bv) in orow.iter_mut().zip(brow) {
                        *o += av * bv;
                    }
                }
            }
        }
    });
}

/// Packed, register-tiled path. Packs both operands into micro-panels,
/// dispatches full MR-row tiles through `pmm-par` (worker boundaries
/// land on tile boundaries, so every tile is computed by exactly one
/// worker running the same loop as the sequential path), then finishes
/// the ragged tail rows on the calling thread.
#[allow(clippy::too_many_arguments)]
pub(crate) fn matmul_tiled(
    a: &[f32],
    lda: usize,
    b: &[f32],
    ldb: usize,
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    trans_a: bool,
    trans_b: bool,
) {
    if m == 0 || n == 0 {
        return;
    }
    let ap = pack_a_panels(a, lda, m, k, trans_a);
    let bp = pack_b_panels(b, ldb, k, n, trans_b);
    let simd = simd_level();
    let full_tiles = m / MR;
    let body_rows = full_tiles * MR;
    let (body, tail) = out.split_at_mut(body_rows * n);
    if !body.is_empty() {
        let min_tiles = (PAR_MIN_MULADDS / (MR * k * n).max(1)).max(1);
        pmm_par::for_each_row_chunk(body, MR * n, min_tiles, |tile0, block| {
            let nt = block.len() / (MR * n);
            tiled_tiles(&ap, &bp, block, tile0, nt, MR, k, n, simd);
        });
    }
    // Ragged tail rows (m % MR): one zero-padded tile, computed on the
    // calling thread — identical at every worker count.
    if !tail.is_empty() {
        tiled_tiles(&ap, &bp, tail, full_tiles, 1, m - body_rows, k, n, simd);
    }
}

/// Runs the microkernel over `nt` consecutive row tiles starting at
/// global tile `tile0`; every tile covers MR rows except the last,
/// which covers `h_last`. `block` holds exactly those output rows.
///
/// Loop order keeps one packed `[kc, NR]` B slice hot in L1 while all
/// of the worker's row tiles stream past it; the A panels are read
/// once per (panel, k-block) pair.
#[allow(clippy::too_many_arguments)]
fn tiled_tiles(
    ap: &[f32],
    bp: &[f32],
    block: &mut [f32],
    tile0: usize,
    nt: usize,
    h_last: usize,
    k: usize,
    n: usize,
    simd: u8,
) {
    for p in 0..n.div_ceil(NR) {
        let c0 = p * NR;
        let w = NR.min(n - c0);
        for kb in (0..k).step_by(KC) {
            let kc = KC.min(k - kb);
            let bp_blk = &bp[p * k * NR + kb * NR..p * k * NR + (kb + kc) * NR];
            for t in 0..nt {
                let g = tile0 + t;
                let ap_blk = &ap[g * k * MR + kb * MR..g * k * MR + (kb + kc) * MR];
                let h = if t + 1 == nt { h_last } else { MR };
                micro_tile(ap_blk, bp_blk, &mut block[t * MR * n..], n, c0, h, w, simd);
            }
        }
    }
}

/// One MR×NR register tile: loads the current partial sums, folds in
/// `kc` ascending-k terms from the packed panels, stores back. Loading
/// from `out` makes k-blocking *extend* each element's strictly
/// ascending-k accumulation rather than reassociate it, which is what
/// keeps the tiled path bit-identical to the scalar one. `h`/`w` mask
/// the load/store for edge tiles; the padded panel entries beyond them
/// are zeros, so padded rows cost one predicted branch per k step and
/// padded columns land in lanes that are never stored.
///
/// The body is a plain safe loop; [`micro_tile_avx2`] re-compiles the
/// identical body with AVX2 codegen for runtime dispatch. Keeping one
/// body guarantees the wide variant performs the same multiply and add
/// per element in the same ascending-k order — vector width changes
/// which *lanes* (output columns) compute together, never the rounding
/// sequence of any single element, so all variants are bit-identical.
#[inline(always)]
fn micro_tile_body(
    ap: &[f32],
    bp: &[f32],
    out: &mut [f32],
    n: usize,
    c0: usize,
    h: usize,
    w: usize,
) {
    let mut acc = [[0.0f32; NR]; MR];
    for (r, accr) in acc.iter_mut().enumerate().take(h) {
        accr[..w].copy_from_slice(&out[r * n + c0..r * n + c0 + w]);
    }
    for (arow, brow) in ap.chunks_exact(MR).zip(bp.chunks_exact(NR)) {
        let brow = &brow[..NR];
        // One combined test per k step: when no lhs lane is zero (the
        // dense common case) the whole MR×NR update runs straight-line,
        // which is what lets LLVM keep the accumulator tile in vector
        // registers instead of spilling around per-row branches.
        if arow.iter().all(|&v| v != 0.0) {
            for (accr, &av) in acc.iter_mut().zip(arow) {
                for (o, &bv) in accr.iter_mut().zip(brow) {
                    *o += av * bv;
                }
            }
            continue;
        }
        for (accr, &av) in acc.iter_mut().zip(arow) {
            // Same zero-skip convention as the scalar path: wins big on
            // sparse/masked inputs (~3x at 75% zeros), is a wash on
            // dense, and `matmul_t` reports FLOPs net of these skips.
            // Skipping is also bit-neutral: the accumulator can never
            // be -0.0 here (it starts at +0.0 and +0.0 + -0.0 = +0.0),
            // so adding the skipped ±0.0 product would not change it.
            if av == 0.0 {
                continue;
            }
            for (o, &bv) in accr.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
    for (r, accr) in acc.iter().enumerate().take(h) {
        out[r * n + c0..r * n + c0 + w].copy_from_slice(&accr[..w]);
    }
}

/// [`micro_tile_body`] compiled with AVX2 enabled: the NR=16 inner
/// loop becomes two 8-lane ymm multiply/add pairs instead of four
/// 4-lane SSE2 ones (the portable baseline the default x86-64 target
/// is limited to). No intrinsics and no FMA: LLVM only widens the
/// autovectorization, so every output element still sees the same
/// round-to-nearest multiply followed by add in ascending-k order.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn micro_tile_avx2(
    ap: &[f32],
    bp: &[f32],
    out: &mut [f32],
    n: usize,
    c0: usize,
    h: usize,
    w: usize,
) {
    micro_tile_body(ap, bp, out, n, c0, h, w);
}

/// [`micro_tile_body`] compiled with AVX-512F enabled: the NR=16 inner
/// loop is exactly one 16-lane zmm multiply/add pair per tile row, and
/// the 32-register file keeps the whole MR×NR accumulator tile
/// resident. Same body, same rounding sequence — see
/// [`micro_tile_avx2`].
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn micro_tile_avx512(
    ap: &[f32],
    bp: &[f32],
    out: &mut [f32],
    n: usize,
    c0: usize,
    h: usize,
    w: usize,
) {
    micro_tile_body(ap, bp, out, n, c0, h, w);
}

/// Widest microkernel the running CPU can take (0 = portable,
/// 1 = AVX2, 2 = AVX-512F). std's feature-detection macro caches, so
/// the per-call cost is a pair of relaxed atomic loads.
#[inline]
fn simd_level() -> u8 {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx512f") {
            2
        } else if std::arch::is_x86_feature_detected!("avx2") {
            1
        } else {
            0
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        0
    }
}

/// Microkernel dispatch: the widest variant the CPU reported, the
/// portable body otherwise. All variants compute bit-identical
/// results; only throughput differs.
#[inline]
#[allow(clippy::too_many_arguments)]
fn micro_tile(ap: &[f32], bp: &[f32], out: &mut [f32], n: usize, c0: usize, h: usize, w: usize, simd: u8) {
    // SAFETY: `simd` comes from `simd_level()`, so a nonzero value
    // means the running CPU reported the matching target feature —
    // exactly the contract `#[target_feature]` requires.
    #[cfg(target_arch = "x86_64")]
    match simd {
        2 => return unsafe { micro_tile_avx512(ap, bp, out, n, c0, h, w) },
        1 => return unsafe { micro_tile_avx2(ap, bp, out, n, c0, h, w) },
        _ => {}
    }
    let _ = simd;
    micro_tile_body(ap, bp, out, n, c0, h, w);
}

/// Packs `opA(a)` (an `[m, k]` logical matrix) into zero-padded MR-row
/// micro-panels: panel `t` holds rows `t*MR..t*MR+MR` laid out
/// `[k][MR]`, so the microkernel reads one contiguous MR-vector per k
/// step regardless of the original transpose. Scratch is reported via
/// `record_pack_alloc` so it shows up next to the tensor allocation
/// counters instead of bypassing telemetry.
fn pack_a_panels(a: &[f32], lda: usize, m: usize, k: usize, trans_a: bool) -> Vec<f32> {
    let panels = m.div_ceil(MR);
    let mut p = vec![0.0f32; panels * k * MR];
    pmm_obs::counter::record_pack_alloc(p.len());
    if trans_a {
        // a is [k, m]: row kk scatters into slot kk of every panel.
        for kk in 0..k {
            let arow = &a[kk * lda..kk * lda + m];
            for (i, &v) in arow.iter().enumerate() {
                p[(i / MR) * k * MR + kk * MR + (i % MR)] = v;
            }
        }
    } else {
        // a is [m, k]: each row streams into its panel at stride MR.
        for (i, arow) in a.chunks(lda).take(m).enumerate() {
            let base = (i / MR) * k * MR + (i % MR);
            for (kk, &v) in arow.iter().take(k).enumerate() {
                p[base + kk * MR] = v;
            }
        }
    }
    p
}

/// Packs `opB(b)` (a `[k, n]` logical matrix) into zero-padded
/// NR-column micro-panels: panel `p` holds columns `p*NR..p*NR+NR`
/// laid out `[k][NR]`. Generalizes the old transposed-lhs-only packing
/// to the rhs: after this pass the microkernel never sees a strided
/// operand in its inner loop.
fn pack_b_panels(b: &[f32], ldb: usize, k: usize, n: usize, trans_b: bool) -> Vec<f32> {
    let panels = n.div_ceil(NR);
    let mut pk = vec![0.0f32; panels * k * NR];
    pmm_obs::counter::record_pack_alloc(pk.len());
    if trans_b {
        // b is [n, k]: row j becomes column j % NR of panel j / NR.
        for j in 0..n {
            let brow = &b[j * ldb..j * ldb + k];
            let base = (j / NR) * k * NR + (j % NR);
            for (kk, &v) in brow.iter().enumerate() {
                pk[base + kk * NR] = v;
            }
        }
    } else {
        // b is [k, n]: each row is sliced across the panels.
        for kk in 0..k {
            let brow = &b[kk * ldb..kk * ldb + n];
            for (pi, chunk) in brow.chunks(NR).enumerate() {
                let dst = pi * k * NR + kk * NR;
                pk[dst..dst + chunk.len()].copy_from_slice(chunk);
            }
        }
    }
    pk
}

/// Direct access to both matmul kernel paths, bypassing the
/// [`use_tiled`] dispatch threshold, so the property sweep
/// (`tests/kernel_tiled.rs`) and `kernel_bench` can pin
/// tiled == scalar == naive on any shape. Hidden from docs; not a
/// stable API.
#[doc(hidden)]
pub mod testing {
    use super::*;

    fn dims(a: &Tensor, b: &Tensor, trans_a: bool, trans_b: bool) -> (usize, usize, usize) {
        assert_eq!(a.shape.len(), 2, "kernel testing: lhs must be rank 2");
        assert_eq!(b.shape.len(), 2, "kernel testing: rhs must be rank 2");
        let (m, ka) = if trans_a { (a.shape[1], a.shape[0]) } else { (a.shape[0], a.shape[1]) };
        let (kb, n) = if trans_b { (b.shape[1], b.shape[0]) } else { (b.shape[0], b.shape[1]) };
        assert_eq!(ka, kb, "kernel testing: inner dimensions differ");
        (m, ka, n)
    }

    /// The packed, register-tiled path, forced for any shape.
    pub fn matmul_tiled(a: &Tensor, b: &Tensor, trans_a: bool, trans_b: bool) -> Tensor {
        let (m, k, n) = dims(a, b, trans_a, trans_b);
        let mut out = vec![0.0f32; m * n];
        super::matmul_tiled(
            &a.data, a.shape[1], &b.data, b.shape[1], &mut out, m, k, n, trans_a, trans_b,
        );
        Tensor::from_parts(out, vec![m, n])
    }

    /// The strided scalar path, forced for any shape.
    pub fn matmul_small(a: &Tensor, b: &Tensor, trans_a: bool, trans_b: bool) -> Tensor {
        let (m, k, n) = dims(a, b, trans_a, trans_b);
        let mut out = vec![0.0f32; m * n];
        super::matmul_small(
            &a.data, a.shape[1], &b.data, b.shape[1], &mut out, m, k, n, trans_a, trans_b,
        );
        Tensor::from_parts(out, vec![m, n])
    }

    /// The dispatch predicate, exposed so benches can label which path
    /// a shape takes by default.
    pub fn takes_tiled_path(m: usize, k: usize, n: usize) -> bool {
        use_tiled(m, k, n)
    }

    /// The register-tile dimensions `(MR, NR, KC)`, exposed so the
    /// edge-shape sweep stays in sync with the kernel constants.
    pub const TILE: (usize, usize, usize) = (MR, NR, KC);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn t(data: &[f32], shape: &[usize]) -> Tensor {
        Tensor::from_vec(data.to_vec(), shape).unwrap()
    }

    #[test]
    fn from_vec_rejects_wrong_length() {
        assert!(Tensor::from_vec(vec![1.0; 5], &[2, 3]).is_err());
    }

    #[test]
    fn full_and_scalar() {
        assert_eq!(Tensor::full(&[2, 2], 3.0).sum(), 12.0);
        assert_eq!(Tensor::scalar(7.5).scalar_value(), 7.5);
    }

    #[test]
    fn elementwise_roundtrip() {
        let a = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = t(&[4.0, 3.0, 2.0, 1.0], &[2, 2]);
        assert_eq!(a.add(&b).data(), &[5.0; 4]);
        assert_eq!(a.sub(&b).data(), &[-3.0, -1.0, 1.0, 3.0]);
        assert_eq!(a.mul(&b).data(), &[4.0, 6.0, 6.0, 4.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = t(&[1.0, 1.0], &[2]);
        let b = t(&[2.0, 3.0], &[2]);
        a.axpy(0.5, &b);
        assert_eq!(a.data(), &[2.0, 2.5]);
    }

    #[test]
    fn matmul_identity() {
        let a = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let i = t(&[1.0, 0.0, 0.0, 1.0], &[2, 2]);
        assert_eq!(a.matmul(&i), a);
    }

    #[test]
    fn matmul_known_values() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = t(&[7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_transpose_flags_agree_with_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Tensor::randn(&[3, 4], 1.0, &mut rng);
        let b = Tensor::randn(&[3, 5], 1.0, &mut rng);
        let via_flag = a.matmul_t(&b, true, false);
        let via_explicit = a.transpose2().matmul(&b);
        for (x, y) in via_flag.data().iter().zip(via_explicit.data()) {
            assert!((x - y).abs() < 1e-5);
        }
        let c = Tensor::randn(&[5, 4], 1.0, &mut rng);
        let nt = a.matmul_t(&c, false, true);
        let nt_explicit = a.matmul(&c.transpose2());
        for (x, y) in nt.data().iter().zip(nt_explicit.data()) {
            assert!((x - y).abs() < 1e-5);
        }
        let tt = a.matmul_t(&Tensor::randn(&[5, 3], 1.0, &mut rng), true, true);
        assert_eq!(tt.shape(), &[4, 5]);
    }

    #[test]
    fn bmm_batches_independently() {
        let a = t(&[1.0, 0.0, 0.0, 1.0, 2.0, 0.0, 0.0, 2.0], &[2, 2, 2]);
        let b = t(&[1.0, 2.0, 3.0, 4.0, 1.0, 2.0, 3.0, 4.0], &[2, 2, 2]);
        let c = a.bmm_t(&b, false, false);
        assert_eq!(c.shape(), &[2, 2, 2]);
        assert_eq!(&c.data()[..4], &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(&c.data()[4..], &[2.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let x = t(&[1.0, 2.0, 3.0, -1.0, 0.0, 1.0], &[2, 3]);
        let s = x.softmax_last();
        for r in 0..2 {
            let sum: f32 = s.data()[r * 3..(r + 1) * 3].iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
        // Monotone: bigger logit, bigger prob.
        assert!(s.data()[2] > s.data()[1] && s.data()[1] > s.data()[0]);
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let x = t(&[100.0, 101.0, 102.0], &[1, 3]);
        let y = t(&[0.0, 1.0, 2.0], &[1, 3]);
        let sx = x.softmax_last();
        let sy = y.softmax_last();
        for (a, b) in sx.data().iter().zip(sy.data()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn argmax_last_picks_max_per_row() {
        let x = t(&[1.0, 9.0, 2.0, 8.0, 0.0, -1.0], &[2, 3]);
        assert_eq!(x.argmax_last(), vec![1, 0]);
    }

    #[test]
    fn gather_rows_copies_requested_rows() {
        let x = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[3, 2]);
        let g = x.gather_rows(&[2, 0, 2]);
        assert_eq!(g.shape(), &[3, 2]);
        assert_eq!(g.data(), &[5.0, 6.0, 1.0, 2.0, 5.0, 6.0]);
    }

    #[test]
    fn randn_moments_are_plausible() {
        let mut rng = StdRng::seed_from_u64(42);
        let x = Tensor::randn(&[10_000], 2.0, &mut rng);
        assert!(x.mean().abs() < 0.1, "mean {}", x.mean());
        let var: f32 =
            x.data().iter().map(|&v| (v - x.mean()).powi(2)).sum::<f32>() / x.len() as f32;
        assert!((var.sqrt() - 2.0).abs() < 0.1, "std {}", var.sqrt());
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        let x = Tensor::uniform(&[1000], -0.5, 0.5, &mut rng);
        assert!(x.data().iter().all(|&v| (-0.5..0.5).contains(&v)));
    }

    #[test]
    fn reshape_preserves_data() {
        let x = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let y = x.reshape_ref(&[4]);
        assert_eq!(y.shape(), &[4]);
        assert_eq!(y.data(), x.data());
    }

    #[test]
    #[should_panic(expected = "reshape")]
    fn reshape_rejects_wrong_numel() {
        let x = t(&[1.0, 2.0], &[2]);
        let _ = x.reshaped(&[3]);
    }

    #[test]
    fn norm_and_finiteness() {
        let x = t(&[3.0, 4.0], &[2]);
        assert!((x.norm() - 5.0).abs() < 1e-6);
        assert!(x.all_finite());
        let bad = t(&[f32::NAN, 1.0], &[2]);
        assert!(!bad.all_finite());
    }

    #[test]
    fn non_finite_diagnostics() {
        let x = t(&[1.0, 2.0], &[2]);
        assert_eq!(x.count_non_finite(), 0);
        assert_eq!(x.first_non_finite(), None);
        let bad = t(&[1.0, f32::INFINITY, f32::NAN], &[3]);
        assert_eq!(bad.count_non_finite(), 2);
        let (idx, val) = bad.first_non_finite().unwrap();
        assert_eq!(idx, 1);
        assert_eq!(val, f32::INFINITY);
    }
}
