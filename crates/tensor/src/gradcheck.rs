//! Finite-difference gradient checking used throughout the test-suite.
//!
//! [`check_gradients`] perturbs every input coordinate of every leaf by
//! `±eps` (central differences) and compares the numerical derivative of
//! a scalar function against the autograd gradient.

use crate::{Tensor, Var};

/// Result of a gradient check: maximum absolute and relative deviation.
#[derive(Debug, Clone, Copy)]
pub struct GradCheckReport {
    /// Largest absolute difference between analytic and numeric grads.
    pub max_abs_err: f32,
    /// Largest relative difference (scaled by magnitudes).
    pub max_rel_err: f32,
}

/// Checks autograd gradients of `f` against central finite differences.
///
/// `f` must build a scalar loss from the provided leaves each time it is
/// called (graphs are single-use). Inputs are cloned and perturbed
/// coordinate-by-coordinate — O(numel) evaluations, so keep test tensors
/// small.
///
/// Panics with a diagnostic if any coordinate deviates by more than
/// `tol` in both absolute and relative terms.
pub fn check_gradients(
    inputs: &[Tensor],
    f: impl Fn(&[Var]) -> Var,
    eps: f32,
    tol: f32,
) -> GradCheckReport {
    // Analytic gradients.
    let leaves: Vec<Var> = inputs.iter().map(|t| Var::leaf(t.clone())).collect();
    let loss = f(&leaves);
    assert_eq!(loss.value().len(), 1, "gradcheck: f must return a scalar");
    loss.backward();
    let analytic: Vec<Tensor> = leaves
        .iter()
        .map(|l| l.grad().unwrap_or_else(|| Tensor::zeros(l.shape())))
        .collect();

    let eval = |tensors: &[Tensor]| -> f32 {
        let vars: Vec<Var> = tensors.iter().map(|t| Var::constant(t.clone())).collect();
        f(&vars).value().scalar_value()
    };

    let mut report = GradCheckReport {
        max_abs_err: 0.0,
        max_rel_err: 0.0,
    };
    let mut work: Vec<Tensor> = inputs.to_vec();
    for (ti, input) in inputs.iter().enumerate() {
        for k in 0..input.len() {
            let orig = input.data()[k];
            work[ti].data_mut()[k] = orig + eps;
            let up = eval(&work);
            work[ti].data_mut()[k] = orig - eps;
            let down = eval(&work);
            work[ti].data_mut()[k] = orig;
            let numeric = (up - down) / (2.0 * eps);
            let exact = analytic[ti].data()[k];
            let abs = (numeric - exact).abs();
            let rel = abs / numeric.abs().max(exact.abs()).max(1e-4);
            report.max_abs_err = report.max_abs_err.max(abs);
            report.max_rel_err = report.max_rel_err.max(rel);
            assert!(
                abs <= tol || rel <= tol,
                "gradcheck failed: input {ti} coord {k}: analytic {exact}, numeric {numeric} \
                 (abs {abs:.3e}, rel {rel:.3e}, tol {tol:.1e})"
            );
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gradcheck_accepts_correct_gradient() {
        let mut rng = StdRng::seed_from_u64(3);
        let x = Tensor::randn(&[2, 3], 1.0, &mut rng);
        check_gradients(&[x], |vs| vs[0].mul(&vs[0]).sum_all(), 1e-3, 1e-2);
    }

    #[test]
    #[should_panic(expected = "gradcheck failed")]
    fn gradcheck_rejects_wrong_gradient() {
        // tanh forward with a deliberately wrong "gradient" via detach
        // trickery: y = x.detach() * x has gradient x, but numerically the
        // function behaves like x^2 whose gradient is 2x.
        let x = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        check_gradients(
            &[x],
            |vs| {
                // Build x*x but claim gradient of only one factor.
                let detached = vs[0].detach();
                detached.mul(&vs[0]).sum_all()
            },
            1e-3,
            1e-3,
        );
    }
}
