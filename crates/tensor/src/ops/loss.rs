//! Fused loss heads.
//!
//! Both losses here are numerically stabilised log-sum-exp reductions
//! with analytically derived gradients; they are the work-horses for
//! every objective in the PMMRec paper (DAP, VCL/ICL/NICL, NID, RCL all
//! reduce to one of these two).

use crate::{Tensor, Var};
use std::rc::Rc;

impl Var {
    /// Mean softmax cross-entropy with integer targets.
    ///
    /// `self` is `[n, c]` logits; `targets[i] < c`. `row_weights`
    /// (defaulting to all ones) lets callers mask padded rows; the loss
    /// is normalised by the weight sum. Returns a `[1]` scalar.
    #[track_caller]
    pub fn cross_entropy_logits(&self, targets: &[usize], row_weights: Option<&[f32]>) -> Var {
        let _sp = pmm_obs::span("cross_entropy");
        assert_eq!(self.shape().len(), 2, "cross_entropy: logits must be rank 2");
        let (n, c) = (self.shape()[0], self.shape()[1]);
        assert_eq!(targets.len(), n, "cross_entropy: {n} rows, {} targets", targets.len());
        if let Some(w) = row_weights {
            assert_eq!(w.len(), n, "cross_entropy: weights len != rows");
        }
        let weights: Rc<[f32]> = match row_weights {
            Some(w) => w.into(),
            None => vec![1.0f32; n].into(),
        };
        let wsum: f32 = weights.iter().sum();
        let x = self.value().data();
        // Cache softmax probabilities for the backward pass.
        let probs = self.value().softmax_last();
        let mut loss = 0.0f32;
        for i in 0..n {
            if weights[i] == 0.0 {
                continue;
            }
            let t = targets[i];
            assert!(t < c, "cross_entropy: target {t} out of range 0..{c}");
            let row = &x[i * c..(i + 1) * c];
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let lse: f32 = max + row.iter().map(|&v| (v - max).exp()).sum::<f32>().ln();
            loss += weights[i] * (lse - row[t]);
        }
        let norm = if wsum > 0.0 { wsum } else { 1.0 };
        let out = Tensor::scalar(loss / norm);
        pmm_obs::counter::record_op_flops(5 * (n * c) as u64);
        let a = self.clone();
        let targets: Rc<[usize]> = targets.into();
        Var::from_op(
            "cross_entropy",
            out,
            vec![self.clone()],
            Box::new(move |g| {
                let gs = g.scalar_value() / norm;
                let mut dx = probs.clone();
                let buf = dx.data_mut();
                for i in 0..n {
                    let w = weights[i];
                    if w == 0.0 {
                        buf[i * c..(i + 1) * c].iter_mut().for_each(|v| *v = 0.0);
                        continue;
                    }
                    buf[i * c + targets[i]] -= 1.0;
                    for v in &mut buf[i * c..(i + 1) * c] {
                        *v *= gs * w;
                    }
                }
                a.accum_grad(&dx);
            }),
        )
    }

    /// Group contrastive loss over a similarity matrix (the NICL/DAP
    /// family, Eqs. 5–9 of the paper).
    ///
    /// For each row `i` of the `[n, m]` similarity matrix `S`:
    ///
    /// ```text
    /// L_i = -log( sum_{j in pos_i} exp(S_ij) / sum_{j in den_i} exp(S_ij) )
    ///     = lse(S_i | den_i) - lse(S_i | pos_i)
    /// ```
    ///
    /// where `pos`/`den` are 0/1 masks. This generalises InfoNCE:
    /// a single positive and `den = pos + negatives` recovers Eq. 5/6;
    /// multi-positive numerators recover NICL (Eq. 8). Rows whose
    /// positive mask is empty (or with `row_weights` zero) are skipped.
    /// The loss is averaged over contributing weight.
    #[track_caller]
    pub fn group_contrastive_loss(
        &self,
        pos_mask: &Tensor,
        den_mask: &Tensor,
        row_weights: Option<&[f32]>,
    ) -> Var {
        let _sp = pmm_obs::span("group_contrastive");
        assert_eq!(self.shape().len(), 2, "group_contrastive: sims must be rank 2");
        let (n, m) = (self.shape()[0], self.shape()[1]);
        assert_eq!(pos_mask.shape(), &[n, m], "group_contrastive: pos mask shape");
        assert_eq!(den_mask.shape(), &[n, m], "group_contrastive: den mask shape");
        if let Some(w) = row_weights {
            assert_eq!(w.len(), n, "group_contrastive: weights len != rows");
        }
        let s = self.value().data();
        let pm = pos_mask.data();
        let dm = den_mask.data();
        let mut loss = 0.0f32;
        let mut wsum = 0.0f32;
        // Per-row softmax distributions within each mask, cached for backward.
        let mut p_pos = vec![0.0f32; n * m];
        let mut p_den = vec![0.0f32; n * m];
        let mut row_w = vec![0.0f32; n];
        for i in 0..n {
            let w = row_weights.map_or(1.0, |w| w[i]);
            if w == 0.0 {
                continue;
            }
            let srow = &s[i * m..(i + 1) * m];
            let prow = &pm[i * m..(i + 1) * m];
            let drow = &dm[i * m..(i + 1) * m];
            // Stabilise with the max over the union of both masks.
            let mut max = f32::NEG_INFINITY;
            let mut any_pos = false;
            for j in 0..m {
                if prow[j] != 0.0 {
                    any_pos = true;
                }
                if prow[j] != 0.0 || drow[j] != 0.0 {
                    max = max.max(srow[j]);
                }
            }
            if !any_pos || !max.is_finite() {
                continue;
            }
            let mut sum_pos = 0.0f32;
            let mut sum_den = 0.0f32;
            for j in 0..m {
                let e = (srow[j] - max).exp();
                if prow[j] != 0.0 {
                    p_pos[i * m + j] = e;
                    sum_pos += e;
                }
                if drow[j] != 0.0 {
                    p_den[i * m + j] = e;
                    sum_den += e;
                }
            }
            if sum_pos <= 0.0 || sum_den <= 0.0 {
                continue;
            }
            let inv_p = 1.0 / sum_pos;
            let inv_d = 1.0 / sum_den;
            for j in 0..m {
                p_pos[i * m + j] *= inv_p;
                p_den[i * m + j] *= inv_d;
            }
            loss += w * (sum_den.ln() - sum_pos.ln());
            row_w[i] = w;
            wsum += w;
        }
        let norm = if wsum > 0.0 { wsum } else { 1.0 };
        let out = Tensor::scalar(loss / norm);
        pmm_obs::counter::record_op_flops(6 * (n * m) as u64);
        let a = self.clone();
        let shape = self.shape().to_vec();
        Var::from_op(
            "group_contrastive",
            out,
            vec![self.clone()],
            Box::new(move |g| {
                let gs = g.scalar_value() / norm;
                let mut dx = vec![0.0f32; n * m];
                for i in 0..n {
                    if row_w[i] == 0.0 {
                        continue;
                    }
                    let c = gs * row_w[i];
                    for j in 0..m {
                        dx[i * m + j] = c * (p_den[i * m + j] - p_pos[i * m + j]);
                    }
                }
                a.accum_grad(&Tensor::from_vec(dx, &shape).expect("gcl dx"));
            }),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(data: &[f32], shape: &[usize]) -> Var {
        Var::leaf(Tensor::from_vec(data.to_vec(), shape).unwrap())
    }

    #[test]
    fn cross_entropy_of_uniform_logits_is_ln_c() {
        let x = v(&[0.0; 8], &[2, 4]);
        let l = x.cross_entropy_logits(&[1, 3], None);
        assert!((l.value().scalar_value() - (4.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn cross_entropy_grad_is_probs_minus_onehot() {
        let x = v(&[0.0, 0.0], &[1, 2]);
        let l = x.cross_entropy_logits(&[0], None);
        l.backward();
        let g = x.grad().unwrap();
        assert!((g.data()[0] + 0.5).abs() < 1e-6);
        assert!((g.data()[1] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn cross_entropy_weighted_rows() {
        let x = v(&[5.0, 0.0, 0.0, 5.0], &[2, 2]);
        // Row 0 predicts class 0 (correct), row 1 predicts class 1 but we
        // mask it out entirely — loss is only row 0's small loss.
        let l = x.cross_entropy_logits(&[0, 0], Some(&[1.0, 0.0]));
        assert!(l.value().scalar_value() < 0.01);
        l.backward();
        let g = x.grad().unwrap();
        assert_eq!(&g.data()[2..], &[0.0, 0.0]);
    }

    #[test]
    fn cross_entropy_decreases_with_confidence() {
        let weak = v(&[1.0, 0.0], &[1, 2]).cross_entropy_logits(&[0], None);
        let strong = v(&[5.0, 0.0], &[1, 2]).cross_entropy_logits(&[0], None);
        assert!(strong.value().scalar_value() < weak.value().scalar_value());
    }

    #[test]
    fn group_contrastive_matches_cross_entropy_for_single_positive() {
        // With pos = {target}, den = everything, the loss equals CE.
        let logits = [1.0f32, -0.5, 0.25, 2.0];
        let x1 = v(&logits, &[1, 4]);
        let ce = x1.cross_entropy_logits(&[2], None);
        let x2 = v(&logits, &[1, 4]);
        let pos = Tensor::from_vec(vec![0.0, 0.0, 1.0, 0.0], &[1, 4]).unwrap();
        let den = Tensor::ones(&[1, 4]);
        let gc = x2.group_contrastive_loss(&pos, &den, None);
        assert!(
            (ce.value().scalar_value() - gc.value().scalar_value()).abs() < 1e-5,
            "{} vs {}",
            ce.value().scalar_value(),
            gc.value().scalar_value()
        );
        ce.backward();
        gc.backward();
        for (a, b) in x1.grad().unwrap().data().iter().zip(x2.grad().unwrap().data()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn group_contrastive_multi_positive_reduces_loss() {
        let logits = [1.0f32, 1.0, -3.0, -3.0];
        let single_pos = Tensor::from_vec(vec![1.0, 0.0, 0.0, 0.0], &[1, 4]).unwrap();
        let multi_pos = Tensor::from_vec(vec![1.0, 1.0, 0.0, 0.0], &[1, 4]).unwrap();
        let den = Tensor::ones(&[1, 4]);
        let l1 = v(&logits, &[1, 4]).group_contrastive_loss(&single_pos, &den, None);
        let l2 = v(&logits, &[1, 4]).group_contrastive_loss(&multi_pos, &den, None);
        assert!(l2.value().scalar_value() < l1.value().scalar_value());
    }

    #[test]
    fn group_contrastive_skips_rows_without_positives() {
        let x = v(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let pos = Tensor::from_vec(vec![1.0, 0.0, 0.0, 0.0], &[2, 2]).unwrap();
        let den = Tensor::ones(&[2, 2]);
        let l = x.group_contrastive_loss(&pos, &den, None);
        l.backward();
        let g = x.grad().unwrap();
        assert_eq!(&g.data()[2..], &[0.0, 0.0], "skipped row must get zero grad");
    }

    #[test]
    fn group_contrastive_loss_is_nonnegative_when_pos_subset_of_den() {
        let x = v(&[0.3, -0.7, 1.9, 0.2], &[1, 4]);
        let pos = Tensor::from_vec(vec![0.0, 1.0, 0.0, 0.0], &[1, 4]).unwrap();
        let den = Tensor::ones(&[1, 4]);
        let l = x.group_contrastive_loss(&pos, &den, None);
        assert!(l.value().scalar_value() >= 0.0);
    }

    #[test]
    fn group_contrastive_perfect_separation_approaches_zero() {
        let x = v(&[20.0, -20.0, -20.0], &[1, 3]);
        let pos = Tensor::from_vec(vec![1.0, 0.0, 0.0], &[1, 3]).unwrap();
        let den = Tensor::ones(&[1, 3]);
        let l = x.group_contrastive_loss(&pos, &den, None);
        assert!(l.value().scalar_value() < 1e-5);
    }
}

impl Var {
    /// Weighted mean-squared error against constant targets.
    ///
    /// `self` is `[n]` or `[n, 1]` predictions; returns a `[1]` scalar
    /// `sum_i w_i (x_i - t_i)^2 / sum_i w_i`.
    #[track_caller]
    pub fn mse_loss(&self, targets: &[f32], row_weights: Option<&[f32]>) -> Var {
        let _sp = pmm_obs::span("mse");
        let n = self.value().len();
        assert_eq!(targets.len(), n, "mse_loss: {n} predictions, {} targets", targets.len());
        if let Some(w) = row_weights {
            assert_eq!(w.len(), n, "mse_loss: weights len != predictions");
        }
        let weights: Rc<[f32]> = match row_weights {
            Some(w) => w.into(),
            None => vec![1.0f32; n].into(),
        };
        let wsum: f32 = weights.iter().sum();
        let norm = if wsum > 0.0 { wsum } else { 1.0 };
        let x = self.value().data();
        let mut loss = 0.0f32;
        let mut resid = vec![0.0f32; n];
        for i in 0..n {
            let r = x[i] - targets[i];
            resid[i] = r;
            loss += weights[i] * r * r;
        }
        let out = Tensor::scalar(loss / norm);
        pmm_obs::counter::record_op_flops(3 * n as u64);
        let a = self.clone();
        let shape = self.shape().to_vec();
        Var::from_op(
            "mse",
            out,
            vec![self.clone()],
            Box::new(move |g| {
                let gs = g.scalar_value() / norm;
                let dx: Vec<f32> = resid
                    .iter()
                    .zip(weights.iter())
                    .map(|(&r, &w)| 2.0 * w * r * gs)
                    .collect();
                a.accum_grad(&Tensor::from_vec(dx, &shape).expect("mse dx"));
            }),
        )
    }
}

#[cfg(test)]
mod mse_tests {
    use super::*;

    #[test]
    fn mse_of_exact_predictions_is_zero() {
        let x = Var::leaf(Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap());
        let l = x.mse_loss(&[1.0, 2.0], None);
        assert_eq!(l.value().scalar_value(), 0.0);
    }

    #[test]
    fn mse_value_and_gradient() {
        let x = Var::leaf(Tensor::from_vec(vec![3.0], &[1]).unwrap());
        let l = x.mse_loss(&[1.0], None); // (3-1)^2 = 4
        assert_eq!(l.value().scalar_value(), 4.0);
        l.backward();
        assert_eq!(x.grad().unwrap().scalar_value(), 4.0); // 2(3-1)
    }

    #[test]
    fn mse_weights_mask_rows() {
        let x = Var::leaf(Tensor::from_vec(vec![5.0, 1.0], &[2]).unwrap());
        let l = x.mse_loss(&[0.0, 0.0], Some(&[0.0, 1.0]));
        assert_eq!(l.value().scalar_value(), 1.0);
        l.backward();
        assert_eq!(x.grad().unwrap().data()[0], 0.0);
    }
}
