//! Shape-changing and index-moving ops: reshape, concat, gather, head
//! splitting for attention, pooling and global reductions.

use crate::shape::numel;
use crate::{Tensor, Var};
use std::rc::Rc;

impl Var {
    /// Views the value under a new shape with identical element count.
    #[track_caller]
    pub fn reshape(&self, shape: &[usize]) -> Var {
        let _sp = pmm_obs::span("reshape");
        // pmm-audit: allow(op-flops) — pure data movement, zero FLOPs
        let old_shape = self.shape().to_vec();
        let out = self.value().reshape_ref(shape);
        let a = self.clone();
        Var::from_op(
            "reshape",
            out,
            vec![self.clone()],
            Box::new(move |g| a.accum_grad(&g.reshape_ref(&old_shape))),
        )
    }

    /// Concatenates along axis 0. All inputs must share trailing axes.
    #[track_caller]
    pub fn concat0(parts: &[Var]) -> Var {
        let _sp = pmm_obs::span("concat0");
        // pmm-audit: allow(op-flops) — pure data movement, zero FLOPs
        assert!(!parts.is_empty(), "concat0: no inputs");
        let trailing: Vec<usize> = parts[0].shape()[1..].to_vec();
        let row = numel(&trailing).max(1);
        let mut total0 = 0usize;
        for p in parts {
            assert_eq!(
                &p.shape()[1..],
                trailing.as_slice(),
                "concat0: trailing axes differ: {:?} vs {:?}",
                p.shape(),
                parts[0].shape()
            );
            total0 += p.shape()[0];
        }
        let mut data = Vec::with_capacity(total0 * row);
        for p in parts {
            data.extend_from_slice(p.value().data());
        }
        let mut shape = vec![total0];
        shape.extend_from_slice(&trailing);
        let out = Tensor::from_vec(data, &shape).expect("concat numel");
        let owned: Vec<Var> = parts.to_vec();
        let sizes: Vec<usize> = parts.iter().map(|p| p.value().len()).collect();
        let shapes: Vec<Vec<usize>> = parts.iter().map(|p| p.shape().to_vec()).collect();
        let captured = owned.clone();
        Var::from_op(
            "concat0",
            out,
            owned,
            Box::new(move |g| {
                let mut offset = 0usize;
                for (i, p) in captured.iter().enumerate() {
                    let part = Tensor::from_vec(
                        g.data()[offset..offset + sizes[i]].to_vec(),
                        &shapes[i],
                    )
                    .expect("split numel");
                    p.accum_grad(&part);
                    offset += sizes[i];
                }
            }),
        )
    }

    /// Gathers rows of a 2-D tensor: `out[i] = self[ids[i]]`.
    ///
    /// This doubles as the embedding-lookup op; gradients scatter-add
    /// back into the source rows (repeated ids accumulate).
    #[track_caller]
    pub fn gather_rows(&self, ids: &[usize]) -> Var {
        let _sp = pmm_obs::span("gather_rows");
        // pmm-audit: allow(op-flops) — pure data movement, zero FLOPs
        assert_eq!(self.shape().len(), 2, "gather_rows: input must be rank 2");
        let out = self.value().gather_rows(ids);
        let a = self.clone();
        let src_shape = self.shape().to_vec();
        let ids: Rc<[usize]> = ids.into();
        Var::from_op(
            "gather_rows",
            out,
            vec![self.clone()],
            Box::new(move |g| {
                let d = src_shape[1];
                let mut dx = Tensor::zeros(&src_shape);
                let buf = dx.data_mut();
                for (r, &i) in ids.iter().enumerate() {
                    for (dst, &gv) in buf[i * d..(i + 1) * d].iter_mut().zip(&g.data()[r * d..(r + 1) * d]) {
                        *dst += gv;
                    }
                }
                a.accum_grad(&dx);
            }),
        )
    }

    /// Slice of rows `[start, start+len)` of a 2-D tensor.
    #[track_caller]
    pub fn slice_rows(&self, start: usize, len: usize) -> Var {
        let _sp = pmm_obs::span("slice_rows");
        // pmm-audit: allow(op-flops) — pure data movement, zero FLOPs
        assert_eq!(self.shape().len(), 2, "slice_rows: input must be rank 2");
        let (n, d) = (self.shape()[0], self.shape()[1]);
        assert!(start + len <= n, "slice_rows: {start}+{len} > {n} rows");
        let out = Tensor::from_vec(
            self.value().data()[start * d..(start + len) * d].to_vec(),
            &[len, d],
        )
        .expect("slice numel");
        let a = self.clone();
        let src_shape = self.shape().to_vec();
        Var::from_op(
            "slice_rows",
            out,
            vec![self.clone()],
            Box::new(move |g| {
                let mut dx = Tensor::zeros(&src_shape);
                dx.data_mut()[start * d..(start + len) * d].copy_from_slice(g.data());
                a.accum_grad(&dx);
            }),
        )
    }

    /// Rearranges a flattened token batch `[b*l, h*dh]` into per-head
    /// sequences `[b*h, l, dh]` for batched attention.
    #[track_caller]
    pub fn split_heads(&self, b: usize, l: usize, h: usize) -> Var {
        let _sp = pmm_obs::span("split_heads");
        // pmm-audit: allow(op-flops) — pure data movement, zero FLOPs
        assert_eq!(self.shape().len(), 2, "split_heads: input must be rank 2");
        let (n, d) = (self.shape()[0], self.shape()[1]);
        assert_eq!(n, b * l, "split_heads: rows {n} != b*l = {}", b * l);
        assert_eq!(d % h, 0, "split_heads: model dim {d} not divisible by {h} heads");
        let dh = d / h;
        let src = self.value().data();
        let mut data = vec![0.0f32; n * d];
        for bi in 0..b {
            for hi in 0..h {
                for li in 0..l {
                    let src_off = (bi * l + li) * d + hi * dh;
                    let dst_off = ((bi * h + hi) * l + li) * dh;
                    data[dst_off..dst_off + dh].copy_from_slice(&src[src_off..src_off + dh]);
                }
            }
        }
        let out = Tensor::from_vec(data, &[b * h, l, dh]).expect("split_heads numel");
        let a = self.clone();
        let src_shape = self.shape().to_vec();
        Var::from_op(
            "split_heads",
            out,
            vec![self.clone()],
            Box::new(move |g| {
                let d = src_shape[1];
                let dh = d / h;
                let mut dx = Tensor::zeros(&src_shape);
                let buf = dx.data_mut();
                let gd = g.data();
                for bi in 0..b {
                    for hi in 0..h {
                        for li in 0..l {
                            let dst_off = (bi * l + li) * d + hi * dh;
                            let src_off = ((bi * h + hi) * l + li) * dh;
                            buf[dst_off..dst_off + dh]
                                .copy_from_slice(&gd[src_off..src_off + dh]);
                        }
                    }
                }
                a.accum_grad(&dx);
            }),
        )
    }

    /// Inverse of [`Var::split_heads`]: `[b*h, l, dh] -> [b*l, h*dh]`.
    #[track_caller]
    pub fn merge_heads(&self, b: usize, h: usize) -> Var {
        let _sp = pmm_obs::span("merge_heads");
        // pmm-audit: allow(op-flops) — pure data movement, zero FLOPs
        assert_eq!(self.shape().len(), 3, "merge_heads: input must be rank 3");
        assert_eq!(
            self.shape()[0],
            b * h,
            "merge_heads: batch axis {} != b*h = {}",
            self.shape()[0],
            b * h
        );
        let (l, dh) = (self.shape()[1], self.shape()[2]);
        let d = h * dh;
        let src = self.value().data();
        let mut data = vec![0.0f32; b * l * d];
        for bi in 0..b {
            for hi in 0..h {
                for li in 0..l {
                    let src_off = ((bi * h + hi) * l + li) * dh;
                    let dst_off = (bi * l + li) * d + hi * dh;
                    data[dst_off..dst_off + dh].copy_from_slice(&src[src_off..src_off + dh]);
                }
            }
        }
        let out = Tensor::from_vec(data, &[b * l, d]).expect("merge_heads numel");
        let a = self.clone();
        Var::from_op(
            "merge_heads",
            out,
            vec![self.clone()],
            Box::new(move |g| {
                let mut dx = Tensor::zeros(&[b * h, l, dh]);
                let buf = dx.data_mut();
                let gd = g.data();
                for bi in 0..b {
                    for hi in 0..h {
                        for li in 0..l {
                            let dst_off = ((bi * h + hi) * l + li) * dh;
                            let src_off = (bi * l + li) * d + hi * dh;
                            buf[dst_off..dst_off + dh]
                                .copy_from_slice(&gd[src_off..src_off + dh]);
                        }
                    }
                }
                a.accum_grad(&dx);
            }),
        )
    }

    /// Weighted mean-pooling of `b` segments of `l` rows each:
    /// `out[i] = sum_j w[i*l+j] * x[i*l+j] / sum_j w[i*l+j]`.
    ///
    /// `weights` typically holds the padding mask; fully masked segments
    /// pool to zero.
    #[track_caller]
    pub fn mean_pool(&self, b: usize, l: usize, weights: &[f32]) -> Var {
        let _sp = pmm_obs::span("mean_pool");
        assert_eq!(self.shape().len(), 2, "mean_pool: input must be rank 2");
        let (n, d) = (self.shape()[0], self.shape()[1]);
        assert_eq!(n, b * l, "mean_pool: rows {n} != b*l = {}", b * l);
        assert_eq!(weights.len(), n, "mean_pool: weights len != rows");
        let src = self.value().data();
        let mut data = vec![0.0f32; b * d];
        let mut denom = vec![0.0f32; b];
        for bi in 0..b {
            for li in 0..l {
                let w = weights[bi * l + li];
                denom[bi] += w;
                if w != 0.0 {
                    let row = &src[(bi * l + li) * d..(bi * l + li + 1) * d];
                    for (o, &x) in data[bi * d..(bi + 1) * d].iter_mut().zip(row) {
                        *o += w * x;
                    }
                }
            }
            if denom[bi] > 0.0 {
                let inv = 1.0 / denom[bi];
                data[bi * d..(bi + 1) * d].iter_mut().for_each(|o| *o *= inv);
            }
        }
        let out = Tensor::from_vec(data, &[b, d]).expect("mean_pool numel");
        pmm_obs::counter::record_op_flops(2 * self.value().len() as u64);
        let a = self.clone();
        let weights: Rc<[f32]> = weights.into();
        let denom: Rc<[f32]> = denom.into();
        Var::from_op(
            "mean_pool",
            out,
            vec![self.clone()],
            Box::new(move |g| {
                let mut dx = Tensor::zeros(&[b * l, d]);
                let buf = dx.data_mut();
                let gd = g.data();
                for bi in 0..b {
                    if denom[bi] == 0.0 {
                        continue;
                    }
                    let inv = 1.0 / denom[bi];
                    for li in 0..l {
                        let w = weights[bi * l + li];
                        if w == 0.0 {
                            continue;
                        }
                        let row = &mut buf[(bi * l + li) * d..(bi * l + li + 1) * d];
                        for (o, &gv) in row.iter_mut().zip(&gd[bi * d..(bi + 1) * d]) {
                            *o = w * inv * gv;
                        }
                    }
                }
                a.accum_grad(&dx);
            }),
        )
    }

    /// Sum of all elements as a `[1]` tensor.
    pub fn sum_all(&self) -> Var {
        let _sp = pmm_obs::span("sum_all");
        let out = Tensor::scalar(self.value().sum());
        pmm_obs::counter::record_op_flops(self.value().len() as u64);
        let a = self.clone();
        let shape = self.shape().to_vec();
        Var::from_op(
            "sum_all",
            out,
            vec![self.clone()],
            Box::new(move |g| {
                let gv = g.scalar_value();
                a.accum_grad(&Tensor::full(&shape, gv));
            }),
        )
    }

    /// Mean of all elements as a `[1]` tensor.
    pub fn mean_all(&self) -> Var {
        let n = self.value().len().max(1) as f32;
        self.sum_all().scale(1.0 / n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(data: &[f32], shape: &[usize]) -> Var {
        Var::leaf(Tensor::from_vec(data.to_vec(), shape).unwrap())
    }

    #[test]
    fn reshape_roundtrip_grad() {
        let x = v(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let y = x.reshape(&[4]);
        y.sum_all().backward();
        assert_eq!(x.grad().unwrap().shape(), &[2, 2]);
    }

    #[test]
    fn concat_then_split_grad() {
        let a = v(&[1.0, 2.0], &[1, 2]);
        let b = v(&[3.0, 4.0, 5.0, 6.0], &[2, 2]);
        let c = Var::concat0(&[a.clone(), b.clone()]);
        assert_eq!(c.shape(), &[3, 2]);
        c.slice_rows(1, 2).sum_all().backward();
        assert_eq!(a.grad().unwrap().data(), &[0.0, 0.0]);
        assert_eq!(b.grad().unwrap().data(), &[1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn gather_rows_scatter_adds_repeats() {
        let x = v(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let g = x.gather_rows(&[0, 0, 1]);
        assert_eq!(g.shape(), &[3, 2]);
        g.sum_all().backward();
        assert_eq!(x.grad().unwrap().data(), &[2.0, 2.0, 1.0, 1.0]);
    }

    #[test]
    fn split_merge_heads_is_identity() {
        let (b, l, h, dh) = (2usize, 3usize, 2usize, 2usize);
        let d = h * dh;
        let data: Vec<f32> = (0..b * l * d).map(|i| i as f32).collect();
        let x = v(&data, &[b * l, d]);
        let y = x.split_heads(b, l, h).merge_heads(b, h);
        assert_eq!(y.value().data(), x.value().data());
        y.sum_all().backward();
        assert_eq!(x.grad().unwrap().data(), &vec![1.0; b * l * d][..]);
    }

    #[test]
    fn split_heads_places_head_blocks() {
        // b=1, l=2, h=2, dh=1: x = [[a0 a1],[b0 b1]]
        let x = v(&[10.0, 20.0, 30.0, 40.0], &[2, 2]);
        let y = x.split_heads(1, 2, 2);
        assert_eq!(y.shape(), &[2, 2, 1]);
        // head 0 sequence: [10, 30]; head 1 sequence: [20, 40]
        assert_eq!(y.value().data(), &[10.0, 30.0, 20.0, 40.0]);
    }

    #[test]
    fn mean_pool_respects_mask() {
        let x = v(&[1.0, 1.0, 3.0, 3.0, 10.0, 10.0, 99.0, 99.0], &[4, 2]);
        // Two segments of two rows; second row of segment 2 masked out.
        let y = x.mean_pool(2, 2, &[1.0, 1.0, 1.0, 0.0]);
        assert_eq!(y.value().data(), &[2.0, 2.0, 10.0, 10.0]);
        y.sum_all().backward();
        let g = x.grad().unwrap();
        assert_eq!(g.data(), &[0.5, 0.5, 0.5, 0.5, 1.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn mean_pool_fully_masked_segment_is_zero() {
        let x = v(&[5.0, 5.0], &[1, 2]);
        let y = x.mean_pool(1, 1, &[0.0]);
        assert_eq!(y.value().data(), &[0.0, 0.0]);
        y.sum_all().backward();
        assert_eq!(x.grad().unwrap().data(), &[0.0, 0.0]);
    }

    #[test]
    fn mean_all_divides() {
        let x = v(&[2.0, 4.0], &[2]);
        let y = x.mean_all();
        assert_eq!(y.value().scalar_value(), 3.0);
        y.backward();
        assert_eq!(x.grad().unwrap().data(), &[0.5, 0.5]);
    }
}
