//! Elementwise and broadcasting arithmetic ops.

use crate::shape::check_same_shape;
use crate::{Tensor, Var};

impl Var {
    /// Elementwise sum (same shape).
    #[track_caller]
    pub fn add(&self, other: &Var) -> Var {
        let _sp = pmm_obs::span("add");
        check_same_shape("Var::add", self.shape(), other.shape());
        let out = self.value().add(other.value());
        pmm_obs::counter::record_op_flops(out.len() as u64);
        let (a, b) = (self.clone(), other.clone());
        Var::from_op(
            "add",
            out,
            vec![self.clone(), other.clone()],
            Box::new(move |g| {
                a.accum_grad(g);
                b.accum_grad(g);
            }),
        )
    }

    /// Elementwise difference (same shape).
    #[track_caller]
    pub fn sub(&self, other: &Var) -> Var {
        let _sp = pmm_obs::span("sub");
        check_same_shape("Var::sub", self.shape(), other.shape());
        let out = self.value().sub(other.value());
        pmm_obs::counter::record_op_flops(out.len() as u64);
        let (a, b) = (self.clone(), other.clone());
        Var::from_op(
            "sub",
            out,
            vec![self.clone(), other.clone()],
            Box::new(move |g| {
                a.accum_grad(g);
                b.accum_grad(&g.scale(-1.0));
            }),
        )
    }

    /// Hadamard product (same shape).
    #[track_caller]
    pub fn mul(&self, other: &Var) -> Var {
        let _sp = pmm_obs::span("mul");
        check_same_shape("Var::mul", self.shape(), other.shape());
        let out = self.value().mul(other.value());
        pmm_obs::counter::record_op_flops(out.len() as u64);
        let (a, b) = (self.clone(), other.clone());
        Var::from_op(
            "mul",
            out,
            vec![self.clone(), other.clone()],
            Box::new(move |g| {
                a.accum_grad(&g.mul(b.value()));
                b.accum_grad(&g.mul(a.value()));
            }),
        )
    }

    /// Multiplication by a constant scalar.
    pub fn scale(&self, c: f32) -> Var {
        let _sp = pmm_obs::span("scale");
        let out = self.value().scale(c);
        pmm_obs::counter::record_op_flops(out.len() as u64);
        let a = self.clone();
        Var::from_op(
            "scale",
            out,
            vec![self.clone()],
            Box::new(move |g| a.accum_grad(&g.scale(c))),
        )
    }

    /// Addition of a constant scalar to every element.
    pub fn add_scalar(&self, c: f32) -> Var {
        let _sp = pmm_obs::span("add_scalar");
        let out = self.value().map(|v| v + c);
        pmm_obs::counter::record_op_flops(out.len() as u64);
        let a = self.clone();
        Var::from_op("add_scalar", out, vec![self.clone()], Box::new(move |g| a.accum_grad(g)))
    }

    /// Negation.
    pub fn neg(&self) -> Var {
        self.scale(-1.0)
    }

    /// Broadcast-adds a rank-1 bias over the last axis: `[.., d] + [d]`.
    #[track_caller]
    pub fn add_bias(&self, bias: &Var) -> Var {
        let _sp = pmm_obs::span("add_bias");
        let d = *self
            .shape()
            .last()
            .expect("add_bias: lhs must have rank >= 1");
        assert_eq!(
            bias.shape(),
            &[d],
            "add_bias: bias shape {:?} incompatible with input {:?}",
            bias.shape(),
            self.shape()
        );
        let rows = self.value().len() / d;
        let mut data = self.value().data().to_vec();
        let bv = bias.value().data();
        for r in 0..rows {
            for (x, &b) in data[r * d..(r + 1) * d].iter_mut().zip(bv) {
                *x += b;
            }
        }
        let out = Tensor::from_vec(data, self.shape()).expect("same numel");
        pmm_obs::counter::record_op_flops(out.len() as u64);
        let (a, b) = (self.clone(), bias.clone());
        Var::from_op(
            "add_bias",
            out,
            vec![self.clone(), bias.clone()],
            Box::new(move |g| {
                a.accum_grad(g);
                // Bias gradient: sum over all broadcast rows.
                let mut gb = vec![0.0f32; d];
                for (i, &gv) in g.data().iter().enumerate() {
                    gb[i % d] += gv;
                }
                b.accum_grad(&Tensor::from_vec(gb, &[d]).expect("bias grad shape"));
            }),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(data: &[f32], shape: &[usize]) -> Var {
        Var::leaf(Tensor::from_vec(data.to_vec(), shape).unwrap())
    }

    #[test]
    fn add_sub_mul_values() {
        let a = v(&[1.0, 2.0], &[2]);
        let b = v(&[3.0, 5.0], &[2]);
        assert_eq!(a.add(&b).value().data(), &[4.0, 7.0]);
        assert_eq!(a.sub(&b).value().data(), &[-2.0, -3.0]);
        assert_eq!(a.mul(&b).value().data(), &[3.0, 10.0]);
    }

    #[test]
    fn mul_gradients() {
        let a = v(&[2.0], &[1]);
        let b = v(&[7.0], &[1]);
        let y = a.mul(&b);
        y.backward();
        assert_eq!(a.grad().unwrap().scalar_value(), 7.0);
        assert_eq!(b.grad().unwrap().scalar_value(), 2.0);
    }

    #[test]
    fn sub_gradient_signs() {
        let a = v(&[1.0], &[1]);
        let b = v(&[1.0], &[1]);
        a.sub(&b).backward();
        assert_eq!(a.grad().unwrap().scalar_value(), 1.0);
        assert_eq!(b.grad().unwrap().scalar_value(), -1.0);
    }

    #[test]
    fn scale_and_add_scalar() {
        let a = v(&[2.0], &[1]);
        let y = a.scale(3.0).add_scalar(1.0); // 7
        assert_eq!(y.value().scalar_value(), 7.0);
        y.backward();
        assert_eq!(a.grad().unwrap().scalar_value(), 3.0);
    }

    #[test]
    fn add_bias_broadcasts_and_sums_grad() {
        let x = v(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = v(&[10.0, 20.0], &[2]);
        let y = x.add_bias(&b);
        assert_eq!(y.value().data(), &[11.0, 22.0, 13.0, 24.0]);
        y.sum_all().backward();
        assert_eq!(b.grad().unwrap().data(), &[2.0, 2.0]);
        assert_eq!(x.grad().unwrap().data(), &[1.0; 4]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn add_rejects_shape_mismatch() {
        let a = v(&[1.0, 2.0], &[2]);
        let b = v(&[1.0], &[1]);
        let _ = a.add(&b);
    }
}
