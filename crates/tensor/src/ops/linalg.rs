//! Matrix products (2-D and batched) with transpose flags.

use crate::{Tensor, Var};

impl Var {
    /// 2-D matrix product `self @ other`.
    #[track_caller]
    pub fn matmul(&self, other: &Var) -> Var {
        self.matmul_tt(other, false, false)
    }

    /// 2-D matrix product `self @ other^T`.
    #[track_caller]
    pub fn matmul_nt(&self, other: &Var) -> Var {
        self.matmul_tt(other, false, true)
    }

    /// 2-D matrix product `self^T @ other`.
    #[track_caller]
    pub fn matmul_tn(&self, other: &Var) -> Var {
        self.matmul_tt(other, true, false)
    }

    /// 2-D matrix product with explicit transpose flags.
    ///
    /// `C = opA(A) @ opB(B)` where `opX` transposes when the flag is set.
    #[track_caller]
    pub fn matmul_tt(&self, other: &Var, trans_a: bool, trans_b: bool) -> Var {
        let _sp = pmm_obs::span("matmul");
        // pmm-audit: allow(op-flops) — FLOPs recorded by the matmul kernel
        let out = self.value().matmul_t(other.value(), trans_a, trans_b);
        let (a, b) = (self.clone(), other.clone());
        Var::from_op(
            "matmul",
            out,
            vec![self.clone(), other.clone()],
            Box::new(move |g| {
                let (da, db) = matmul_grads(a.value(), b.value(), g, trans_a, trans_b, false);
                a.accum_grad(&da);
                b.accum_grad(&db);
            }),
        )
    }

    /// Batched matrix product `[b, m, k] @ [b, k, n] -> [b, m, n]`.
    #[track_caller]
    pub fn bmm(&self, other: &Var) -> Var {
        self.bmm_tt(other, false, false)
    }

    /// Batched matrix product `self @ other^T` per batch element.
    #[track_caller]
    pub fn bmm_nt(&self, other: &Var) -> Var {
        self.bmm_tt(other, false, true)
    }

    /// Batched matrix product with explicit transpose flags.
    #[track_caller]
    pub fn bmm_tt(&self, other: &Var, trans_a: bool, trans_b: bool) -> Var {
        let _sp = pmm_obs::span("bmm");
        // pmm-audit: allow(op-flops) — FLOPs recorded by the bmm kernel
        let out = self.value().bmm_t(other.value(), trans_a, trans_b);
        let (a, b) = (self.clone(), other.clone());
        Var::from_op(
            "bmm",
            out,
            vec![self.clone(), other.clone()],
            Box::new(move |g| {
                let (da, db) = matmul_grads(a.value(), b.value(), g, trans_a, trans_b, true);
                a.accum_grad(&da);
                b.accum_grad(&db);
            }),
        )
    }

    /// 2-D transpose as a graph op.
    #[track_caller]
    pub fn transpose2(&self) -> Var {
        let _sp = pmm_obs::span("transpose2");
        // pmm-audit: allow(op-flops) — pure data movement, zero FLOPs
        let out = self.value().transpose2();
        let a = self.clone();
        Var::from_op(
            "transpose2",
            out,
            vec![self.clone()],
            Box::new(move |g| a.accum_grad(&g.transpose2())),
        )
    }
}

/// Gradients of `C = opA(A) @ opB(B)` for both the 2-D and batched case.
fn matmul_grads(
    av: &Tensor,
    bv: &Tensor,
    g: &Tensor,
    trans_a: bool,
    trans_b: bool,
    batched: bool,
) -> (Tensor, Tensor) {
    let mm = |x: &Tensor, y: &Tensor, tx: bool, ty: bool| {
        if batched {
            x.bmm_t(y, tx, ty)
        } else {
            x.matmul_t(y, tx, ty)
        }
    };
    match (trans_a, trans_b) {
        // C = A B: dA = G B^T, dB = A^T G
        (false, false) => (mm(g, bv, false, true), mm(av, g, true, false)),
        // C = A B^T: dA = G B, dB = G^T A
        (false, true) => (mm(g, bv, false, false), mm(g, av, true, false)),
        // C = A^T B: dA = B G^T, dB = A G
        (true, false) => (mm(bv, g, false, true), mm(av, g, false, false)),
        // C = A^T B^T: dA = B^T G^T, dB = G^T A^T
        (true, true) => (mm(bv, g, true, true), mm(g, av, true, true)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn leaf(shape: &[usize], seed: u64) -> Var {
        let mut rng = StdRng::seed_from_u64(seed);
        Var::leaf(Tensor::randn(shape, 1.0, &mut rng))
    }

    #[test]
    fn matmul_forward_shape() {
        let a = leaf(&[2, 3], 0);
        let b = leaf(&[3, 4], 1);
        assert_eq!(a.matmul(&b).shape(), &[2, 4]);
        assert_eq!(a.matmul_tn(&leaf(&[2, 5], 2)).shape(), &[3, 5]);
        assert_eq!(a.matmul_nt(&leaf(&[4, 3], 3)).shape(), &[2, 4]);
    }

    #[test]
    fn matmul_grad_shapes_match_inputs() {
        for (ta, tb, ashape, bshape) in [
            (false, false, [2usize, 3usize], [3usize, 4usize]),
            (false, true, [2, 3], [4, 3]),
            (true, false, [3, 2], [3, 4]),
            (true, true, [3, 2], [4, 3]),
        ] {
            let a = leaf(&ashape, 10);
            let b = leaf(&bshape, 11);
            let y = a.matmul_tt(&b, ta, tb).sum_all();
            y.backward();
            assert_eq!(a.grad().unwrap().shape(), &ashape, "ta={ta} tb={tb}");
            assert_eq!(b.grad().unwrap().shape(), &bshape, "ta={ta} tb={tb}");
        }
    }

    #[test]
    fn bmm_grad_shapes_match_inputs() {
        for (ta, tb, ashape, bshape) in [
            (false, false, [2usize, 3, 4], [2usize, 4, 5]),
            (false, true, [2, 3, 4], [2, 5, 4]),
            (true, false, [2, 4, 3], [2, 4, 5]),
            (true, true, [2, 4, 3], [2, 5, 4]),
        ] {
            let a = leaf(&ashape, 20);
            let b = leaf(&bshape, 21);
            let y = a.bmm_tt(&b, ta, tb).sum_all();
            y.backward();
            assert_eq!(a.grad().unwrap().shape(), &ashape, "ta={ta} tb={tb}");
            assert_eq!(b.grad().unwrap().shape(), &bshape, "ta={ta} tb={tb}");
        }
    }

    #[test]
    fn matmul_grad_against_manual() {
        // y = sum(A @ B): dA = ones @ B^T (row sums of B), dB = A^T @ ones.
        let a = Var::leaf(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap());
        let b = Var::leaf(Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]).unwrap());
        a.matmul(&b).sum_all().backward();
        assert_eq!(a.grad().unwrap().data(), &[11.0, 15.0, 11.0, 15.0]);
        assert_eq!(b.grad().unwrap().data(), &[4.0, 4.0, 6.0, 6.0]);
    }

    #[test]
    fn transpose_grad_is_transpose() {
        let a = Var::leaf(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap());
        let y = a.transpose2();
        assert_eq!(y.shape(), &[3, 2]);
        y.sum_all().backward();
        assert_eq!(a.grad().unwrap().shape(), &[2, 3]);
    }
}
