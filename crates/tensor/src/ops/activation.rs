//! Pointwise nonlinearities.

use crate::Var;
#[cfg(test)]
use crate::Tensor;

const GELU_C: f32 = 0.797_884_6; // sqrt(2/pi)
const GELU_A: f32 = 0.044_715;

// Rough per-element scalar-FLOP costs for the transcendental
// activations (an `exp`/`tanh` evaluation is counted as a handful of
// FLOPs, matching the usual roofline accounting convention).
const TANH_COST: u64 = 8;
const SIGMOID_COST: u64 = 4;
const GELU_COST: u64 = 14;

impl Var {
    /// Rectified linear unit.
    pub fn relu(&self) -> Var {
        let _sp = pmm_obs::span("relu");
        let out = self.value().map(|v| v.max(0.0));
        pmm_obs::counter::record_op_flops(out.len() as u64);
        let a = self.clone();
        Var::from_op(
            "relu",
            out,
            vec![self.clone()],
            Box::new(move |g| {
                let dx = g.zip_map(a.value(), |gv, xv| if xv > 0.0 { gv } else { 0.0 });
                a.accum_grad(&dx);
            }),
        )
    }

    /// GELU with the tanh approximation (as used by RoBERTa/ViT).
    pub fn gelu(&self) -> Var {
        let _sp = pmm_obs::span("gelu");
        let out = self.value().map(gelu_scalar);
        pmm_obs::counter::record_op_flops(GELU_COST * out.len() as u64);
        let a = self.clone();
        Var::from_op(
            "gelu",
            out,
            vec![self.clone()],
            Box::new(move |g| {
                let dx = g.zip_map(a.value(), |gv, xv| gv * gelu_grad_scalar(xv));
                a.accum_grad(&dx);
            }),
        )
    }

    /// Hyperbolic tangent.
    pub fn tanh(&self) -> Var {
        let _sp = pmm_obs::span("tanh");
        let out = self.value().map(f32::tanh);
        pmm_obs::counter::record_op_flops(TANH_COST * out.len() as u64);
        let a = self.clone();
        let y = out.clone();
        Var::from_op(
            "tanh",
            out,
            vec![self.clone()],
            Box::new(move |g| {
                let dx = g.zip_map(&y, |gv, yv| gv * (1.0 - yv * yv));
                a.accum_grad(&dx);
            }),
        )
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&self) -> Var {
        let _sp = pmm_obs::span("sigmoid");
        let out = self.value().map(|v| 1.0 / (1.0 + (-v).exp()));
        pmm_obs::counter::record_op_flops(SIGMOID_COST * out.len() as u64);
        let a = self.clone();
        let y = out.clone();
        Var::from_op(
            "sigmoid",
            out,
            vec![self.clone()],
            Box::new(move |g| {
                let dx = g.zip_map(&y, |gv, yv| gv * yv * (1.0 - yv));
                a.accum_grad(&dx);
            }),
        )
    }

    /// Elementwise exponential.
    pub fn exp(&self) -> Var {
        let _sp = pmm_obs::span("exp");
        let out = self.value().map(f32::exp);
        pmm_obs::counter::record_op_flops(SIGMOID_COST * out.len() as u64);
        let a = self.clone();
        let y = out.clone();
        Var::from_op(
            "exp",
            out,
            vec![self.clone()],
            Box::new(move |g| a.accum_grad(&g.mul(&y))),
        )
    }

    /// Elementwise natural logarithm of inputs clamped to `>= 1e-12`.
    pub fn ln(&self) -> Var {
        let _sp = pmm_obs::span("ln");
        let out = self.value().map(|v| v.max(1e-12).ln());
        pmm_obs::counter::record_op_flops(SIGMOID_COST * out.len() as u64);
        let a = self.clone();
        Var::from_op(
            "ln",
            out,
            vec![self.clone()],
            Box::new(move |g| {
                let dx = g.zip_map(a.value(), |gv, xv| gv / xv.max(1e-12));
                a.accum_grad(&dx);
            }),
        )
    }
}

fn gelu_scalar(x: f32) -> f32 {
    0.5 * x * (1.0 + (GELU_C * (x + GELU_A * x * x * x)).tanh())
}

fn gelu_grad_scalar(x: f32) -> f32 {
    let u = GELU_C * (x + GELU_A * x * x * x);
    let t = u.tanh();
    let sech2 = 1.0 - t * t;
    0.5 * (1.0 + t) + 0.5 * x * sech2 * GELU_C * (1.0 + 3.0 * GELU_A * x * x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(data: &[f32]) -> Var {
        Var::leaf(Tensor::from_vec(data.to_vec(), &[data.len()]).unwrap())
    }

    #[test]
    fn relu_clamps_and_masks_grad() {
        let x = v(&[-1.0, 2.0]);
        let y = x.relu();
        assert_eq!(y.value().data(), &[0.0, 2.0]);
        y.sum_all().backward();
        assert_eq!(x.grad().unwrap().data(), &[0.0, 1.0]);
    }

    #[test]
    fn gelu_matches_reference_points() {
        // Reference values from the tanh-approximation formula.
        assert!((gelu_scalar(0.0)).abs() < 1e-7);
        assert!((gelu_scalar(1.0) - 0.841_192).abs() < 1e-4);
        assert!((gelu_scalar(-1.0) + 0.158_808).abs() < 1e-4);
    }

    #[test]
    fn tanh_sigmoid_ranges() {
        let x = v(&[-10.0, 0.0, 10.0]);
        let t = x.tanh();
        assert!(t.value().data()[0] < -0.999 && t.value().data()[2] > 0.999);
        assert_eq!(t.value().data()[1], 0.0);
        let s = x.sigmoid();
        assert!(s.value().data()[0] < 1e-4 && s.value().data()[2] > 0.9999);
        assert_eq!(s.value().data()[1], 0.5);
    }

    #[test]
    fn exp_ln_roundtrip_grad() {
        let x = v(&[0.5]);
        let y = x.exp().ln(); // identity
        assert!((y.value().scalar_value() - 0.5).abs() < 1e-6);
        y.backward();
        assert!((x.grad().unwrap().scalar_value() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn sigmoid_grad_at_zero_is_quarter() {
        let x = v(&[0.0]);
        let y = x.sigmoid();
        y.backward();
        assert!((x.grad().unwrap().scalar_value() - 0.25).abs() < 1e-6);
    }
}
