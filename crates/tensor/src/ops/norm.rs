//! Row-wise normalisation ops: softmax (plain/masked), layer norm,
//! l2-normalisation and dropout.

use crate::shape::rows_last;
use crate::tensor::PAR_MIN_ELEMS;
use crate::{Tensor, Var};

impl Var {
    /// Softmax over the last axis.
    pub fn softmax_last(&self) -> Var {
        let _sp = pmm_obs::span("softmax");
        let out = self.value().softmax_last();
        pmm_obs::counter::record_op_flops(5 * out.len() as u64);
        let a = self.clone();
        let y = out.clone();
        let (rows, last) = rows_last("softmax", self.shape());
        Var::from_op(
            "softmax",
            out,
            vec![self.clone()],
            Box::new(move |g| a.accum_grad(&softmax_backward(&y, g, rows, last))),
        )
    }

    /// Masked softmax over the last axis.
    ///
    /// `mask` must have the same shape; entries equal to `0.0` are
    /// treated as `-inf` logits (their output probability and gradient
    /// are exactly zero). Fully masked rows produce all-zero rows.
    #[track_caller]
    pub fn masked_softmax_last(&self, mask: &Tensor) -> Var {
        let _sp = pmm_obs::span("masked_softmax");
        assert_eq!(
            mask.shape(),
            self.shape(),
            "masked_softmax: mask shape {:?} != input {:?}",
            mask.shape(),
            self.shape()
        );
        let (rows, last) = rows_last("masked_softmax", self.shape());
        let masked = self.value().zip_map(mask, |x, m| {
            if m == 0.0 {
                f32::NEG_INFINITY
            } else {
                x
            }
        });
        // Tensor::softmax_last already handles the -inf rows and runs
        // row-parallel for large inputs.
        let out = masked.softmax_last();
        pmm_obs::counter::record_op_flops(6 * out.len() as u64);
        let a = self.clone();
        let y = out.clone();
        Var::from_op(
            "masked_softmax",
            out,
            vec![self.clone()],
            Box::new(move |g| a.accum_grad(&softmax_backward(&y, g, rows, last))),
        )
    }

    /// Layer normalisation over the last axis with affine parameters.
    ///
    /// `y = gamma * (x - mean) / sqrt(var + eps) + beta`, row-wise.
    #[track_caller]
    pub fn layer_norm(&self, gamma: &Var, beta: &Var, eps: f32) -> Var {
        let _sp = pmm_obs::span("layer_norm");
        let (rows, d) = rows_last("layer_norm", self.shape());
        assert_eq!(gamma.shape(), &[d], "layer_norm: gamma must be [{d}]");
        assert_eq!(beta.shape(), &[d], "layer_norm: beta must be [{d}]");
        let x = self.value().data();
        let gm = gamma.value().data();
        let bt = beta.value().data();
        let mut out = vec![0.0f32; x.len()];
        // Per-row backward cache, interleaved as [xhat[0..d], 1/std] so
        // the forward fills the output and the cache in one row pass.
        let mut aux = vec![0.0f32; rows * (d + 1)];
        let min_rows = (PAR_MIN_ELEMS / 8 / d.max(1)).max(1);
        pmm_par::for_each_row_chunk2(&mut out, d, &mut aux, d + 1, min_rows, |r0, ob, ab| {
            for (ri, (orow, arow)) in ob.chunks_mut(d).zip(ab.chunks_mut(d + 1)).enumerate() {
                let r = r0 + ri;
                let row = &x[r * d..(r + 1) * d];
                let mean = row.iter().sum::<f32>() / d as f32;
                let var = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / d as f32;
                let istd = 1.0 / (var + eps).sqrt();
                arow[d] = istd;
                for j in 0..d {
                    let xh = (row[j] - mean) * istd;
                    arow[j] = xh;
                    orow[j] = gm[j] * xh + bt[j];
                }
            }
        });
        let out = Tensor::from_vec(out, self.shape()).expect("ln numel");
        pmm_obs::counter::record_op_flops(8 * out.len() as u64);
        let (a, gv, bv) = (self.clone(), gamma.clone(), beta.clone());
        let shape = self.shape().to_vec();
        Var::from_op(
            "layer_norm",
            out,
            vec![self.clone(), gamma.clone(), beta.clone()],
            Box::new(move |g| {
                let gd = g.data();
                let gmv = gv.value().data();
                let mut dx = vec![0.0f32; gd.len()];
                let mut dgamma = vec![0.0f32; d];
                let mut dbeta = vec![0.0f32; d];
                // dgamma/dbeta accumulate across rows in row order;
                // splitting rows over workers would change the float
                // summation order, so the backward stays sequential.
                for r in 0..rows {
                    let arow = &aux[r * (d + 1)..(r + 1) * (d + 1)];
                    let istd = arow[d];
                    let xh = &arow[..d];
                    let go = &gd[r * d..(r + 1) * d];
                    // dxhat = g * gamma; accumulate row statistics.
                    let mut sum_dxhat = 0.0f32;
                    let mut sum_dxhat_xhat = 0.0f32;
                    for j in 0..d {
                        let dxh = go[j] * gmv[j];
                        sum_dxhat += dxh;
                        sum_dxhat_xhat += dxh * xh[j];
                        dgamma[j] += go[j] * xh[j];
                        dbeta[j] += go[j];
                    }
                    let inv_d = 1.0 / d as f32;
                    for j in 0..d {
                        let dxh = go[j] * gmv[j];
                        dx[r * d + j] =
                            istd * (dxh - inv_d * sum_dxhat - xh[j] * inv_d * sum_dxhat_xhat);
                    }
                }
                a.accum_grad(&Tensor::from_vec(dx, &shape).expect("ln dx"));
                gv.accum_grad(&Tensor::from_vec(dgamma, &[d]).expect("ln dgamma"));
                bv.accum_grad(&Tensor::from_vec(dbeta, &[d]).expect("ln dbeta"));
            }),
        )
    }

    /// Row-wise l2 normalisation over the last axis:
    /// `y = x / max(||x||, eps)`.
    pub fn l2_normalize_rows(&self) -> Var {
        let _sp = pmm_obs::span("l2_normalize");
        const EPS: f32 = 1e-8;
        let (rows, d) = rows_last("l2_normalize", self.shape());
        let x = self.value().data();
        let mut out = vec![0.0f32; x.len()];
        let mut norms = vec![0.0f32; rows];
        let min_rows = (PAR_MIN_ELEMS / 4 / d.max(1)).max(1);
        pmm_par::for_each_row_chunk2(&mut out, d, &mut norms, 1, min_rows, |r0, ob, nb| {
            for (ri, (orow, nv)) in ob.chunks_mut(d).zip(nb.iter_mut()).enumerate() {
                let r = r0 + ri;
                let row = &x[r * d..(r + 1) * d];
                let n = row.iter().map(|&v| v * v).sum::<f32>().sqrt().max(EPS);
                *nv = n;
                for (o, &v) in orow.iter_mut().zip(row) {
                    *o = v / n;
                }
            }
        });
        let y = Tensor::from_vec(out, self.shape()).expect("l2 numel");
        pmm_obs::counter::record_op_flops(3 * y.len() as u64);
        let a = self.clone();
        let yv = y.clone();
        let shape = self.shape().to_vec();
        Var::from_op(
            "l2_normalize",
            y,
            vec![self.clone()],
            Box::new(move |g| {
                let gd = g.data();
                let yd = yv.data();
                let mut dx = vec![0.0f32; gd.len()];
                let min_rows = (PAR_MIN_ELEMS / 4 / d.max(1)).max(1);
                pmm_par::for_each_row_chunk(&mut dx, d, min_rows, |r0, block| {
                    for (ri, dxrow) in block.chunks_mut(d).enumerate() {
                        let r = r0 + ri;
                        let go = &gd[r * d..(r + 1) * d];
                        let yo = &yd[r * d..(r + 1) * d];
                        let dot: f32 = go.iter().zip(yo).map(|(&a, &b)| a * b).sum();
                        let inv_n = 1.0 / norms[r];
                        for (j, dv) in dxrow.iter_mut().enumerate() {
                            *dv = (go[j] - dot * yo[j]) * inv_n;
                        }
                    }
                });
                a.accum_grad(&Tensor::from_vec(dx, &shape).expect("l2 dx"));
            }),
        )
    }

    /// Dropout with a caller-supplied keep mask.
    ///
    /// `mask` entries should be `0.0` (dropped) or `1/(1-p)` (kept,
    /// inverted scaling); the layer in `pmm-nn` generates them. Applying
    /// an all-one mask is the identity (inference mode).
    #[track_caller]
    pub fn dropout(&self, mask: &Tensor) -> Var {
        let _sp = pmm_obs::span("dropout");
        assert_eq!(
            mask.shape(),
            self.shape(),
            "dropout: mask shape {:?} != input {:?}",
            mask.shape(),
            self.shape()
        );
        let out = self.value().mul(mask);
        pmm_obs::counter::record_op_flops(out.len() as u64);
        let a = self.clone();
        let mask = mask.clone();
        Var::from_op(
            "dropout",
            out,
            vec![self.clone()],
            Box::new(move |g| a.accum_grad(&g.mul(&mask))),
        )
    }
}

/// Shared softmax backward: `dx = (g - sum(g*y)) * y` per row.
fn softmax_backward(y: &Tensor, g: &Tensor, rows: usize, last: usize) -> Tensor {
    let yd = y.data();
    let gd = g.data();
    let mut dx = vec![0.0f32; gd.len()];
    if rows > 0 && last > 0 {
        let min_rows = (PAR_MIN_ELEMS / 4 / last).max(1);
        pmm_par::for_each_row_chunk(&mut dx, last, min_rows, |r0, block| {
            for (ri, dxrow) in block.chunks_mut(last).enumerate() {
                let r = r0 + ri;
                let yo = &yd[r * last..(r + 1) * last];
                let go = &gd[r * last..(r + 1) * last];
                let dot: f32 = yo.iter().zip(go).map(|(&a, &b)| a * b).sum();
                for (j, dv) in dxrow.iter_mut().enumerate() {
                    *dv = (go[j] - dot) * yo[j];
                }
            }
        });
    }
    Tensor::from_vec(dx, y.shape()).expect("softmax dx")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(data: &[f32], shape: &[usize]) -> Var {
        Var::leaf(Tensor::from_vec(data.to_vec(), shape).unwrap())
    }

    #[test]
    fn softmax_rows_sum_to_one_and_grad_sums_to_zero() {
        let x = v(&[1.0, 2.0, 3.0, 0.5, 0.5, 0.5], &[2, 3]);
        let y = x.softmax_last();
        for r in 0..2 {
            let s: f32 = y.value().data()[r * 3..(r + 1) * 3].iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
        // Pick out one element: grad wrt logits must sum to ~0 per row.
        let seed = Tensor::from_vec(vec![1.0, 0.0, 0.0, 0.0, 0.0, 0.0], &[2, 3]).unwrap();
        y.backward_with(seed);
        let g = x.grad().unwrap();
        let row_sum: f32 = g.data()[..3].iter().sum();
        assert!(row_sum.abs() < 1e-6);
    }

    #[test]
    fn masked_softmax_zeroes_masked_positions() {
        let x = v(&[5.0, 1.0, 3.0], &[1, 3]);
        let mask = Tensor::from_vec(vec![1.0, 0.0, 1.0], &[1, 3]).unwrap();
        let y = x.masked_softmax_last(&mask);
        assert_eq!(y.value().data()[1], 0.0);
        let s: f32 = y.value().data().iter().sum();
        assert!((s - 1.0).abs() < 1e-6);
        y.sum_all().backward();
        // sum over softmax outputs has zero gradient everywhere.
        assert!(x.grad().unwrap().data().iter().all(|v| v.abs() < 1e-6));
    }

    #[test]
    fn masked_softmax_fully_masked_row_is_zero() {
        let x = v(&[5.0, 1.0], &[1, 2]);
        let mask = Tensor::zeros(&[1, 2]);
        let y = x.masked_softmax_last(&mask);
        assert_eq!(y.value().data(), &[0.0, 0.0]);
    }

    #[test]
    fn layer_norm_output_is_standardised() {
        let x = v(&[1.0, 2.0, 3.0, 4.0], &[1, 4]);
        let gamma = Var::leaf(Tensor::ones(&[4]));
        let beta = Var::leaf(Tensor::zeros(&[4]));
        let y = x.layer_norm(&gamma, &beta, 1e-5);
        let mean: f32 = y.value().data().iter().sum::<f32>() / 4.0;
        let var: f32 = y.value().data().iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-5);
        assert!((var - 1.0).abs() < 1e-3);
    }

    #[test]
    fn layer_norm_grads_populate_all_three_inputs() {
        let x = v(&[0.3, -1.2, 0.8, 2.0, -0.5, 0.1], &[2, 3]);
        let gamma = Var::leaf(Tensor::from_vec(vec![1.5, 0.5, 1.0], &[3]).unwrap());
        let beta = Var::leaf(Tensor::from_vec(vec![0.1, -0.1, 0.0], &[3]).unwrap());
        let y = x.layer_norm(&gamma, &beta, 1e-5);
        // A non-uniform seed so dx is nontrivial.
        let seed = Tensor::from_vec(vec![1.0, -2.0, 0.5, 0.3, 0.7, -1.1], &[2, 3]).unwrap();
        y.backward_with(seed);
        assert!(x.grad().unwrap().all_finite());
        assert!(gamma.grad().unwrap().all_finite());
        // dbeta = column sums of the seed.
        let db = beta.grad().unwrap();
        assert!((db.data()[0] - 1.3).abs() < 1e-5);
    }

    #[test]
    fn l2_normalize_produces_unit_rows() {
        let x = v(&[3.0, 4.0, 0.0, 5.0], &[2, 2]);
        let y = x.l2_normalize_rows();
        for r in 0..2 {
            let n: f32 = y.value().data()[r * 2..(r + 1) * 2]
                .iter()
                .map(|&v| v * v)
                .sum::<f32>()
                .sqrt();
            assert!((n - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn l2_normalize_grad_is_orthogonal_to_output() {
        // d||y||^2/dx = 0 because ||y|| is constant 1 -> grad of sum(y*y) is 0.
        let x = v(&[1.0, 2.0, 2.0], &[1, 3]);
        let y = x.l2_normalize_rows();
        let z = y.mul(&y).sum_all();
        z.backward();
        assert!(x.grad().unwrap().data().iter().all(|v| v.abs() < 1e-5));
    }

    #[test]
    fn dropout_applies_mask_in_forward_and_backward() {
        let x = v(&[1.0, 2.0, 3.0, 4.0], &[4]);
        let mask = Tensor::from_vec(vec![2.0, 0.0, 2.0, 0.0], &[4]).unwrap();
        let y = x.dropout(&mask);
        assert_eq!(y.value().data(), &[2.0, 0.0, 6.0, 0.0]);
        y.sum_all().backward();
        assert_eq!(x.grad().unwrap().data(), &[2.0, 0.0, 2.0, 0.0]);
    }
}
