//! Differentiable operators on [`crate::Var`], grouped by family.
//!
//! Every op follows the same pattern: compute the output `Tensor`
//! eagerly, then record a backward closure that maps the output gradient
//! to parent gradients via [`crate::Var::accum_grad`]. Ops whose inputs
//! are all constants are pruned automatically by `Var::from_op`.

mod activation;
mod elementwise;
mod linalg;
mod loss;
mod norm;
mod structural;
