//! Reverse-mode autograd graph.
//!
//! A [`Var`] is a cheaply clonable handle (an `Rc`) to a node holding a
//! value, an optional gradient slot, the parent handles and a backward
//! closure. Graphs are built dynamically by calling op methods (defined
//! in the `ops` modules) and torn down when the last handle drops, so a
//! fresh graph exists per training step — parameters enter each step as
//! fresh leaves.

use crate::Tensor;
use std::cell::RefCell;
use std::collections::HashSet;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};

static NEXT_ID: AtomicU64 = AtomicU64::new(0);

type BackwardFn = Box<dyn Fn(&Tensor)>;

pub(crate) struct VarInner {
    id: u64,
    /// The op that produced this node (`"leaf"` / `"const"` for inputs);
    /// recorded so external auditors can check per-op graph invariants.
    op: &'static str,
    value: Tensor,
    grad: RefCell<Option<Tensor>>,
    requires_grad: bool,
    parents: Vec<Var>,
    backward: Option<BackwardFn>,
}

/// A node in the autograd graph. Clone is cheap (reference count bump).
#[derive(Clone)]
pub struct Var {
    inner: Rc<VarInner>,
}

impl std::fmt::Debug for Var {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Var")
            .field("id", &self.inner.id)
            .field("op", &self.inner.op)
            .field("shape", &self.inner.value.shape())
            .field("requires_grad", &self.inner.requires_grad)
            .finish()
    }
}

impl Drop for VarInner {
    fn drop(&mut self) {
        pmm_obs::counter::tape_node_dropped();
    }
}

impl Var {
    fn new(
        op: &'static str,
        value: Tensor,
        requires_grad: bool,
        parents: Vec<Var>,
        backward: Option<BackwardFn>,
    ) -> Self {
        pmm_obs::counter::tape_node_created();
        Var {
            inner: Rc::new(VarInner {
                id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
                op,
                value,
                grad: RefCell::new(None),
                requires_grad,
                parents,
                backward,
            }),
        }
    }

    /// A differentiable leaf (e.g. a model parameter for this step).
    pub fn leaf(value: Tensor) -> Self {
        Var::new("leaf", value, true, Vec::new(), None)
    }

    /// A non-differentiable input (data, masks, …). Ops whose inputs are
    /// all constants skip recording backward closures entirely.
    pub fn constant(value: Tensor) -> Self {
        Var::new("const", value, false, Vec::new(), None)
    }

    /// Records a new op node named `op`. `backward` receives the
    /// gradient w.r.t. this node's value and must accumulate into the
    /// parents it captured. When no parent requires gradients the
    /// closure and the parent list are dropped, pruning the graph.
    pub(crate) fn from_op(
        op: &'static str,
        value: Tensor,
        parents: Vec<Var>,
        backward: BackwardFn,
    ) -> Self {
        let requires = parents.iter().any(|p| p.inner.requires_grad);
        if requires {
            Var::new(op, value, true, parents, Some(backward))
        } else {
            Var::new(op, value, false, Vec::new(), None)
        }
    }

    /// Creation-ordered unique node id. Ids increase strictly with
    /// creation order, so a parent's id is always smaller than its
    /// child's — the property both `backward` and external graph
    /// auditors rely on.
    #[inline]
    pub fn id(&self) -> u64 {
        self.inner.id
    }

    /// The op that produced this node (`"leaf"` / `"const"` for inputs).
    #[inline]
    pub fn op(&self) -> &'static str {
        self.inner.op
    }

    /// The parent handles this node was recorded with (empty for leaves
    /// and for op nodes pruned because no parent required gradients).
    #[inline]
    pub fn parents(&self) -> &[Var] {
        &self.inner.parents
    }

    /// Whether a backward closure is recorded for this node.
    #[inline]
    pub fn has_backward(&self) -> bool {
        self.inner.backward.is_some()
    }

    /// Whether a gradient has already been accumulated into this node.
    #[inline]
    pub fn has_grad(&self) -> bool {
        self.inner.grad.borrow().is_some()
    }

    /// The node's value.
    #[inline]
    pub fn value(&self) -> &Tensor {
        &self.inner.value
    }

    /// The node's shape (convenience).
    #[inline]
    pub fn shape(&self) -> &[usize] {
        self.inner.value.shape()
    }

    /// Whether this node participates in gradient computation.
    #[inline]
    pub fn requires_grad(&self) -> bool {
        self.inner.requires_grad
    }

    /// Clones the accumulated gradient, if any.
    pub fn grad(&self) -> Option<Tensor> {
        self.inner.grad.borrow().clone()
    }

    /// Cuts the graph: returns a constant with the same value.
    pub fn detach(&self) -> Var {
        Var::constant(self.inner.value.clone())
    }

    /// Accumulates `g` into this node's gradient slot.
    pub(crate) fn accum_grad(&self, g: &Tensor) {
        if !self.inner.requires_grad {
            return;
        }
        let mut slot = self.inner.grad.borrow_mut();
        match slot.as_mut() {
            Some(existing) => existing.add_assign(g),
            None => *slot = Some(g.clone()),
        }
    }

    /// Runs reverse-mode differentiation from this node, which must be a
    /// single-element tensor (a loss). Gradients accumulate in every
    /// reachable node with `requires_grad`.
    #[track_caller]
    pub fn backward(&self) {
        assert_eq!(
            self.value().len(),
            1,
            "backward: root must be a scalar loss, got shape {:?}",
            self.shape()
        );
        self.backward_with(Tensor::ones(self.shape()));
    }

    /// Reverse-mode differentiation seeded with an explicit output
    /// gradient (for vector-Jacobian products in tests).
    #[track_caller]
    pub fn backward_with(&self, seed: Tensor) {
        assert_eq!(
            seed.shape(),
            self.shape(),
            "backward_with: seed shape {:?} != value shape {:?}",
            seed.shape(),
            self.shape()
        );
        if !self.inner.requires_grad {
            return;
        }
        let _sp = pmm_obs::span("backward");
        self.accum_grad(&seed);

        // Collect reachable grad-requiring nodes; ids increase with
        // creation order, so visiting in descending id order is a valid
        // reverse topological order.
        let mut nodes: Vec<Var> = Vec::new();
        let mut seen: HashSet<u64> = HashSet::new();
        let mut stack = vec![self.clone()];
        while let Some(v) = stack.pop() {
            if !v.inner.requires_grad || !seen.insert(v.inner.id) {
                continue;
            }
            for p in &v.inner.parents {
                stack.push(p.clone());
            }
            nodes.push(v);
        }
        nodes.sort_unstable_by_key(|v| std::cmp::Reverse(v.inner.id));

        for node in &nodes {
            let Some(backward) = node.inner.backward.as_ref() else {
                continue;
            };
            // Take the grad out so the closure can freely borrow other
            // nodes' slots (a node never parents itself).
            let g = node.inner.grad.borrow().clone();
            if let Some(g) = g {
                backward(&g);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scalar_leaf(v: f32) -> Var {
        Var::leaf(Tensor::scalar(v))
    }

    #[test]
    fn leaf_grad_is_seed() {
        let x = scalar_leaf(3.0);
        x.backward();
        assert_eq!(x.grad().unwrap().scalar_value(), 1.0);
    }

    #[test]
    fn constant_gets_no_grad() {
        let c = Var::constant(Tensor::scalar(3.0));
        let x = scalar_leaf(2.0);
        let y = x.mul(&c);
        y.backward();
        assert!(c.grad().is_none());
        assert_eq!(x.grad().unwrap().scalar_value(), 3.0);
    }

    #[test]
    fn diamond_graph_accumulates() {
        // y = x*x + x*x => dy/dx = 4x
        let x = scalar_leaf(3.0);
        let a = x.mul(&x);
        let b = x.mul(&x);
        let y = a.add(&b);
        y.backward();
        assert_eq!(x.grad().unwrap().scalar_value(), 12.0);
    }

    #[test]
    fn shared_subexpression_backward_runs_once() {
        // z = (x*2) used twice; gradient must be exact, not doubled
        // through repeated traversal.
        let x = scalar_leaf(1.0);
        let z = x.scale(2.0);
        let y = z.add(&z); // y = 4x
        y.backward();
        assert_eq!(x.grad().unwrap().scalar_value(), 4.0);
    }

    #[test]
    fn detach_blocks_gradient() {
        let x = scalar_leaf(5.0);
        let d = x.mul(&x).detach();
        let y = d.mul(&x); // only the explicit x factor is differentiable
        y.backward();
        assert_eq!(x.grad().unwrap().scalar_value(), 25.0);
    }

    #[test]
    #[should_panic(expected = "scalar loss")]
    fn backward_rejects_non_scalar_root() {
        let x = Var::leaf(Tensor::ones(&[2]));
        x.backward();
    }

    #[test]
    fn backward_with_seed_scales_grads() {
        let x = scalar_leaf(2.0);
        let y = x.scale(3.0);
        y.backward_with(Tensor::scalar(10.0));
        assert_eq!(x.grad().unwrap().scalar_value(), 30.0);
    }

    #[test]
    fn graph_of_constants_is_pruned() {
        let a = Var::constant(Tensor::ones(&[4]));
        let b = Var::constant(Tensor::ones(&[4]));
        let c = a.add(&b);
        assert!(!c.requires_grad());
        assert!(c.inner.parents.is_empty());
    }
}
