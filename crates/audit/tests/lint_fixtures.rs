//! End-to-end linter checks: every fixture under `fixtures/` passes
//! (seeded violations are caught, clean counterparts produce nothing),
//! and the workspace itself lints clean — the same gates
//! `scripts/verify.sh` runs through the `pmm-audit` binary.

use std::path::Path;

use pmm_audit::source::{find_workspace_root, lint_workspace, run_fixtures};

#[test]
fn every_fixture_passes() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    let results = run_fixtures(&dir).expect("fixtures directory readable");
    assert!(results.len() >= 10, "expected at least one fixture per rule, found {}", results.len());
    // At least one fixture must pin false-positive behaviour (zero
    // expectations) and the rest must seed real violations.
    assert!(results.iter().any(|r| r.expected.is_empty()));
    assert!(results.iter().any(|r| !r.expected.is_empty()));
    for r in &results {
        assert!(r.pass, "{}: expected {:?}, produced {:?}", r.file, r.expected, r.produced);
    }
}

#[test]
fn workspace_lints_clean() {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("audit crate lives inside the workspace");
    let violations = lint_workspace(&root).expect("workspace sources readable");
    assert!(
        violations.is_empty(),
        "workspace must lint clean:\n{}",
        violations.iter().map(ToString::to_string).collect::<Vec<_>>().join("\n")
    );
}
