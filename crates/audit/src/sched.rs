//! Loom-lite deterministic interleaving harness.
//!
//! The static pass in [`crate::conc`] proves ordering properties about
//! lock *acquisition*; it cannot see logic races (TOCTOU between a
//! generation check and a claim, an epoch read paired with a stale
//! factory). This module explores those dynamically: test threads are
//! run one-at-a-time under a seeded scheduler, and control only moves
//! between them at explicit [`yield_here`] points, so a run's entire
//! interleaving is captured by the sequence of scheduling choices —
//! the **trace**. Same seed, same yields ⇒ same trace ⇒ same outcome:
//! a violation printed with its seed is replayed by running that one
//! seed again.
//!
//! # Mechanics
//!
//! One grant token passes between threads through a `Mutex<State>` +
//! `Condvar`. A thread runs while it holds the grant and releases it
//! at its next yield point (or when its closure returns); the
//! scheduler then picks the next runnable thread with a splitmix64
//! stream seeded per run. [`yield_here`] is a no-op on threads the
//! harness did not spawn, so production code can call it
//! unconditionally once armed (see `pmm-serve`'s `race` module).
//!
//! # Ground rules for instrumented code
//!
//! Yield points MUST sit outside critical sections. A thread parked at
//! a yield while holding a real `std::sync::Mutex` would stall every
//! other thread that needs that mutex while they *do* hold the grant —
//! the one interleaving the harness cannot explore its way out of.
//! All serve-side hooks are therefore placed at method entry, before
//! any guard exists.

use std::cell::RefCell;
use std::collections::BTreeSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, PoisonError};

use pmm_obs::counter::{RACE_SCHEDULES, RACE_VIOLATIONS};

/// A thread body for one interleaving run.
pub type ThreadFn = Box<dyn FnOnce() + Send + 'static>;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Status {
    Ready,
    Done,
}

struct State {
    status: Vec<Status>,
    /// Index of the thread currently holding the grant.
    granted: Option<usize>,
    /// Scheduling decisions so far — the run's interleaving signature.
    trace: Vec<usize>,
    rng: u64,
}

struct Inner {
    state: Mutex<State>,
    cv: Condvar,
}

thread_local! {
    /// `(scheduler, my index)` on harness-spawned threads; `None`
    /// everywhere else, which is what makes `yield_here` free in
    /// production.
    static CTX: RefCell<Option<(Arc<Inner>, usize)>> = const { RefCell::new(None) };
}

fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn lock_state(inner: &Inner) -> std::sync::MutexGuard<'_, State> {
    // A panicking test thread may poison the scheduler state; recover
    // so the remaining threads still drain and `run` returns.
    inner.state.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Releases the grant and parks until the scheduler hands it back.
/// No-op when the calling thread is not harness-spawned. `_site` is a
/// human label for the yield point (kept for debuggability; traces are
/// indexed by scheduling decisions, not labels).
pub fn yield_here(_site: &str) {
    let ctx = CTX.with(|c| c.borrow().clone());
    let Some((inner, idx)) = ctx else {
        return;
    };
    let mut st = lock_state(&inner);
    debug_assert_eq!(st.granted, Some(idx), "yield without holding the grant");
    st.granted = None;
    inner.cv.notify_all();
    while st.granted != Some(idx) {
        st = inner.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
    }
}

/// One deterministic run: all interleaving decisions derive from
/// `seed` via splitmix64.
pub struct Scheduler {
    seed: u64,
}

impl Scheduler {
    pub fn new(seed: u64) -> Self {
        Scheduler { seed }
    }

    /// Runs `threads` to completion one-at-a-time and returns the
    /// trace (the chosen thread index at every scheduling decision).
    /// A panicking thread is marked done and the rest keep running;
    /// the caller's invariant check decides what the panic means.
    pub fn run(&self, threads: Vec<ThreadFn>) -> Vec<usize> {
        let n = threads.len();
        assert!(n > 0, "scheduler needs at least one thread");
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                status: vec![Status::Ready; n],
                granted: None,
                trace: Vec::new(),
                rng: self.seed ^ 0xA076_1D64_78BD_642F,
            }),
            cv: Condvar::new(),
        });

        let handles: Vec<_> = threads
            .into_iter()
            .enumerate()
            .map(|(idx, body)| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || {
                    CTX.with(|c| *c.borrow_mut() = Some((Arc::clone(&inner), idx)));
                    // Wait for the first grant before touching anything.
                    {
                        let mut st = lock_state(&inner);
                        while st.granted != Some(idx) {
                            st = inner.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
                        }
                    }
                    let _ = catch_unwind(AssertUnwindSafe(body));
                    let mut st = lock_state(&inner);
                    st.status[idx] = Status::Done;
                    st.granted = None;
                    inner.cv.notify_all();
                })
            })
            .collect();

        // Scheduling loop: whenever no thread holds the grant, pick a
        // ready one; finish when all are done.
        {
            let mut st = lock_state(&inner);
            loop {
                while st.granted.is_some() {
                    st = inner.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
                }
                let ready: Vec<usize> = (0..n).filter(|&i| st.status[i] == Status::Ready).collect();
                if ready.is_empty() {
                    break;
                }
                let pick = ready[(splitmix64(&mut st.rng) % ready.len() as u64) as usize];
                st.trace.push(pick);
                st.granted = Some(pick);
                inner.cv.notify_all();
            }
        }
        for h in handles {
            let _ = h.join();
        }
        let st = lock_state(&inner);
        st.trace.clone()
    }
}

/// One run's worth of material for [`explore`]: the competing thread
/// bodies plus a post-run invariant check (runs after all threads have
/// joined, outside the scheduler).
pub struct Case {
    pub threads: Vec<ThreadFn>,
    pub check: Box<dyn FnOnce() -> Result<(), String>>,
}

/// Result of an exploration sweep.
#[derive(Debug)]
pub struct Exploration {
    /// Schedules actually run.
    pub runs: usize,
    /// Distinct traces seen (the coverage number the acceptance bar
    /// counts).
    pub distinct: usize,
    /// `(seed, message)` for every invariant violation; rerun the
    /// seed through the same case builder to replay one.
    pub violations: Vec<(u64, String)>,
}

/// Sweeps seeds `base_seed..base_seed + max_runs`, running the case
/// each builder call returns under that seed's scheduler, until either
/// `target_distinct` distinct traces have been observed (and at least
/// one violation, if any exists in the swept range) or the seed budget
/// runs out. Violations are printed with their replay seed.
pub fn explore(
    label: &str,
    base_seed: u64,
    max_runs: usize,
    target_distinct: usize,
    mut mk: impl FnMut(u64) -> Case,
) -> Exploration {
    let mut seen: BTreeSet<Vec<usize>> = BTreeSet::new();
    let mut violations = Vec::new();
    let mut runs = 0usize;
    for step in 0..max_runs as u64 {
        let seed = base_seed.wrapping_add(step);
        let case = mk(seed);
        let trace = Scheduler::new(seed).run(case.threads);
        runs += 1;
        RACE_SCHEDULES.add(1);
        seen.insert(trace);
        if let Err(msg) = (case.check)() {
            RACE_VIOLATIONS.add(1);
            eprintln!("race[{label}]: invariant violated — {msg} (replay seed {seed})");
            violations.push((seed, msg));
        }
        if seen.len() >= target_distinct && !violations.is_empty() {
            break;
        }
    }
    Exploration { runs, distinct: seen.len(), violations }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Same seed ⇒ identical trace, different seed ⇒ (eventually)
    /// different trace.
    #[test]
    fn traces_are_deterministic_per_seed() {
        let mk_threads = || -> Vec<ThreadFn> {
            (0..3)
                .map(|_| {
                    Box::new(|| {
                        for _ in 0..4 {
                            yield_here("step");
                        }
                    }) as ThreadFn
                })
                .collect()
        };
        let a = Scheduler::new(42).run(mk_threads());
        let b = Scheduler::new(42).run(mk_threads());
        assert_eq!(a, b);
        let traces: BTreeSet<Vec<usize>> =
            (0..16).map(|s| Scheduler::new(s).run(mk_threads())).collect();
        assert!(traces.len() > 1, "16 seeds should not all collapse to one trace");
    }

    /// yield_here outside the harness must be a free no-op.
    #[test]
    fn yield_off_harness_is_noop() {
        yield_here("not scheduled");
    }

    /// A panicking thread is contained; the others finish.
    #[test]
    fn panic_in_one_thread_does_not_hang() {
        let hits = Arc::new(AtomicU64::new(0));
        let h = Arc::clone(&hits);
        let h2 = Arc::clone(&hits);
        let trace = Scheduler::new(7).run(vec![
            Box::new(move || {
                yield_here("a");
                h.fetch_add(1, Ordering::SeqCst);
            }),
            Box::new(move || {
                yield_here("b");
                h2.fetch_add(1, Ordering::SeqCst);
                panic!("boom");
            }),
        ]);
        assert!(!trace.is_empty());
        assert_eq!(hits.load(Ordering::SeqCst), 2);
    }

    /// The toy TOCTOU model: check a flag, yield, then act on it. The
    /// sweep must cover >= 200 distinct schedules and find the
    /// lost-update violation; the printed seed must replay it.
    #[test]
    fn toctou_model_violates_and_replays() {
        fn mk(_seed: u64) -> Case {
            let claimed = Arc::new(AtomicU64::new(0));
            let winners = Arc::new(AtomicU64::new(0));
            let threads: Vec<ThreadFn> = (0..3)
                .map(|_| {
                    let c = Arc::clone(&claimed);
                    let w = Arc::clone(&winners);
                    Box::new(move || {
                        yield_here("enter");
                        let free = c.load(Ordering::SeqCst) == 0; // check ...
                        yield_here("between check and act");
                        yield_here("still between");
                        if free {
                            c.store(1, Ordering::SeqCst); // ... then act: racy
                            w.fetch_add(1, Ordering::SeqCst);
                        }
                        yield_here("exit");
                    }) as ThreadFn
                })
                .collect();
            let w = Arc::clone(&winners);
            Case {
                threads,
                check: Box::new(move || {
                    let n = w.load(Ordering::SeqCst);
                    if n == 1 {
                        Ok(())
                    } else {
                        Err(format!("expected exactly one winner, got {n}"))
                    }
                }),
            }
        }
        let exp = explore("toctou-model", 1000, 3000, 200, mk);
        assert!(exp.distinct >= 200, "only {} distinct schedules", exp.distinct);
        assert!(!exp.violations.is_empty(), "sweep failed to find the seeded race");
        // Replay: the recorded seed alone reproduces the violation.
        let (seed, _) = exp.violations[0];
        let replay = explore("toctou-replay", seed, 1, 1, mk);
        assert_eq!(replay.violations.len(), 1, "replay seed did not reproduce");
        assert_eq!(replay.violations[0].0, seed);
    }

    /// The fixed protocol — compare-and-swap claim — never violates
    /// across the same sweep.
    #[test]
    fn cas_model_is_clean() {
        fn mk(_seed: u64) -> Case {
            let claimed = Arc::new(AtomicU64::new(0));
            let winners = Arc::new(AtomicU64::new(0));
            let threads: Vec<ThreadFn> = (0..3)
                .map(|_| {
                    let c = Arc::clone(&claimed);
                    let w = Arc::clone(&winners);
                    Box::new(move || {
                        yield_here("enter");
                        yield_here("contend");
                        if c.compare_exchange(0, 1, Ordering::AcqRel, Ordering::Acquire).is_ok() {
                            w.fetch_add(1, Ordering::SeqCst);
                        }
                        yield_here("exit");
                    }) as ThreadFn
                })
                .collect();
            let w = Arc::clone(&winners);
            Case {
                threads,
                check: Box::new(move || {
                    let n = w.load(Ordering::SeqCst);
                    if n == 1 {
                        Ok(())
                    } else {
                        Err(format!("expected exactly one winner, got {n}"))
                    }
                }),
            }
        }
        let exp = explore("cas-model", 500, 800, 200, mk);
        assert!(exp.distinct >= 200, "only {} distinct schedules", exp.distinct);
        assert!(exp.violations.is_empty(), "CAS protocol should never double-claim");
    }
}
