//! Pre-backward autograd-graph verifier.
//!
//! The autograd tape in `pmm_tensor::graph` is built incrementally by
//! op calls; nothing checks the assembled graph as a whole before
//! `backward()` walks it. This module captures the live tape into a
//! plain-value [`GraphSnapshot`] and audits structural invariants:
//!
//! * the graph is acyclic and every parent edge resolves;
//! * node ids respect creation order (`parent.id < child.id`) — the
//!   property reverse-id backward traversal depends on;
//! * per-op shape consistency (elementwise ops preserve shape, matmul
//!   dims agree, reshape preserves numel, losses are scalars, ...);
//! * no orphaned gradient nodes: a node with parents must carry a
//!   backward closure and vice versa, and only `requires_grad` nodes
//!   may have one;
//! * no stale gradients before backward runs;
//! * every loss head reaches at least one trainable leaf, and every
//!   trainable (non-frozen) parameter is reachable from the combined
//!   loss — a silent optimisation no-op otherwise.
//!
//! Capture works on the real `Var` graph; auditing works on the
//! snapshot value type, so tests can seed defects (cycles, shape
//! lies, unreachable parameters) that the safe `Var` API makes
//! unconstructible, and the auditor must still catch them.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU8, Ordering};

use pmm_tensor::Var;

/// One tape node, decoupled from the live `Rc` graph.
#[derive(Debug, Clone)]
pub struct NodeInfo {
    pub id: u64,
    /// Op name recorded at construction (`"matmul"`, `"leaf"`, ...).
    pub op: String,
    pub shape: Vec<usize>,
    pub requires_grad: bool,
    pub has_backward: bool,
    pub has_grad: bool,
    pub parents: Vec<u64>,
}

/// A parameter leaf the optimiser will update.
#[derive(Debug, Clone)]
pub struct ParamNode {
    pub name: String,
    pub id: u64,
    /// Whether the training configuration expects gradient flow to
    /// this parameter (false for frozen towers).
    pub must_reach: bool,
}

/// A captured autograd graph: nodes, named loss heads, parameters.
#[derive(Debug, Clone, Default)]
pub struct GraphSnapshot {
    /// Sorted by id ascending.
    pub nodes: Vec<NodeInfo>,
    /// `(objective name, node id)` — e.g. `("dap", 17)`, `("total", 42)`.
    pub heads: Vec<(String, u64)>,
    pub params: Vec<ParamNode>,
}

/// One structural defect found by the auditor.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphViolation {
    /// A parent edge points at a node not in the snapshot.
    BrokenEdge { node: u64, parent: u64 },
    /// A parent has an id >= its child — creation order violated;
    /// reverse-id backward traversal would visit them out of order.
    IdOrder { node: u64, parent: u64 },
    /// The graph contains a cycle through this node.
    Cycle { node: u64 },
    /// An op's output/input shapes are inconsistent.
    ShapeMismatch { node: u64, op: String, detail: String },
    /// Backward-closure bookkeeping is inconsistent for this node.
    Orphan { node: u64, detail: String },
    /// A node already carries a gradient before backward ran.
    StaleGrad { node: u64 },
    /// A loss head reaches no trainable leaf — backward would be a no-op.
    DeadHead { head: String },
    /// A trainable parameter is not reachable from the combined loss.
    UnreachableParam { name: String, id: u64 },
}

impl std::fmt::Display for GraphViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphViolation::BrokenEdge { node, parent } => {
                write!(f, "node {node} references parent {parent} which is not in the graph")
            }
            GraphViolation::IdOrder { node, parent } => {
                write!(f, "node {node} has parent {parent} with a newer id — creation order violated")
            }
            GraphViolation::Cycle { node } => write!(f, "cycle through node {node}"),
            GraphViolation::ShapeMismatch { node, op, detail } => {
                write!(f, "node {node} (op {op}): {detail}")
            }
            GraphViolation::Orphan { node, detail } => write!(f, "node {node}: {detail}"),
            GraphViolation::StaleGrad { node } => {
                write!(f, "node {node} carries a gradient before backward ran")
            }
            GraphViolation::DeadHead { head } => {
                write!(f, "loss head `{head}` reaches no trainable leaf — its gradient is lost")
            }
            GraphViolation::UnreachableParam { name, id } => {
                write!(f, "trainable param `{name}` (node {id}) is unreachable from the loss — it will never train")
            }
        }
    }
}

/// Summary of a clean audit.
#[derive(Debug, Clone)]
pub struct GraphReport {
    pub nodes: usize,
    pub edges: usize,
    pub heads: usize,
    pub params_reached: usize,
}

/// Captures the live tape reachable from `heads` (plus the given
/// parameter leaves) into a snapshot. `params` entries are
/// `(name, var, must_reach)`.
pub fn capture(heads: &[(&str, &Var)], params: &[(String, &Var, bool)]) -> GraphSnapshot {
    let mut nodes: HashMap<u64, NodeInfo> = HashMap::new();
    let mut stack: Vec<Var> = heads.iter().map(|(_, v)| (*v).clone()).collect();
    stack.extend(params.iter().map(|(_, v, _)| (*v).clone()));
    while let Some(v) = stack.pop() {
        if nodes.contains_key(&v.id()) {
            continue;
        }
        nodes.insert(
            v.id(),
            NodeInfo {
                id: v.id(),
                op: v.op().to_string(),
                shape: v.value().shape().to_vec(),
                requires_grad: v.requires_grad(),
                has_backward: v.has_backward(),
                has_grad: v.has_grad(),
                parents: v.parents().iter().map(|p| p.id()).collect(),
            },
        );
        stack.extend(v.parents().iter().cloned());
    }
    let mut nodes: Vec<NodeInfo> = nodes.into_values().collect();
    nodes.sort_by_key(|n| n.id);
    GraphSnapshot {
        nodes,
        heads: heads.iter().map(|(n, v)| (n.to_string(), v.id())).collect(),
        params: params
            .iter()
            .map(|(n, v, must)| ParamNode { name: n.clone(), id: v.id(), must_reach: *must })
            .collect(),
    }
}

/// Audits a snapshot; empty result means the graph is sound.
pub fn audit_snapshot(snap: &GraphSnapshot) -> Vec<GraphViolation> {
    let mut out = Vec::new();
    let index: HashMap<u64, usize> =
        snap.nodes.iter().enumerate().map(|(i, n)| (n.id, i)).collect();

    // Edge integrity + id ordering.
    for n in &snap.nodes {
        for &p in &n.parents {
            if !index.contains_key(&p) {
                out.push(GraphViolation::BrokenEdge { node: n.id, parent: p });
            } else if p >= n.id {
                out.push(GraphViolation::IdOrder { node: n.id, parent: p });
            }
        }
    }

    // Acyclicity via iterative three-colour DFS (0 white, 1 grey, 2 black).
    let mut colour = vec![0u8; snap.nodes.len()];
    for start in 0..snap.nodes.len() {
        if colour[start] != 0 {
            continue;
        }
        // Stack of (node index, next-parent cursor).
        let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
        colour[start] = 1;
        while let Some(&mut (i, ref mut cursor)) = stack.last_mut() {
            if *cursor < snap.nodes[i].parents.len() {
                let pid = snap.nodes[i].parents[*cursor];
                *cursor += 1;
                let Some(&j) = index.get(&pid) else { continue };
                match colour[j] {
                    0 => {
                        colour[j] = 1;
                        stack.push((j, 0));
                    }
                    1 => out.push(GraphViolation::Cycle { node: snap.nodes[j].id }),
                    _ => {}
                }
            } else {
                colour[i] = 2;
                stack.pop();
            }
        }
    }

    // Per-node shape + closure bookkeeping.
    for n in &snap.nodes {
        check_shapes(n, &index, &snap.nodes, &mut out);
        if n.has_backward && n.parents.is_empty() {
            out.push(GraphViolation::Orphan {
                node: n.id,
                detail: "has a backward closure but no parents to propagate into".into(),
            });
        }
        if n.has_backward && !n.requires_grad {
            out.push(GraphViolation::Orphan {
                node: n.id,
                detail: "has a backward closure but requires_grad is false".into(),
            });
        }
        if !n.parents.is_empty() && !n.has_backward && n.requires_grad {
            out.push(GraphViolation::Orphan {
                node: n.id,
                detail: "interior grad-requiring node lost its backward closure".into(),
            });
        }
        if n.has_grad {
            out.push(GraphViolation::StaleGrad { node: n.id });
        }
    }

    // Reachability: per-head trainable-leaf reach, and union coverage
    // of must-reach params.
    let param_ids: Vec<u64> = snap.params.iter().map(|p| p.id).collect();
    let mut union_reached: Vec<bool> = vec![false; snap.nodes.len()];
    for (name, head) in &snap.heads {
        let Some(&h) = index.get(head) else {
            out.push(GraphViolation::DeadHead { head: name.clone() });
            continue;
        };
        let mut seen = vec![false; snap.nodes.len()];
        let mut stack = vec![h];
        seen[h] = true;
        let mut reaches_trainable = false;
        while let Some(i) = stack.pop() {
            union_reached[i] = true;
            let n = &snap.nodes[i];
            if n.requires_grad && (n.parents.is_empty() || param_ids.contains(&n.id)) {
                reaches_trainable = true;
            }
            for &p in &n.parents {
                if let Some(&j) = index.get(&p) {
                    if !seen[j] {
                        seen[j] = true;
                        stack.push(j);
                    }
                }
            }
        }
        if !reaches_trainable {
            out.push(GraphViolation::DeadHead { head: name.clone() });
        }
    }
    for p in &snap.params {
        if !p.must_reach {
            continue;
        }
        let reached = index.get(&p.id).is_some_and(|&i| union_reached[i]);
        if !reached {
            out.push(GraphViolation::UnreachableParam { name: p.name.clone(), id: p.id });
        }
    }

    out
}

/// Audits the live graph in one shot. `Err` carries the violations.
pub fn audit_graph(
    heads: &[(&str, &Var)],
    params: &[(String, &Var, bool)],
) -> Result<GraphReport, Vec<GraphViolation>> {
    let snap = capture(heads, params);
    let violations = audit_snapshot(&snap);
    if violations.is_empty() {
        let param_ids: Vec<u64> = snap.params.iter().map(|p| p.id).collect();
        Ok(GraphReport {
            nodes: snap.nodes.len(),
            edges: snap.nodes.iter().map(|n| n.parents.len()).sum(),
            heads: snap.heads.len(),
            params_reached: param_ids.len(),
        })
    } else {
        Err(violations)
    }
}

fn shape_err(n: &NodeInfo, detail: String, out: &mut Vec<GraphViolation>) {
    out.push(GraphViolation::ShapeMismatch { node: n.id, op: n.op.clone(), detail });
}

/// Per-op output/input shape consistency. Ops not listed here are
/// checked for arity only where it is unambiguous; unknown ops pass.
fn check_shapes(
    n: &NodeInfo,
    index: &HashMap<u64, usize>,
    nodes: &[NodeInfo],
    out: &mut Vec<GraphViolation>,
) {
    let parent = |k: usize| -> Option<&NodeInfo> {
        n.parents.get(k).and_then(|id| index.get(id)).map(|&i| &nodes[i])
    };
    let numel = |s: &[usize]| s.iter().product::<usize>();
    match n.op.as_str() {
        // Same-shape elementwise, any arity.
        "add" | "sub" | "mul" | "scale" | "add_scalar" | "neg" | "relu" | "gelu" | "tanh"
        | "sigmoid" | "exp" | "ln" | "softmax" | "masked_softmax" | "l2_normalize" | "dropout" => {
            for k in 0..n.parents.len() {
                if let Some(p) = parent(k) {
                    if p.shape != n.shape {
                        shape_err(
                            n,
                            format!("elementwise input {:?} != output {:?}", p.shape, n.shape),
                            out,
                        );
                    }
                }
            }
        }
        "add_bias" | "layer_norm" => {
            // Input 0 matches the output; later inputs are per-feature
            // vectors over the last dim.
            if let Some(p) = parent(0) {
                if p.shape != n.shape {
                    shape_err(n, format!("input {:?} != output {:?}", p.shape, n.shape), out);
                }
            }
            let last = n.shape.last().copied().unwrap_or(0);
            for k in 1..n.parents.len() {
                if let Some(p) = parent(k) {
                    if numel(&p.shape) != last {
                        shape_err(
                            n,
                            format!("per-feature input {:?} does not cover last dim {last}", p.shape),
                            out,
                        );
                    }
                }
            }
        }
        "matmul" => {
            if let (Some(a), Some(b)) = (parent(0), parent(1)) {
                if a.shape.len() != 2 || b.shape.len() != 2 || n.shape.len() != 2 {
                    shape_err(n, "matmul operand is not rank-2".into(), out);
                } else {
                    // Transpose flags are not recorded on the tape, so
                    // accept any (ta, tb) combination that works.
                    let ok = [(0, 1), (1, 0)].iter().any(|&(i, j)| {
                        [(0usize, 1usize), (1, 0)].iter().any(|&(k, l)| {
                            a.shape[i] == n.shape[0]
                                && b.shape[l] == n.shape[1]
                                && a.shape[j] == b.shape[k]
                        })
                    });
                    if !ok {
                        shape_err(
                            n,
                            format!(
                                "no transpose assignment makes {:?} x {:?} -> {:?}",
                                a.shape, b.shape, n.shape
                            ),
                            out,
                        );
                    }
                }
            }
        }
        "bmm" => {
            if let (Some(a), Some(b)) = (parent(0), parent(1)) {
                if a.shape.len() != 3 || b.shape.len() != 3 || n.shape.len() != 3 {
                    shape_err(n, "bmm operand is not rank-3".into(), out);
                } else if a.shape[0] != b.shape[0] || a.shape[0] != n.shape[0] {
                    shape_err(
                        n,
                        format!(
                            "batch dims disagree: {:?} x {:?} -> {:?}",
                            a.shape, b.shape, n.shape
                        ),
                        out,
                    );
                } else {
                    let ok = [(1, 2), (2, 1)].iter().any(|&(i, j)| {
                        [(1usize, 2usize), (2, 1)].iter().any(|&(k, l)| {
                            a.shape[i] == n.shape[1]
                                && b.shape[l] == n.shape[2]
                                && a.shape[j] == b.shape[k]
                        })
                    });
                    if !ok {
                        shape_err(
                            n,
                            format!(
                                "no transpose assignment makes {:?} x {:?} -> {:?}",
                                a.shape, b.shape, n.shape
                            ),
                            out,
                        );
                    }
                }
            }
        }
        "transpose2" => {
            if let Some(p) = parent(0) {
                let mut rev = p.shape.clone();
                rev.reverse();
                if rev != n.shape {
                    shape_err(
                        n,
                        format!("transpose of {:?} cannot be {:?}", p.shape, n.shape),
                        out,
                    );
                }
            }
        }
        "reshape" | "split_heads" | "merge_heads" => {
            if let Some(p) = parent(0) {
                if numel(&p.shape) != numel(&n.shape) {
                    shape_err(
                        n,
                        format!("numel changes across reshape: {:?} -> {:?}", p.shape, n.shape),
                        out,
                    );
                }
            }
        }
        "concat0" => {
            let rows: usize = (0..n.parents.len())
                .filter_map(&parent)
                .map(|p| p.shape.first().copied().unwrap_or(0))
                .sum();
            if n.shape.first().copied().unwrap_or(0) != rows {
                shape_err(
                    n,
                    format!("concat0 output rows {:?} != sum of input rows {rows}", n.shape),
                    out,
                );
            }
        }
        "slice_rows" | "gather_rows" => {
            if let Some(p) = parent(0) {
                if p.shape.last() != n.shape.last() {
                    shape_err(
                        n,
                        format!("row selection changes width: {:?} -> {:?}", p.shape, n.shape),
                        out,
                    );
                }
            }
        }
        "mean_pool" => {
            if let Some(p) = parent(0) {
                let (pw, nw) = (p.shape.last().copied(), n.shape.last().copied());
                let (pr, nr) = (
                    p.shape.first().copied().unwrap_or(0),
                    n.shape.first().copied().unwrap_or(1),
                );
                if pw != nw || nr == 0 || pr % nr != 0 {
                    shape_err(
                        n,
                        format!("mean_pool {:?} -> {:?} is not a row grouping", p.shape, n.shape),
                        out,
                    );
                }
            }
        }
        "sum_all" | "cross_entropy" | "group_contrastive" | "mse" if numel(&n.shape) != 1 => {
            shape_err(n, format!("loss/reduction output {:?} is not scalar", n.shape), out);
        }
        "leaf" | "const" if !n.parents.is_empty() => {
            shape_err(n, "leaf/const node has parents".into(), out);
        }
        _ => {}
    }
}

// ---------------------------------------------------------------------------
// Runtime enablement for the training-step hook.
// ---------------------------------------------------------------------------

/// 0 = unset (consult env once), 1 = off, 2 = on.
static ENABLED: AtomicU8 = AtomicU8::new(0);

/// Whether the pre-backward audit hook should run in release builds.
/// Debug builds (and the test profile) always audit. Controlled by
/// [`set_enabled`] (e.g. the bench `--audit-graph` flag) or the
/// `PMM_AUDIT_GRAPH` environment variable (`1`/`true`).
pub fn enabled() -> bool {
    match ENABLED.load(Ordering::Relaxed) {
        0 => {
            let on = std::env::var("PMM_AUDIT_GRAPH")
                .map(|v| v == "1" || v.eq_ignore_ascii_case("true"))
                .unwrap_or(false);
            ENABLED.store(if on { 2 } else { 1 }, Ordering::Relaxed);
            on
        }
        2 => true,
        _ => false,
    }
}

/// Forces graph auditing on or off for this process.
pub fn set_enabled(on: bool) {
    ENABLED.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmm_tensor::{Tensor, Var};

    fn leafv(shape: &[usize]) -> Var {
        Var::leaf(Tensor::zeros(shape))
    }

    fn small_graph() -> (GraphSnapshot, Var) {
        // w [2,3] leaf, x [2,3] const, y = w*x, loss = sum(y)
        let w = leafv(&[2, 3]);
        let x = Var::constant(Tensor::zeros(&[2, 3]));
        let y = w.mul(&x);
        let loss = y.sum_all();
        let snap = capture(&[("total", &loss)], &[("w".to_string(), &w, true)]);
        (snap, loss)
    }

    #[test]
    fn clean_graph_audits_clean() {
        let (snap, _keep) = small_graph();
        assert_eq!(audit_snapshot(&snap), Vec::new());
    }

    #[test]
    fn seeded_cycle_is_caught() {
        let (mut snap, _keep) = small_graph();
        // Make the earliest node a child of the last: a back edge.
        let last = snap.nodes.last().unwrap().id;
        snap.nodes[0].parents.push(last);
        let v = audit_snapshot(&snap);
        assert!(v.iter().any(|x| matches!(x, GraphViolation::Cycle { .. })), "{v:?}");
        // The same tampering also breaks id ordering.
        assert!(v.iter().any(|x| matches!(x, GraphViolation::IdOrder { .. })));
    }

    #[test]
    fn seeded_shape_mismatch_is_caught() {
        let (mut snap, _keep) = small_graph();
        // Lie about the mul output's shape.
        let i = snap.nodes.iter().position(|n| n.op == "mul").unwrap();
        snap.nodes[i].shape = vec![4, 5];
        let v = audit_snapshot(&snap);
        assert!(
            v.iter().any(|x| matches!(x, GraphViolation::ShapeMismatch { .. })),
            "{v:?}"
        );
    }

    #[test]
    fn unreachable_param_is_caught() {
        let w = leafv(&[2, 2]);
        let orphan = leafv(&[3, 3]);
        let loss = w.sum_all();
        let snap = capture(
            &[("total", &loss)],
            &[("w".to_string(), &w, true), ("orphan".to_string(), &orphan, true)],
        );
        let v = audit_snapshot(&snap);
        assert!(
            v.iter().any(
                |x| matches!(x, GraphViolation::UnreachableParam { name, .. } if name == "orphan")
            ),
            "{v:?}"
        );
        // A frozen parameter is allowed to be unreachable.
        let snap2 = capture(
            &[("total", &loss)],
            &[("w".to_string(), &w, true), ("orphan".to_string(), &orphan, false)],
        );
        assert_eq!(audit_snapshot(&snap2), Vec::new());
    }

    #[test]
    fn dead_head_is_caught() {
        // A head built purely from constants trains nothing.
        let c = Var::constant(Tensor::zeros(&[2, 2]));
        let dead = c.sum_all();
        let snap = capture(&[("nicl", &dead)], &[]);
        let v = audit_snapshot(&snap);
        assert!(v.iter().any(|x| matches!(x, GraphViolation::DeadHead { .. })), "{v:?}");
    }

    #[test]
    fn stale_grad_is_caught() {
        let (mut snap, _keep) = small_graph();
        snap.nodes[0].has_grad = true;
        let v = audit_snapshot(&snap);
        assert!(v.iter().any(|x| matches!(x, GraphViolation::StaleGrad { .. })), "{v:?}");
    }

    #[test]
    fn broken_edge_is_caught() {
        let (mut snap, _keep) = small_graph();
        snap.nodes.last_mut().unwrap().parents.push(999_999_999);
        let v = audit_snapshot(&snap);
        assert!(v.iter().any(|x| matches!(x, GraphViolation::BrokenEdge { .. })), "{v:?}");
    }

    #[test]
    fn orphan_backward_bookkeeping_is_caught() {
        let (mut snap, _keep) = small_graph();
        let i = snap.nodes.iter().position(|n| n.op == "mul").unwrap();
        snap.nodes[i].has_backward = false;
        let v = audit_snapshot(&snap);
        assert!(v.iter().any(|x| matches!(x, GraphViolation::Orphan { .. })), "{v:?}");
    }

    #[test]
    fn audit_graph_end_to_end() {
        let w = leafv(&[2, 3]);
        let x = Var::constant(Tensor::zeros(&[2, 3]));
        let loss = w.mul(&x).sum_all();
        let report = audit_graph(&[("total", &loss)], &[("w".to_string(), &w, true)]).unwrap();
        assert_eq!(report.nodes, 4);
        assert_eq!(report.heads, 1);
    }
}
