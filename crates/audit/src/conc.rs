//! Static concurrency analysis: lock-order cycles, guards held across
//! blocking calls, and atomics-ordering discipline.
//!
//! Unlike the token-local rules in [`crate::rules`], these checks need
//! a *cross-file* view: the lock-acquisition-order graph is global to
//! `crates/serve` + `crates/ingest`, and an edge added by one function
//! can close a cycle opened by another three files away. The pass
//! therefore runs once over the whole analysed file set:
//!
//! 1. **Symbol table** — every static/field declared `Mutex<..>` /
//!    `RwLock<..>` becomes a named lock; every `Atomic*` static/field
//!    becomes a named atomic. Names are the declared identifiers
//!    (`inflight`, `state`, `epoch`, ...), which is exactly the
//!    granularity the codebase's own comments argue order at.
//! 2. **Functions + call graph** — the item-level parser from
//!    [`crate::rules::functions`] gives every fn body; within a body
//!    the scan records, in token order: lock acquisitions (direct
//!    `x.lock()` / `.read()` / `.write()`, or through a `lock_*`
//!    poison-recovering helper), guard lifetimes (a `let`-bound guard
//!    lives to the end of its enclosing block or an explicit
//!    `drop(guard)`; a temporary lives to the end of its statement),
//!    calls to other analysed fns, and blocking operations.
//! 3. **Lock-order graph** — acquiring B while a guard on A is live
//!    adds the edge A→B; calling a fn whose body acquires B while
//!    holding A adds the same edge (one level of calls, matching the
//!    depth the codebase actually nests). Any edge whose target can
//!    reach its source back through the graph closes a cycle and is
//!    reported at the acquisition site (`lock-order-cycle`); a
//!    self-edge — re-acquiring a lock already held — is reported the
//!    same way, since `std::sync::Mutex` is not reentrant.
//! 4. **Guard-across-blocking** — a live guard at a blocking call
//!    (`fsync`/`sync_all`/`sync_data`, channel `recv`/`recv_timeout`,
//!    zero-argument thread `join()`, or a WAL `append`) stalls every
//!    other acquirer for the call's whole duration.
//! 5. **Atomics ordering** — loads/stores/RMWs with `Relaxed` on
//!    atomics whose *name* marks them as publication gates (`epoch`,
//!    `generation`, `ready`, `published`, `armed`, ...) are flagged:
//!    a Relaxed flag does not order the data it publishes. Counters
//!    (anything else) may stay Relaxed.
//!
//! Every rule honours the established
//! `// pmm-audit: allow(<rule>) — <reason>` escape hatch on the
//! offending line or the line above. `bad-allow` diagnostics are NOT
//! re-emitted here — [`crate::rules::check_source`] already reports
//! them once per file.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::{lex, Token, TokenKind};
use crate::rules::{
    allow_suppresses, collect_allows, functions, is_keyword, strip_test_items, Allow, Violation,
};

/// Whether the concurrency rules apply to a workspace-relative path.
/// Scope mirrors the tentpole: the serving stack and the ingest path,
/// minus test code (same exemptions as the token-local rules).
pub fn conc_applicable(path: &str) -> bool {
    if path.split('/').any(|seg| seg == "tests") || path.ends_with("/tests.rs") {
        return false;
    }
    path.starts_with("crates/serve/src") || path.starts_with("crates/ingest/src")
}

/// Summary of one concurrency-analysis run.
#[derive(Debug)]
pub struct ConcReport {
    pub violations: Vec<Violation>,
    /// Distinct named locks in the symbol table.
    pub locks: usize,
    /// Distinct named atomics in the symbol table.
    pub atomics: usize,
    /// Functions analysed.
    pub fns: usize,
    /// Lock-order edges derived (deduplicated by `from→to`).
    pub edges: usize,
}

/// The types whose declarations name a lock.
const LOCK_TYPES: &[&str] = &["Mutex", "RwLock"];
/// The types whose declarations name an atomic.
const ATOMIC_TYPES: &[&str] = &[
    "AtomicBool", "AtomicU8", "AtomicU16", "AtomicU32", "AtomicU64", "AtomicUsize",
    "AtomicI8", "AtomicI16", "AtomicI32", "AtomicI64", "AtomicIsize",
];
/// Atomic RMW/access methods whose ordering argument we inspect.
const ATOMIC_METHODS: &[&str] = &[
    "load", "store", "swap", "fetch_add", "fetch_sub", "fetch_and", "fetch_or", "fetch_xor",
    "fetch_max", "fetch_min", "compare_exchange", "compare_exchange_weak", "fetch_update",
];

/// Whether an atomic's declared name marks it as a publication gate
/// (epoch/generation handoffs, readiness flags) rather than a counter.
fn publication_gate(name: &str) -> bool {
    let lower = name.to_ascii_lowercase();
    lower.contains("epoch")
        || lower.contains("generation")
        || matches!(lower.as_str(), "ready" | "published" | "armed" | "sealed" | "committed")
}

/// One event inside a function body, in token order. `at` is the
/// event's token index, used to expire guard extents.
enum Event {
    /// Acquire `lock`; the guard stays live until token `until`
    /// (exclusive). `var` is the guard binding, if `let`-bound.
    Acquire { at: usize, lock: String, line: u32, until: usize, var: Option<String> },
    /// A call to another analysed fn (one-level lock propagation).
    Call { at: usize, callee: String, line: u32 },
    /// A blocking operation (`op` names it for the report).
    Block { at: usize, op: &'static str, line: u32 },
    /// `drop(var)` — ends the named guard early.
    DropVar { at: usize, var: String },
}

impl Event {
    fn at(&self) -> usize {
        match self {
            Event::Acquire { at, .. }
            | Event::Call { at, .. }
            | Event::Block { at, .. }
            | Event::DropVar { at, .. } => *at,
        }
    }
}

struct FileInfo {
    path: String,
    code: Vec<Token>,
    allows: Vec<Allow>,
}

/// One derived lock-order edge: `from` was held when `to` was taken.
struct Edge {
    from: String,
    to: String,
    file: usize,
    line: u32,
    via: String,
}

/// Runs the concurrency pass over `(workspace-relative path, source)`
/// pairs. Files outside the serve/ingest scope are skipped, so the
/// caller may hand over the whole workspace.
pub fn check_concurrency(files: &[(String, String)]) -> ConcReport {
    let infos: Vec<FileInfo> = files
        .iter()
        .filter(|(path, _)| conc_applicable(path))
        .map(|(path, src)| {
            let tokens = lex(src);
            let (allows, _) = collect_allows(path, &tokens);
            let code = strip_test_items(
                tokens.into_iter().filter(|t| t.kind != TokenKind::Comment).collect(),
            );
            FileInfo { path: path.clone(), code, allows }
        })
        .collect();

    // Pass 1: symbol tables (locks + atomics) across all files.
    let mut locks: BTreeSet<String> = BTreeSet::new();
    let mut atomics: BTreeSet<String> = BTreeSet::new();
    for info in &infos {
        collect_decls(&info.code, &mut locks, &mut atomics);
    }

    // Pass 2: per-fn direct acquisitions (the call-graph summaries).
    // `lock_*`-named helpers are treated as guard constructors: a call
    // to one counts as a direct acquisition *in the caller*.
    let mut fn_events: Vec<(usize, crate::rules::Fn_, Vec<Event>)> = Vec::new();
    for (fidx, info) in infos.iter().enumerate() {
        for f in functions(&info.code) {
            let events = scan_body(&info.code, &f, &locks, &BTreeMap::new());
            fn_events.push((fidx, f, events));
        }
    }
    // Direct-acquisition summary per fn name (union over same-named
    // fns — deterministic, mildly over-approximate).
    let mut summaries: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for (_, f, events) in &fn_events {
        let entry = summaries.entry(f.name.clone()).or_default();
        for e in events {
            if let Event::Acquire { lock, .. } = e {
                entry.insert(lock.clone());
            }
        }
    }

    // Pass 3: re-scan with summaries available so `lock_*` helper
    // calls resolve to the locks they take, then derive edges and the
    // guard-across-blocking findings.
    let mut edges: Vec<Edge> = Vec::new();
    let mut raw: Vec<Violation> = Vec::new();
    for (fidx, info) in infos.iter().enumerate() {
        for f in functions(&info.code) {
            let events = scan_body(&info.code, &f, &locks, &summaries);
            walk_events(&events, &summaries, fidx, &f.name, info, &mut edges, &mut raw);
        }
    }

    // Pass 4: cycle detection over the full edge set. An edge closes a
    // cycle when its target reaches back to its source (a self-edge
    // trivially does: std mutexes are not reentrant).
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for e in &edges {
        adj.entry(&e.from).or_default().insert(&e.to);
    }
    for e in &edges {
        let info = &infos[e.file];
        if e.from == e.to {
            raw.push(Violation {
                path: info.path.clone(),
                line: e.line,
                rule: "lock-order-cycle",
                msg: format!(
                    "fn `{}` re-acquires `{}` while already holding it — std mutexes are not reentrant, this self-deadlocks",
                    e.via, e.from
                ),
            });
        } else if let Some(chain) = find_path(&adj, &e.to, &e.from) {
            raw.push(Violation {
                path: info.path.clone(),
                line: e.line,
                rule: "lock-order-cycle",
                msg: format!(
                    "fn `{}` takes `{}` while holding `{}`, but another path orders {} — the orders can deadlock",
                    e.via,
                    e.to,
                    e.from,
                    chain.join(" -> "),
                ),
            });
        }
    }

    // Pass 5: atomics-ordering over whole files (no hold tracking).
    for info in &infos {
        scan_atomics(&info.path, &info.code, &atomics, &mut raw);
    }

    // Line-attached suppression, per file, then a deterministic order.
    let mut violations: Vec<Violation> = Vec::new();
    for v in raw {
        let allows = infos
            .iter()
            .find(|i| i.path == v.path)
            .map(|i| i.allows.as_slice())
            .unwrap_or(&[]);
        if !allow_suppresses(allows, v.rule, v.line) {
            violations.push(v);
        }
    }
    violations.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    violations.dedup_by(|a, b| (&a.path, a.line, a.rule, &a.msg) == (&b.path, b.line, b.rule, &b.msg));

    let edge_set: BTreeSet<(String, String)> =
        edges.iter().map(|e| (e.from.clone(), e.to.clone())).collect();
    ConcReport {
        violations,
        locks: locks.len(),
        atomics: atomics.len(),
        fns: fn_events.len(),
        edges: edge_set.len(),
    }
}

/// Finds `name: [wrappers] LockType<..>` declarations (statics and
/// struct fields). Walking back from the type ident, the tokens of a
/// type position (`<`, `[`, `&`, idents, `::`) are skipped until the
/// single `:` introducing the declaration; an expression position
/// (`Mutex::new(..)`, `=`, `(`) bails out.
fn collect_decls(code: &[Token], locks: &mut BTreeSet<String>, atomics: &mut BTreeSet<String>) {
    for (i, t) in code.iter().enumerate() {
        if t.kind != TokenKind::Ident {
            continue;
        }
        let is_lock = LOCK_TYPES.contains(&t.text.as_str());
        let is_atomic = ATOMIC_TYPES.contains(&t.text.as_str());
        if !is_lock && !is_atomic {
            continue;
        }
        if let Some(name) = declared_name(code, i) {
            if is_lock {
                locks.insert(name);
            } else {
                atomics.insert(name);
            }
        }
    }
}

/// Walks backwards from the type ident at `i` to the identifier being
/// declared, or `None` when `i` is not a declaration's type position.
fn declared_name(code: &[Token], i: usize) -> Option<String> {
    let mut j = i;
    while j > 0 {
        j -= 1;
        match &code[j].kind {
            // Path separator `::` (lexed as two `:`): skip the pair
            // and the preceding path segment.
            TokenKind::Punct(':') if j > 0 && code[j - 1].is_punct(':') => {
                j -= 1;
            }
            // The single `:` that introduces the declared type: the
            // ident before it is the name.
            TokenKind::Punct(':') => {
                let cand = code.get(j.checked_sub(1)?)?;
                return (cand.kind == TokenKind::Ident && !is_keyword(cand))
                    .then(|| cand.text.clone());
            }
            // Type-position wrappers: `Vec<`, `[Mutex<..>; 3]`, `&`.
            TokenKind::Punct('<') | TokenKind::Punct('[') | TokenKind::Punct('&')
            | TokenKind::Punct('\'') => {}
            TokenKind::Ident if !is_keyword(&code[j]) => {}
            _ => return None,
        }
    }
    None
}

/// Whether calling `name` hands a guard back to the caller: the
/// codebase's poison-recovering helpers are all `lock_*`-named.
fn is_guard_helper(name: &str) -> bool {
    name.starts_with("lock_")
}

/// Scans one fn body into an ordered event list. `summaries` resolves
/// argument-less `lock_*` helper calls; pass an empty map for the
/// summary-building first pass.
fn scan_body(
    code: &[Token],
    f: &crate::rules::Fn_,
    locks: &BTreeSet<String>,
    summaries: &BTreeMap<String, BTreeSet<String>>,
) -> Vec<Event> {
    let (start, end) = f.body;
    // Brace depth per token, and the close index of the innermost open
    // block at each point, for `let`-bound guard lifetimes.
    let mut events = Vec::new();
    let mut i = start;
    while i < end {
        let t = &code[i];
        if t.kind != TokenKind::Ident {
            i += 1;
            continue;
        }
        let next_is = |off: usize, c: char| code.get(i + off).is_some_and(|n| n.is_punct(c));

        // drop(guard)
        if t.is_ident("drop") && next_is(1, '(') {
            if let Some(var) = code.get(i + 2).filter(|v| v.kind == TokenKind::Ident) {
                if next_is(3, ')') {
                    events.push(Event::DropVar { at: i, var: var.text.clone() });
                    i += 4;
                    continue;
                }
            }
        }

        // Direct acquisition: NAME.lock() / NAME.read() / NAME.write()
        if locks.contains(&t.text)
            && next_is(1, '.')
            && code
                .get(i + 2)
                .is_some_and(|m| m.is_ident("lock") || m.is_ident("read") || m.is_ident("write"))
            && next_is(3, '(')
        {
            let closer = matching_paren(code, i + 3, end);
            let (until, var) = guard_extent(code, i, closer, end);
            events.push(Event::Acquire { at: i, lock: t.text.clone(), line: t.line, until, var });
            i += 4;
            continue;
        }

        // Helper acquisition: lock_clean(&self.delta), self.lock_state(), ...
        if is_guard_helper(&t.text) && next_is(1, '(') {
            let close = matching_paren(code, i + 1, end);
            let arg_lock = code[i + 2..close.min(end)]
                .iter()
                .find(|a| a.kind == TokenKind::Ident && locks.contains(&a.text))
                .map(|a| a.text.clone());
            let resolved = arg_lock.or_else(|| {
                summaries.get(&t.text).and_then(|s| s.iter().next().cloned())
            });
            if let Some(lock) = resolved {
                let (until, var) = guard_extent(code, i, close, end);
                events.push(Event::Acquire { at: i, lock, line: t.line, until, var });
            }
            i = close;
            continue;
        }

        // Blocking operations while a guard could be live.
        let blocking: Option<&'static str> = if next_is(1, '(') {
            match t.text.as_str() {
                "sync_all" | "sync_data" | "fsync" => Some("fsync"),
                "recv" | "recv_timeout" => Some("channel recv"),
                // Zero-argument `.join()` is a thread join; `join(sep)`
                // (slices, paths) takes an argument and is cheap.
                "join" if next_is(2, ')') => Some("thread join"),
                "append" if i >= 2 && code[i - 1].is_punct('.')
                    && code[i - 2].text.contains("wal") => Some("WAL append"),
                _ => None,
            }
        } else {
            None
        };
        if let Some(op) = blocking {
            events.push(Event::Block { at: i, op, line: t.line });
            i += 1;
            continue;
        }

        // Calls to other fns (one-level lock propagation). Skip
        // keywords and the patterns already consumed above.
        if !is_keyword(t) && next_is(1, '(') {
            events.push(Event::Call { at: i, callee: t.text.clone(), line: t.line });
        }
        i += 1;
    }
    events
}

/// Determines how long the guard produced at token `i` stays live.
/// `closer` is the index just past the acquisition call's `)`.
///
/// - Method-chained (`lock_clean(&x).total()`, `if b.lock_x().admit()`)
///   — the guard is a temporary consumed by the chain; it dies at the
///   chain's end. (Slightly early for a chained `let` statement, where
///   Rust keeps it to the `;`; exact for `if`/`while` conditions,
///   which are their own temporary scope. A `match` scrutinee guard
///   living across the arms is a known blind spot.)
/// - `let`-bound (`let st = lock_state(..)`) — to the end of the
///   enclosing block, with the binding name for `drop()` tracking.
/// - Otherwise — to the end of the statement.
fn guard_extent(code: &[Token], i: usize, closer: usize, body_end: usize) -> (usize, Option<String>) {
    // `.unwrap()` / `.expect(..)` / `.unwrap_or_else(..)` on a
    // LockResult hand back the guard itself — skip them before
    // deciding whether the guard is consumed by a chain.
    let mut closer = closer;
    while code.get(closer).is_some_and(|t| t.is_punct('.'))
        && code.get(closer + 1).is_some_and(|m| {
            m.is_ident("unwrap") || m.is_ident("expect") || m.is_ident("unwrap_or_else")
        })
        && code.get(closer + 2).is_some_and(|t| t.is_punct('('))
    {
        closer = matching_paren(code, closer + 2, body_end);
    }
    if code.get(closer).is_some_and(|t| t.is_punct('.')) {
        return (chain_end(code, closer, body_end), None);
    }
    // Scan back to the statement start for a `let` binding.
    let mut j = i;
    let mut var = None;
    let mut is_let = false;
    while j > 0 {
        j -= 1;
        match &code[j].kind {
            TokenKind::Punct(';') | TokenKind::Punct('{') | TokenKind::Punct('}') => break,
            TokenKind::Ident if code[j].is_ident("let") => {
                is_let = true;
                let mut k = j + 1;
                if code.get(k).is_some_and(|t| t.is_ident("mut")) {
                    k += 1;
                }
                var = code.get(k).filter(|t| t.kind == TokenKind::Ident).map(|t| t.text.clone());
                break;
            }
            _ => {}
        }
    }
    // Forward: end of enclosing block (depth dips below zero) for a
    // binding, or the first top-level `;` for a temporary.
    let mut depth = 0i32;
    let mut k = i;
    while k < body_end {
        match &code[k].kind {
            TokenKind::Punct('{') => depth += 1,
            TokenKind::Punct('}') => {
                depth -= 1;
                if depth < 0 {
                    return (k, var);
                }
            }
            TokenKind::Punct(';') if depth == 0 && !is_let => return (k, var),
            _ => {}
        }
        k += 1;
    }
    (body_end, var)
}

/// Walks a method/field chain starting at the `.` at `k` and returns
/// the index just past it (`.get(x).cloned()` → past the last `)`).
fn chain_end(code: &[Token], mut k: usize, end: usize) -> usize {
    while k < end && code[k].is_punct('.') {
        k += 1;
        match code.get(k).map(|t| &t.kind) {
            Some(TokenKind::Ident) | Some(TokenKind::Number) => {
                k += 1;
                if k < end && code[k].is_punct('(') {
                    k = matching_paren(code, k, end);
                }
            }
            _ => break,
        }
    }
    k
}

/// The matching `)` for the `(` at `open` (clamped to `end`).
fn matching_paren(code: &[Token], open: usize, end: usize) -> usize {
    let mut depth = 0i32;
    let mut k = open;
    while k < end {
        if code[k].is_punct('(') {
            depth += 1;
        } else if code[k].is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return k + 1;
            }
        }
        k += 1;
    }
    end
}

/// Replays one fn's events, deriving lock-order edges and
/// guard-across-blocking findings from the live-guard set.
fn walk_events(
    events: &[Event],
    summaries: &BTreeMap<String, BTreeSet<String>>,
    fidx: usize,
    fn_name: &str,
    info: &FileInfo,
    edges: &mut Vec<Edge>,
    raw: &mut Vec<Violation>,
) {
    // (lock, until-token, binding) for every live guard. Before each
    // event, guards whose extent ended at or before the event's token
    // position are expired.
    let mut held: Vec<(String, usize, Option<String>)> = Vec::new();
    for e in events {
        let at = e.at();
        held.retain(|(_, until, _)| *until > at);
        match e {
            Event::Acquire { lock, line, until, var, .. } => {
                for (from, _, _) in &held {
                    edges.push(Edge {
                        from: from.clone(),
                        to: lock.clone(),
                        file: fidx,
                        line: *line,
                        via: fn_name.to_string(),
                    });
                }
                held.push((lock.clone(), *until, var.clone()));
            }
            Event::Call { callee, line, .. } => {
                if held.is_empty() {
                    continue;
                }
                if let Some(acquired) = summaries.get(callee) {
                    for to in acquired {
                        for (from, _, _) in &held {
                            edges.push(Edge {
                                from: from.clone(),
                                to: to.clone(),
                                file: fidx,
                                line: *line,
                                via: fn_name.to_string(),
                            });
                        }
                    }
                }
            }
            Event::Block { op, line, .. } => {
                if let Some((lock, _, _)) = held.first() {
                    raw.push(Violation {
                        path: info.path.clone(),
                        line: *line,
                        rule: "guard-across-blocking",
                        msg: format!(
                            "fn `{fn_name}` holds the `{lock}` guard across a blocking {op} — every other acquirer stalls for its duration"
                        ),
                    });
                }
            }
            Event::DropVar { var, .. } => {
                held.retain(|(_, _, v)| v.as_deref() != Some(var.as_str()));
            }
        }
    }
}

/// Flags `Relaxed` accesses on publication-gating atomics anywhere in
/// a file's code tokens.
fn scan_atomics(path: &str, code: &[Token], atomics: &BTreeSet<String>, raw: &mut Vec<Violation>) {
    for (i, t) in code.iter().enumerate() {
        if t.kind != TokenKind::Ident || !atomics.contains(&t.text) || !publication_gate(&t.text) {
            continue;
        }
        let Some(m) = code.get(i + 1).filter(|n| n.is_punct('.')).and(code.get(i + 2)) else {
            continue;
        };
        if m.kind != TokenKind::Ident
            || !ATOMIC_METHODS.contains(&m.text.as_str())
            || !code.get(i + 3).is_some_and(|n| n.is_punct('('))
        {
            continue;
        }
        let close = matching_paren(code, i + 3, code.len());
        if code[i + 4..close].iter().any(|a| a.is_ident("Relaxed")) {
            raw.push(Violation {
                path: path.into(),
                line: t.line,
                rule: "atomics-ordering",
                msg: format!(
                    "`{}` gates data publication but is accessed with Ordering::Relaxed via `{}` — handoffs need Acquire/Release",
                    t.text, m.text
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> ConcReport {
        check_concurrency(&[("crates/serve/src/probe.rs".into(), src.into())])
    }

    fn rules(r: &ConcReport) -> Vec<&'static str> {
        r.violations.iter().map(|v| v.rule).collect()
    }

    #[test]
    fn symbol_table_finds_statics_fields_and_params() {
        let r = run(
            "use std::sync::Mutex;\n\
             static GLOBAL: Mutex<u64> = Mutex::new(0);\n\
             struct S { inner: Mutex<Vec<u8>>, epoch: std::sync::atomic::AtomicU64 }\n\
             fn helper(m: &Mutex<u64>) -> u64 { 0 }\n",
        );
        assert_eq!(r.locks, 3); // GLOBAL, inner, m
        assert_eq!(r.atomics, 1); // epoch
        assert!(r.violations.is_empty());
    }

    #[test]
    fn opposite_orders_cycle_and_consistent_orders_do_not() {
        let bad = run(
            "use std::sync::Mutex;\n\
             static A: Mutex<u64> = Mutex::new(0);\n\
             static B: Mutex<u64> = Mutex::new(0);\n\
             fn ab() { let ga = A.lock().unwrap_or_else(std::sync::PoisonError::into_inner); let gb = B.lock().unwrap_or_else(std::sync::PoisonError::into_inner); }\n\
             fn ba() { let gb = B.lock().unwrap_or_else(std::sync::PoisonError::into_inner); let ga = A.lock().unwrap_or_else(std::sync::PoisonError::into_inner); }\n",
        );
        assert_eq!(rules(&bad), vec!["lock-order-cycle", "lock-order-cycle"]);
        let good = run(
            "use std::sync::Mutex;\n\
             static A: Mutex<u64> = Mutex::new(0);\n\
             static B: Mutex<u64> = Mutex::new(0);\n\
             fn ab() { let ga = A.lock().unwrap_or_else(std::sync::PoisonError::into_inner); let gb = B.lock().unwrap_or_else(std::sync::PoisonError::into_inner); }\n\
             fn ab2() { let ga = A.lock().unwrap_or_else(std::sync::PoisonError::into_inner); let gb = B.lock().unwrap_or_else(std::sync::PoisonError::into_inner); }\n",
        );
        assert!(good.violations.is_empty());
        assert_eq!(good.edges, 1);
    }

    #[test]
    fn cycle_through_one_level_of_calls() {
        let r = run(
            "use std::sync::Mutex;\n\
             static C: Mutex<u64> = Mutex::new(0);\n\
             static D: Mutex<u64> = Mutex::new(0);\n\
             fn take_d() { let gd = D.lock().unwrap_or_else(std::sync::PoisonError::into_inner); }\n\
             fn c_then_call() { let gc = C.lock().unwrap_or_else(std::sync::PoisonError::into_inner); take_d(); }\n\
             fn dc() { let gd = D.lock().unwrap_or_else(std::sync::PoisonError::into_inner); let gc = C.lock().unwrap_or_else(std::sync::PoisonError::into_inner); }\n",
        );
        assert_eq!(rules(&r), vec!["lock-order-cycle", "lock-order-cycle"]);
    }

    #[test]
    fn chained_temporaries_and_drop_end_the_hold() {
        let r = run(
            "use std::sync::Mutex;\n\
             static P: Mutex<Vec<u64>> = Mutex::new(Vec::new());\n\
             fn chained(f: &std::fs::File) { let n = P.lock().unwrap_or_else(std::sync::PoisonError::into_inner).len(); let _ = f.sync_all(); }\n\
             fn dropped(f: &std::fs::File) { let g = P.lock().unwrap_or_else(std::sync::PoisonError::into_inner); drop(g); let _ = f.sync_all(); }\n",
        );
        assert!(r.violations.is_empty(), "{:?}", r.violations);
    }

    #[test]
    fn guard_across_blocking_variants() {
        let r = run(
            "use std::sync::Mutex;\n\
             static P: Mutex<u64> = Mutex::new(0);\n\
             fn a(f: &std::fs::File) { let g = P.lock().unwrap_or_else(std::sync::PoisonError::into_inner); let _ = f.sync_all(); }\n\
             fn b(rx: &std::sync::mpsc::Receiver<u64>) { let g = P.lock().unwrap_or_else(std::sync::PoisonError::into_inner); let _ = rx.recv(); }\n\
             fn c(h: std::thread::JoinHandle<()>) { let g = P.lock().unwrap_or_else(std::sync::PoisonError::into_inner); let _ = h.join(); }\n\
             fn d(parts: Vec<String>) -> String { let g = P.lock().unwrap_or_else(std::sync::PoisonError::into_inner); parts.join(\"-\") }\n",
        );
        // Three real blocks; `parts.join(\"-\")` takes an argument and
        // is not a thread join.
        assert_eq!(
            rules(&r),
            vec!["guard-across-blocking", "guard-across-blocking", "guard-across-blocking"]
        );
    }

    #[test]
    fn atomics_ordering_gates_vs_counters() {
        let r = run(
            "use std::sync::atomic::{AtomicU64, Ordering};\n\
             static SWAP_EPOCH: AtomicU64 = AtomicU64::new(0);\n\
             static HITS: AtomicU64 = AtomicU64::new(0);\n\
             fn bad() -> u64 { SWAP_EPOCH.load(Ordering::Relaxed) }\n\
             fn good() -> u64 { SWAP_EPOCH.load(Ordering::Acquire) }\n\
             fn counter() { HITS.fetch_add(1, Ordering::Relaxed); }\n",
        );
        assert_eq!(rules(&r), vec!["atomics-ordering"]);
    }

    #[test]
    fn allow_suppresses_each_rule() {
        let r = run(
            "use std::sync::Mutex;\n\
             use std::sync::atomic::{AtomicU64, Ordering};\n\
             static P: Mutex<u64> = Mutex::new(0);\n\
             static EPOCH: AtomicU64 = AtomicU64::new(0);\n\
             fn a(f: &std::fs::File) {\n\
                 let g = P.lock().unwrap_or_else(std::sync::PoisonError::into_inner);\n\
                 // pmm-audit: allow(guard-across-blocking) — test: sync of an empty file, returns immediately\n\
                 let _ = f.sync_all();\n\
             }\n\
             fn b() -> u64 {\n\
                 // pmm-audit: allow(atomics-ordering) — test: advisory read\n\
                 EPOCH.load(Ordering::Relaxed)\n\
             }\n",
        );
        assert!(r.violations.is_empty(), "{:?}", r.violations);
    }

    #[test]
    fn scope_excludes_other_crates_and_tests() {
        let src = "use std::sync::Mutex;\n\
                   static P: Mutex<u64> = Mutex::new(0);\n\
                   fn a(f: &std::fs::File) { let g = P.lock().unwrap_or_else(std::sync::PoisonError::into_inner); let _ = f.sync_all(); }\n";
        let out = check_concurrency(&[("crates/tensor/src/probe.rs".into(), src.into())]);
        assert!(out.violations.is_empty());
        let out = check_concurrency(&[("crates/serve/tests/probe.rs".into(), src.into())]);
        assert!(out.violations.is_empty());
    }

    #[test]
    fn cross_file_edges_close_cycles() {
        let ab = "use std::sync::Mutex;\n\
                  static A: Mutex<u64> = Mutex::new(0);\n\
                  static B: Mutex<u64> = Mutex::new(0);\n\
                  fn ab() { let ga = A.lock().unwrap_or_else(std::sync::PoisonError::into_inner); let gb = B.lock().unwrap_or_else(std::sync::PoisonError::into_inner); }\n";
        let ba = "use std::sync::Mutex;\n\
                  static A: Mutex<u64> = Mutex::new(0);\n\
                  static B: Mutex<u64> = Mutex::new(0);\n\
                  fn ba() { let gb = B.lock().unwrap_or_else(std::sync::PoisonError::into_inner); let ga = A.lock().unwrap_or_else(std::sync::PoisonError::into_inner); }\n";
        let out = check_concurrency(&[
            ("crates/serve/src/one.rs".into(), ab.into()),
            ("crates/ingest/src/two.rs".into(), ba.into()),
        ]);
        assert_eq!(out.violations.len(), 2);
        let paths: Vec<&str> = out.violations.iter().map(|v| v.path.as_str()).collect();
        assert_eq!(paths, vec!["crates/ingest/src/two.rs", "crates/serve/src/one.rs"]);
    }
}

/// Shortest path from `from` to `to` in the edge adjacency (BFS,
/// deterministic via BTree ordering); `None` when unreachable.
fn find_path<'a>(
    adj: &BTreeMap<&'a str, BTreeSet<&'a str>>,
    from: &'a str,
    to: &str,
) -> Option<Vec<String>> {
    let mut prev: BTreeMap<&str, &str> = BTreeMap::new();
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(from);
    while let Some(n) = queue.pop_front() {
        if n == to {
            let mut chain = vec![n.to_string()];
            let mut cur = n;
            while let Some(&p) = prev.get(cur) {
                chain.push(p.to_string());
                cur = p;
            }
            chain.reverse();
            return Some(chain);
        }
        for &next in adj.get(n).into_iter().flatten() {
            if next != from && !prev.contains_key(next) {
                prev.insert(next, n);
                queue.push_back(next);
            }
        }
    }
    None
}
