//! Workspace traversal and the fixture harness.
//!
//! The walker finds the workspace root (the nearest ancestor Cargo.toml
//! declaring `[workspace]`), visits every `.rs` file under it minus
//! build output, vendored stand-ins and the linter's own deliberately
//! broken fixtures, and feeds each through the rule engine with its
//! workspace-relative path.
//!
//! Fixtures are single `.rs` files under `crates/audit/fixtures/` with
//! header directives:
//!
//! ```text
//! //~ lint-as: crates/serve/src/whatever.rs
//! //~ expect: hot-unwrap
//! //~ expect: hot-unwrap
//! ```
//!
//! `lint-as` sets the virtual path (rule applicability is path-keyed);
//! each `expect` names one violation the engine must produce. The
//! multiset of produced rules must equal the multiset of expectations —
//! extra findings fail the fixture just like missing ones, so the
//! harness pins false-positive behaviour too.

use std::path::{Path, PathBuf};

use crate::conc::check_concurrency;
use crate::rules::{check_source, Violation};

/// Ascends from `start` to the directory whose Cargo.toml declares
/// `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["target", "third_party", ".git", "fixtures"];

/// Collects every `.rs` file under `root`, workspace-relative with `/`
/// separators, sorted for deterministic reports.
pub fn workspace_sources(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<PathBuf> =
            std::fs::read_dir(&dir)?.filter_map(|e| e.ok().map(|e| e.path())).collect();
        entries.sort();
        for path in entries {
            if path.is_dir() {
                let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
                if !SKIP_DIRS.contains(&name) {
                    stack.push(path);
                }
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Lints every workspace source file — the token-local rules per file
/// plus the cross-file concurrency pass — and returns all violations.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Violation>> {
    let mut all = Vec::new();
    let mut files: Vec<(String, String)> = Vec::new();
    for path in workspace_sources(root)? {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let src = std::fs::read_to_string(&path)?;
        all.extend(check_source(&rel, &src));
        files.push((rel, src));
    }
    all.extend(check_concurrency(&files).violations);
    all.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    Ok(all)
}

/// Lints a single file standalone: honours a `//~ lint-as:` header for
/// the virtual path (falling back to the file's own name), runs the
/// token-local rules and the concurrency pass over just this file.
/// Used by `pmm-audit --check` so verify.sh can assert that a seeded
/// fixture still fails.
pub fn lint_file(path: &Path) -> std::io::Result<Vec<Violation>> {
    let src = std::fs::read_to_string(path)?;
    let virt = src
        .lines()
        .find_map(|l| l.trim().strip_prefix("//~").and_then(|d| d.trim().strip_prefix("lint-as:")))
        .map(|v| v.trim().to_string())
        .unwrap_or_else(|| path.to_string_lossy().replace('\\', "/"));
    let mut all = check_source(&virt, &src);
    all.extend(check_concurrency(&[(virt, src)]).violations);
    all.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    Ok(all)
}

/// Outcome of running one fixture.
#[derive(Debug)]
pub struct FixtureResult {
    pub file: String,
    pub expected: Vec<String>,
    pub produced: Vec<String>,
    pub pass: bool,
}

/// Runs every fixture under `dir` against the rule engine.
pub fn run_fixtures(dir: &Path) -> std::io::Result<Vec<FixtureResult>> {
    let mut results = Vec::new();
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|e| e == "rs"))
        .collect();
    files.sort();
    for path in files {
        let src = std::fs::read_to_string(&path)?;
        let mut lint_as = String::new();
        let mut expected: Vec<String> = Vec::new();
        for line in src.lines() {
            let Some(directive) = line.trim().strip_prefix("//~") else {
                continue;
            };
            let directive = directive.trim();
            if let Some(v) = directive.strip_prefix("lint-as:") {
                lint_as = v.trim().to_string();
            } else if let Some(v) = directive.strip_prefix("expect:") {
                expected.push(v.trim().to_string());
            }
        }
        let file = path.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_default();
        if lint_as.is_empty() {
            results.push(FixtureResult {
                file,
                expected,
                produced: vec!["<missing //~ lint-as: directive>".into()],
                pass: false,
            });
            continue;
        }
        let mut produced: Vec<String> =
            check_source(&lint_as, &src).into_iter().map(|v| v.rule.to_string()).collect();
        produced.extend(
            check_concurrency(&[(lint_as.clone(), src.clone())])
                .violations
                .into_iter()
                .map(|v| v.rule.to_string()),
        );
        produced.sort();
        expected.sort();
        let pass = produced == expected;
        results.push(FixtureResult { file, expected, produced, pass });
    }
    Ok(results)
}
