//! A hand-rolled Rust lexer, just deep enough for linting.
//!
//! The linter's rules are token-level patterns ("`.unwrap(` outside a
//! test module", "`SystemTime` anywhere"), so a full parse is
//! unnecessary — but a naive substring grep is wrong the moment a
//! pattern appears inside a string literal, a comment or a `#[doc]`
//! attribute. This lexer classifies exactly enough of the language to
//! make those distinctions sound:
//!
//! * line (`//`) and block (`/* .. */`, nested) comments, kept as
//!   tokens so the rule engine can read `pmm-audit: allow(..)`
//!   annotations out of them;
//! * string literals: plain (`"..."` with escapes), raw (`r"..."`,
//!   `r#"..."#`, any `#` depth), byte and byte-raw forms;
//! * char literals, disambiguated from lifetimes (`'a` is a lifetime,
//!   `'a'` is a char);
//! * identifiers/keywords, numbers, and single-char punctuation.
//!
//! Every token carries its 1-based source line for reporting.

/// What a token is. The rule engine mostly matches on identifiers and
/// punctuation; literals and comments are opaque payloads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`unwrap`, `fn`, `HashMap`, ...).
    Ident,
    /// One punctuation character (`.`, `(`, `[`, `!`, ...).
    Punct(char),
    /// String/char/byte literal (content not preserved).
    Literal,
    /// Numeric literal.
    Number,
    /// `//` or `/* */` comment; `text` holds the comment body.
    Comment,
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokenKind,
    /// Source text for `Ident` and `Comment` tokens (empty otherwise —
    /// the rules never need literal payloads).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Token {
    /// Whether this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    /// Whether this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct(c)
    }
}

/// Lexes `src` into a token stream. Unterminated constructs (running
/// off the end inside a string or block comment) terminate at EOF
/// rather than erroring: the linter runs on code that already compiles,
/// so graceful recovery beats diagnostics here.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer { chars: src.chars().collect(), pos: 0, line: 1, out: Vec::new() }.run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Vec<Token>,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    /// Consumes one char, tracking newlines.
    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn push(&mut self, kind: TokenKind, text: String, line: u32) {
        self.out.push(Token { kind, text, line });
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(line),
                '/' if self.peek(1) == Some('*') => self.block_comment(line),
                '"' => self.string(line),
                'r' | 'b' if self.raw_or_byte_string(line) => {}
                '\'' => self.char_or_lifetime(line),
                c if c.is_alphabetic() || c == '_' => self.ident(line),
                c if c.is_ascii_digit() => self.number(line),
                c => {
                    self.bump();
                    self.push(TokenKind::Punct(c), String::new(), line);
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.push(TokenKind::Comment, text, line);
    }

    fn block_comment(&mut self, line: u32) {
        let mut text = String::new();
        let mut depth = 0usize;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push_str("/*");
                self.bump();
                self.bump();
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                text.push_str("*/");
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.push(TokenKind::Comment, text, line);
    }

    /// Plain string literal with `\` escapes.
    fn string(&mut self, line: u32) {
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump(); // the escaped char, whatever it is
                }
                '"' => break,
                _ => {}
            }
        }
        self.push(TokenKind::Literal, String::new(), line);
    }

    /// Handles `r"..."` / `r#"..."#` / `b"..."` / `br#"..."#` when the
    /// current position starts one; returns false to fall through to
    /// ordinary identifier lexing (`r` / `b` starting a name).
    fn raw_or_byte_string(&mut self, line: u32) -> bool {
        let mut ahead = 1; // past the leading r/b
        if self.peek(0) == Some('b') && self.peek(1) == Some('r') {
            ahead = 2;
        }
        // Count '#'s, then require an opening quote.
        let mut hashes = 0usize;
        while self.peek(ahead + hashes) == Some('#') {
            hashes += 1;
        }
        if self.peek(ahead + hashes) != Some('"') {
            // Raw identifier (`r#match`) or a plain ident starting
            // with r/b — fall through to ordinary ident lexing.
            return false;
        }
        let raw = self.peek(ahead - 1) == Some('r');
        for _ in 0..ahead + hashes + 1 {
            self.bump(); // prefix, hashes, opening quote
        }
        if raw {
            // Raw string: ends at `"` followed by `hashes` '#'s; no escapes.
            'outer: while let Some(c) = self.bump() {
                if c == '"' {
                    for h in 0..hashes {
                        if self.peek(h) != Some('#') {
                            continue 'outer;
                        }
                    }
                    for _ in 0..hashes {
                        self.bump();
                    }
                    break;
                }
            }
        } else {
            while let Some(c) = self.bump() {
                match c {
                    '\\' => {
                        self.bump();
                    }
                    '"' => break,
                    _ => {}
                }
            }
        }
        self.push(TokenKind::Literal, String::new(), line);
        true
    }

    /// `'a` (lifetime — lexed as punct+ident) vs `'x'` / `'\n'` (char).
    fn char_or_lifetime(&mut self, line: u32) {
        // A lifetime is `'` + ident-start NOT followed by a closing `'`.
        if let Some(c1) = self.peek(1) {
            if (c1.is_alphabetic() || c1 == '_') && self.peek(2) != Some('\'') {
                self.bump(); // '
                self.push(TokenKind::Punct('\''), String::new(), line);
                self.ident(self.line);
                return;
            }
        }
        self.bump(); // opening '
        match self.bump() {
            Some('\\') => {
                self.bump(); // escaped char
                // Consume to the closing quote (covers \u{..} forms).
                while let Some(c) = self.bump() {
                    if c == '\'' {
                        break;
                    }
                }
            }
            Some(_) => {
                self.bump(); // closing '
            }
            None => {}
        }
        self.push(TokenKind::Literal, String::new(), line);
    }

    fn ident(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokenKind::Ident, text, line);
    }

    fn number(&mut self, line: u32) {
        // Numbers never matter to the rules; consume the simple form
        // (digits, '.', '_', exponent letters, type suffixes).
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' || c == '.' {
                // `1..n` range: stop before the second dot.
                if c == '.' && self.peek(1) == Some('.') {
                    break;
                }
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokenKind::Number, String::new(), line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_their_contents() {
        let src = r#"
            let x = "call .unwrap() here"; // unwrap() in a comment
            /* unwrap() in a block comment */
            let y = s.unwrap();
        "#;
        let toks = lex(src);
        // Exactly one unwrap identifier survives: the real call.
        let n = toks.iter().filter(|t| t.is_ident("unwrap")).count();
        assert_eq!(n, 1);
    }

    #[test]
    fn raw_strings_with_hashes_are_opaque() {
        let src = r##"let s = r#"panic!("inside")"#; let t = s;"##;
        // The `r` prefix is consumed with the literal — no stray ident.
        assert_eq!(idents(src), vec!["let", "s", "let", "t", "s"]);
        let toks = lex(src);
        assert!(!toks.iter().any(|t| t.is_ident("panic")));
    }

    #[test]
    fn lifetimes_do_not_eat_code_as_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x.trim() }";
        let toks = lex(src);
        assert!(toks.iter().any(|t| t.is_ident("trim")));
        assert_eq!(toks.iter().filter(|t| t.is_ident("a")).count(), 3);
    }

    #[test]
    fn char_literals_including_escapes() {
        let src = r"let c = 'x'; let n = '\n'; let q = '\''; let u = '\u{1F600}'; done()";
        let toks = lex(src);
        assert!(toks.iter().any(|t| t.is_ident("done")));
        assert_eq!(toks.iter().filter(|t| t.kind == TokenKind::Literal).count(), 4);
    }

    #[test]
    fn comment_text_is_preserved_for_annotations() {
        let src = "x(); // pmm-audit: allow(hot-unwrap) — startup only";
        let toks = lex(src);
        let c = toks.iter().find(|t| t.kind == TokenKind::Comment).unwrap();
        assert!(c.text.contains("allow(hot-unwrap)"));
        assert_eq!(c.line, 1);
    }

    #[test]
    fn line_numbers_track_newlines_everywhere() {
        let src = "a\n\"two\nlines\"\nb /* c\nc */ d";
        let toks = lex(src);
        let find = |name: &str| toks.iter().find(|t| t.is_ident(name)).unwrap().line;
        assert_eq!(find("a"), 1);
        assert_eq!(find("b"), 4);
        assert_eq!(find("d"), 5);
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner */ still comment */ real()";
        let toks = lex(src);
        assert!(toks.iter().any(|t| t.is_ident("real")));
        assert!(!toks.iter().any(|t| t.is_ident("inner")));
    }

    #[test]
    fn byte_strings_are_literals() {
        let src = r#"let a = b"unwrap()"; let b2 = br#y; f()"#;
        let toks = lex(src);
        assert!(!toks.iter().any(|t| t.is_ident("unwrap")));
        assert!(toks.iter().any(|t| t.is_ident("f")));
    }

    // --- regression suite: raw strings and nested comments must not
    // leak their contents into the token stream (a leaked `unwrap()`
    // inside a raw string would false-positive hot-unwrap).

    #[test]
    fn raw_string_contents_never_tokenize() {
        for src in [
            "let s = r\"plain raw .unwrap() inside\"; g()",
            "let s = r#\".unwrap() with one hash\"#; g()",
            "let s = r##\"a \"# fake closer then .unwrap()\"##; g()",
            "let s = br#\"byte-raw .unwrap()\"#; g()",
        ] {
            let toks = lex(src);
            assert!(!toks.iter().any(|t| t.is_ident("unwrap")), "leaked from {src:?}");
            assert!(toks.iter().any(|t| t.is_ident("g")), "lost code after {src:?}");
            assert_eq!(
                toks.iter().filter(|t| t.kind == TokenKind::Literal).count(),
                1,
                "want one literal in {src:?}"
            );
        }
    }

    #[test]
    fn raw_string_multi_hash_does_not_end_early() {
        // `"#` inside an `r##"..."##` is content, not a terminator; a
        // lexer that stops there would tokenize `oops()` as code.
        let src = "let s = r##\"text \"# oops() more\"##; fine()";
        let toks = lex(src);
        assert!(!toks.iter().any(|t| t.is_ident("oops")));
        assert!(toks.iter().any(|t| t.is_ident("fine")));
    }

    #[test]
    fn empty_raw_strings() {
        let src = "let a = r\"\"; let b = r#\"\"#; done()";
        let toks = lex(src);
        assert!(toks.iter().any(|t| t.is_ident("done")));
        assert_eq!(toks.iter().filter(|t| t.kind == TokenKind::Literal).count(), 2);
    }

    #[test]
    fn raw_strings_hide_comment_markers() {
        // `/*` inside a raw string must not open a comment (and vice
        // versa: `r#"` inside a comment must not open a string).
        let src = "let s = r#\"/* not a comment */\"#; after()";
        let toks = lex(src);
        assert!(toks.iter().any(|t| t.is_ident("after")));
        assert!(!toks.iter().any(|t| t.kind == TokenKind::Comment));
        let src2 = "/* r#\" not a string */ real()";
        let toks2 = lex(src2);
        assert!(toks2.iter().any(|t| t.is_ident("real")));
    }

    #[test]
    fn raw_identifiers_fall_through_to_idents() {
        // `r#match` is a raw identifier, not a raw string: the `r`
        // must lex as an ident and the code after it must survive.
        let src = "fn r#match() { body() }";
        let toks = lex(src);
        assert!(toks.iter().any(|t| t.is_ident("body")));
        assert!(toks.iter().any(|t| t.is_ident("match")));
        // Idents merely starting with r/b stay whole.
        let src2 = "let rt = brr; rt.unwrap()";
        assert_eq!(idents(src2), vec!["let", "rt", "brr", "rt", "unwrap"]);
    }

    #[test]
    fn byte_char_literals_do_not_derail() {
        let src = "let nl = b'\\n'; let tick = b'\\''; done()";
        let toks = lex(src);
        assert!(toks.iter().any(|t| t.is_ident("done")));
    }

    #[test]
    fn deeply_nested_block_comments() {
        let src = "/* a /* b /* c .unwrap() */ b */ a */ real()";
        let toks = lex(src);
        assert!(!toks.iter().any(|t| t.is_ident("unwrap")));
        assert!(toks.iter().any(|t| t.is_ident("real")));
        // Adjacent closers don't over-close: `/**/` is one comment.
        let src2 = "/**/ /*/ still open */ after()";
        let toks2 = lex(src2);
        assert!(toks2.iter().any(|t| t.is_ident("after")));
        assert!(!toks2.iter().any(|t| t.is_ident("still")));
    }

    #[test]
    fn line_numbers_survive_raw_strings_and_nesting() {
        let src = "a\nr#\"two\nlines\"#\nb /* x\n/* y */\n*/ c";
        let toks = lex(src);
        let find = |name: &str| toks.iter().find(|t| t.is_ident(name)).unwrap().line;
        assert_eq!(find("a"), 1);
        assert_eq!(find("b"), 4);
        assert_eq!(find("c"), 6);
    }

    #[test]
    fn raw_string_with_unwrap_does_not_false_positive_end_to_end() {
        // The full pipeline: a serve-path file whose only `unwrap()`
        // lives inside a raw string must lint clean.
        let src = "fn fmt_help() -> String {\n    let t = r#\"call .unwrap() or x[0] to crash\"#;\n    t.into()\n}\n";
        let v = crate::rules::check_source("crates/serve/src/fixture_probe.rs", src);
        assert!(v.is_empty(), "false positives: {v:?}");
    }
}
