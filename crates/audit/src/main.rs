//! The `pmm-audit` binary: lints the workspace sources (default),
//! runs the rule-engine fixtures (`--fixtures`), lints one file
//! (`--check <path>`, honouring its `//~ lint-as:` header), prints a
//! concurrency-graph summary (`--race`), or lists the rules
//! (`--list-rules`). `--json` switches findings to one JSON object
//! per line on stdout so CI can diff them. Exits nonzero on any
//! violation or fixture mismatch so `scripts/verify.sh` can gate on
//! it.

use std::path::PathBuf;
use std::process::ExitCode;

use pmm_audit::conc::{check_concurrency, conc_applicable};
use pmm_audit::source::{
    find_workspace_root, lint_file, lint_workspace, run_fixtures, workspace_sources,
};
use pmm_audit::{Violation, RULES};

/// Minimal JSON string escaping (the findings only carry paths, rule
/// ids and prose — no exotic control characters in practice, but the
/// escaper stays total anyway).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Emits findings: JSONL (`--json`) or the human one-per-line form.
/// The human summary always goes to stderr in JSON mode so stdout
/// stays machine-parseable.
fn emit(violations: &[Violation], json: bool) {
    if json {
        for v in violations {
            println!(
                "{{\"rule\":{},\"file\":{},\"line\":{},\"reason\":{}}}",
                json_str(v.rule),
                json_str(&v.path),
                v.line,
                json_str(&v.msg)
            );
        }
    } else {
        for v in violations {
            println!("{v}");
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut mode_fixtures = false;
    let mut mode_race = false;
    let mut json = false;
    let mut check_path: Option<PathBuf> = None;
    let mut root_override: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--fixtures" => mode_fixtures = true,
            "--race" => mode_race = true,
            "--json" => json = true,
            "--list-rules" => {
                for (id, desc) in RULES {
                    println!("{id:16} {desc}");
                }
                return ExitCode::SUCCESS;
            }
            "--check" => {
                i += 1;
                match args.get(i) {
                    Some(p) => check_path = Some(PathBuf::from(p)),
                    None => {
                        eprintln!("pmm-audit: --check needs a file path");
                        return ExitCode::from(2);
                    }
                }
            }
            "--root" => {
                i += 1;
                match args.get(i) {
                    Some(p) => root_override = Some(PathBuf::from(p)),
                    None => {
                        eprintln!("pmm-audit: --root needs a path");
                        return ExitCode::from(2);
                    }
                }
            }
            other => {
                eprintln!(
                    "pmm-audit: unknown flag `{other}` (expected --fixtures, --race, --json, --check <file>, --list-rules, --root <path>)"
                );
                return ExitCode::from(2);
            }
        }
        i += 1;
    }

    // --check lints one file and needs no workspace root.
    if let Some(path) = check_path {
        return match lint_file(&path) {
            Ok(violations) => {
                emit(&violations, json);
                if violations.is_empty() {
                    eprintln!("pmm-audit: {} clean", path.display());
                    ExitCode::SUCCESS
                } else {
                    eprintln!("pmm-audit: {} violation(s) in {}", violations.len(), path.display());
                    ExitCode::FAILURE
                }
            }
            Err(e) => {
                eprintln!("pmm-audit: cannot check {}: {e}", path.display());
                ExitCode::from(2)
            }
        };
    }

    let root = match root_override.or_else(|| {
        std::env::current_dir().ok().and_then(|d| find_workspace_root(&d))
    }) {
        Some(r) => r,
        None => {
            eprintln!("pmm-audit: no workspace root found (no ancestor Cargo.toml with [workspace])");
            return ExitCode::from(2);
        }
    };

    if mode_fixtures {
        let dir = root.join("crates/audit/fixtures");
        match run_fixtures(&dir) {
            Ok(results) => {
                let mut failed = 0usize;
                for r in &results {
                    if r.pass {
                        println!("fixture {:40} ok ({} expected)", r.file, r.expected.len());
                    } else {
                        failed += 1;
                        println!(
                            "fixture {:40} MISMATCH\n  expected: {:?}\n  produced: {:?}",
                            r.file, r.expected, r.produced
                        );
                    }
                }
                println!("pmm-audit fixtures: {}/{} ok", results.len() - failed, results.len());
                if failed == 0 && !results.is_empty() {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::FAILURE
                }
            }
            Err(e) => {
                eprintln!("pmm-audit: cannot run fixtures under {}: {e}", dir.display());
                ExitCode::from(2)
            }
        }
    } else if mode_race {
        // Concurrency pass only, with the graph summary verify.sh and
        // humans read to see what the analyzer actually modelled.
        let mut files = Vec::new();
        let sources = match workspace_sources(&root) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("pmm-audit: cannot walk {}: {e}", root.display());
                return ExitCode::from(2);
            }
        };
        for path in sources {
            let rel = path
                .strip_prefix(&root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            if !conc_applicable(&rel) {
                continue;
            }
            match std::fs::read_to_string(&path) {
                Ok(src) => files.push((rel, src)),
                Err(e) => {
                    eprintln!("pmm-audit: cannot read {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            }
        }
        let report = check_concurrency(&files);
        emit(&report.violations, json);
        eprintln!(
            "pmm-audit --race: {} file(s), {} lock(s), {} atomic(s), {} fn(s), {} lock-order edge(s), {} violation(s)",
            files.len(),
            report.locks,
            report.atomics,
            report.fns,
            report.edges,
            report.violations.len()
        );
        if report.violations.is_empty() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        }
    } else {
        match lint_workspace(&root) {
            Ok(violations) => {
                emit(&violations, json);
                if violations.is_empty() {
                    if !json {
                        println!("pmm-audit: workspace clean ({} rules)", RULES.len());
                    }
                    ExitCode::SUCCESS
                } else {
                    if !json {
                        println!("pmm-audit: {} violation(s)", violations.len());
                    }
                    ExitCode::FAILURE
                }
            }
            Err(e) => {
                eprintln!("pmm-audit: lint failed: {e}");
                ExitCode::from(2)
            }
        }
    }
}
