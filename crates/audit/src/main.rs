//! The `pmm-audit` binary: lints the workspace sources (default),
//! runs the rule-engine fixtures (`--fixtures`), or lists the rules
//! (`--list-rules`). Exits nonzero on any violation or fixture
//! mismatch so `scripts/verify.sh` can gate on it.

use std::path::PathBuf;
use std::process::ExitCode;

use pmm_audit::source::{find_workspace_root, lint_workspace, run_fixtures};
use pmm_audit::RULES;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut mode_fixtures = false;
    let mut root_override: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--fixtures" => mode_fixtures = true,
            "--list-rules" => {
                for (id, desc) in RULES {
                    println!("{id:16} {desc}");
                }
                return ExitCode::SUCCESS;
            }
            "--root" => {
                i += 1;
                match args.get(i) {
                    Some(p) => root_override = Some(PathBuf::from(p)),
                    None => {
                        eprintln!("pmm-audit: --root needs a path");
                        return ExitCode::from(2);
                    }
                }
            }
            other => {
                eprintln!(
                    "pmm-audit: unknown flag `{other}` (expected --fixtures, --list-rules, --root <path>)"
                );
                return ExitCode::from(2);
            }
        }
        i += 1;
    }

    let root = match root_override.or_else(|| {
        std::env::current_dir().ok().and_then(|d| find_workspace_root(&d))
    }) {
        Some(r) => r,
        None => {
            eprintln!("pmm-audit: no workspace root found (no ancestor Cargo.toml with [workspace])");
            return ExitCode::from(2);
        }
    };

    if mode_fixtures {
        let dir = root.join("crates/audit/fixtures");
        match run_fixtures(&dir) {
            Ok(results) => {
                let mut failed = 0usize;
                for r in &results {
                    if r.pass {
                        println!("fixture {:40} ok ({} expected)", r.file, r.expected.len());
                    } else {
                        failed += 1;
                        println!(
                            "fixture {:40} MISMATCH\n  expected: {:?}\n  produced: {:?}",
                            r.file, r.expected, r.produced
                        );
                    }
                }
                println!("pmm-audit fixtures: {}/{} ok", results.len() - failed, results.len());
                if failed == 0 && !results.is_empty() {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::FAILURE
                }
            }
            Err(e) => {
                eprintln!("pmm-audit: cannot run fixtures under {}: {e}", dir.display());
                ExitCode::from(2)
            }
        }
    } else {
        match lint_workspace(&root) {
            Ok(violations) => {
                for v in &violations {
                    println!("{v}");
                }
                if violations.is_empty() {
                    println!("pmm-audit: workspace clean ({} rules)", RULES.len());
                    ExitCode::SUCCESS
                } else {
                    println!("pmm-audit: {} violation(s)", violations.len());
                    ExitCode::FAILURE
                }
            }
            Err(e) => {
                eprintln!("pmm-audit: lint failed: {e}");
                ExitCode::from(2)
            }
        }
    }
}
