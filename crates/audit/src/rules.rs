//! The lint-rule engine: project invariants checked as token patterns.
//!
//! Every rule reports against a workspace-relative path; which rules
//! apply to a file is decided from that path (hot serving paths, the
//! tensor kernel file, bit-identity-pinned crates, the op modules).
//! Each violation can be silenced in place with
//!
//! ```text
//! // pmm-audit: allow(<rule>) — <non-empty reason>
//! ```
//!
//! on the offending line or the line directly above it (for the
//! per-function telemetry rules, anywhere inside the function body).
//! An annotation without a reason, or naming an unknown rule, is
//! itself a violation (`bad-allow`) — the escape hatch must document
//! *why*, not just switch the rule off.
//!
//! Code under `#[cfg(test)]` items and files under `tests/`
//! directories are exempt from all rules: test code may unwrap freely.

use crate::lexer::{lex, Token, TokenKind};

/// `(id, description)` for every rule, the single source of truth the
/// README table, `--list-rules` and annotation validation share.
pub const RULES: &[(&str, &str)] = &[
    (
        "hot-unwrap",
        "no .unwrap()/.expect() in hot paths (crates/serve, the tensor kernel file, recommend.rs)",
    ),
    (
        "hot-panic",
        "no panic!/unreachable!/todo!/unimplemented! in hot paths",
    ),
    (
        "hot-index",
        "no slice indexing/slicing `x[..]` in serving paths (crates/serve, recommend.rs)",
    ),
    (
        "nondet",
        "no nondeterminism sources (SystemTime, RandomState, HashMap iteration) in bit-identity-pinned crates",
    ),
    (
        "op-span",
        "every tensor op recording a Var::from_op node must open a pmm_obs::span",
    ),
    (
        "op-flops",
        "every tensor op recording a Var::from_op node must record FLOPs (record_op_flops or a matmul recorder)",
    ),
    (
        "kernel-telemetry",
        "kernel loops in the quantized module (qtensor.rs) must run under a pmm_obs::span and report a storage/int-op recorder; pack fns in the tensor kernel file must record their scratch via record_pack_alloc",
    ),
    (
        "serve-result",
        "pub fns in crates/serve that construct ServeError/RecommendError must return Result",
    ),
    (
        "par-scope",
        "scoped thread dispatch (thread::scope) is confined to crates/par",
    ),
    (
        "par-spawn-index",
        "inside crates/par, spawned worker closures must not index buffers (blocks come pre-partitioned)",
    ),
    (
        "stage-histogram",
        "serving stages must time themselves through pmm_trace::Tracer (raw pmm_obs::span calls in crates/serve bypass the stage histograms)",
    ),
    (
        "serve-spawn",
        "threads in crates/serve are spawned only by the supervisor (supervisor.rs) — a bare spawn() bypasses panic isolation, heartbeats, and restart budgets",
    ),
    (
        "wal-durability",
        "fns in crates/ingest that write WAL bytes (write_all) must fsync (sync_all/sync_data) before acknowledging and checksum their payload (crc32)",
    ),
    (
        "lock-order-cycle",
        "lock acquisition order across crates/serve + crates/ingest must form a DAG — taking B while holding A on one path and A while holding B on another can deadlock (checked through one level of calls)",
    ),
    (
        "guard-across-blocking",
        "a Mutex/RwLock guard must not stay live across a blocking call (fsync/sync_all/sync_data, channel recv, thread join, WAL append) — every other acquirer stalls for the blocking call's duration",
    ),
    (
        "atomics-ordering",
        "publication-gating atomics (epoch/generation/ready flags) must use Acquire/Release orderings — Relaxed does not order the data they gate; pure counters may stay Relaxed",
    ),
    (
        "bad-allow",
        "pmm-audit allow annotations must name a known rule and give a reason",
    ),
];

/// Looks up the canonical `&'static str` id for a rule name.
pub fn rule_id(name: &str) -> Option<&'static str> {
    RULES.iter().map(|(id, _)| *id).find(|id| *id == name)
}

/// One lint finding.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    pub rule: &'static str,
    pub msg: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.path, self.line, self.rule, self.msg)
    }
}

/// Which rule families apply to a workspace-relative path.
struct Applicability {
    hot_panics: bool,
    hot_index: bool,
    nondet: bool,
    op_telemetry: bool,
    qtensor_telemetry: bool,
    pack_telemetry: bool,
    serve_result: bool,
    par_scope: bool,
    par_spawn_index: bool,
    stage_histogram: bool,
    serve_spawn: bool,
    wal_durability: bool,
}

fn applicability(path: &str) -> Option<Applicability> {
    // Generated/vendored/test code is out of scope entirely.
    if path.starts_with("target/")
        || path.starts_with("third_party/")
        || path.split('/').any(|seg| seg == "tests")
        || path.ends_with("/tests.rs")
    {
        return None;
    }
    let serve = path.starts_with("crates/serve/src");
    let kernel = path == "crates/tensor/src/tensor.rs";
    let recommend = path == "crates/core/src/recommend.rs";
    let pinned = ["crates/tensor/src", "crates/par/src", "crates/nn/src", "crates/core/src", "crates/data/src"]
        .iter()
        .any(|p| path.starts_with(p));
    let in_par = path.starts_with("crates/par/src");
    Some(Applicability {
        hot_panics: serve || kernel || recommend,
        hot_index: serve || recommend,
        nondet: pinned,
        op_telemetry: path.starts_with("crates/tensor/src/ops/"),
        // The quantized kernel module and the pack passes are the two
        // places kernel work could silently bypass the obs counters.
        qtensor_telemetry: path == "crates/tensor/src/qtensor.rs",
        pack_telemetry: kernel,
        serve_result: serve,
        par_scope: !in_par,
        par_spawn_index: in_par,
        stage_histogram: serve,
        // supervisor.rs is the sanctioned spawn site: its threads get a
        // slot, a heartbeat, and a restart budget. Everyone else in the
        // serve crate must route thread creation through it.
        serve_spawn: serve && !path.ends_with("/supervisor.rs"),
        // The WAL's whole contract is "acknowledged means durable and
        // verifiable" — an unfsynced or unchecksummed write silently
        // voids the replay guarantees.
        wal_durability: path.starts_with("crates/ingest/src"),
    })
}

/// A parsed `pmm-audit: allow(..)` annotation.
pub(crate) struct Allow {
    pub(crate) line: u32,
    pub(crate) rule: &'static str,
}

/// Whether `allows` suppresses a `rule` violation on `line` (the
/// annotation sits on the offending line or the line directly above).
pub(crate) fn allow_suppresses(allows: &[Allow], rule: &str, line: u32) -> bool {
    allows.iter().any(|a| a.rule == rule && (a.line == line || a.line + 1 == line))
}

/// Collects every well-formed allow annotation from the comment
/// tokens, plus a `bad-allow` violation for each malformed one.
pub(crate) fn collect_allows(path: &str, tokens: &[Token]) -> (Vec<Allow>, Vec<Violation>) {
    let mut allows: Vec<Allow> = Vec::new();
    let mut out: Vec<Violation> = Vec::new();
    for t in tokens.iter().filter(|t| t.kind == TokenKind::Comment) {
        // Doc comments are prose — only plain comments carry
        // annotations, so docs may quote the syntax freely.
        if t.text.starts_with("///") || t.text.starts_with("//!")
            || t.text.starts_with("/**") || t.text.starts_with("/*!")
        {
            continue;
        }
        let Some(at) = t.text.find("pmm-audit:") else {
            continue;
        };
        let rest = &t.text[at + "pmm-audit:".len()..];
        let Some(op) = rest.trim_start().strip_prefix("allow(") else {
            out.push(Violation {
                path: path.into(),
                line: t.line,
                rule: "bad-allow",
                msg: "pmm-audit annotation is not of the form allow(<rule>)".into(),
            });
            continue;
        };
        let Some(close) = op.find(')') else {
            out.push(Violation {
                path: path.into(),
                line: t.line,
                rule: "bad-allow",
                msg: "unterminated allow(<rule>) annotation".into(),
            });
            continue;
        };
        let name = op[..close].trim();
        let reason = op[close + 1..].trim_start_matches([' ', '—', '-', '–']).trim();
        match rule_id(name) {
            Some(rule) if !reason.is_empty() => allows.push(Allow { line: t.line, rule }),
            Some(_) => out.push(Violation {
                path: path.into(),
                line: t.line,
                rule: "bad-allow",
                msg: format!("allow({name}) has no reason — say why the rule is safe to break here"),
            }),
            None => out.push(Violation {
                path: path.into(),
                line: t.line,
                rule: "bad-allow",
                msg: format!("allow({name}) names an unknown rule"),
            }),
        }
    }
    (allows, out)
}

/// Lints one source file. `path` must be workspace-relative with `/`
/// separators — rule applicability is decided from it. The
/// concurrency rules (lock order, guard-across-blocking, atomics
/// ordering) live in [`crate::conc`] because they need a cross-file
/// view; this pass covers everything token-local.
pub fn check_source(path: &str, src: &str) -> Vec<Violation> {
    let Some(apply) = applicability(path) else {
        return Vec::new();
    };
    let tokens = lex(src);

    // Pass 1: collect allow annotations (and bad ones) from comments.
    let (allows, mut out) = collect_allows(path, &tokens);

    // Pass 2: code tokens with `#[cfg(test)]` items removed.
    let code = strip_test_items(
        tokens
            .into_iter()
            .filter(|t| t.kind != TokenKind::Comment)
            .collect(),
    );

    let mut raw: Vec<Violation> = Vec::new();
    if apply.hot_panics {
        scan_hot_panics(path, &code, &mut raw);
    }
    if apply.hot_index {
        scan_indexing(path, &code, 0, code.len(), "hot-index", &mut raw);
    }
    if apply.nondet {
        scan_nondet(path, &code, &mut raw);
    }
    if apply.par_scope {
        scan_par_scope(path, &code, &mut raw);
    }
    if apply.par_spawn_index {
        scan_par_spawn_index(path, &code, &mut raw);
    }
    if apply.stage_histogram {
        scan_stage_histogram(path, &code, &mut raw);
    }
    if apply.serve_spawn {
        scan_serve_spawn(path, &code, &mut raw);
    }
    // Function-granular rules get body-scoped allow handling.
    let body_allow = |allows: &[Allow], rule: &str, from: u32, to: u32| {
        allows.iter().any(|a| a.rule == rule && a.line + 1 >= from && a.line <= to)
    };
    if apply.op_telemetry
        || apply.serve_result
        || apply.qtensor_telemetry
        || apply.pack_telemetry
        || apply.wal_durability
    {
        for f in functions(&code) {
            // WAL durability: a fn that writes log bytes must fsync
            // before its caller can treat the append as acknowledged,
            // and must checksum the payload it framed — otherwise
            // replay cannot tell a torn tail from good data.
            if apply.wal_durability
                && f.calls(&code, "write_all")
                && !body_allow(&allows, "wal-durability", f.line, f.end_line)
            {
                if !f.calls(&code, "sync_all") && !f.calls(&code, "sync_data") {
                    raw.push(Violation {
                        path: path.into(),
                        line: f.line,
                        rule: "wal-durability",
                        msg: format!(
                            "fn `{}` writes WAL bytes without fsync (sync_all/sync_data) — an acknowledged append must survive a crash",
                            f.name
                        ),
                    });
                }
                if !f.calls(&code, "crc32") {
                    raw.push(Violation {
                        path: path.into(),
                        line: f.line,
                        rule: "wal-durability",
                        msg: format!(
                            "fn `{}` writes WAL bytes without a crc32 checksum — replay cannot verify the record",
                            f.name
                        ),
                    });
                }
            }
            // Quantized-kernel telemetry: any pub fn that loops is a
            // kernel and must be visible to the observability stack —
            // a span for attribution plus a recorder (quantized
            // storage, integer multiply-adds, or plain op FLOPs).
            if apply.qtensor_telemetry
                && f.is_pub
                && (f.contains_ident(&code, "for")
                    || f.contains_ident(&code, "while")
                    || f.contains_ident(&code, "loop"))
                && !body_allow(&allows, "kernel-telemetry", f.line, f.end_line)
            {
                if !f.calls(&code, "span") {
                    raw.push(Violation {
                        path: path.into(),
                        line: f.line,
                        rule: "kernel-telemetry",
                        msg: format!("quantized kernel fn `{}` loops but opens no pmm_obs::span", f.name),
                    });
                }
                let recorder = ["record_qmatmul", "record_qtensor_alloc", "record_op_flops"]
                    .iter()
                    .any(|r| f.calls(&code, r));
                if !recorder {
                    raw.push(Violation {
                        path: path.into(),
                        line: f.line,
                        rule: "kernel-telemetry",
                        msg: format!(
                            "quantized kernel fn `{}` loops but records nothing (record_qmatmul / record_qtensor_alloc / record_op_flops)",
                            f.name
                        ),
                    });
                }
            }
            // Pack-pass telemetry: micro-panel scratch buffers must hit
            // the pack counters, or kernel memory traffic goes dark.
            if apply.pack_telemetry
                && f.name.starts_with("pack_")
                && !f.calls(&code, "record_pack_alloc")
                && !body_allow(&allows, "kernel-telemetry", f.line, f.end_line)
            {
                raw.push(Violation {
                    path: path.into(),
                    line: f.line,
                    rule: "kernel-telemetry",
                    msg: format!("pack fn `{}` builds kernel scratch without record_pack_alloc", f.name),
                });
            }
            if apply.op_telemetry && f.contains_ident(&code, "from_op") {
                if !f.calls(&code, "span") && !body_allow(&allows, "op-span", f.line, f.end_line) {
                    raw.push(Violation {
                        path: path.into(),
                        line: f.line,
                        rule: "op-span",
                        msg: format!("op fn `{}` records a graph node but opens no pmm_obs::span", f.name),
                    });
                }
                let flops = ["record_op_flops", "record_matmul", "record_bmm", "record_matmul_skipping", "record_bmm_skipping"]
                    .iter()
                    .any(|r| f.calls(&code, r));
                if !flops && !body_allow(&allows, "op-flops", f.line, f.end_line) {
                    raw.push(Violation {
                        path: path.into(),
                        line: f.line,
                        rule: "op-flops",
                        msg: format!("op fn `{}` records a graph node but accounts no FLOPs", f.name),
                    });
                }
            }
            if apply.serve_result
                && f.is_pub
                && !f.returns_result
                && (f.contains_ident(&code, "ServeError") || f.contains_ident(&code, "RecommendError"))
                && !body_allow(&allows, "serve-result", f.line, f.end_line)
            {
                raw.push(Violation {
                    path: path.into(),
                    line: f.line,
                    rule: "serve-result",
                    msg: format!("pub fn `{}` handles serve errors but does not return Result", f.name),
                });
            }
        }
    }

    // Line-attached suppression: an allow on the violation's line or
    // the line directly above it.
    for v in raw {
        if !allow_suppresses(&allows, v.rule, v.line) {
            out.push(v);
        }
    }
    out.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    out
}

const KEYWORDS: &[&str] = &[
    "as", "box", "break", "const", "continue", "crate", "dyn", "else", "enum", "extern", "fn",
    "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub", "ref",
    "return", "static", "struct", "trait", "type", "unsafe", "use", "where", "while",
];

pub(crate) fn is_keyword(t: &Token) -> bool {
    t.kind == TokenKind::Ident && KEYWORDS.contains(&t.text.as_str())
}

/// Removes every `#[cfg(test)]` item (mod, fn, use, …) from the token
/// stream: attribute through the end of the item (`;` or the matching
/// close of its first brace block).
pub(crate) fn strip_test_items(code: Vec<Token>) -> Vec<Token> {
    let mut out = Vec::with_capacity(code.len());
    let mut i = 0;
    while i < code.len() {
        if code[i].is_punct('#')
            && matches(&code, i + 1, &["[", "cfg", "(", "test", ")", "]"])
        {
            i += 7;
            // Skip any further attributes on the same item.
            while i < code.len() && code[i].is_punct('#') && code.get(i + 1).is_some_and(|t| t.is_punct('[')) {
                let mut depth = 0usize;
                while i < code.len() {
                    if code[i].is_punct('[') {
                        depth += 1;
                    } else if code[i].is_punct(']') {
                        depth -= 1;
                        if depth == 0 {
                            i += 1;
                            break;
                        }
                    }
                    i += 1;
                }
            }
            // Skip the item itself: to a top-level `;` or through the
            // first complete `{ .. }` block.
            let mut brace = 0usize;
            while i < code.len() {
                if code[i].is_punct('{') {
                    brace += 1;
                } else if code[i].is_punct('}') {
                    brace -= 1;
                    if brace == 0 {
                        i += 1;
                        break;
                    }
                } else if code[i].is_punct(';') && brace == 0 {
                    i += 1;
                    break;
                }
                i += 1;
            }
        } else {
            out.push(code[i].clone());
            i += 1;
        }
    }
    out
}

/// Token-pattern match helper: idents by name, punctuation by char.
pub(crate) fn matches(code: &[Token], at: usize, pat: &[&str]) -> bool {
    pat.iter().enumerate().all(|(j, p)| {
        code.get(at + j).is_some_and(|t| {
            let mut chars = p.chars();
            match (chars.next(), chars.next()) {
                (Some(c), None) if !c.is_alphanumeric() && c != '_' => t.is_punct(c),
                _ => t.is_ident(p),
            }
        })
    })
}

fn scan_hot_panics(path: &str, code: &[Token], out: &mut Vec<Violation>) {
    for (i, t) in code.iter().enumerate() {
        if t.kind != TokenKind::Ident {
            continue;
        }
        let prev_dot = i > 0 && code[i - 1].is_punct('.');
        let next_open = code.get(i + 1).is_some_and(|n| n.is_punct('('));
        let next_bang = code.get(i + 1).is_some_and(|n| n.is_punct('!'));
        if prev_dot && next_open && (t.text == "unwrap" || t.text == "expect") {
            out.push(Violation {
                path: path.into(),
                line: t.line,
                rule: "hot-unwrap",
                msg: format!(".{}() can panic in a hot path — return a typed error or annotate why it cannot fire", t.text),
            });
        }
        if next_bang && ["panic", "unreachable", "todo", "unimplemented"].contains(&t.text.as_str()) {
            out.push(Violation {
                path: path.into(),
                line: t.line,
                rule: "hot-panic",
                msg: format!("{}! aborts a hot path — degrade or return a typed error instead", t.text),
            });
        }
    }
}

/// Flags `expr[..]` indexing/slicing in `code[from..to]`: a `[` whose
/// previous significant token ends an expression (identifier that is
/// not a keyword, `)`, or `]`).
fn scan_indexing(
    path: &str,
    code: &[Token],
    from: usize,
    to: usize,
    rule: &'static str,
    out: &mut Vec<Violation>,
) {
    for i in from..to {
        if !code[i].is_punct('[') || i == 0 {
            continue;
        }
        let p = &code[i - 1];
        let indexes = match p.kind {
            TokenKind::Ident => !is_keyword(p),
            TokenKind::Punct(')') | TokenKind::Punct(']') => true,
            _ => false,
        };
        if indexes {
            out.push(Violation {
                path: path.into(),
                line: code[i].line,
                rule,
                msg: "slice indexing can panic out of bounds — use .get()/.get_mut() or annotate the bounds proof".into(),
            });
        }
    }
}

fn scan_nondet(path: &str, code: &[Token], out: &mut Vec<Violation>) {
    // Direct nondeterminism sources by name.
    for t in code {
        if t.is_ident("SystemTime") || t.is_ident("RandomState") {
            out.push(Violation {
                path: path.into(),
                line: t.line,
                rule: "nondet",
                msg: format!("{} is a nondeterminism source in a bit-identity-pinned crate", t.text),
            });
        }
    }
    // HashMap iteration: find names bound to HashMaps in this file,
    // then flag order-dependent traversals of them.
    let mut maps: Vec<String> = Vec::new();
    for (i, t) in code.iter().enumerate() {
        if !t.is_ident("HashMap") || i < 2 {
            continue;
        }
        // `name: HashMap<..>` (field / typed let) or `name = HashMap::..`.
        let sep = &code[i - 1];
        if sep.is_punct(':') || sep.is_punct('=') {
            let cand = &code[i - 2];
            if cand.kind == TokenKind::Ident && !is_keyword(cand) && !maps.contains(&cand.text) {
                maps.push(cand.text.clone());
            }
        }
    }
    const ITERS: &[&str] =
        &["iter", "iter_mut", "keys", "values", "values_mut", "drain", "into_iter", "retain"];
    for (i, t) in code.iter().enumerate() {
        if t.kind != TokenKind::Ident || !maps.contains(&t.text) {
            continue;
        }
        // `map.iter()` and friends.
        if code.get(i + 1).is_some_and(|n| n.is_punct('.'))
            && code.get(i + 2).is_some_and(|n| ITERS.iter().any(|m| n.is_ident(m)))
            && code.get(i + 3).is_some_and(|n| n.is_punct('('))
        {
            out.push(Violation {
                path: path.into(),
                line: t.line,
                rule: "nondet",
                msg: format!(
                    "iteration over HashMap `{}` is order-nondeterministic — sort the entries or use a BTreeMap",
                    t.text
                ),
            });
        }
        // `for x in &map` / `for x in map`.
        let mut j = i;
        while j > 0 && (code[j - 1].is_punct('&') || code[j - 1].is_ident("mut")) {
            j -= 1;
        }
        if j > 0 && code[j - 1].is_ident("in") && !code.get(i + 1).is_some_and(|n| n.is_punct('.')) {
            out.push(Violation {
                path: path.into(),
                line: t.line,
                rule: "nondet",
                msg: format!("for-loop over HashMap `{}` is order-nondeterministic", t.text),
            });
        }
    }
}

fn scan_par_scope(path: &str, code: &[Token], out: &mut Vec<Violation>) {
    for i in 0..code.len() {
        if matches(code, i, &["thread", ":", ":", "scope"]) {
            out.push(Violation {
                path: path.into(),
                line: code[i].line,
                rule: "par-scope",
                msg: "scoped thread dispatch outside crates/par — route data-parallel work through pmm_par helpers".into(),
            });
        }
    }
}

fn scan_par_spawn_index(path: &str, code: &[Token], out: &mut Vec<Violation>) {
    let mut i = 0;
    while i < code.len() {
        if code[i].is_ident("spawn") && code.get(i + 1).is_some_and(|t| t.is_punct('(')) {
            // Check the argument list (the worker closure) for indexing.
            let start = i + 1;
            let mut depth = 0usize;
            let mut end = start;
            while end < code.len() {
                if code[end].is_punct('(') {
                    depth += 1;
                } else if code[end].is_punct(')') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                end += 1;
            }
            scan_indexing(path, code, start, end, "par-spawn-index", out);
            i = end;
        }
        i += 1;
    }
}

/// Flags direct `span(..)` calls in crates/serve: a stage timed by a
/// bare obs span records no latency histogram and no trace event, so
/// the request's causal chain silently loses the stage. Serving code
/// must go through `pmm_trace::Tracer::begin`/`finish` (which opens
/// the span itself) — or annotate why a bare span is enough.
fn scan_stage_histogram(path: &str, code: &[Token], out: &mut Vec<Violation>) {
    for (i, t) in code.iter().enumerate() {
        if t.is_ident("span") && code.get(i + 1).is_some_and(|n| n.is_punct('(')) {
            out.push(Violation {
                path: path.into(),
                line: t.line,
                rule: "stage-histogram",
                msg: "raw span() call in a serving stage — time it through pmm_trace::Tracer so the stage histogram and trace event record too".into(),
            });
        }
    }
}

/// Flags any `spawn(..)` call in crates/serve outside supervisor.rs:
/// a thread created behind the supervisor's back has no worker slot,
/// so nothing stamps its heartbeat, catches its panics, or respawns
/// it — the supervision guarantees silently stop covering it.
fn scan_serve_spawn(path: &str, code: &[Token], out: &mut Vec<Violation>) {
    for (i, t) in code.iter().enumerate() {
        if t.is_ident("spawn") && code.get(i + 1).is_some_and(|n| n.is_punct('(')) {
            out.push(Violation {
                path: path.into(),
                line: t.line,
                rule: "serve-spawn",
                msg: "bare spawn() in crates/serve — route thread creation through the supervisor so the worker gets a slot, heartbeat, and restart budget".into(),
            });
        }
    }
}

/// A function found in the token stream, with its body extent.
pub(crate) struct Fn_ {
    pub(crate) name: String,
    /// Line of the `fn` keyword.
    pub(crate) line: u32,
    pub(crate) end_line: u32,
    pub(crate) is_pub: bool,
    pub(crate) returns_result: bool,
    /// Token range of the body (inside the braces).
    pub(crate) body: (usize, usize),
}

impl Fn_ {
    pub(crate) fn contains_ident(&self, code: &[Token], name: &str) -> bool {
        code[self.body.0..self.body.1].iter().any(|t| t.is_ident(name))
    }

    /// Whether the body calls `name(..)`.
    pub(crate) fn calls(&self, code: &[Token], name: &str) -> bool {
        let b = &code[self.body.0..self.body.1];
        b.iter().enumerate().any(|(i, t)| {
            t.is_ident(name) && b.get(i + 1).is_some_and(|n| n.is_punct('('))
        })
    }
}

/// Finds every `fn` with a brace body (signature-only trait items are
/// skipped), including nested ones — each gets its own entry.
pub(crate) fn functions(code: &[Token]) -> Vec<Fn_> {
    let mut out = Vec::new();
    for i in 0..code.len() {
        if !code[i].is_ident("fn") {
            continue;
        }
        let Some(name_tok) = code.get(i + 1).filter(|t| t.kind == TokenKind::Ident) else {
            continue;
        };
        // `pub fn`, `pub(crate) fn`, possibly with `unsafe`/`const` in
        // between: scan a few tokens back for `pub`.
        let is_pub = (1..=5).any(|back| i >= back && code[i - back].is_ident("pub"));
        // Walk the signature to the body `{` (or `;`): parens and angle
        // brackets nest; the first top-level `{` starts the body.
        let mut j = i + 2;
        let (mut paren, mut angle) = (0i32, 0i32);
        let mut sig_end = None;
        while j < code.len() {
            match code[j].kind {
                TokenKind::Punct('(') => paren += 1,
                TokenKind::Punct(')') => paren -= 1,
                TokenKind::Punct('<') => angle += 1,
                TokenKind::Punct('>') => angle = (angle - 1).max(0),
                TokenKind::Punct('{') if paren == 0 => {
                    sig_end = Some(j);
                    break;
                }
                TokenKind::Punct(';') if paren == 0 && angle <= 0 => break,
                _ => {}
            }
            j += 1;
        }
        let Some(open) = sig_end else {
            continue;
        };
        let returns_result = code[i + 2..open].iter().any(|t| t.is_ident("Result"));
        // Match the body braces.
        let mut depth = 0usize;
        let mut k = open;
        let mut close = open;
        while k < code.len() {
            if code[k].is_punct('{') {
                depth += 1;
            } else if code[k].is_punct('}') {
                depth -= 1;
                if depth == 0 {
                    close = k;
                    break;
                }
            }
            k += 1;
        }
        out.push(Fn_ {
            name: name_tok.text.clone(),
            line: code[i].line,
            end_line: code[close].line,
            is_pub,
            returns_result,
            body: (open + 1, close),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_hit(path: &str, src: &str) -> Vec<&'static str> {
        check_source(path, src).into_iter().map(|v| v.rule).collect()
    }

    #[test]
    fn unwrap_in_hot_path_flagged_elsewhere_ignored() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }";
        assert_eq!(rules_hit("crates/serve/src/server.rs", src), vec!["hot-unwrap"]);
        assert!(rules_hit("crates/eval/src/lib.rs", src).is_empty());
    }

    #[test]
    fn unwrap_or_else_is_not_unwrap() {
        let src = "fn f(m: M) { m.lock().unwrap_or_else(std::sync::PoisonError::into_inner); }";
        assert!(rules_hit("crates/serve/src/server.rs", src).is_empty());
    }

    #[test]
    fn allow_with_reason_suppresses_without_reason_is_flagged() {
        let good = "fn f(x: Option<u32>) -> u32 {\n  // pmm-audit: allow(hot-unwrap) — checked above\n  x.unwrap()\n}";
        assert!(rules_hit("crates/serve/src/server.rs", good).is_empty());
        let trailing = "fn f(x: Option<u32>) -> u32 { x.unwrap() // pmm-audit: allow(hot-unwrap) — checked\n}";
        assert!(rules_hit("crates/serve/src/server.rs", trailing).is_empty());
        let bad = "fn f(x: Option<u32>) -> u32 {\n  // pmm-audit: allow(hot-unwrap)\n  x.unwrap()\n}";
        assert_eq!(rules_hit("crates/serve/src/server.rs", bad), vec!["bad-allow", "hot-unwrap"]);
    }

    #[test]
    fn allow_naming_unknown_rule_is_bad() {
        let src = "// pmm-audit: allow(no-such-rule) — whatever\nfn f() {}";
        assert_eq!(rules_hit("crates/serve/src/server.rs", src), vec!["bad-allow"]);
    }

    #[test]
    fn panics_in_test_modules_are_exempt() {
        let src = "fn ok() {}\n#[cfg(test)]\nmod tests {\n  #[test]\n  fn t() { Some(1).unwrap(); panic!(\"x\"); }\n}";
        assert!(rules_hit("crates/serve/src/server.rs", src).is_empty());
    }

    #[test]
    fn indexing_flagged_only_in_serving_paths() {
        let src = "fn f(v: &[f32], i: usize) -> f32 { v[i] }";
        assert_eq!(rules_hit("crates/serve/src/server.rs", src), vec!["hot-index"]);
        assert_eq!(rules_hit("crates/core/src/recommend.rs", src), vec!["hot-index"]);
        // The kernel file indexes pervasively by design.
        assert!(rules_hit("crates/tensor/src/tensor.rs", src).is_empty());
    }

    #[test]
    fn index_rule_skips_types_attrs_macros_patterns() {
        let src = "#[derive(Debug)]\nstruct S { a: [f32; 4] }\nfn f(x: &[usize]) -> Vec<u32> { let [a, b] = [1, 2]; vec![a, b] }";
        assert!(rules_hit("crates/serve/src/server.rs", src).is_empty());
    }

    #[test]
    fn nondet_sources_flagged_in_pinned_crates() {
        let src = "fn now() { let t = SystemTime::now(); }";
        assert_eq!(rules_hit("crates/tensor/src/lib.rs", src), vec!["nondet"]);
        assert!(rules_hit("crates/obs/src/sink.rs", src).is_empty());
    }

    #[test]
    fn hashmap_iteration_flagged_get_is_fine() {
        let src = "struct S { m: HashMap<u64, f32> }\nimpl S {\n  fn bad(&self) { for v in self.m.values() { let _ = v; } }\n  fn good(&self) -> Option<&f32> { self.m.get(&1) }\n}";
        assert_eq!(rules_hit("crates/nn/src/x.rs", src), vec!["nondet"]);
    }

    #[test]
    fn op_without_span_or_flops_flagged() {
        let src = "impl Var { pub fn myop(&self) -> Var { Var::from_op(\"myop\", out, vec![], cb) } }";
        let hits = rules_hit("crates/tensor/src/ops/custom.rs", src);
        assert_eq!(hits, vec!["op-flops", "op-span"]);
        let fixed = "impl Var { pub fn myop(&self) -> Var { let _s = pmm_obs::span(\"myop\"); pmm_obs::counter::record_op_flops(1); Var::from_op(\"myop\", out, vec![], cb) } }";
        assert!(rules_hit("crates/tensor/src/ops/custom.rs", fixed).is_empty());
        let allowed = "impl Var { pub fn myop(&self) -> Var { let _s = pmm_obs::span(\"myop\");\n// pmm-audit: allow(op-flops) — pure data movement, zero FLOPs\nVar::from_op(\"myop\", out, vec![], cb) } }";
        assert!(rules_hit("crates/tensor/src/ops/custom.rs", allowed).is_empty());
    }

    #[test]
    fn quantized_kernel_loops_need_span_and_recorder() {
        let bare = "pub fn qdot(&self) -> f32 { let mut s = 0.0; for v in &self.data { s += v; } s }";
        assert_eq!(
            rules_hit("crates/tensor/src/qtensor.rs", bare),
            vec!["kernel-telemetry", "kernel-telemetry"],
            "a looping pub kernel with no span and no recorder fires both arms"
        );
        let spanned = "pub fn qdot(&self) -> f32 { let _s = pmm_obs::span(\"qdot\"); let mut s = 0.0; for v in &self.data { s += v; } s }";
        assert_eq!(rules_hit("crates/tensor/src/qtensor.rs", spanned), vec!["kernel-telemetry"]);
        let full = "pub fn qdot(&self) -> f32 { let _s = pmm_obs::span(\"qdot\"); pmm_obs::counter::record_qmatmul(1, 1, 1); let mut s = 0.0; for v in &self.data { s += v; } s }";
        assert!(rules_hit("crates/tensor/src/qtensor.rs", full).is_empty());
        // Loop-free accessors and private helpers are not kernels.
        let accessor = "pub fn rows(&self) -> usize { self.rows }";
        assert!(rules_hit("crates/tensor/src/qtensor.rs", accessor).is_empty());
        let private = "fn helper(&self) { for _ in 0..3 {} }";
        assert!(rules_hit("crates/tensor/src/qtensor.rs", private).is_empty());
        // The rule is scoped to the quantized module, not all of tensor.
        assert!(rules_hit("crates/tensor/src/lib.rs", bare).is_empty());
        let allowed = "pub fn qdot(&self) -> f32 {\n// pmm-audit: allow(kernel-telemetry) — O(1) loop over the 2-element shape array\nlet mut s = 0.0; for v in &self.shape { s += v; } s }";
        assert!(rules_hit("crates/tensor/src/qtensor.rs", allowed).is_empty());
    }

    #[test]
    fn pack_fns_in_the_kernel_file_must_record_scratch() {
        let bad = "fn pack_c_panels(m: usize) -> Vec<f32> { vec![0.0; m] }";
        assert_eq!(rules_hit("crates/tensor/src/tensor.rs", bad), vec!["kernel-telemetry"]);
        let good = "fn pack_c_panels(m: usize) -> Vec<f32> { let p = vec![0.0; m]; pmm_obs::counter::record_pack_alloc(p.len()); p }";
        assert!(rules_hit("crates/tensor/src/tensor.rs", good).is_empty());
        // Non-pack helpers in the kernel file are untouched.
        let other = "fn micro(m: usize) -> Vec<f32> { vec![0.0; m] }";
        assert!(rules_hit("crates/tensor/src/tensor.rs", other).is_empty());
    }

    #[test]
    fn serve_pub_fn_touching_errors_must_return_result() {
        let bad = "pub fn handle(&self) -> u32 { let _e = ServeError::Timeout; 0 }";
        assert_eq!(rules_hit("crates/serve/src/server.rs", bad), vec!["serve-result"]);
        let ok = "pub fn handle(&self) -> Result<u32, ServeError> { Err(ServeError::Timeout) }";
        assert!(rules_hit("crates/serve/src/server.rs", ok).is_empty());
        let private = "fn handle(&self) -> u32 { let _e = ServeError::Timeout; 0 }";
        assert!(rules_hit("crates/serve/src/server.rs", private).is_empty());
    }

    #[test]
    fn thread_scope_confined_to_par() {
        let src = "fn f() { std::thread::scope(|s| { let _ = s; }); }";
        assert_eq!(rules_hit("crates/tensor/src/lib.rs", src), vec!["par-scope"]);
        assert!(rules_hit("crates/par/src/lib.rs", src).is_empty());
    }

    #[test]
    fn spawned_par_closures_must_not_index() {
        let src = "fn f() { s.spawn(move || { buf[i] = 0.0; }); }";
        assert_eq!(rules_hit("crates/par/src/lib.rs", src), vec!["par-spawn-index"]);
        let ok = "fn f() { s.spawn(move || { f(offset, block); }); }";
        assert!(rules_hit("crates/par/src/lib.rs", ok).is_empty());
    }

    #[test]
    fn raw_spans_in_serve_are_flagged_tracer_stages_pass() {
        let raw = "fn handle() { let _sp = pmm_obs::span(\"serve_request\"); }";
        assert_eq!(rules_hit("crates/serve/src/server.rs", raw), vec!["stage-histogram"]);
        // Outside crates/serve the rule does not apply.
        assert!(rules_hit("crates/core/src/recommend.rs", raw).is_empty());
        let traced = "fn handle(t: &mut Tracer) { let c = t.begin(Stage::Rank); t.finish(c, \"ok\", \"\"); }";
        assert!(rules_hit("crates/serve/src/server.rs", traced).is_empty());
        let allowed = "fn handle() {\n// pmm-audit: allow(stage-histogram) — startup path, not a request stage\nlet _sp = pmm_obs::span(\"serve_boot\"); }";
        assert!(rules_hit("crates/serve/src/server.rs", allowed).is_empty());
    }

    #[test]
    fn serve_spawns_flagged_outside_the_supervisor() {
        let src = "fn boot() { std::thread::Builder::new().spawn(|| {}); }";
        assert_eq!(rules_hit("crates/serve/src/server.rs", src), vec!["serve-spawn"]);
        let bare = "fn boot() { std::thread::spawn(|| {}); }";
        assert_eq!(rules_hit("crates/serve/src/queue.rs", bare), vec!["serve-spawn"]);
        // supervisor.rs is the sanctioned spawn site; other crates are
        // out of scope; serve test code is exempt like everywhere else.
        assert!(rules_hit("crates/serve/src/supervisor.rs", bare).is_empty());
        assert!(rules_hit("crates/bench/src/bin/serve_load.rs", bare).is_empty());
        let in_tests = "fn ok() {}\n#[cfg(test)]\nmod tests {\n  fn t() { std::thread::spawn(|| {}); }\n}";
        assert!(rules_hit("crates/serve/src/queue.rs", in_tests).is_empty());
        let allowed = "fn boot() {\n// pmm-audit: allow(serve-spawn) — metrics flusher, not a request worker\nstd::thread::spawn(|| {}); }";
        assert!(rules_hit("crates/serve/src/server.rs", allowed).is_empty());
    }

    #[test]
    fn wal_writes_need_fsync_and_checksum() {
        let bad = "fn append(&mut self, b: &[u8]) -> R { self.file.write_all(b) }";
        assert_eq!(
            rules_hit("crates/ingest/src/wal.rs", bad),
            vec!["wal-durability", "wal-durability"],
            "an unfsynced, unchecksummed write fires both arms"
        );
        let synced = "fn append(&mut self, b: &[u8]) -> R { self.file.write_all(b)?; self.file.sync_all() }";
        assert_eq!(rules_hit("crates/ingest/src/wal.rs", synced), vec!["wal-durability"]);
        let full = "fn append(&mut self, b: &[u8]) -> R { let c = crc32(b); self.file.write_all(&frame(c, b))?; self.file.sync_all() }";
        assert!(rules_hit("crates/ingest/src/wal.rs", full).is_empty());
        // Read-side code that never writes is untouched.
        let reader = "fn replay(&self) -> Vec<u8> { self.bytes.clone() }";
        assert!(rules_hit("crates/ingest/src/replay.rs", reader).is_empty());
        // The rule is scoped to the ingest crate.
        assert!(rules_hit("crates/obs/src/sink.rs", bad).is_empty());
        let allowed = "fn header(&mut self) -> R {\n// pmm-audit: allow(wal-durability) — fixed magic header, no payload to checksum\nself.file.write_all(MAGIC)?; self.file.sync_all() }";
        assert!(rules_hit("crates/ingest/src/wal.rs", allowed).is_empty());
    }

    #[test]
    fn tests_directories_are_out_of_scope() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }";
        assert!(rules_hit("crates/serve/tests/chaos.rs", src).is_empty());
        assert!(rules_hit("tests/src/integration.rs", src).is_empty());
    }
}
