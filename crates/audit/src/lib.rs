//! pmm-audit — static analysis for the PMMRec workspace.
//!
//! Two independent passes, sharing nothing but a pessimistic outlook:
//!
//! 1. **Source linter** ([`rules`], over the [`lexer`] token stream):
//!    project invariants enforced as token patterns across every
//!    workspace `.rs` file — no panics in hot serving paths, no
//!    nondeterminism sources in bit-identity-pinned crates, telemetry
//!    on every tensor op, `Result` on fallible serve entry points,
//!    scoped threads confined to pmm-par. Violations are suppressed
//!    in place with `// pmm-audit: allow(<rule>) — <reason>`; the
//!    reason is mandatory.
//! 2. **Graph auditor** ([`graph`]): structural verification of the
//!    live autograd tape before `backward()` — acyclicity, shape
//!    consistency per op, backward-closure bookkeeping, and
//!    reachability of every trainable parameter from the loss.
//!
//! The `pmm-audit` binary wires the linter into `scripts/verify.sh`;
//! the trainer calls [`graph::audit_graph`] from its pre-backward
//! debug hook (always in debug/test builds, opt-in via
//! `--audit-graph` / `PMM_AUDIT_GRAPH=1` in release).

pub mod graph;
pub mod lexer;
pub mod rules;
pub mod source;

pub use graph::{audit_graph, audit_snapshot, GraphReport, GraphSnapshot, GraphViolation};
pub use rules::{check_source, Violation, RULES};
