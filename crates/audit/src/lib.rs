//! pmm-audit — static analysis for the PMMRec workspace.
//!
//! Two independent passes, sharing nothing but a pessimistic outlook:
//!
//! 1. **Source linter** ([`rules`], over the [`lexer`] token stream):
//!    project invariants enforced as token patterns across every
//!    workspace `.rs` file — no panics in hot serving paths, no
//!    nondeterminism sources in bit-identity-pinned crates, telemetry
//!    on every tensor op, `Result` on fallible serve entry points,
//!    scoped threads confined to pmm-par. Violations are suppressed
//!    in place with `// pmm-audit: allow(<rule>) — <reason>`; the
//!    reason is mandatory.
//! 2. **Concurrency analyzer** ([`conc`]): an item-level parse of
//!    `crates/serve` + `crates/ingest` into a symbol table (locks,
//!    atomics, fns) and call graph, from which it derives the
//!    lock-acquisition-order graph and reports order cycles, guards
//!    held across blocking calls, and Relaxed orderings on
//!    publication-gating atomics.
//! 3. **Graph auditor** ([`graph`]): structural verification of the
//!    live autograd tape before `backward()` — acyclicity, shape
//!    consistency per op, backward-closure bookkeeping, and
//!    reachability of every trainable parameter from the loss.
//! 4. **Interleaving harness** ([`sched`]): a loom-lite seeded
//!    scheduler that runs test threads one-at-a-time, moving control
//!    only at explicit yield points, so racy protocols are explored
//!    deterministically and violations replay from a printed seed.
//!
//! The `pmm-audit` binary wires the linter into `scripts/verify.sh`;
//! the trainer calls [`graph::audit_graph`] from its pre-backward
//! debug hook (always in debug/test builds, opt-in via
//! `--audit-graph` / `PMM_AUDIT_GRAPH=1` in release).

pub mod conc;
pub mod graph;
pub mod lexer;
pub mod rules;
pub mod sched;
pub mod source;

pub use conc::{check_concurrency, ConcReport};
pub use graph::{audit_graph, audit_snapshot, GraphReport, GraphSnapshot, GraphViolation};
pub use rules::{check_source, Violation, RULES};
pub use sched::{explore, yield_here, Case, Exploration, Scheduler};
