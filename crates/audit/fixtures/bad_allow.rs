//~ lint-as: crates/serve/src/fixture.rs
//~ expect: bad-allow
//~ expect: bad-allow
//~ expect: hot-unwrap

// Seeded: a reasonless allow (which therefore suppresses nothing —
// the unwrap still fires) and an allow naming an unknown rule.

fn reasonless(a: Option<u32>) -> u32 {
    // pmm-audit: allow(hot-unwrap)
    a.unwrap()
}

fn unknown_rule() -> u32 {
    // pmm-audit: allow(no-such-rule) — rule name has a typo
    7
}
