//~ lint-as: crates/serve/src/fixture_lock_order.rs
//~ expect: lock-order-cycle
//~ expect: lock-order-cycle
//~ expect: lock-order-cycle
//~ expect: lock-order-cycle

// Seeded: inconsistent lock-acquisition orders. One path takes A then
// B, another takes B then A — two threads on opposite paths can each
// hold the other's next lock and neither ever proceeds. Both edges of
// each cycle are reported at their acquisition sites, including the
// cycle that closes through one level of calls.

use std::sync::Mutex;

static ORDER_A: Mutex<u64> = Mutex::new(0);
static ORDER_B: Mutex<u64> = Mutex::new(0);
static ORDER_C: Mutex<u64> = Mutex::new(0);
static ORDER_D: Mutex<u64> = Mutex::new(0);
static ORDER_E: Mutex<u64> = Mutex::new(0);
static ORDER_X: Mutex<u64> = Mutex::new(0);
static ORDER_Y: Mutex<u64> = Mutex::new(0);

fn seeded_ab() {
    let ga = ORDER_A.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let gb = ORDER_B.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let _ = *ga + *gb;
}

fn seeded_ba() {
    let gb = ORDER_B.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let ga = ORDER_A.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let _ = *ga + *gb;
}

// The D side of the C/D cycle hides behind a call: seeded_via_call
// holds C while calling take_d, whose body takes D.

fn take_d() -> u64 {
    let gd = ORDER_D.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    *gd
}

fn seeded_via_call() -> u64 {
    let gc = ORDER_C.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    *gc + take_d()
}

fn seeded_dc() {
    let gd = ORDER_D.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let gc = ORDER_C.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let _ = *gc + *gd;
}

// Clean: both paths agree on X-before-Y, so the order graph stays a
// DAG no matter how many threads run them.

fn consistent_first() {
    let gx = ORDER_X.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let gy = ORDER_Y.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let _ = *gx + *gy;
}

fn consistent_second() -> u64 {
    let gx = ORDER_X.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let gy = ORDER_Y.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    *gx * *gy
}

fn reasoned_escape() {
    let g1 = ORDER_E.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    // pmm-audit: allow(lock-order-cycle) — fixture-only escape-hatch demo; a real re-entry would self-deadlock
    let g2 = ORDER_E.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let _ = *g1 + *g2;
}
