//~ lint-as: crates/core/src/fixture.rs
//~ expect: par-scope

// Seeded: hand-rolled scoped threads outside crates/par — this is
// exactly the dispatch pmm_par helpers exist to own.

fn seeded(rows: &mut [f32]) {
    std::thread::scope(|s| {
        for chunk in rows.chunks_mut(8) {
            s.spawn(move || {
                for x in chunk.iter_mut() {
                    *x += 1.0;
                }
            });
        }
    });
}
