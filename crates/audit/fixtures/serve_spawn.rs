//~ lint-as: crates/serve/src/fixture.rs
//~ expect: serve-spawn
//~ expect: serve-spawn

// Seeded: threads created behind the supervisor's back. A bare
// std::thread::spawn (or Builder::spawn) in the serve crate has no
// worker slot, so no heartbeat is stamped, no panic is caught, and no
// restart budget applies — the supervision guarantees silently stop
// covering it. Thread creation must route through supervisor.rs.

fn seeded_bare(work: fn()) {
    std::thread::spawn(move || work());
}

fn seeded_builder(work: fn()) {
    let _ = std::thread::Builder::new().name("rogue".into()).spawn(move || work());
}

fn reasoned_escape(work: fn()) {
    // pmm-audit: allow(serve-spawn) — one-shot shutdown flusher, never serves a request
    std::thread::spawn(move || work());
}
