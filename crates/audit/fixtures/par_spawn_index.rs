//~ lint-as: crates/par/src/fixture.rs
//~ expect: par-spawn-index

// Seeded: a worker closure indexes a shared buffer — racing on the
// partition arithmetic instead of receiving a pre-partitioned block.
// Indexing outside the spawn argument list is not this rule's business.

fn seeded(s: &Scope, buf: &mut [f32], idx: usize) {
    s.spawn(move || {
        buf[idx] = 1.0;
    });
}

fn prepartitioned(s: &Scope, block: &mut [f32], offset: usize) {
    s.spawn(move || {
        worker(offset, block);
    });
}

fn outside_spawn(buf: &mut [f32]) {
    buf[0] = 0.0;
}
