//~ lint-as: crates/serve/src/fixture_atomics.rs
//~ expect: atomics-ordering
//~ expect: atomics-ordering
//~ expect: atomics-ordering

// Seeded: Relaxed orderings on publication-gating atomics. An
// epoch/generation/ready flag is the signal that some other data is
// now safe to read; Relaxed orders only the flag itself, so a reader
// can observe the new flag value while still seeing the old data it
// was supposed to gate. Handoffs need store(Release) paired with
// load(Acquire). Pure counters carry no such pairing and may stay
// Relaxed.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

static SWAP_EPOCH: AtomicU64 = AtomicU64::new(0);
static TENANT_GENERATION: AtomicU64 = AtomicU64::new(0);
static READY: AtomicBool = AtomicBool::new(false);
static HITS: AtomicU64 = AtomicU64::new(0);

fn seeded_relaxed_gate_load() -> u64 {
    SWAP_EPOCH.load(Ordering::Relaxed)
}

fn seeded_relaxed_publish() {
    TENANT_GENERATION.fetch_add(1, Ordering::Relaxed);
}

fn seeded_relaxed_flag() {
    READY.store(true, Ordering::Relaxed);
}

// Clean: the same gates accessed with the paired orderings.

fn clean_acquire_release() -> u64 {
    SWAP_EPOCH.store(1, Ordering::Release);
    SWAP_EPOCH.load(Ordering::Acquire)
}

// Clean: a counter gates nothing — Relaxed is the right cost.

fn clean_counter() {
    HITS.fetch_add(1, Ordering::Relaxed);
}

fn reasoned_escape() -> u64 {
    // pmm-audit: allow(atomics-ordering) — fixture-only escape-hatch demo; this read feeds advisory telemetry and pairs with nothing
    SWAP_EPOCH.load(Ordering::Relaxed)
}
