//~ lint-as: crates/tensor/src/qtensor.rs
//~ expect: kernel-telemetry
//~ expect: kernel-telemetry
//~ expect: kernel-telemetry

// Seeded: one looping pub kernel with neither span nor recorder (fires
// both arms) and one with a span but no recorder. Fully-instrumented
// kernels, loop-free accessors, private helpers, annotated O(1) loops
// and test code stay silent.

pub fn dark_kernel(data: &[i8]) -> i32 {
    let mut acc = 0i32;
    for &q in data {
        acc += q as i32;
    }
    acc
}

pub fn half_instrumented(data: &[i8]) -> i32 {
    let _s = pmm_obs::span("half");
    let mut acc = 0i32;
    for &q in data {
        acc += q as i32;
    }
    acc
}

pub fn instrumented(data: &[i8], k: usize) -> i32 {
    let _s = pmm_obs::span("qdot");
    pmm_obs::counter::record_qmatmul(1, k, 1);
    let mut acc = 0i32;
    for &q in data {
        acc += q as i32;
    }
    acc
}

pub fn accessor(rows: usize) -> usize {
    rows
}

fn private_helper(n: usize) -> usize {
    let mut s = 0;
    for i in 0..n {
        s += i;
    }
    s
}

pub fn annotated_shape_walk(shape: &[usize; 2]) -> usize {
    // pmm-audit: allow(kernel-telemetry) — O(1) walk over the 2-element shape array, not a kernel loop
    let mut s = 0;
    for &d in shape {
        s += d;
    }
    s
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_loop_uninstrumented() {
        let mut s = 0;
        for i in 0..4 {
            s += i;
        }
        assert_eq!(s, 6);
    }
}
