//~ lint-as: crates/serve/src/fixture.rs
//~ expect: hot-index
//~ expect: hot-index

// Seeded: two unguarded slice reads fire. Bounds-checked access, the
// annotated read, slice types, patterns and macros stay silent.

fn seeded(v: &[f32], i: usize) -> f32 {
    let a = v[i];
    let b = v[i + 1];
    a + b
}

fn safe(v: &[f32], i: usize) -> f32 {
    v.get(i).copied().unwrap_or(0.0)
}

fn annotated(v: &[f32]) -> f32 {
    // pmm-audit: allow(hot-index) — callers uphold the nonempty contract checked at admission
    v[0]
}

fn patterns() -> Vec<u32> {
    let [a, b] = [1, 2];
    vec![a, b]
}
