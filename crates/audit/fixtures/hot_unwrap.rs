//~ lint-as: crates/serve/src/fixture.rs
//~ expect: hot-unwrap
//~ expect: hot-unwrap

// Seeded: both panicking extractors fire; the recovering and the
// annotated forms stay silent.

fn seeded(a: Option<u32>, b: Result<u32, ()>) -> u32 {
    a.unwrap() + b.expect("boom")
}

fn recovering(m: &std::sync::Mutex<u32>) -> u32 {
    *m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn annotated(a: Option<u32>) -> u32 {
    // pmm-audit: allow(hot-unwrap) — the caller checked is_some() at admission
    a.unwrap()
}
