//~ lint-as: crates/tensor/src/ops/fixture.rs
//~ expect: op-span
//~ expect: op-flops

// Seeded: an op records a graph node with neither a span nor a FLOP
// count. The instrumented op and the zero-FLOP structural op (with a
// reasoned allow in its body) stay silent.

impl Var {
    pub fn seeded(&self) -> Var {
        let out = self.value.relu();
        Var::from_op("seeded", out, vec![self.clone()], None)
    }

    pub fn instrumented(&self) -> Var {
        let _s = pmm_obs::span("instrumented");
        pmm_obs::counter::record_op_flops(self.value.len() as u64);
        let out = self.value.relu();
        Var::from_op("instrumented", out, vec![self.clone()], None)
    }

    pub fn structural(&self) -> Var {
        let _s = pmm_obs::span("structural");
        // pmm-audit: allow(op-flops) — pure data movement, zero FLOPs
        let out = self.value.clone();
        Var::from_op("structural", out, vec![self.clone()], None)
    }
}
