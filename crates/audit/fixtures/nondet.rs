//~ lint-as: crates/nn/src/fixture.rs
//~ expect: nondet
//~ expect: nondet
//~ expect: nondet

// Seeded: a wall clock and two order-dependent HashMap traversals in
// a bit-identity-pinned crate. Keyed lookups and sorted iteration
// (annotated) stay silent.

use std::collections::HashMap;

struct Counts {
    by_item: HashMap<usize, usize>,
}

fn seeded_clock() -> u64 {
    let _t = std::time::SystemTime::now();
    0
}

fn seeded_for(map: HashMap<usize, usize>) -> usize {
    let mut total = 0;
    for (_k, v) in &map {
        total += v;
    }
    total
}

impl Counts {
    fn seeded_iteration(&self) -> usize {
        self.by_item.values().sum()
    }

    fn lookup(&self, item: usize) -> usize {
        self.by_item.get(&item).copied().unwrap_or(0)
    }

    fn sorted(&self) -> Vec<(usize, usize)> {
        // pmm-audit: allow(nondet) — order normalised by the sort below
        let mut v: Vec<(usize, usize)> = self.by_item.iter().map(|(&k, &c)| (k, c)).collect();
        v.sort_unstable();
        v
    }
}
