//~ lint-as: crates/serve/src/fixture.rs
//~ expect: hot-panic
//~ expect: hot-panic
//~ expect: hot-panic

// Seeded: every abort-family macro fires; the annotated one is
// suppressed by a reasoned allow on the line above.

fn seeded(x: u32) -> u32 {
    match x {
        0 => panic!("zero"),
        1 => todo!(),
        _ => unreachable!(),
    }
}

fn annotated(x: u32) -> u32 {
    if x == 0 {
        // pmm-audit: allow(hot-panic) — x was validated nonzero at the API boundary
        unreachable!("validated at the boundary")
    } else {
        x
    }
}
