//~ lint-as: crates/serve/src/fixture.rs
//~ expect: serve-result

// Seeded: a pub entry point constructs a serve error but swallows it
// in a bare u32. The typed pub fn and the private helper stay silent.

pub fn seeded(kind: u8) -> u32 {
    let _worst = ServeError::QueueFull;
    u32::from(kind)
}

pub fn typed(_kind: u8) -> Result<u32, ServeError> {
    Err(ServeError::QueueFull)
}

fn private_helper() -> u32 {
    let _e = RecommendError::UnknownUser;
    0
}
