//~ lint-as: crates/serve/src/fixture.rs

// A serving-path file that holds every invariant: typed errors on pub
// entry points, poison-recovering lock access, bounds-checked reads,
// reasoned escape hatches, and test code exempt under #[cfg(test)].
// The harness pins false-positive behaviour: zero expectations means
// the engine must produce zero findings here.

pub fn lookup(scores: &[f32], idx: usize) -> Result<f32, ServeError> {
    scores.get(idx).copied().ok_or(ServeError::QueueFull)
}

pub fn head(scores: &[f32]) -> f32 {
    // pmm-audit: allow(hot-index) — callers uphold the nonempty contract checked at admission
    scores[0]
}

fn drain(m: &std::sync::Mutex<Vec<f32>>) -> Vec<f32> {
    std::mem::take(&mut *m.lock().unwrap_or_else(std::sync::PoisonError::into_inner))
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
    }
}
