//~ lint-as: crates/ingest/src/fixture_guard_blocking.rs
//~ expect: guard-across-blocking
//~ expect: guard-across-blocking
//~ expect: guard-across-blocking
//~ expect: guard-across-blocking

// Seeded: a MutexGuard stays live across a blocking call — an fsync,
// a channel recv, a thread join, a WAL append. Every other thread
// that needs the mutex stalls for the blocking call's full duration;
// if the blocked-on party itself needs the mutex to finish, that is a
// deadlock. Shrink the critical section: copy what you need out of
// the guard, drop it, then block.

use std::sync::Mutex;

static PENDING: Mutex<Vec<u64>> = Mutex::new(Vec::new());

fn seeded_fsync(file: &std::fs::File) {
    let g = PENDING.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let _ = file.sync_all();
    drop(g);
}

fn seeded_recv(rx: &std::sync::mpsc::Receiver<u64>) -> u64 {
    let g = PENDING.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let got = rx.recv().unwrap_or(0);
    got + g.len() as u64
}

fn seeded_join(h: std::thread::JoinHandle<u64>) -> u64 {
    let g = PENDING.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let joined = h.join().unwrap_or(0);
    joined + g.len() as u64
}

fn seeded_wal_append(wal: &mut super::Wal, item: u64) {
    let g = PENDING.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let _ = wal.append(item);
    let _ = g.len();
}

// Clean: the guard is dropped before the blocking call.

fn clean_drop_first(file: &std::fs::File) -> usize {
    let g = PENDING.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let n = g.len();
    drop(g);
    let _ = file.sync_all();
    n
}

// Clean: a chained temporary dies at the end of its expression, so
// nothing is held when the fsync runs.

fn clean_chained(file: &std::fs::File) -> usize {
    let n = PENDING.lock().unwrap_or_else(std::sync::PoisonError::into_inner).len();
    let _ = file.sync_all();
    n
}

fn reasoned_escape(rx: &std::sync::mpsc::Receiver<u64>) -> u64 {
    let g = PENDING.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    // pmm-audit: allow(guard-across-blocking) — fixture-only escape-hatch demo; the sender hung up before this point so recv returns immediately
    let got = rx.recv().unwrap_or(0);
    got + g.len() as u64
}
