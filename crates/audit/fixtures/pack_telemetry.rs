//~ lint-as: crates/tensor/src/tensor.rs
//~ expect: kernel-telemetry

// Seeded: one pack pass that builds micro-panel scratch without
// reporting it. The counted pack and non-pack helpers stay silent.

fn pack_dark(m: usize, k: usize) -> Vec<f32> {
    vec![0.0f32; m * k]
}

fn pack_counted(m: usize, k: usize) -> Vec<f32> {
    let p = vec![0.0f32; m * k];
    pmm_obs::counter::record_pack_alloc(p.len());
    p
}

fn micro_helper(n: usize) -> Vec<f32> {
    vec![0.0f32; n]
}
