//~ lint-as: crates/serve/src/stages.rs
//~ expect: stage-histogram

// Seeded: one serving stage timed with a bare obs span, which records
// no latency histogram and no trace event. The fixed form goes through
// pmm_trace::Tracer, and an annotated bare span is accepted.

fn bare_span_stage(engine: &E) -> Encoded {
    let _sp = pmm_obs::span("serve_encode");
    engine.encode()
}

fn traced_stage(tracer: &mut Tracer, engine: &E) -> Encoded {
    let clock = tracer.begin(Stage::Encode);
    let out = engine.encode();
    tracer.finish(clock, "ok", "full");
    out
}

fn boot_span() {
    // pmm-audit: allow(stage-histogram) — pool startup, not a request stage
    let _sp = pmm_obs::span("serve_boot");
}
