//! PMMRec hyper-parameters.

use pmm_nn::TransformerConfig;

/// Which modality path the model runs (Section III-E's single-modality
/// transfer settings train/score with one item encoder only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Modality {
    /// Text + vision + fusion (the default PMMRec).
    Both,
    /// Text encoder feeds the user encoder directly (`PMMRec-T`).
    TextOnly,
    /// Vision encoder feeds the user encoder directly (`PMMRec-V`).
    VisionOnly,
}

impl Modality {
    /// Short suffix used in model display names.
    pub fn suffix(self) -> &'static str {
        match self {
            Modality::Both => "",
            Modality::TextOnly => "-T",
            Modality::VisionOnly => "-V",
        }
    }
}

/// Numeric precision of the serving-side ranking path.
///
/// Training always runs f32; this knob only selects how the staged
/// serve API scores the catalogue. `Int8` quantizes the item CLS rows
/// and the user vector per row (scale + zero point) and ranks with
/// dequant-free i32-accumulator dot products — the transfer-serving
/// cost model of TransRec-style deployments, where the frozen modality
/// encoders dominate and the ranking matmul is the per-request tax.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Precision {
    /// Full-precision f32 scoring (bit-identical to training-side eval).
    #[default]
    F32,
    /// Per-row affine int8 scoring via [`pmm_tensor::QTensor`].
    Int8,
}

impl Precision {
    /// Short stable label for logs, JSON rows, and response tags.
    pub fn label(self) -> &'static str {
        match self {
            Precision::F32 => "f32",
            Precision::Int8 => "int8",
        }
    }
}

/// Full model configuration.
///
/// The paper uses d=768 (RoBERTa/CLIP-ViT scale); this reproduction
/// defaults to d=32 — the architecture is identical, only the width and
/// depth are scaled to CPU training (see DESIGN.md §2).
#[derive(Debug, Clone, Copy)]
pub struct PmmRecConfig {
    /// Shared hidden dimensionality of all components.
    pub d: usize,
    /// Attention heads in every Transformer.
    pub heads: usize,
    /// Text-encoder depth.
    pub text_layers: usize,
    /// Vision-encoder depth.
    pub vision_layers: usize,
    /// Fusion-module depth (the paper uses a single merge-attention
    /// Transformer layer).
    pub fusion_layers: usize,
    /// User-encoder depth (SASRec-equivalent).
    pub user_layers: usize,
    /// Feed-forward expansion factor.
    pub ff_mult: usize,
    /// Dropout probability.
    pub dropout: f32,
    /// Which modality path to run.
    pub modality: Modality,
    /// AdamW learning rate.
    pub lr: f32,
    /// Sequences per training batch.
    pub batch_size: usize,
    /// Maximum user-sequence length (most recent items kept).
    pub max_len: usize,
    /// When set, freeze everything in the item encoders except the top
    /// `n` Transformer blocks (the paper fine-tunes only the top 2
    /// blocks of RoBERTa/ViT).
    pub finetune_top_blocks: Option<usize>,
}

impl Default for PmmRecConfig {
    fn default() -> Self {
        PmmRecConfig {
            d: 32,
            heads: 4,
            text_layers: 2,
            vision_layers: 2,
            fusion_layers: 1,
            user_layers: 2,
            ff_mult: 2,
            dropout: 0.1,
            modality: Modality::Both,
            lr: 3e-3,
            batch_size: 32,
            max_len: 12,
            finetune_top_blocks: None,
        }
    }
}

impl PmmRecConfig {
    /// Transformer config for a bidirectional item-level encoder.
    pub fn item_encoder_cfg(&self, layers: usize) -> TransformerConfig {
        TransformerConfig {
            d: self.d,
            heads: self.heads,
            layers,
            ff_mult: self.ff_mult,
            dropout: self.dropout,
            causal: false,
        }
    }

    /// Transformer config for the causal user encoder.
    pub fn user_encoder_cfg(&self) -> TransformerConfig {
        TransformerConfig {
            d: self.d,
            heads: self.heads,
            layers: self.user_layers,
            ff_mult: self.ff_mult,
            dropout: self.dropout,
            causal: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_consistent() {
        let cfg = PmmRecConfig::default();
        assert_eq!(cfg.d % cfg.heads, 0);
        assert!(cfg.dropout < 1.0);
        assert_eq!(cfg.modality, Modality::Both);
    }

    #[test]
    fn encoder_cfgs_inherit_dimensions() {
        let cfg = PmmRecConfig::default();
        let t = cfg.item_encoder_cfg(cfg.text_layers);
        assert!(!t.causal);
        assert_eq!(t.d, cfg.d);
        let u = cfg.user_encoder_cfg();
        assert!(u.causal);
        assert_eq!(u.layers, cfg.user_layers);
    }

    #[test]
    fn modality_suffixes() {
        assert_eq!(Modality::Both.suffix(), "");
        assert_eq!(Modality::TextOnly.suffix(), "-T");
        assert_eq!(Modality::VisionOnly.suffix(), "-V");
    }
}
