//! Item-level encoders: text (mini-RoBERTa), vision (mini-ViT) and the
//! merge-attention fusion module (Section III-B).

use crate::config::PmmRecConfig;
use pmm_data::world::{Item, PAD_TOKEN};
use pmm_nn::{Ctx, Dropout, Embedding, Linear, Param, ParamStore, TransformerEncoder};
use pmm_tensor::{Tensor, Var};
use rand::rngs::StdRng;

/// Output of an item encoder over a batch of `n` items.
pub struct EncodedModality {
    /// `[n, d]` modality CLS embeddings (t^cls / v^cls in the paper).
    pub cls: Var,
    /// `[n * len, d]` per-token (or per-patch) states fed to fusion.
    pub tokens: Var,
    /// Tokens per item.
    pub len: usize,
}

/// Builds the interleaved `[n*(len+1), d]` sequence `[CLS; x_1..x_len]`
/// per item from a shared CLS row and a flat `[n*len, d]` content block,
/// then adds positional embeddings.
fn assemble_with_cls(
    ctx: &mut Ctx<'_>,
    cls: &Param,
    pos: &Param,
    content: &Var,
    n: usize,
    len: usize,
) -> Var {
    let cls_block = ctx.var(cls).gather_rows(&vec![0usize; n]);
    let combined = Var::concat0(&[cls_block, content.clone()]);
    // Row (i*(len+1)) <- cls i; row (i*(len+1)+1+j) <- n + i*len + j.
    let mut perm = Vec::with_capacity(n * (len + 1));
    for i in 0..n {
        perm.push(i);
        for j in 0..len {
            perm.push(n + i * len + j);
        }
    }
    let x = combined.gather_rows(&perm);
    let pos_ids: Vec<usize> = (0..n * (len + 1)).map(|r| r % (len + 1)).collect();
    let pos_block = ctx.var(pos).gather_rows(&pos_ids);
    x.add(&pos_block)
}

/// Splits encoder output back into `(cls, tokens)`.
fn split_cls(states: &Var, n: usize, len: usize) -> (Var, Var) {
    let cls_rows: Vec<usize> = (0..n).map(|i| i * (len + 1)).collect();
    let tok_rows: Vec<usize> = (0..n)
        .flat_map(|i| (1..=len).map(move |j| i * (len + 1) + j))
        .collect();
    (states.gather_rows(&cls_rows), states.gather_rows(&tok_rows))
}

/// The Text Encoder (TE): token embedding + learned positions + a
/// bidirectional Transformer, standing in for multilingual RoBERTa.
pub struct TextEncoder {
    embed: Embedding,
    cls: Param,
    pos: Param,
    encoder: TransformerEncoder,
    dropout: Dropout,
    text_len: usize,
}

impl TextEncoder {
    /// Registers all parameters under `{name}.*`.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        cfg: &PmmRecConfig,
        vocab: usize,
        text_len: usize,
        rng: &mut StdRng,
    ) -> Self {
        let d = cfg.d;
        TextEncoder {
            embed: Embedding::new(store, &format!("{name}.embed"), vocab, d, rng),
            cls: store.register(format!("{name}.cls"), Tensor::randn(&[1, d], 0.02, rng)),
            pos: store.register(
                format!("{name}.pos"),
                Tensor::randn(&[text_len + 1, d], 0.02, rng),
            ),
            encoder: TransformerEncoder::new(
                store,
                &format!("{name}.trm"),
                cfg.item_encoder_cfg(cfg.text_layers),
                rng,
            ),
            dropout: Dropout::new(cfg.dropout),
            text_len,
        }
    }

    /// Encodes the text of `ids` drawn from `corpus`.
    ///
    /// Items whose token list is missing or the wrong length (a common
    /// transfer-time condition) are padded/clipped to the expected
    /// length with `PAD_TOKEN` instead of erroring — degraded but
    /// finite, counted by `pmm_obs::counter::DEGRADED_ENCODES`.
    #[track_caller]
    pub fn forward(&self, ctx: &mut Ctx<'_>, corpus: &[Item], ids: &[usize]) -> EncodedModality {
        let n = ids.len();
        let p = self.text_len;
        let mut flat = Vec::with_capacity(n * p);
        let mut degraded = 0u64;
        for &i in ids {
            let tokens = &corpus[i].tokens;
            if tokens.len() == p {
                flat.extend_from_slice(tokens);
            } else {
                degraded += 1;
                let take = tokens.len().min(p);
                flat.extend_from_slice(&tokens[..take]);
                flat.resize(flat.len() + (p - take), PAD_TOKEN);
            }
        }
        if degraded > 0 {
            pmm_obs::counter::DEGRADED_ENCODES.add(degraded);
        }
        let tok = self.embed.forward(ctx, &flat);
        let x = assemble_with_cls(ctx, &self.cls, &self.pos, &tok, n, p);
        let x = self.dropout.forward(ctx, &x);
        let lens = vec![p + 1; n];
        let states = self.encoder.forward(ctx, &x, n, p + 1, &lens);
        let (cls, tokens) = split_cls(&states, n, p);
        EncodedModality {
            cls,
            tokens,
            len: p,
        }
    }
}

/// The Vision Encoder (VE): linear patch projection + learned positions
/// + a bidirectional Transformer, standing in for CLIP-ViT.
pub struct VisionEncoder {
    proj: Linear,
    cls: Param,
    pos: Param,
    encoder: TransformerEncoder,
    dropout: Dropout,
    n_patches: usize,
    patch_dim: usize,
}

impl VisionEncoder {
    /// Registers all parameters under `{name}.*`.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        cfg: &PmmRecConfig,
        n_patches: usize,
        patch_dim: usize,
        rng: &mut StdRng,
    ) -> Self {
        let d = cfg.d;
        VisionEncoder {
            proj: Linear::new(store, &format!("{name}.proj"), patch_dim, d, true, rng),
            cls: store.register(format!("{name}.cls"), Tensor::randn(&[1, d], 0.02, rng)),
            pos: store.register(
                format!("{name}.pos"),
                Tensor::randn(&[n_patches + 1, d], 0.02, rng),
            ),
            encoder: TransformerEncoder::new(
                store,
                &format!("{name}.trm"),
                cfg.item_encoder_cfg(cfg.vision_layers),
                rng,
            ),
            dropout: Dropout::new(cfg.dropout),
            n_patches,
            patch_dim,
        }
    }

    /// Encodes the images of `ids` drawn from `corpus`.
    ///
    /// Items with missing or mis-sized patch data are zero-filled to
    /// the expected `[n_patches, patch_dim]` layout instead of erroring
    /// (see [`TextEncoder::forward`] for the degradation contract).
    #[track_caller]
    pub fn forward(&self, ctx: &mut Ctx<'_>, corpus: &[Item], ids: &[usize]) -> EncodedModality {
        let n = ids.len();
        let (q, dv) = (self.n_patches, self.patch_dim);
        let want = q * dv;
        let mut flat = Vec::with_capacity(n * want);
        let mut degraded = 0u64;
        for &i in ids {
            let patches = &corpus[i].patches;
            if patches.len() == want {
                flat.extend_from_slice(patches);
            } else {
                degraded += 1;
                let take = patches.len().min(want);
                flat.extend_from_slice(&patches[..take]);
                flat.resize(flat.len() + (want - take), 0.0);
            }
        }
        if degraded > 0 {
            pmm_obs::counter::DEGRADED_ENCODES.add(degraded);
        }
        let raw = Var::constant(Tensor::from_vec(flat, &[n * q, dv]).expect("patch numel"));
        let patches = self.proj.forward(ctx, &raw);
        let x = assemble_with_cls(ctx, &self.cls, &self.pos, &patches, n, q);
        let x = self.dropout.forward(ctx, &x);
        let lens = vec![q + 1; n];
        let states = self.encoder.forward(ctx, &x, n, q + 1, &lens);
        let (cls, tokens) = split_cls(&states, n, q);
        EncodedModality {
            cls,
            tokens,
            len: q,
        }
    }
}

/// The merge-attention fusion module (Eq. 3): a multi-modal CLS token is
/// prepended to the concatenation of token and patch states and fed
/// through a Transformer; the CLS output is the item representation.
pub struct FusionModule {
    mm_cls: Param,
    encoder: TransformerEncoder,
}

impl FusionModule {
    /// Registers all parameters under `{name}.*`.
    pub fn new(store: &mut ParamStore, name: &str, cfg: &PmmRecConfig, rng: &mut StdRng) -> Self {
        FusionModule {
            mm_cls: store.register(format!("{name}.mm_cls"), Tensor::randn(&[1, cfg.d], 0.02, rng)),
            encoder: TransformerEncoder::new(
                store,
                &format!("{name}.trm"),
                cfg.item_encoder_cfg(cfg.fusion_layers),
                rng,
            ),
        }
    }

    /// Fuses per-item text and vision states into `[n, d]` item
    /// representations (`e^cls` in the paper).
    #[track_caller]
    pub fn forward(&self, ctx: &mut Ctx<'_>, text: &EncodedModality, vision: &EncodedModality) -> Var {
        let (p, q) = (text.len, vision.len);
        let n = text.cls.shape()[0];
        debug_assert_eq!(vision.cls.shape()[0], n, "modality batch mismatch");
        let l = 1 + p + q;
        let cls_block = ctx.var(&self.mm_cls).gather_rows(&vec![0usize; n]);
        // Layout per item: [mm_cls; t_1..t_p; v_1..v_q].
        let combined = Var::concat0(&[cls_block, text.tokens.clone(), vision.tokens.clone()]);
        let mut perm = Vec::with_capacity(n * l);
        for i in 0..n {
            perm.push(i);
            for j in 0..p {
                perm.push(n + i * p + j);
            }
            for j in 0..q {
                perm.push(n + n * p + i * q + j);
            }
        }
        let x = combined.gather_rows(&perm);
        let lens = vec![l; n];
        let states = self.encoder.forward(ctx, &x, n, l, &lens);
        let cls_rows: Vec<usize> = (0..n).map(|i| i * l).collect();
        states.gather_rows(&cls_rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmm_data::style::Platform;
    use pmm_data::world::{World, WorldConfig};
    use rand::SeedableRng;

    fn corpus(n: usize) -> (World, Vec<Item>) {
        let world = World::new(WorldConfig::default());
        let style = Platform::Hm.style();
        let mut rng = StdRng::seed_from_u64(0);
        let items = (0..n).map(|i| world.sample_item(i % 5, &style, &mut rng)).collect();
        (world, items)
    }

    fn cfg() -> PmmRecConfig {
        PmmRecConfig {
            d: 16,
            heads: 2,
            dropout: 0.0,
            ..Default::default()
        }
    }

    #[test]
    fn text_encoder_shapes() {
        let (world, items) = corpus(6);
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = cfg();
        let te = TextEncoder::new(&mut store, "te", &cfg, world.cfg.vocab(), world.cfg.text_len, &mut rng);
        let mut ctx = Ctx::eval();
        let enc = te.forward(&mut ctx, &items, &[0, 3, 5]);
        assert_eq!(enc.cls.shape(), &[3, 16]);
        assert_eq!(enc.tokens.shape(), &[3 * world.cfg.text_len, 16]);
        assert!(enc.cls.value().all_finite());
    }

    #[test]
    fn vision_encoder_shapes() {
        let (world, items) = corpus(6);
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = cfg();
        let ve = VisionEncoder::new(&mut store, "ve", &cfg, world.cfg.n_patches, world.cfg.patch_dim, &mut rng);
        let mut ctx = Ctx::eval();
        let enc = ve.forward(&mut ctx, &items, &[1, 2]);
        assert_eq!(enc.cls.shape(), &[2, 16]);
        assert_eq!(enc.tokens.shape(), &[2 * world.cfg.n_patches, 16]);
    }

    #[test]
    fn fusion_produces_one_vector_per_item() {
        let (world, items) = corpus(4);
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = cfg();
        let te = TextEncoder::new(&mut store, "te", &cfg, world.cfg.vocab(), world.cfg.text_len, &mut rng);
        let ve = VisionEncoder::new(&mut store, "ve", &cfg, world.cfg.n_patches, world.cfg.patch_dim, &mut rng);
        let fu = FusionModule::new(&mut store, "fu", &cfg, &mut rng);
        let mut ctx = Ctx::eval();
        let t = te.forward(&mut ctx, &items, &[0, 1, 2]);
        let v = ve.forward(&mut ctx, &items, &[0, 1, 2]);
        let e = fu.forward(&mut ctx, &t, &v);
        assert_eq!(e.shape(), &[3, 16]);
        assert!(e.value().all_finite());
    }

    #[test]
    fn same_item_encodes_identically_in_eval_mode() {
        let (world, items) = corpus(3);
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = cfg();
        let te = TextEncoder::new(&mut store, "te", &cfg, world.cfg.vocab(), world.cfg.text_len, &mut rng);
        let mut ctx = Ctx::eval();
        let enc = te.forward(&mut ctx, &items, &[2, 2]);
        let d = enc.cls.value().data();
        let (a, b) = d.split_at(16);
        assert_eq!(a, b);
    }

    #[test]
    fn different_items_encode_differently() {
        let (world, items) = corpus(3);
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = cfg();
        let te = TextEncoder::new(&mut store, "te", &cfg, world.cfg.vocab(), world.cfg.text_len, &mut rng);
        let mut ctx = Ctx::eval();
        let enc = te.forward(&mut ctx, &items, &[0, 1]);
        let d = enc.cls.value().data();
        let (a, b) = d.split_at(16);
        assert_ne!(a, b);
    }

    #[test]
    fn encoder_gradients_reach_embeddings() {
        let (world, items) = corpus(3);
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = cfg();
        let te = TextEncoder::new(&mut store, "te", &cfg, world.cfg.vocab(), world.cfg.text_len, &mut rng);
        let mut ctx = Ctx::train(&mut rng);
        let enc = te.forward(&mut ctx, &items, &[0, 1]);
        enc.cls.mul(&enc.cls).sum_all().backward();
        let emb = store.get("te.embed.weight").unwrap();
        assert!(ctx.grad_of(emb).is_some());
        let cls = store.get("te.cls").unwrap();
        assert!(ctx.grad_of(cls).is_some());
    }
}
