//! The five transfer-learning settings (Section III-E, Table I).

use crate::config::Modality;

/// Component name prefixes used in checkpoints.
pub mod components {
    /// Text encoder parameters.
    pub const TEXT: &str = "text_encoder.";
    /// Vision encoder parameters.
    pub const VISION: &str = "vision_encoder.";
    /// Multi-modal fusion parameters.
    pub const FUSION: &str = "fusion.";
    /// User encoder parameters.
    pub const USER: &str = "user_encoder.";
}

/// Which pre-trained components are carried to the target dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransferSetting {
    /// Transfer everything (the default setting).
    Full,
    /// Transfer the item encoders + fusion only.
    ItemEncoders,
    /// Transfer the user encoder only.
    UserEncoder,
    /// Transfer text encoder + user encoder; run text-only.
    TextOnly,
    /// Transfer vision encoder + user encoder; run vision-only.
    VisionOnly,
}

impl TransferSetting {
    /// All settings, in Table V's column order.
    pub const ALL: [TransferSetting; 5] = [
        TransferSetting::TextOnly,
        TransferSetting::VisionOnly,
        TransferSetting::ItemEncoders,
        TransferSetting::UserEncoder,
        TransferSetting::Full,
    ];

    /// Checkpoint prefixes to load for this setting.
    pub fn prefixes(self) -> &'static [&'static str] {
        use components::*;
        match self {
            TransferSetting::Full => &[TEXT, VISION, FUSION, USER],
            TransferSetting::ItemEncoders => &[TEXT, VISION, FUSION],
            TransferSetting::UserEncoder => &[USER],
            TransferSetting::TextOnly => &[TEXT, USER],
            TransferSetting::VisionOnly => &[VISION, USER],
        }
    }

    /// The modality path the fine-tuned model must run.
    pub fn modality(self) -> Modality {
        match self {
            TransferSetting::TextOnly => Modality::TextOnly,
            TransferSetting::VisionOnly => Modality::VisionOnly,
            _ => Modality::Both,
        }
    }

    /// Paper-style label ("w. PT", "w. PT-I", …).
    pub fn label(self) -> &'static str {
        match self {
            TransferSetting::Full => "w. PT",
            TransferSetting::ItemEncoders => "w. PT-I",
            TransferSetting::UserEncoder => "w. PT-U",
            TransferSetting::TextOnly => "PMMRec-T w. PT",
            TransferSetting::VisionOnly => "PMMRec-V w. PT",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_transfer_covers_all_components() {
        assert_eq!(TransferSetting::Full.prefixes().len(), 4);
    }

    #[test]
    fn single_modality_settings_route_modality() {
        assert_eq!(TransferSetting::TextOnly.modality(), Modality::TextOnly);
        assert_eq!(TransferSetting::VisionOnly.modality(), Modality::VisionOnly);
        assert_eq!(TransferSetting::ItemEncoders.modality(), Modality::Both);
    }

    #[test]
    fn item_encoder_transfer_excludes_user_encoder() {
        let p = TransferSetting::ItemEncoders.prefixes();
        assert!(!p.contains(&components::USER));
        assert!(p.contains(&components::FUSION));
    }

    #[test]
    fn user_encoder_transfer_is_minimal() {
        assert_eq!(TransferSetting::UserEncoder.prefixes(), &[components::USER]);
    }
}
