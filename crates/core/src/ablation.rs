//! Objective switches for the Table VIII ablation study.

/// The cross-modal contrastive objective ladder (Section III-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NiclVariant {
    /// No cross-modal contrastive objective at all ("w/o NICL").
    Off,
    /// Vanilla cross-modal contrastive learning, Eq. 6 ("only VCL"):
    /// single cross-modal positive, inter-modality negatives only.
    Vcl,
    /// Intra-modality sample enhanced CL, Eq. 7: VCL plus intra-
    /// modality negatives (an internal rung, not ablated in the paper).
    Icl,
    /// Next-item enhanced CL without intra-modality negatives ("only
    /// NCL"): next-item positives over inter-modality negatives.
    Ncl,
    /// The full NICL objective, Eq. 8.
    Full,
}

impl NiclVariant {
    /// Whether the loss is computed at all.
    pub fn enabled(self) -> bool {
        self != NiclVariant::Off
    }

    /// Whether the next item contributes positives (both modalities).
    pub fn next_item_positives(self) -> bool {
        matches!(self, NiclVariant::Ncl | NiclVariant::Full)
    }

    /// Whether same-modality in-batch items join the denominator.
    pub fn intra_modality_negatives(self) -> bool {
        matches!(self, NiclVariant::Icl | NiclVariant::Full)
    }
}

/// Which pre-training objectives are active (Eq. 12 ablations).
#[derive(Debug, Clone, Copy)]
pub struct ObjectiveConfig {
    /// Cross-modal contrastive variant.
    pub nicl: NiclVariant,
    /// Noised item detection (Eq. 10).
    pub nid: bool,
    /// Robustness-aware contrastive learning (Eq. 11).
    pub rcl: bool,
    /// Softmax temperature for the NICL similarity logits. The paper
    /// writes plain `exp(t·v)` over l2-normalised embeddings; at our
    /// reduced width a CLIP-style temperature is needed for the
    /// contrastive gradients to have useful scale (DESIGN.md §2).
    pub nicl_temperature: f32,
    /// Weight of the auxiliary losses (NICL+NID+RCL) relative to DAP.
    /// The paper sums unweighted; at our reduced width/batch the
    /// auxiliary gradients must be down-weighted to 0.3 or they drown
    /// the DAP signal (calibration recorded in EXPERIMENTS.md).
    pub aux_weight: f32,
}

impl Default for ObjectiveConfig {
    fn default() -> Self {
        ObjectiveConfig {
            nicl: NiclVariant::Full,
            nid: true,
            rcl: true,
            nicl_temperature: 0.1,
            aux_weight: 0.3,
        }
    }
}

impl ObjectiveConfig {
    /// The five ablation rows of Table VIII plus the full model.
    pub fn table8_variants() -> Vec<(&'static str, ObjectiveConfig)> {
        vec![
            ("w/o NICL", ObjectiveConfig { nicl: NiclVariant::Off, ..Default::default() }),
            ("only VCL", ObjectiveConfig { nicl: NiclVariant::Vcl, ..Default::default() }),
            ("only NCL", ObjectiveConfig { nicl: NiclVariant::Ncl, ..Default::default() }),
            ("w/o NID", ObjectiveConfig { nid: false, ..Default::default() }),
            ("w/o RCL", ObjectiveConfig { rcl: false, ..Default::default() }),
            ("PMMRec", ObjectiveConfig::default()),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variant_ladder_is_monotone() {
        assert!(!NiclVariant::Off.enabled());
        assert!(!NiclVariant::Vcl.next_item_positives());
        assert!(!NiclVariant::Vcl.intra_modality_negatives());
        assert!(NiclVariant::Icl.intra_modality_negatives());
        assert!(NiclVariant::Ncl.next_item_positives());
        assert!(NiclVariant::Full.next_item_positives());
        assert!(NiclVariant::Full.intra_modality_negatives());
    }

    #[test]
    fn table8_has_six_rows_ending_with_full_model() {
        let rows = ObjectiveConfig::table8_variants();
        assert_eq!(rows.len(), 6);
        assert_eq!(rows.last().unwrap().0, "PMMRec");
        assert_eq!(rows[0].0, "w/o NICL");
    }
}
