//! Inference conveniences: top-k recommendation and embedding export.
//!
//! These are the APIs a downstream service would call after training or
//! transferring a model; they reuse the cached catalogue encoding.

use crate::model::PmmRec;
use pmm_data::batch::Batch;
use pmm_data::split::LeaveOneOut;
use pmm_eval::SeqRecommender;
use pmm_tensor::Tensor;

/// One recommendation: item id and its (unnormalised) score.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Recommendation {
    /// Catalogue item id.
    pub item: usize,
    /// Dot-product score (higher = better).
    pub score: f32,
}

impl PmmRec {
    /// The `[n_items, d]` item representations (`e^cls` per item) under
    /// the current weights. Useful for downstream retrieval indexes or
    /// visualisation; recomputed lazily after training.
    pub fn item_representations(&self) -> Tensor {
        self.catalog_for_export()
    }

    /// Encodes interaction prefixes into `[n, d]` user representations
    /// (the final hidden state of the user encoder).
    #[track_caller]
    pub fn encode_prefixes(&self, prefixes: &[&[usize]]) -> Tensor {
        assert!(!prefixes.is_empty(), "encode_prefixes: no prefixes");
        assert!(
            prefixes.iter().all(|p| !p.is_empty()),
            "encode_prefixes: empty prefix"
        );
        let max_len = self.config().max_len;
        let clipped: Vec<&[usize]> = prefixes
            .iter()
            .map(|p| &p[p.len().saturating_sub(max_len)..])
            .collect();
        let batch = Batch::from_sequences(&clipped, max_len);
        self.user_hidden_last(&batch)
    }

    /// Ranks the whole catalogue for a user prefix and returns the top
    /// `k` items. `exclude_seen` removes items already in the prefix
    /// (the usual deployment behaviour).
    #[track_caller]
    pub fn recommend_top_k(&self, prefix: &[usize], k: usize, exclude_seen: bool) -> Vec<Recommendation> {
        assert!(!prefix.is_empty(), "recommend_top_k: empty prefix");
        let case = LeaveOneOut {
            prefix: prefix.to_vec(),
            target: 0, // unused: we keep the full score row
        };
        let scores = self.score_cases(std::slice::from_ref(&case)).remove(0);
        top_k_chunked(&scores, k, |item| !exclude_seen || !prefix.contains(&item))
    }
}

/// Chunked top-k over a score row: each block keeps its own top-k
/// candidates, then one stable merge sort picks the global winners.
/// Both the per-block and the final sort are stable with items
/// enumerated in ascending id, so ties resolve to the lower id exactly
/// like a plain full-catalogue sort — the result is identical at every
/// worker count. An item a block drops has ≥ k better-or-equal items
/// in its own block, all of which also outrank it globally, so it can
/// never belong to the true top k.
fn top_k_chunked(scores: &[f32], k: usize, keep: impl Fn(usize) -> bool + Sync) -> Vec<Recommendation> {
    let mut ranked: Vec<Recommendation> = pmm_par::map_chunks(scores, 1 << 15, |off, block| {
        let mut local: Vec<Recommendation> = block
            .iter()
            .enumerate()
            .map(|(i, &score)| Recommendation { item: off + i, score })
            .filter(|r| keep(r.item))
            .collect();
        local.sort_by(|a, b| b.score.total_cmp(&a.score));
        local.truncate(k);
        local
    })
    .into_iter()
    .flatten()
    .collect();
    ranked.sort_by(|a, b| b.score.total_cmp(&a.score));
    ranked.truncate(k);
    ranked
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PmmRec, PmmRecConfig};
    use pmm_data::registry::{build_dataset, DatasetId, Scale};
    use pmm_data::world::{World, WorldConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model() -> (PmmRec, pmm_data::dataset::Dataset) {
        let world = World::new(WorldConfig::default());
        let ds = build_dataset(&world, DatasetId::HmClothes, Scale::Tiny, 42);
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = PmmRecConfig {
            d: 16,
            heads: 2,
            text_layers: 1,
            vision_layers: 1,
            user_layers: 1,
            dropout: 0.0,
            ..Default::default()
        };
        (PmmRec::new(cfg, &ds, &mut rng), ds)
    }

    #[test]
    fn item_representations_cover_catalogue() {
        let (m, ds) = model();
        let reps = m.item_representations();
        assert_eq!(reps.shape(), &[ds.items.len(), 16]);
        assert!(reps.all_finite());
    }

    #[test]
    fn encode_prefixes_shapes() {
        let (m, _) = model();
        let reps = m.encode_prefixes(&[&[0, 1, 2], &[3]]);
        assert_eq!(reps.shape(), &[2, 16]);
    }

    #[test]
    fn recommend_returns_sorted_unseen_items() {
        let (m, ds) = model();
        let prefix = [0usize, 1, 2];
        let recs = m.recommend_top_k(&prefix, 5, true);
        assert_eq!(recs.len(), 5.min(ds.items.len() - prefix.len()));
        for w in recs.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
        for r in &recs {
            assert!(!prefix.contains(&r.item));
        }
    }

    #[test]
    fn recommend_scores_match_trait_scoring() {
        let (m, _) = model();
        let prefix = [0usize, 1];
        let recs = m.recommend_top_k(&prefix, 3, false);
        let case = LeaveOneOut { prefix: prefix.to_vec(), target: 0 };
        let scores = m.score_cases(&[case]).remove(0);
        for r in &recs {
            assert_eq!(r.score, scores[r.item]);
        }
    }

    #[test]
    fn top_k_chunked_matches_global_sort_at_every_thread_count() {
        // Synthetic score row spanning four 32768-score chunks with an
        // odd tail, and only 97 distinct score values so ties are
        // everywhere and the ascending-id tie-break is load-bearing.
        let n = (1usize << 17) + 3;
        let scores: Vec<f32> =
            (0..n).map(|i| ((i * 2_654_435_761) % 97) as f32 / 97.0).collect();
        let keep = |item: usize| item % 13 != 0;
        let mut naive: Vec<Recommendation> = scores
            .iter()
            .enumerate()
            .map(|(item, &score)| Recommendation { item, score })
            .filter(|r| keep(r.item))
            .collect();
        naive.sort_by(|a, b| b.score.total_cmp(&a.score));
        naive.truncate(25);
        for t in [1usize, 2, 4, 7] {
            pmm_par::set_threads(Some(t));
            let got = super::top_k_chunked(&scores, 25, keep);
            assert_eq!(got, naive, "threads={t}");
        }
        pmm_par::set_threads(None);
    }

    #[test]
    #[should_panic(expected = "empty prefix")]
    fn empty_prefix_rejected() {
        let (m, _) = model();
        let _ = m.recommend_top_k(&[], 5, false);
    }

    /// Degrades a few catalogue items to one (or zero) modalities.
    fn degraded_dataset() -> pmm_data::dataset::Dataset {
        let world = World::new(WorldConfig::default());
        let mut ds = build_dataset(&world, DatasetId::HmClothes, Scale::Tiny, 42);
        ds.items[0].tokens.clear(); // text missing
        ds.items[1].patches.clear(); // vision missing
        ds.items[2].tokens.clear();
        ds.items[2].patches.clear(); // both missing
        ds.items[4].tokens.truncate(1); // short text, still served
        ds
    }

    #[test]
    fn missing_modality_items_score_finite() {
        let ds = degraded_dataset();
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = PmmRecConfig {
            d: 16,
            heads: 2,
            text_layers: 1,
            vision_layers: 1,
            user_layers: 1,
            dropout: 0.0,
            ..Default::default()
        };
        let m = PmmRec::new(cfg, &ds, &mut rng);
        // Every catalogue representation — including the degraded
        // items' — must be finite.
        assert!(m.item_representations().all_finite());
        // Serving a prefix that runs *through* degraded items works.
        let recs = m.recommend_top_k(&[0, 1, 2, 4], 5, false);
        assert!(!recs.is_empty());
        assert!(recs.iter().all(|r| r.score.is_finite()));
        // And full eval over leave-one-out cases stays finite.
        let split = pmm_data::split::SplitDataset::new(degraded_dataset());
        let mut rng = StdRng::seed_from_u64(1);
        let m = PmmRec::new(*m.config(), &split.dataset, &mut rng);
        let metrics = pmm_eval::evaluate_cases(&m, &split.valid);
        assert!(metrics.ndcg10().is_finite() && metrics.hr10().is_finite());
    }

    #[test]
    fn partial_items_fall_back_to_surviving_modality() {
        let ds = degraded_dataset();
        let mut rng = StdRng::seed_from_u64(2);
        let cfg = PmmRecConfig {
            d: 16,
            heads: 2,
            text_layers: 1,
            vision_layers: 1,
            user_layers: 1,
            dropout: 0.0,
            ..Default::default()
        };
        let m = PmmRec::new(cfg, &ds, &mut rng);
        let reps = m.item_representations();
        // Item 3 is intact, items 0-2 degraded; all rows must differ
        // (the fallback is per item, not a shared constant).
        let d = 16;
        let row = |i: usize| &reps.data()[i * d..(i + 1) * d];
        assert_ne!(row(0), row(1), "text-CLS vs vision-CLS fallbacks differ");
        assert_ne!(row(0), row(3));
        assert_ne!(row(1), row(3));
    }

    #[test]
    fn single_modality_models_serve_degraded_items() {
        for modality in [crate::Modality::TextOnly, crate::Modality::VisionOnly] {
            let ds = degraded_dataset();
            let mut rng = StdRng::seed_from_u64(3);
            let cfg = PmmRecConfig {
                d: 16,
                heads: 2,
                text_layers: 1,
                vision_layers: 1,
                user_layers: 1,
                dropout: 0.0,
                modality,
                ..Default::default()
            };
            let m = PmmRec::new(cfg, &ds, &mut rng);
            assert!(m.item_representations().all_finite(), "{modality:?}");
            let recs = m.recommend_top_k(&[0, 2], 3, false);
            assert!(recs.iter().all(|r| r.score.is_finite()), "{modality:?}");
        }
    }
}
