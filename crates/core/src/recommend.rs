//! Inference conveniences: top-k recommendation and embedding export.
//!
//! These are the APIs a downstream service would call after training or
//! transferring a model; they reuse the cached catalogue encoding.

use crate::config::{Modality, Precision};
use crate::model::PmmRec;
use pmm_data::batch::Batch;
use pmm_tensor::{QTensor, Tensor};
use std::fmt;

/// One recommendation: item id and its (unnormalised) score.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Recommendation {
    /// Catalogue item id.
    pub item: usize,
    /// Dot-product score (higher = better).
    pub score: f32,
}

/// Scatter-gather coverage tag: how many catalogue shards contributed
/// to a response. `served < total` marks a partial answer (quarantined
/// shards were skipped); the serving SLO keeps `1 - served/total`
/// under the shard-miss budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartialShards {
    /// Shards whose local top-k made it into the merge.
    pub served: usize,
    /// Shards the catalogue is partitioned into.
    pub total: usize,
}

impl PartialShards {
    /// Whether any shard was missing from the gather.
    pub fn is_partial(&self) -> bool {
        self.served < self.total
    }

    /// Fraction of shards served (1.0 for an unsharded answer).
    pub fn coverage(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            self.served as f64 / self.total as f64
        }
    }
}

impl fmt::Display for PartialShards {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.served, self.total)
    }
}

/// Why a serving call could not produce recommendations. Serving must
/// never panic on bad user input, so the request-level failure modes
/// are typed and a runtime can map them to a degraded answer or a
/// client error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecommendError {
    /// The interaction prefix was empty: there is no user signal to
    /// encode, so no personalised ranking exists.
    EmptyPrefix,
    /// The requested modality path has no encoder in this model (e.g.
    /// a text-only model asked to score vision-only).
    UnsupportedModality(Modality),
}

impl fmt::Display for RecommendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecommendError::EmptyPrefix => write!(f, "empty interaction prefix"),
            RecommendError::UnsupportedModality(m) => {
                write!(f, "model has no encoder for the {m:?} path")
            }
        }
    }
}

impl std::error::Error for RecommendError {}

impl PmmRec {
    /// The `[n_items, d]` item representations (`e^cls` per item) under
    /// the current weights. Useful for downstream retrieval indexes or
    /// visualisation; recomputed lazily after training.
    pub fn item_representations(&self) -> Tensor {
        self.catalog_for_export()
    }

    /// Encodes interaction prefixes into `[n, d]` user representations
    /// (the final hidden state of the user encoder).
    #[track_caller]
    pub fn encode_prefixes(&self, prefixes: &[&[usize]]) -> Tensor {
        assert!(!prefixes.is_empty(), "encode_prefixes: no prefixes");
        assert!(
            prefixes.iter().all(|p| !p.is_empty()),
            "encode_prefixes: empty prefix"
        );
        let max_len = self.config().max_len;
        let clipped: Vec<&[usize]> = prefixes
            .iter()
            // pmm-audit: allow(hot-index) — start index is len.saturating_sub(..), which is ≤ len by construction
            .map(|p| &p[p.len().saturating_sub(max_len)..])
            .collect();
        let batch = Batch::from_sequences(&clipped, max_len);
        self.user_hidden_last(&batch)
    }

    /// Ranks the whole catalogue for a user prefix and returns the top
    /// `k` items. `exclude_seen` removes items already in the prefix
    /// (the usual deployment behaviour).
    ///
    /// This is the one-call composition of the staged serving API
    /// ([`PmmRec::serve_catalog`] → [`PmmRec::serve_user_vector`] →
    /// [`PmmRec::serve_rank`]) over the model's native modality, so a
    /// serving runtime that runs the stages itself — to check deadlines
    /// between them — produces bit-identical results.
    pub fn recommend_top_k(
        &self,
        prefix: &[usize],
        k: usize,
        exclude_seen: bool,
    ) -> Result<Vec<Recommendation>, RecommendError> {
        self.recommend_top_k_with(Precision::F32, prefix, k, exclude_seen)
    }

    /// [`PmmRec::recommend_top_k`] with an explicit ranking precision:
    /// `F32` is the exact path, `Int8` quantizes the catalogue (cached)
    /// and the user vector per row and scores with integer dot
    /// products. User encoding always runs f32 — only the final
    /// catalogue-sized matmul changes precision.
    pub fn recommend_top_k_with(
        &self,
        precision: Precision,
        prefix: &[usize],
        k: usize,
        exclude_seen: bool,
    ) -> Result<Vec<Recommendation>, RecommendError> {
        let modality = self.config().modality;
        let catalog = self.serve_catalog(modality)?;
        let user = self.serve_user_vector(&catalog, prefix)?;
        match precision {
            Precision::F32 => Ok(self.serve_rank(&catalog, &user, prefix, k, exclude_seen)),
            Precision::Int8 => {
                let qcat = self.serve_catalog_q(modality)?;
                Ok(self.serve_rank_q(&qcat, &user, prefix, k, exclude_seen))
            }
        }
    }

    // ------------------------------------------------------------------
    // Staged serving API: the three pipeline stages a serving runtime
    // drives individually (encode -> user-encode -> rank), with
    // cancellation points between them.
    // ------------------------------------------------------------------

    /// Stage 1 — the `[n_items, d]` catalogue under the given modality
    /// path (cached per modality until the next weight change).
    pub fn serve_catalog(&self, modality: Modality) -> Result<Tensor, RecommendError> {
        let _sp = pmm_obs::span("catalog_encode");
        if !self.supports_modality(modality) {
            return Err(RecommendError::UnsupportedModality(modality));
        }
        Ok(self.catalog_reps_via(modality))
    }

    /// Stage 2 — encodes one interaction prefix into a `[1, d]` user
    /// vector against the stage-1 catalogue.
    pub fn serve_user_vector(
        &self,
        catalog: &Tensor,
        prefix: &[usize],
    ) -> Result<Tensor, RecommendError> {
        let _sp = pmm_obs::span("user_vector");
        if prefix.is_empty() {
            return Err(RecommendError::EmptyPrefix);
        }
        let max_len = self.config().max_len;
        // pmm-audit: allow(hot-index) — start index is len.saturating_sub(..), which is ≤ len by construction
        let clipped = &prefix[prefix.len().saturating_sub(max_len)..];
        let batch = Batch::from_sequences(&[clipped], max_len);
        Ok(self.user_hidden_last_with(catalog, &batch))
    }

    /// Stage 1 (int8 variant) — the catalogue of stage 1 quantized to
    /// per-row affine int8, cached per modality next to the f32 rows
    /// and invalidated with them on every weight change.
    pub fn serve_catalog_q(&self, modality: Modality) -> Result<QTensor, RecommendError> {
        let _sp = pmm_obs::span("catalog_quantize");
        if !self.supports_modality(modality) {
            return Err(RecommendError::UnsupportedModality(modality));
        }
        Ok(self.quantized_catalog_via(modality))
    }

    /// Stage 3 (int8 variant) — quantizes the f32 user vector per row
    /// and scores the quantized catalogue with dequant-free integer
    /// dot products, then runs the same chunked top-k as
    /// [`PmmRec::serve_rank`]. Scores approximate the f32 path within
    /// the quantization step (pinned by `quantized_rank` tests);
    /// results are bit-identical at every worker count.
    pub fn serve_rank_q(
        &self,
        qcatalog: &QTensor,
        user: &Tensor,
        prefix: &[usize],
        k: usize,
        exclude_seen: bool,
    ) -> Vec<Recommendation> {
        let _sp = pmm_obs::span("rank_topk_q");
        let quser = QTensor::quantize_rows(user);
        let scores = quser.matmul_nt(qcatalog);
        top_k_chunked(scores.data(), k, |item| !exclude_seen || !prefix.contains(&item))
    }

    /// Stage 3 — scores the catalogue against the user vector and
    /// returns the top `k` (chunk-parallel, bit-identical at every
    /// worker count).
    pub fn serve_rank(
        &self,
        catalog: &Tensor,
        user: &Tensor,
        prefix: &[usize],
        k: usize,
        exclude_seen: bool,
    ) -> Vec<Recommendation> {
        let _sp = pmm_obs::span("rank_topk");
        let scores = user.matmul_t(catalog, false, true);
        top_k_chunked(scores.data(), k, |item| !exclude_seen || !prefix.contains(&item))
    }

    /// The full score row for scatter-gather serving: the *same*
    /// matmul call [`PmmRec::serve_rank`] makes, exposed so a sharded
    /// runtime can partition the top-k *selection* over score ranges
    /// while the scoring itself stays one exhaustive product. Sharding
    /// the selection (not the matmul) is what keeps the gather
    /// bit-identical to the exhaustive path: slicing catalogue rows
    /// per shard could change kernel dispatch for the product, whereas
    /// a selection over ranges of one shared row cannot.
    pub fn serve_scores(&self, catalog: &Tensor, user: &Tensor) -> Vec<f32> {
        let _sp = pmm_obs::span("rank_scores");
        user.matmul_t(catalog, false, true).data().to_vec()
    }

    /// Int8 variant of [`PmmRec::serve_scores`]: the score row
    /// [`PmmRec::serve_rank_q`] would select from.
    pub fn serve_scores_q(&self, qcatalog: &QTensor, user: &Tensor) -> Vec<f32> {
        let _sp = pmm_obs::span("rank_scores_q");
        let quser = QTensor::quantize_rows(user);
        quser.matmul_nt(qcatalog).data().to_vec()
    }
}

/// Partitions `n_items` into `shards` contiguous id ranges, sized
/// within one of each other (the first `n_items % shards` ranges get
/// the extra item). Ranges cover every id exactly once in ascending
/// order — the property the bit-identical gather relies on.
pub fn shard_ranges(n_items: usize, shards: usize) -> Vec<std::ops::Range<usize>> {
    let shards = shards.max(1);
    let base = n_items / shards;
    let extra = n_items % shards;
    let mut out = Vec::with_capacity(shards);
    let mut start = 0usize;
    for s in 0..shards {
        let len = base + usize::from(s < extra);
        out.push(start..start + len);
        start += len;
    }
    out
}

/// One shard's local top-k: its contiguous range of the shared score
/// row, enumerated in ascending id, stably sorted by descending score
/// and truncated to `k` — exactly the per-block discipline of
/// [`top_k_chunked`], so the shard merge reproduces the exhaustive
/// result bit for bit.
pub fn shard_top_k(
    scores: &[f32],
    range: std::ops::Range<usize>,
    prefix: &[usize],
    k: usize,
    exclude_seen: bool,
) -> Vec<Recommendation> {
    let mut local: Vec<Recommendation> = scores
        .get(range.clone())
        .unwrap_or(&[])
        .iter()
        .zip(range)
        .map(|(&score, item)| Recommendation { item, score })
        .filter(|r| !exclude_seen || !prefix.contains(&r.item))
        .collect();
    local.sort_by(|a, b| b.score.total_cmp(&a.score));
    local.truncate(k);
    local
}

/// Merges per-shard winners into the global top `k`. `parts` must be
/// ordered by ascending shard range (quarantined shards simply absent):
/// concatenation then preserves ascending item id among equal scores,
/// and the stable descending-score sort resolves ties to the lower id
/// exactly like a plain full-catalogue sort. Any item a shard dropped
/// had ≥ k better-or-equal items in its own shard, so with every shard
/// present the merge equals the exhaustive
/// [`PmmRec::recommend_top_k`] bit for bit.
pub fn merge_shard_top_k(parts: Vec<Vec<Recommendation>>, k: usize) -> Vec<Recommendation> {
    let mut merged: Vec<Recommendation> = parts.into_iter().flatten().collect();
    merged.sort_by(|a, b| b.score.total_cmp(&a.score));
    merged.truncate(k);
    merged
}

/// Chunked top-k over a score row: each block keeps its own top-k
/// candidates, then one stable merge sort picks the global winners.
/// Both the per-block and the final sort are stable with items
/// enumerated in ascending id, so ties resolve to the lower id exactly
/// like a plain full-catalogue sort — the result is identical at every
/// worker count. An item a block drops has ≥ k better-or-equal items
/// in its own block, all of which also outrank it globally, so it can
/// never belong to the true top k.
fn top_k_chunked(scores: &[f32], k: usize, keep: impl Fn(usize) -> bool + Sync) -> Vec<Recommendation> {
    let mut ranked: Vec<Recommendation> = pmm_par::map_chunks(scores, 1 << 15, |off, block| {
        let mut local: Vec<Recommendation> = block
            .iter()
            .enumerate()
            .map(|(i, &score)| Recommendation { item: off + i, score })
            .filter(|r| keep(r.item))
            .collect();
        local.sort_by(|a, b| b.score.total_cmp(&a.score));
        local.truncate(k);
        local
    })
    .into_iter()
    .flatten()
    .collect();
    ranked.sort_by(|a, b| b.score.total_cmp(&a.score));
    ranked.truncate(k);
    ranked
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PmmRec, PmmRecConfig};
    use pmm_data::registry::{build_dataset, DatasetId, Scale};
    use pmm_data::split::LeaveOneOut;
    use pmm_data::world::{World, WorldConfig};
    use pmm_eval::SeqRecommender;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model() -> (PmmRec, pmm_data::dataset::Dataset) {
        let world = World::new(WorldConfig::default());
        let ds = build_dataset(&world, DatasetId::HmClothes, Scale::Tiny, 42);
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = PmmRecConfig {
            d: 16,
            heads: 2,
            text_layers: 1,
            vision_layers: 1,
            user_layers: 1,
            dropout: 0.0,
            ..Default::default()
        };
        (PmmRec::new(cfg, &ds, &mut rng), ds)
    }

    #[test]
    fn item_representations_cover_catalogue() {
        let (m, ds) = model();
        let reps = m.item_representations();
        assert_eq!(reps.shape(), &[ds.items.len(), 16]);
        assert!(reps.all_finite());
    }

    #[test]
    fn encode_prefixes_shapes() {
        let (m, _) = model();
        let reps = m.encode_prefixes(&[&[0, 1, 2], &[3]]);
        assert_eq!(reps.shape(), &[2, 16]);
    }

    #[test]
    fn recommend_returns_sorted_unseen_items() {
        let (m, ds) = model();
        let prefix = [0usize, 1, 2];
        let recs = m.recommend_top_k(&prefix, 5, true).unwrap();
        assert_eq!(recs.len(), 5.min(ds.items.len() - prefix.len()));
        for w in recs.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
        for r in &recs {
            assert!(!prefix.contains(&r.item));
        }
    }

    #[test]
    fn recommend_scores_match_trait_scoring() {
        let (m, _) = model();
        let prefix = [0usize, 1];
        let recs = m.recommend_top_k(&prefix, 3, false).unwrap();
        let case = LeaveOneOut { prefix: prefix.to_vec(), target: 0 };
        let scores = m.score_cases(&[case]).remove(0);
        for r in &recs {
            assert_eq!(r.score, scores[r.item]);
        }
    }

    #[test]
    fn top_k_chunked_matches_global_sort_at_every_thread_count() {
        // Synthetic score row spanning four 32768-score chunks with an
        // odd tail, and only 97 distinct score values so ties are
        // everywhere and the ascending-id tie-break is load-bearing.
        let n = (1usize << 17) + 3;
        let scores: Vec<f32> =
            (0..n).map(|i| ((i * 2_654_435_761) % 97) as f32 / 97.0).collect();
        let keep = |item: usize| !item.is_multiple_of(13);
        let mut naive: Vec<Recommendation> = scores
            .iter()
            .enumerate()
            .map(|(item, &score)| Recommendation { item, score })
            .filter(|r| keep(r.item))
            .collect();
        naive.sort_by(|a, b| b.score.total_cmp(&a.score));
        naive.truncate(25);
        for t in [1usize, 2, 4, 7] {
            pmm_par::set_threads(Some(t));
            let got = super::top_k_chunked(&scores, 25, keep);
            assert_eq!(got, naive, "threads={t}");
        }
        pmm_par::set_threads(None);
    }

    #[test]
    fn shard_ranges_partition_every_id_once() {
        for (n, shards) in [(0usize, 3usize), (5, 1), (7, 4), (64, 7), (100, 7), (3, 8)] {
            let ranges = shard_ranges(n, shards);
            assert_eq!(ranges.len(), shards.max(1), "n={n} shards={shards}");
            let mut next = 0usize;
            for r in &ranges {
                assert_eq!(r.start, next, "contiguous ascending coverage");
                next = r.end;
            }
            assert_eq!(next, n, "every id covered exactly once");
            let (min, max) = ranges
                .iter()
                .fold((usize::MAX, 0usize), |(lo, hi), r| (lo.min(r.len()), hi.max(r.len())));
            assert!(max - min <= 1, "balanced within one: n={n} shards={shards}");
        }
    }

    #[test]
    fn shard_merge_matches_exhaustive_top_k_at_every_shard_count() {
        let (m, ds) = model();
        let n = ds.items.len();
        let prefix = [0usize, 1, 2];
        let k = 10;
        let exhaustive = m.recommend_top_k(&prefix, k, true).unwrap();
        let cat = m.serve_catalog(crate::Modality::Both).unwrap();
        let user = m.serve_user_vector(&cat, &prefix).unwrap();
        let scores = m.serve_scores(&cat, &user);
        assert_eq!(scores.len(), n);
        for shards in [1usize, 2, 4, 7] {
            // At 7 shards the tiny catalogue's shards hold fewer than
            // k items each — the merge must still be exact.
            let parts: Vec<Vec<Recommendation>> = shard_ranges(n, shards)
                .into_iter()
                .map(|r| shard_top_k(&scores, r, &prefix, k, true))
                .collect();
            let merged = merge_shard_top_k(parts, k);
            assert_eq!(merged, exhaustive, "shards={shards}");
        }
        // The int8 score row composes the same way.
        let qcat = m.serve_catalog_q(crate::Modality::Both).unwrap();
        let q_exhaustive = m.serve_rank_q(&qcat, &user, &prefix, k, true);
        let q_scores = m.serve_scores_q(&qcat, &user);
        for shards in [2usize, 7] {
            let parts: Vec<Vec<Recommendation>> = shard_ranges(n, shards)
                .into_iter()
                .map(|r| shard_top_k(&q_scores, r, &prefix, k, true))
                .collect();
            assert_eq!(merge_shard_top_k(parts, k), q_exhaustive, "int8 shards={shards}");
        }
    }

    #[test]
    fn shard_merge_resolves_k_boundary_ties_like_the_exhaustive_sort() {
        // 4096 scores drawn from only 5 distinct values: the k-th slot
        // sits inside a tie group that straddles shard boundaries, so
        // the ascending-id tie-break is load-bearing in the merge.
        let n = 4096usize;
        let scores: Vec<f32> = (0..n).map(|i| ((i * 2_654_435_761) % 5) as f32).collect();
        let prefix = [3usize, 7, 11];
        for k in [1usize, 25, 100] {
            let mut naive: Vec<Recommendation> = scores
                .iter()
                .enumerate()
                .map(|(item, &score)| Recommendation { item, score })
                .filter(|r| !prefix.contains(&r.item))
                .collect();
            naive.sort_by(|a, b| b.score.total_cmp(&a.score));
            naive.truncate(k);
            assert_eq!(super::top_k_chunked(&scores, k, |i| !prefix.contains(&i)), naive);
            for shards in [1usize, 2, 4, 7] {
                let parts: Vec<Vec<Recommendation>> = shard_ranges(n, shards)
                    .into_iter()
                    .map(|r| shard_top_k(&scores, r, &prefix, k, true))
                    .collect();
                assert_eq!(merge_shard_top_k(parts, k), naive, "k={k} shards={shards}");
            }
        }
    }

    #[test]
    fn quantized_rank_scores_track_f32_within_quant_step() {
        let (m, ds) = model();
        let prefix = [0usize, 1, 2];
        let cat = m.serve_catalog(crate::Modality::Both).unwrap();
        let qcat = m.serve_catalog_q(crate::Modality::Both).unwrap();
        assert_eq!(qcat.shape(), [ds.items.len(), 16]);
        let user = m.serve_user_vector(&cat, &prefix).unwrap();
        let exact = m.serve_rank(&cat, &user, &prefix, ds.items.len(), false);
        let quant = m.serve_rank_q(&qcat, &user, &prefix, ds.items.len(), false);
        assert_eq!(exact.len(), quant.len());
        // Bound: k · (εu·max|cat| + εc·max|u| + εu·εc) with per-row εs.
        let umax = user.data().iter().fold(0.0f32, |a, v| a.max(v.abs()));
        let cmax = cat.data().iter().fold(0.0f32, |a, v| a.max(v.abs()));
        let quser = pmm_tensor::QTensor::quantize_rows(&user);
        let eu = quser.row_scale(0) * 0.5;
        let mut by_item_exact: Vec<f32> = vec![0.0; exact.len()];
        let mut by_item_quant: Vec<f32> = vec![0.0; quant.len()];
        for r in &exact {
            by_item_exact[r.item] = r.score;
        }
        for r in &quant {
            by_item_quant[r.item] = r.score;
        }
        for item in 0..exact.len() {
            let ec = qcat.row_scale(item) * 0.5;
            let bound = 16.0 * (eu * cmax + ec * umax + eu * ec) + 1e-4;
            let diff = (by_item_exact[item] - by_item_quant[item]).abs();
            assert!(diff <= bound, "item {item}: diff {diff} exceeds bound {bound}");
        }
    }

    #[test]
    fn recommend_top_k_with_int8_matches_staged_composition() {
        let (m, _) = model();
        let prefix = [0usize, 1, 2];
        let direct = m.recommend_top_k_with(crate::Precision::Int8, &prefix, 5, true).unwrap();
        let cat = m.serve_catalog(crate::Modality::Both).unwrap();
        let qcat = m.serve_catalog_q(crate::Modality::Both).unwrap();
        let user = m.serve_user_vector(&cat, &prefix).unwrap();
        let staged = m.serve_rank_q(&qcat, &user, &prefix, 5, true);
        assert_eq!(direct, staged, "int8 stage composition must be bit-identical");
        // F32 precision through the same knob is the exact path.
        assert_eq!(
            m.recommend_top_k_with(crate::Precision::F32, &prefix, 5, true).unwrap(),
            m.recommend_top_k(&prefix, 5, true).unwrap(),
        );
    }

    #[test]
    fn quantized_catalog_cache_is_invalidated_with_f32_cache() {
        use pmm_data::split::SplitDataset;
        use pmm_eval::{train_model, TrainConfig};
        let (mut m, ds) = model();
        let q_before = m.serve_catalog_q(crate::Modality::Both).unwrap();
        // Cache hit: same object contents.
        assert_eq!(q_before, m.serve_catalog_q(crate::Modality::Both).unwrap());
        let split = SplitDataset::new(ds);
        let mut rng = StdRng::seed_from_u64(9);
        let cfg = TrainConfig { max_epochs: 1, ..Default::default() };
        let _ = train_model(&mut m, &split, &cfg, &mut rng);
        let q_after = m.serve_catalog_q(crate::Modality::Both).unwrap();
        assert_ne!(q_before, q_after, "training must invalidate the quantized catalogue");
    }

    #[test]
    fn quantized_rank_is_bit_identical_across_thread_counts() {
        let (m, ds) = model();
        let prefix = [0usize, 1];
        let qcat = m.serve_catalog_q(crate::Modality::Both).unwrap();
        let cat = m.serve_catalog(crate::Modality::Both).unwrap();
        let user = m.serve_user_vector(&cat, &prefix).unwrap();
        let reference = m.serve_rank_q(&qcat, &user, &prefix, ds.items.len(), false);
        for t in [1usize, 2, 4, 7] {
            pmm_par::set_threads(Some(t));
            let got = m.serve_rank_q(&qcat, &user, &prefix, ds.items.len(), false);
            pmm_par::set_threads(None);
            assert_eq!(got, reference, "threads={t}");
        }
    }

    #[test]
    fn empty_prefix_returns_typed_error() {
        let (m, _) = model();
        assert_eq!(m.recommend_top_k(&[], 5, false), Err(RecommendError::EmptyPrefix));
        let cat = m.serve_catalog(crate::Modality::Both).unwrap();
        assert_eq!(m.serve_user_vector(&cat, &[]), Err(RecommendError::EmptyPrefix));
    }

    #[test]
    fn staged_serving_matches_one_call_api() {
        let (m, _) = model();
        let prefix = [0usize, 1, 2];
        let direct = m.recommend_top_k(&prefix, 5, true).unwrap();
        let cat = m.serve_catalog(crate::Modality::Both).unwrap();
        let user = m.serve_user_vector(&cat, &prefix).unwrap();
        let staged = m.serve_rank(&cat, &user, &prefix, 5, true);
        assert_eq!(direct, staged, "stage composition must be bit-identical");
    }

    #[test]
    fn dual_model_serves_every_ladder_rung() {
        let (m, ds) = model();
        assert_eq!(
            m.modality_ladder(),
            vec![crate::Modality::Both, crate::Modality::TextOnly, crate::Modality::VisionOnly]
        );
        let prefix = [0usize, 1];
        let mut per_tier = Vec::new();
        for modality in m.modality_ladder() {
            let cat = m.serve_catalog(modality).unwrap();
            assert_eq!(cat.shape(), &[ds.items.len(), 16]);
            let user = m.serve_user_vector(&cat, &prefix).unwrap();
            let recs = m.serve_rank(&cat, &user, &prefix, 5, false);
            assert!(recs.iter().all(|r| r.score.is_finite()), "{modality:?}");
            per_tier.push(recs);
        }
        // The degraded paths rank against different representations, so
        // they must not be byte-copies of the full path.
        assert_ne!(per_tier[0], per_tier[1]);
        assert_ne!(per_tier[0], per_tier[2]);
    }

    #[test]
    fn unsupported_modality_is_a_typed_error() {
        let world = World::new(WorldConfig::default());
        let ds = build_dataset(&world, DatasetId::HmClothes, Scale::Tiny, 42);
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = PmmRecConfig {
            d: 16,
            heads: 2,
            text_layers: 1,
            vision_layers: 1,
            user_layers: 1,
            dropout: 0.0,
            modality: crate::Modality::TextOnly,
            ..Default::default()
        };
        let m = PmmRec::new(cfg, &ds, &mut rng);
        assert_eq!(m.modality_ladder(), vec![crate::Modality::TextOnly]);
        assert_eq!(
            m.serve_catalog(crate::Modality::VisionOnly),
            Err(RecommendError::UnsupportedModality(crate::Modality::VisionOnly))
        );
        assert_eq!(
            m.serve_catalog(crate::Modality::Both),
            Err(RecommendError::UnsupportedModality(crate::Modality::Both))
        );
    }

    /// Degrades a few catalogue items to one (or zero) modalities.
    fn degraded_dataset() -> pmm_data::dataset::Dataset {
        let world = World::new(WorldConfig::default());
        let mut ds = build_dataset(&world, DatasetId::HmClothes, Scale::Tiny, 42);
        ds.items[0].tokens.clear(); // text missing
        ds.items[1].patches.clear(); // vision missing
        ds.items[2].tokens.clear();
        ds.items[2].patches.clear(); // both missing
        ds.items[4].tokens.truncate(1); // short text, still served
        ds
    }

    #[test]
    fn missing_modality_items_score_finite() {
        let ds = degraded_dataset();
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = PmmRecConfig {
            d: 16,
            heads: 2,
            text_layers: 1,
            vision_layers: 1,
            user_layers: 1,
            dropout: 0.0,
            ..Default::default()
        };
        let m = PmmRec::new(cfg, &ds, &mut rng);
        // Every catalogue representation — including the degraded
        // items' — must be finite.
        assert!(m.item_representations().all_finite());
        // Serving a prefix that runs *through* degraded items works.
        let recs = m.recommend_top_k(&[0, 1, 2, 4], 5, false).unwrap();
        assert!(!recs.is_empty());
        assert!(recs.iter().all(|r| r.score.is_finite()));
        // And full eval over leave-one-out cases stays finite.
        let split = pmm_data::split::SplitDataset::new(degraded_dataset());
        let mut rng = StdRng::seed_from_u64(1);
        let m = PmmRec::new(*m.config(), &split.dataset, &mut rng);
        let metrics = pmm_eval::evaluate_cases(&m, &split.valid);
        assert!(metrics.ndcg10().is_finite() && metrics.hr10().is_finite());
    }

    #[test]
    fn partial_items_fall_back_to_surviving_modality() {
        let ds = degraded_dataset();
        let mut rng = StdRng::seed_from_u64(2);
        let cfg = PmmRecConfig {
            d: 16,
            heads: 2,
            text_layers: 1,
            vision_layers: 1,
            user_layers: 1,
            dropout: 0.0,
            ..Default::default()
        };
        let m = PmmRec::new(cfg, &ds, &mut rng);
        let reps = m.item_representations();
        // Item 3 is intact, items 0-2 degraded; all rows must differ
        // (the fallback is per item, not a shared constant).
        let d = 16;
        let row = |i: usize| &reps.data()[i * d..(i + 1) * d];
        assert_ne!(row(0), row(1), "text-CLS vs vision-CLS fallbacks differ");
        assert_ne!(row(0), row(3));
        assert_ne!(row(1), row(3));
    }

    #[test]
    fn single_modality_models_serve_degraded_items() {
        for modality in [crate::Modality::TextOnly, crate::Modality::VisionOnly] {
            let ds = degraded_dataset();
            let mut rng = StdRng::seed_from_u64(3);
            let cfg = PmmRecConfig {
                d: 16,
                heads: 2,
                text_layers: 1,
                vision_layers: 1,
                user_layers: 1,
                dropout: 0.0,
                modality,
                ..Default::default()
            };
            let m = PmmRec::new(cfg, &ds, &mut rng);
            assert!(m.item_representations().all_finite(), "{modality:?}");
            let recs = m.recommend_top_k(&[0, 2], 3, false).unwrap();
            assert!(recs.iter().all(|r| r.score.is_finite()), "{modality:?}");
        }
    }
}
