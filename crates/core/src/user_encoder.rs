//! The user encoder (Eq. 4): learned position embeddings plus a causal
//! Transformer, architecturally identical to SASRec for fair
//! comparison.

use crate::config::PmmRecConfig;
use pmm_nn::{Ctx, Dropout, Param, ParamStore, TransformerEncoder};
use pmm_tensor::{Tensor, Var};
use rand::rngs::StdRng;

/// Causal sequence encoder over item representations.
pub struct UserEncoder {
    pos: Param,
    encoder: TransformerEncoder,
    dropout: Dropout,
    max_len: usize,
}

impl UserEncoder {
    /// Registers parameters under `{name}.*`.
    pub fn new(store: &mut ParamStore, name: &str, cfg: &PmmRecConfig, rng: &mut StdRng) -> Self {
        UserEncoder {
            pos: store.register(
                format!("{name}.pos"),
                Tensor::randn(&[cfg.max_len, cfg.d], 0.02, rng),
            ),
            encoder: TransformerEncoder::new(store, &format!("{name}.trm"), cfg.user_encoder_cfg(), rng),
            dropout: Dropout::new(cfg.dropout),
            max_len: cfg.max_len,
        }
    }

    /// Encodes item representations `[b*l, d]` into hidden states
    /// `[b*l, d]` (h in Eq. 4). `lens` are valid sequence lengths.
    #[track_caller]
    pub fn forward(&self, ctx: &mut Ctx<'_>, items: &Var, b: usize, l: usize, lens: &[usize]) -> Var {
        assert!(
            l <= self.max_len,
            "user encoder: sequence capacity {l} exceeds max_len {}",
            self.max_len
        );
        let pos_ids: Vec<usize> = (0..b * l).map(|r| r % l).collect();
        let pos = ctx.var(&self.pos).gather_rows(&pos_ids);
        let x = items.add(&pos);
        let x = self.dropout.forward(ctx, &x);
        self.encoder.forward(ctx, &x, b, l, lens)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn forward_shape_and_causality() {
        let cfg = PmmRecConfig {
            d: 16,
            heads: 2,
            dropout: 0.0,
            ..Default::default()
        };
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let ue = UserEncoder::new(&mut store, "ue", &cfg, &mut rng);
        let base = Tensor::randn(&[4, 16], 1.0, &mut rng);
        let mut pert = base.clone();
        pert.data_mut()[3 * 16] += 5.0;
        let mut c0 = Ctx::eval();
        let y0 = ue.forward(&mut c0, &Var::constant(base), 1, 4, &[4]);
        assert_eq!(y0.shape(), &[4, 16]);
        let mut c1 = Ctx::eval();
        let y1 = ue.forward(&mut c1, &Var::constant(pert), 1, 4, &[4]);
        for j in 0..3 * 16 {
            assert!((y0.value().data()[j] - y1.value().data()[j]).abs() < 1e-4);
        }
    }

    #[test]
    #[should_panic(expected = "exceeds max_len")]
    fn rejects_overlong_sequences() {
        let cfg = PmmRecConfig {
            d: 16,
            heads: 2,
            max_len: 4,
            ..Default::default()
        };
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let ue = UserEncoder::new(&mut store, "ue", &cfg, &mut rng);
        let mut ctx = Ctx::eval();
        let x = Var::constant(Tensor::zeros(&[5, 16]));
        let _ = ue.forward(&mut ctx, &x, 1, 5, &[5]);
    }

    #[test]
    fn position_embeddings_distinguish_orders() {
        let cfg = PmmRecConfig {
            d: 16,
            heads: 2,
            dropout: 0.0,
            ..Default::default()
        };
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let ue = UserEncoder::new(&mut store, "ue", &cfg, &mut rng);
        // Same two item vectors in both orders; final hidden must differ.
        let a = Tensor::randn(&[1, 16], 1.0, &mut rng).into_vec();
        let b = Tensor::randn(&[1, 16], 1.0, &mut rng).into_vec();
        let ab = Tensor::from_vec([a.clone(), b.clone()].concat(), &[2, 16]).unwrap();
        let ba = Tensor::from_vec([b, a].concat(), &[2, 16]).unwrap();
        let mut c0 = Ctx::eval();
        let h_ab = ue.forward(&mut c0, &Var::constant(ab), 1, 2, &[2]);
        let mut c1 = Ctx::eval();
        let h_ba = ue.forward(&mut c1, &Var::constant(ba), 1, 2, &[2]);
        let last_ab = &h_ab.value().data()[16..];
        let last_ba = &h_ba.value().data()[16..];
        assert_ne!(last_ab, last_ba);
    }
}
