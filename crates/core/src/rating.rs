//! Rating prediction — the paper's stated future-work extension.
//!
//! A small MLP head is trained as a probe on top of a (trained or
//! transferred) PMMRec backbone: the input is the concatenation of the
//! user representation (final user-encoder hidden state over the
//! prefix) and the candidate item representation; the output is a
//! scalar rating trained with MSE. Because the backbone is content-
//! based, the head generalises to items never rated before — the same
//! property that powers the cold-start results.

use crate::model::PmmRec;
use pmm_nn::{AdamW, AdamWConfig, Ctx, Linear, ParamStore};
use pmm_tensor::{Tensor, Var};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;

/// Prepared rating-prediction data: `(prefix, item, rating)` triples.
pub struct RatingData {
    triples: Vec<(Vec<usize>, usize, f32)>,
}

impl RatingData {
    /// Builds from borrowed triples (see
    /// `pmm_data::ratings::Ratings::triples`).
    pub fn new(triples: Vec<(Vec<usize>, usize, f32)>) -> RatingData {
        RatingData { triples }
    }

    /// Number of rating examples.
    pub fn len(&self) -> usize {
        self.triples.len()
    }

    /// True when no examples are present.
    pub fn is_empty(&self) -> bool {
        self.triples.is_empty()
    }

    /// Read access to the underlying triples.
    pub fn triples(&self) -> &[(Vec<usize>, usize, f32)] {
        &self.triples
    }

    /// Splits off the last `fraction` of examples as a held-out set.
    pub fn split_holdout(mut self, fraction: f32) -> (RatingData, RatingData) {
        let n = self.triples.len();
        let hold = ((n as f32 * fraction) as usize).clamp(1, n.saturating_sub(1).max(1));
        let tail = self.triples.split_off(n - hold);
        (self, RatingData { triples: tail })
    }
}

/// The rating head:
/// `rating = w2 · gelu(W1 [h_user ; mean(prefix reps) ; e_item]) + b`.
///
/// The mean of the prefix item representations is an explicit taste
/// summary — ratings are driven by user-taste/item affinity, which the
/// causal last state alone under-represents.
pub struct RatingHead {
    store: ParamStore,
    l1: Linear,
    l2: Linear,
    opt: AdamW,
    batch: usize,
}

impl RatingHead {
    /// Creates a head for backbones of hidden size `d`.
    pub fn new(d: usize, lr: f32, rng: &mut StdRng) -> RatingHead {
        let mut store = ParamStore::new();
        let l1 = Linear::new(&mut store, "rating.l1", 3 * d, d, true, rng);
        let l2 = Linear::new(&mut store, "rating.l2", d, 1, true, rng);
        RatingHead {
            store,
            l1,
            l2,
            opt: AdamW::new(lr, AdamWConfig::default()),
            batch: 64,
        }
    }

    /// Builds the `[n, 3d]` head inputs for a batch of triples.
    fn features(&self, backbone: &PmmRec, triples: &[(Vec<usize>, usize, f32)]) -> Tensor {
        let prefixes: Vec<&[usize]> = triples.iter().map(|(p, _, _)| p.as_slice()).collect();
        let users = backbone.encode_prefixes(&prefixes);
        let cat = backbone.item_representations();
        let items: Vec<usize> = triples.iter().map(|&(_, i, _)| i).collect();
        let item_reps = cat.gather_rows(&items);
        let (n, d) = (triples.len(), users.shape()[1]);
        let mut data = Vec::with_capacity(n * 3 * d);
        for (i, (prefix, _, _)) in triples.iter().enumerate() {
            data.extend_from_slice(&users.data()[i * d..(i + 1) * d]);
            // Taste summary: mean of the prefix's item representations.
            let mut mean = vec![0.0f32; d];
            for &p in prefix.iter() {
                for (m, &v) in mean.iter_mut().zip(&cat.data()[p * d..(p + 1) * d]) {
                    *m += v / prefix.len() as f32;
                }
            }
            data.extend_from_slice(&mean);
            data.extend_from_slice(&item_reps.data()[i * d..(i + 1) * d]);
        }
        Tensor::from_vec(data, &[n, 3 * d]).expect("rating features")
    }

    fn forward(&self, ctx: &mut Ctx<'_>, x: &Var) -> Var {
        let h = self.l1.forward(ctx, x).gelu();
        self.l2.forward(ctx, &h)
    }

    /// One training epoch over the rating data (backbone frozen);
    /// returns the mean MSE.
    pub fn train_epoch(&mut self, backbone: &PmmRec, data: &RatingData, rng: &mut StdRng) -> f32 {
        let mut order: Vec<usize> = (0..data.triples.len()).collect();
        order.shuffle(rng);
        let mut total = 0.0f32;
        let mut batches = 0usize;
        for chunk in order.chunks(self.batch) {
            let triples: Vec<(Vec<usize>, usize, f32)> =
                chunk.iter().map(|&i| data.triples[i].clone()).collect();
            let x = Var::constant(self.features(backbone, &triples));
            let targets: Vec<f32> = triples.iter().map(|&(_, _, r)| r).collect();
            let mut ctx = Ctx::train(rng);
            let pred = self.forward(&mut ctx, &x);
            let loss = pred.mse_loss(&targets, None);
            total += loss.value().scalar_value();
            loss.backward();
            self.opt.step(&self.store, &ctx);
            batches += 1;
        }
        if batches == 0 {
            0.0
        } else {
            total / batches as f32
        }
    }

    /// Predicts ratings for triples (the rating value field is ignored).
    pub fn predict(&self, backbone: &PmmRec, triples: &[(Vec<usize>, usize, f32)]) -> Vec<f32> {
        if triples.is_empty() {
            return Vec::new();
        }
        let x = Var::constant(self.features(backbone, triples));
        let mut ctx = Ctx::eval();
        self.forward(&mut ctx, &x).value().data().to_vec()
    }

    /// RMSE and MAE on held-out data.
    pub fn evaluate(&self, backbone: &PmmRec, data: &RatingData) -> (f32, f32) {
        let preds = self.predict(backbone, &data.triples);
        rmse_mae(
            &preds,
            &data.triples.iter().map(|&(_, _, r)| r).collect::<Vec<_>>(),
        )
    }
}

/// RMSE and MAE of predictions against targets.
#[track_caller]
pub fn rmse_mae(preds: &[f32], targets: &[f32]) -> (f32, f32) {
    assert_eq!(preds.len(), targets.len(), "rmse_mae: length mismatch");
    if preds.is_empty() {
        return (0.0, 0.0);
    }
    let n = preds.len() as f32;
    let mut se = 0.0f32;
    let mut ae = 0.0f32;
    for (&p, &t) in preds.iter().zip(targets) {
        se += (p - t) * (p - t);
        ae += (p - t).abs();
    }
    ((se / n).sqrt(), ae / n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PmmRec, PmmRecConfig};
    use pmm_data::ratings::synthesize_ratings;
    use pmm_data::registry::{build_dataset, DatasetId, Scale};
    use pmm_data::world::{World, WorldConfig};
    use rand::SeedableRng;

    fn fixture() -> (PmmRec, RatingData, RatingData, f32) {
        let world = World::new(WorldConfig::default());
        let ds = build_dataset(&world, DatasetId::HmClothes, Scale::Tiny, 42);
        let ratings = synthesize_ratings(&ds, 7);
        let triples: Vec<(Vec<usize>, usize, f32)> = ratings
            .triples(&ds)
            .into_iter()
            .map(|(p, i, r)| (p.to_vec(), i, r))
            .collect();
        let mean = ratings.global_mean();
        let (train, test) = RatingData::new(triples).split_holdout(0.2);
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = PmmRecConfig {
            d: 16,
            heads: 2,
            text_layers: 1,
            vision_layers: 1,
            user_layers: 1,
            dropout: 0.0,
            ..Default::default()
        };
        let mut backbone = PmmRec::new(cfg, &ds, &mut rng);
        // A couple of epochs so representations carry content signal.
        let split = pmm_data::split::SplitDataset::new(ds);
        for _ in 0..5 {
            pmm_eval::SeqRecommender::train_epoch(&mut backbone, &split.train, &mut rng);
        }
        (backbone, train, test, mean)
    }

    #[test]
    fn rating_head_beats_global_mean_baseline() {
        let (backbone, train, test, mean) = fixture();
        let mut rng = StdRng::seed_from_u64(1);
        let mut head = RatingHead::new(16, 3e-3, &mut rng);
        let mut last = f32::INFINITY;
        for _ in 0..30 {
            last = head.train_epoch(&backbone, &train, &mut rng);
        }
        assert!(last.is_finite());
        let (rmse, mae) = head.evaluate(&backbone, &test);
        // Baseline: predict the global mean for everything.
        let baseline: Vec<f32> = vec![mean; test.len()];
        let targets: Vec<f32> = test.triples.iter().map(|&(_, _, r)| r).collect();
        let (base_rmse, _) = rmse_mae(&baseline, &targets);
        assert!(
            rmse < base_rmse,
            "content head RMSE {rmse:.3} should beat mean baseline {base_rmse:.3}"
        );
        assert!(mae <= rmse + 1e-4);
    }

    #[test]
    fn rmse_mae_hand_values() {
        let (rmse, mae) = rmse_mae(&[1.0, 3.0], &[2.0, 1.0]);
        assert!((mae - 1.5).abs() < 1e-6);
        assert!((rmse - (2.5f32).sqrt()).abs() < 1e-6);
    }

    #[test]
    fn holdout_split_partitions() {
        let triples: Vec<(Vec<usize>, usize, f32)> =
            (0..10).map(|i| (vec![0], i, 3.0)).collect();
        let (a, b) = RatingData::new(triples).split_holdout(0.3);
        assert_eq!(a.len() + b.len(), 10);
        assert_eq!(b.len(), 3);
    }
}
