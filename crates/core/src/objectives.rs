//! Mask construction for the contrastive objectives (Eqs. 5–9, 11).
//!
//! Every objective reduces to `group_contrastive_loss(sims, pos, den,
//! weights)`; this module builds the `pos`/`den` masks from a batch:
//!
//! * **DAP** (Eq. 5): anchor `h_{u,l}`, positive `e_{l+1}`, negatives =
//!   in-batch items not interacted by user `u`.
//! * **NICL** (Eq. 8): anchor is one modality's CLS of item `i`;
//!   positives are the *other* modality of `i`, the other modality of
//!   the next item `j`, and the *same* modality of `j`; negatives are
//!   both modalities of in-batch items from other users, excluding `i`
//!   and `j`. The [`NiclVariant`] ladder (VCL → ICL → NCL → NICL)
//!   toggles the extra positives/negatives for the Table VIII ablation.
//! * **RCL** (Eq. 11): identity positives between original and
//!   corrupted pooled sequences.

use crate::ablation::NiclVariant;
use pmm_data::batch::Batch;
use pmm_tensor::Tensor;
use std::collections::{HashMap, HashSet};

/// Index structures shared by all per-batch objectives.
pub struct BatchIndex {
    /// Sorted distinct item ids in the batch (the candidate columns).
    pub unique: Vec<usize>,
    /// item id -> candidate column.
    pub col: HashMap<usize, usize>,
    /// Per sequence: the set of items that user interacted with (these
    /// are excluded from that user's negatives, per Eq. 5).
    pub own: Vec<HashSet<usize>>,
}

impl BatchIndex {
    /// Builds the index for a batch.
    pub fn new(batch: &Batch) -> BatchIndex {
        let unique = batch.distinct_items();
        let col: HashMap<usize, usize> = unique.iter().enumerate().map(|(c, &i)| (i, c)).collect();
        let own = (0..batch.b)
            .map(|bi| {
                (0..batch.lens[bi])
                    .map(|t| batch.items[bi * batch.l + t])
                    .collect::<HashSet<usize>>()
            })
            .collect();
        BatchIndex { unique, col, own }
    }

    /// Number of candidate columns.
    pub fn n_cols(&self) -> usize {
        self.unique.len()
    }
}

/// DAP masks: `(pos, den, row_weights)` over `[b*l, C]`.
///
/// Row `(bi, t)` is active when the next position `t+1` is valid; its
/// positive is the column of the next item, its denominator is that
/// positive plus every candidate the user never interacted with.
pub fn dap_masks(batch: &Batch, idx: &BatchIndex) -> (Tensor, Tensor, Vec<f32>) {
    let (b, l, c) = (batch.b, batch.l, idx.n_cols());
    let mut pos = vec![0.0f32; b * l * c];
    let mut den = vec![0.0f32; b * l * c];
    let mut w = vec![0.0f32; b * l];
    for bi in 0..b {
        for t in 0..l {
            let row = bi * l + t;
            if t + 1 >= batch.lens[bi] {
                continue;
            }
            let next = batch.items[bi * l + t + 1];
            let next_col = idx.col[&next];
            w[row] = 1.0;
            pos[row * c + next_col] = 1.0;
            den[row * c + next_col] = 1.0;
            for (cc, &cand) in idx.unique.iter().enumerate() {
                if !idx.own[bi].contains(&cand) {
                    den[row * c + cc] = 1.0;
                }
            }
        }
    }
    (
        Tensor::from_vec(pos, &[b * l, c]).expect("dap pos"),
        Tensor::from_vec(den, &[b * l, c]).expect("dap den"),
        w,
    )
}

/// NICL masks over `[b*l, 2C]` where columns `0..C` are the **other**
/// modality's candidates and `C..2C` the anchor's **own** modality.
///
/// By this block convention the masks are identical for the T→V and
/// V→T directions, so one construction serves both (Eq. 9's symmetry).
pub fn nicl_masks(
    batch: &Batch,
    idx: &BatchIndex,
    variant: NiclVariant,
) -> (Tensor, Tensor, Vec<f32>) {
    let (b, l, c) = (batch.b, batch.l, idx.n_cols());
    let width = 2 * c;
    let mut pos = vec![0.0f32; b * l * width];
    let mut den = vec![0.0f32; b * l * width];
    let mut w = vec![0.0f32; b * l];
    let next_positives = variant.next_item_positives();
    let intra_negatives = variant.intra_modality_negatives();
    for bi in 0..b {
        for t in 0..l {
            let row = bi * l + t;
            // NICL anchors need a next item (the paper computes Eq. 8
            // over l in 1..L-1); plain VCL/ICL could use the final
            // position too, but we keep the anchor set identical across
            // variants so Table VIII compares like for like.
            if t + 1 >= batch.lens[bi] {
                continue;
            }
            let item = batch.items[bi * l + t];
            let next = batch.items[bi * l + t + 1];
            let (ci, cj) = (idx.col[&item], idx.col[&next]);
            w[row] = 1.0;
            let base = row * width;
            // Cross-modal positive of the anchor item (always).
            pos[base + ci] = 1.0;
            den[base + ci] = 1.0;
            if next_positives {
                // Other modality of the next item + same modality of
                // the next item.
                pos[base + cj] = 1.0;
                pos[base + c + cj] = 1.0;
            }
            for (cc, &cand) in idx.unique.iter().enumerate() {
                if idx.own[bi].contains(&cand) || cand == item || cand == next {
                    continue;
                }
                den[base + cc] = 1.0;
                if intra_negatives {
                    den[base + c + cc] = 1.0;
                }
            }
        }
    }
    (
        Tensor::from_vec(pos, &[b * l, width]).expect("nicl pos"),
        Tensor::from_vec(den, &[b * l, width]).expect("nicl den"),
        w,
    )
}

/// RCL masks over `[b, b]`: identity positives, full denominator.
pub fn rcl_masks(b: usize) -> (Tensor, Tensor) {
    let mut pos = vec![0.0f32; b * b];
    for i in 0..b {
        pos[i * b + i] = 1.0;
    }
    (
        Tensor::from_vec(pos, &[b, b]).expect("rcl pos"),
        Tensor::ones(&[b, b]),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch() -> Batch {
        // Two users: [10, 11, 12] and [20, 10].
        let s1 = vec![10usize, 11, 12];
        let s2 = vec![20usize, 10];
        Batch::from_sequences(&[&s1, &s2], 4)
    }

    #[test]
    fn batch_index_columns_are_sorted_distinct() {
        let b = batch();
        let idx = BatchIndex::new(&b);
        assert_eq!(idx.unique, vec![10, 11, 12, 20]);
        assert_eq!(idx.col[&12], 2);
        assert!(idx.own[0].contains(&11));
        assert!(!idx.own[0].contains(&20));
    }

    #[test]
    fn dap_positive_is_next_item() {
        let b = batch();
        let idx = BatchIndex::new(&b);
        let (pos, den, w) = dap_masks(&b, &idx);
        let c = idx.n_cols();
        // User 0, t=0: next is 11 (col 1).
        assert_eq!(pos.data()[1], 1.0);
        // Weights: user0 rows 0,1 valid; row 2 (last) invalid; user1 row l..l+1.
        assert_eq!(w, vec![1.0, 1.0, 0.0, 1.0, 0.0, 0.0]);
        // Denominator excludes user0's own items (10,11,12) except the positive.
        let row0 = &den.data()[..c];
        assert_eq!(row0, &[0.0, 1.0, 0.0, 1.0]); // pos(11) + negative 20
    }

    #[test]
    fn dap_negatives_exclude_all_own_items() {
        let b = batch();
        let idx = BatchIndex::new(&b);
        let (_, den, _) = dap_masks(&b, &idx);
        let c = idx.n_cols();
        // User 1, t=0 (row = l=3): own items {20, 10}; next = 10 (pos).
        let row = &den.data()[3 * c..4 * c];
        // 10 is the positive -> in den; 11, 12 are negatives; 20 own -> out.
        assert_eq!(row, &[1.0, 1.0, 1.0, 0.0]);
    }

    #[test]
    fn nicl_full_has_three_positives() {
        let b = batch();
        let idx = BatchIndex::new(&b);
        let (pos, den, w) = nicl_masks(&b, &idx, NiclVariant::Full);
        let c = idx.n_cols();
        // User 0, t=0: item 10 (col 0), next 11 (col 1).
        let prow = &pos.data()[..2 * c];
        assert_eq!(prow.iter().filter(|&&v| v == 1.0).count(), 3);
        assert_eq!(prow[0], 1.0); // other-modality of item
        assert_eq!(prow[1], 1.0); // other-modality of next
        assert_eq!(prow[c + 1], 1.0); // same-modality of next
        // Denominator: other-modality of item + both modalities of 20.
        let drow = &den.data()[..2 * c];
        assert_eq!(drow[0], 1.0);
        assert_eq!(drow[3], 1.0);
        assert_eq!(drow[c + 3], 1.0);
        assert_eq!(drow.iter().filter(|&&v| v == 1.0).count(), 3);
        assert_eq!(w[0], 1.0);
    }

    #[test]
    fn vcl_variant_strips_extras() {
        let b = batch();
        let idx = BatchIndex::new(&b);
        let (pos, den, _) = nicl_masks(&b, &idx, NiclVariant::Vcl);
        let c = idx.n_cols();
        let prow = &pos.data()[..2 * c];
        assert_eq!(prow.iter().filter(|&&v| v == 1.0).count(), 1);
        let drow = &den.data()[..2 * c];
        // No intra-modality negatives: the own-modality block is empty.
        assert!(drow[c..].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn ncl_variant_keeps_next_positives_without_intra_negatives() {
        let b = batch();
        let idx = BatchIndex::new(&b);
        let (pos, den, _) = nicl_masks(&b, &idx, NiclVariant::Ncl);
        let c = idx.n_cols();
        let prow = &pos.data()[..2 * c];
        assert_eq!(prow.iter().filter(|&&v| v == 1.0).count(), 3);
        let drow = &den.data()[..2 * c];
        assert!(drow[c..].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn icl_variant_adds_intra_negatives_only() {
        let b = batch();
        let idx = BatchIndex::new(&b);
        let (pos, den, _) = nicl_masks(&b, &idx, NiclVariant::Icl);
        let c = idx.n_cols();
        assert_eq!(pos.data()[..2 * c].iter().filter(|&&v| v == 1.0).count(), 1);
        // Intra-modality negative for item 20 present.
        assert_eq!(den.data()[c + 3], 1.0);
    }

    #[test]
    fn rcl_masks_are_identity_over_full() {
        let (pos, den) = rcl_masks(3);
        assert_eq!(pos.data(), &[1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0]);
        assert!(den.data().iter().all(|&v| v == 1.0));
    }
}
