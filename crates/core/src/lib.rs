//! # pmmrec
//!
//! The paper's contribution: a Pure Multi-Modality based Recommender
//! (PMMRec, ICDE 2024) — item text/vision encoders, a merge-attention
//! fusion module and a Transformer user encoder, trained with the four
//! objectives of Eq. 12:
//!
//! * **DAP** (Eq. 5) — dense auto-regressive next-item prediction with
//!   in-batch negatives,
//! * **NICL** (Eqs. 6–9) — next-item enhanced cross-modal contrastive
//!   learning (with the VCL / ICL / NCL ablation ladder),
//! * **NID** (Eq. 10) — noised item detection over corrupted sequences,
//! * **RCL** (Eq. 11) — robustness-aware sequence-level contrast.
//!
//! Components are plug-and-play: [`TransferSetting`] selects which
//! checkpoint prefixes to load and which modality path to run, covering
//! the paper's five transfer settings (Table I / Section III-E).
//!
//! ```no_run
//! use pmmrec::{PmmRec, PmmRecConfig};
//! use pmm_data::{registry, world::{World, WorldConfig}, Scale, SplitDataset};
//! use pmm_eval::{train_model, SeqRecommender, TrainConfig};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let world = World::new(WorldConfig::default());
//! let data = registry::build_dataset(&world, registry::DatasetId::HmClothes, Scale::Tiny, 42);
//! let split = SplitDataset::new(data);
//! let mut rng = StdRng::seed_from_u64(42);
//! let mut model = PmmRec::new(PmmRecConfig::default(), &split.dataset, &mut rng);
//! let result = train_model(&mut model, &split, &TrainConfig::default(), &mut rng);
//! println!("test: {}", result.test);
//! ```

pub mod ablation;
pub mod config;
pub mod encoders;
pub mod guard;
pub mod model;
pub mod objectives;
pub mod rating;
pub mod recommend;
pub mod transfer;
pub mod user_encoder;

pub use ablation::{NiclVariant, ObjectiveConfig};
pub use config::{Modality, PmmRecConfig, Precision};
pub use guard::{AnomalyGuard, GuardConfig, GuardReport, GuardVerdict};
pub use model::PmmRec;
pub use rating::{RatingData, RatingHead};
pub use recommend::{
    merge_shard_top_k, shard_ranges, shard_top_k, PartialShards, RecommendError, Recommendation,
};
pub use transfer::TransferSetting;
