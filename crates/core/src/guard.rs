//! Anomaly guard: the training-side half of the fault-tolerance layer.
//!
//! A single NaN loss would normally poison the AdamW moments and every
//! parameter they later touch — one bad batch ends the run. The guard
//! turns that into a recoverable event with an escalation ladder:
//!
//! 1. **Skip** — a step whose loss or gradient norm is non-finite is
//!    dropped before the optimizer sees it (no backward, no moment
//!    update), and the learning rate is backed off multiplicatively.
//! 2. **Rollback** — after `max_consecutive` anomalous steps in a row,
//!    the model restores the last good parameter snapshot and resets
//!    optimizer state, abandoning the divergent trajectory.
//! 3. **Recovery** — the first finite step after any anomaly restores
//!    the pre-backoff learning rate and resets the escalation counter.
//!
//! The state machine lives here, free of model specifics, so tests can
//! drive it exhaustively; [`crate::PmmRec`] wires its verdicts into the
//! actual train loop.

/// Anomaly-guard policy knobs.
///
/// The experiment-facing mirror of this struct is
/// [`pmm_eval::GuardPolicy`]: `TrainConfig.guard` carries the policy
/// into the harness, which hands it to the model via
/// `SeqRecommender::set_guard_policy` before the first epoch — so runs
/// can tune backoff/rollback behaviour without touching model code.
/// The defaults here and there are identical.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GuardConfig {
    /// Master switch; disabled means every step is treated as normal.
    pub enabled: bool,
    /// Consecutive anomalous steps tolerated before a rollback
    /// (`K` in the escalation ladder). Must be at least 1.
    pub max_consecutive: usize,
    /// Multiplicative learning-rate backoff applied per anomalous step.
    pub lr_backoff: f32,
    /// Floor under the backed-off learning rate.
    pub min_lr: f32,
}

impl Default for GuardConfig {
    fn default() -> Self {
        GuardConfig {
            enabled: true,
            max_consecutive: 3,
            lr_backoff: 0.5,
            min_lr: 1e-6,
        }
    }
}

/// What the training loop must do after reporting a step to the guard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuardVerdict {
    /// Step was healthy; apply it normally.
    Proceed,
    /// Step was anomalous; skip it and back off the learning rate.
    Skip,
    /// Too many consecutive anomalies; restore the last good snapshot
    /// and reset optimizer state.
    Rollback,
}

/// Cumulative guard activity, surfaced by [`crate::PmmRec`] after
/// training and asserted on by chaos tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GuardReport {
    /// Steps skipped for a non-finite loss or gradient norm.
    pub anomalies: u64,
    /// Snapshot rollbacks performed.
    pub rollbacks: u64,
    /// Recoveries (finite step after at least one anomaly).
    pub recoveries: u64,
}

/// The escalation state machine. One instance lives per model.
#[derive(Debug)]
pub struct AnomalyGuard {
    cfg: GuardConfig,
    consecutive: usize,
    report: GuardReport,
}

impl AnomalyGuard {
    /// A fresh guard under `cfg`.
    pub fn new(cfg: GuardConfig) -> AnomalyGuard {
        AnomalyGuard { cfg, consecutive: 0, report: GuardReport::default() }
    }

    /// The policy in force.
    pub fn config(&self) -> &GuardConfig {
        &self.cfg
    }

    /// Cumulative activity so far.
    pub fn report(&self) -> GuardReport {
        self.report
    }

    /// Reports one optimisation step; `finite` is whether both the loss
    /// and the gradient norm were finite. Returns the action the
    /// training loop must take.
    pub fn observe(&mut self, finite: bool) -> GuardVerdict {
        if !self.cfg.enabled {
            return GuardVerdict::Proceed;
        }
        if finite {
            if self.consecutive > 0 {
                self.consecutive = 0;
                self.report.recoveries += 1;
            }
            return GuardVerdict::Proceed;
        }
        self.report.anomalies += 1;
        self.consecutive += 1;
        if self.consecutive >= self.cfg.max_consecutive.max(1) {
            self.consecutive = 0;
            self.report.rollbacks += 1;
            GuardVerdict::Rollback
        } else {
            GuardVerdict::Skip
        }
    }

    /// The learning rate to run with after an anomalous step.
    pub fn backed_off_lr(&self, lr: f32) -> f32 {
        (lr * self.cfg.lr_backoff).max(self.cfg.min_lr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_stream_never_intervenes() {
        let mut g = AnomalyGuard::new(GuardConfig::default());
        for _ in 0..100 {
            assert_eq!(g.observe(true), GuardVerdict::Proceed);
        }
        assert_eq!(g.report(), GuardReport::default());
    }

    #[test]
    fn isolated_anomalies_skip_then_recover() {
        let mut g = AnomalyGuard::new(GuardConfig { max_consecutive: 3, ..Default::default() });
        assert_eq!(g.observe(false), GuardVerdict::Skip);
        assert_eq!(g.observe(true), GuardVerdict::Proceed);
        assert_eq!(g.observe(false), GuardVerdict::Skip);
        assert_eq!(g.observe(false), GuardVerdict::Skip);
        assert_eq!(g.observe(true), GuardVerdict::Proceed);
        let r = g.report();
        assert_eq!(r.anomalies, 3);
        assert_eq!(r.rollbacks, 0);
        assert_eq!(r.recoveries, 2);
    }

    #[test]
    fn k_consecutive_anomalies_trigger_rollback() {
        let mut g = AnomalyGuard::new(GuardConfig { max_consecutive: 3, ..Default::default() });
        assert_eq!(g.observe(false), GuardVerdict::Skip);
        assert_eq!(g.observe(false), GuardVerdict::Skip);
        assert_eq!(g.observe(false), GuardVerdict::Rollback);
        // The ladder restarts after a rollback.
        assert_eq!(g.observe(false), GuardVerdict::Skip);
        assert_eq!(g.report().rollbacks, 1);
        assert_eq!(g.report().anomalies, 4);
    }

    #[test]
    fn max_consecutive_one_rolls_back_immediately() {
        let mut g = AnomalyGuard::new(GuardConfig { max_consecutive: 1, ..Default::default() });
        assert_eq!(g.observe(false), GuardVerdict::Rollback);
        assert_eq!(g.observe(false), GuardVerdict::Rollback);
        assert_eq!(g.report().rollbacks, 2);
    }

    #[test]
    fn disabled_guard_is_inert() {
        let mut g = AnomalyGuard::new(GuardConfig { enabled: false, ..Default::default() });
        for _ in 0..10 {
            assert_eq!(g.observe(false), GuardVerdict::Proceed);
        }
        assert_eq!(g.report(), GuardReport::default());
    }

    #[test]
    fn lr_backoff_halves_with_floor() {
        let g = AnomalyGuard::new(GuardConfig {
            lr_backoff: 0.5,
            min_lr: 1e-3,
            ..Default::default()
        });
        assert!((g.backed_off_lr(0.1) - 0.05).abs() < 1e-9);
        assert_eq!(g.backed_off_lr(1e-3), 1e-3, "floor holds");
    }
}
