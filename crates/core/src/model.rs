//! The PMMRec model: composition, pre-training/fine-tuning steps,
//! scoring and component transfer.

use crate::ablation::ObjectiveConfig;
use crate::config::{Modality, PmmRecConfig};
use crate::encoders::{FusionModule, TextEncoder, VisionEncoder};
use crate::guard::{AnomalyGuard, GuardConfig, GuardReport, GuardVerdict};
use crate::objectives::{dap_masks, nicl_masks, rcl_masks, BatchIndex};
use crate::transfer::TransferSetting;
use crate::user_encoder::UserEncoder;
use pmm_data::batch::{Batch, BatchIter};
use pmm_data::corrupt::{corrupt_sequence, CorruptionConfig};
use pmm_data::dataset::Dataset;
use pmm_data::split::LeaveOneOut;
use pmm_data::world::Item;
use pmm_eval::SeqRecommender;
use pmm_nn::checkpoint::{self, CheckpointError, LoadReport};
use pmm_nn::{mask, AdamW, AdamWConfig, Ctx, Linear, ParamStore};
use pmm_obs::{EpochStats, LossBreakdown};
use pmm_tensor::{QTensor, Tensor, Var};
use rand::rngs::StdRng;
use std::cell::RefCell;
use std::path::Path;

/// The Pure Multi-Modality Recommender.
pub struct PmmRec {
    cfg: PmmRecConfig,
    obj: ObjectiveConfig,
    pretraining: bool,
    corpus: Vec<Item>,
    /// Items `0..base_items` came from the construction-time dataset;
    /// items past it arrived through streaming ingestion
    /// ([`PmmRec::ingest_items`]) and form the delta catalogue until a
    /// snapshot fold rebuilds the model over the union.
    base_items: usize,
    store: ParamStore,
    text: Option<TextEncoder>,
    vision: Option<VisionEncoder>,
    fusion: Option<FusionModule>,
    user: UserEncoder,
    nid_head: Linear,
    opt: AdamW,
    name: String,
    /// Cached `[n_items, d]` catalogue representations for scoring,
    /// one slot per serving modality; invalidated by every training
    /// epoch and by transfer loads.
    catalog: RefCell<CatalogCache>,
    /// Telemetry from the most recent `train_epoch`.
    last_stats: Option<EpochStats>,
    /// Non-finite loss/gradient escalation state machine.
    guard: AnomalyGuard,
    /// Learning rate before the guard's current backoff, if any; set on
    /// the first anomalous step of a streak and restored on recovery.
    healthy_lr: Option<f32>,
    /// Monotonic count of attempted optimisation steps, for telemetry.
    step_seq: u64,
    /// The tape snapshot from the most recent audited step, kept so
    /// tests can seed defects into a real training graph and assert
    /// the auditor rejects them.
    last_snapshot: Option<pmm_audit::GraphSnapshot>,
}

/// Per-modality catalogue cache: the serving runtime can rank against
/// the fused representations or against a single encoder's CLS rows
/// (the degraded tiers), and each path caches independently so breaker
/// flapping doesn't thrash recomputation.
#[derive(Default)]
struct CatalogCache {
    both: Option<Tensor>,
    text: Option<Tensor>,
    vision: Option<Tensor>,
    /// Int8 views of the same catalogues for the quantized serving
    /// path, cached separately so an f32-only deployment never pays
    /// quantization. Invalidated together with the f32 slots (the
    /// whole cache is replaced on weight changes), so a quantized
    /// catalogue can never outlive the f32 rows it was derived from.
    q_both: Option<QTensor>,
    q_text: Option<QTensor>,
    q_vision: Option<QTensor>,
}

impl CatalogCache {
    fn slot(&mut self, modality: Modality) -> &mut Option<Tensor> {
        match modality {
            Modality::Both => &mut self.both,
            Modality::TextOnly => &mut self.text,
            Modality::VisionOnly => &mut self.vision,
        }
    }

    fn get(&self, modality: Modality) -> Option<Tensor> {
        match modality {
            Modality::Both => self.both.clone(),
            Modality::TextOnly => self.text.clone(),
            Modality::VisionOnly => self.vision.clone(),
        }
    }

    fn q_slot(&mut self, modality: Modality) -> &mut Option<QTensor> {
        match modality {
            Modality::Both => &mut self.q_both,
            Modality::TextOnly => &mut self.q_text,
            Modality::VisionOnly => &mut self.q_vision,
        }
    }

    fn q_get(&self, modality: Modality) -> Option<QTensor> {
        match modality {
            Modality::Both => self.q_both.clone(),
            Modality::TextOnly => self.q_text.clone(),
            Modality::VisionOnly => self.q_vision.clone(),
        }
    }
}

/// Per-step telemetry from [`PmmRec::step`]. Objective components are
/// post-weighting, so `dap + nicl + nid + rcl == loss`.
#[derive(Default)]
struct StepOutcome {
    loss: f32,
    dap: f32,
    nicl: f32,
    nid: f32,
    rcl: f32,
    grad_norm: f32,
}

impl PmmRec {
    /// Builds a fresh model over `dataset`'s item corpus with the
    /// default (full) objective configuration.
    pub fn new(cfg: PmmRecConfig, dataset: &Dataset, rng: &mut StdRng) -> PmmRec {
        PmmRec::with_objectives(cfg, ObjectiveConfig::default(), dataset, rng)
    }

    /// Builds a model with explicit objective switches (ablations).
    pub fn with_objectives(
        cfg: PmmRecConfig,
        obj: ObjectiveConfig,
        dataset: &Dataset,
        rng: &mut StdRng,
    ) -> PmmRec {
        let corpus = dataset.items.clone();
        let spec = dataset.content;
        let (vocab, text_len, n_patches, patch_dim) =
            (spec.vocab, spec.text_len, spec.n_patches, spec.patch_dim);
        let mut store = ParamStore::new();
        let text = matches!(cfg.modality, Modality::Both | Modality::TextOnly).then(|| {
            TextEncoder::new(&mut store, "text_encoder", &cfg, vocab, text_len, rng)
        });
        let vision = matches!(cfg.modality, Modality::Both | Modality::VisionOnly).then(|| {
            VisionEncoder::new(&mut store, "vision_encoder", &cfg, n_patches, patch_dim, rng)
        });
        let fusion = (cfg.modality == Modality::Both)
            .then(|| FusionModule::new(&mut store, "fusion", &cfg, rng));
        let user = UserEncoder::new(&mut store, "user_encoder", &cfg, rng);
        let nid_head = Linear::new(&mut store, "nid_head", cfg.d, 3, true, rng);
        apply_block_freezing(&mut store, &cfg);
        let opt = AdamW::new(cfg.lr, AdamWConfig::default());
        let name = format!("PMMRec{}", cfg.modality.suffix());
        let base_items = corpus.len();
        PmmRec {
            cfg,
            obj,
            pretraining: false,
            corpus,
            base_items,
            store,
            text,
            vision,
            fusion,
            user,
            nid_head,
            opt,
            name,
            catalog: RefCell::new(CatalogCache::default()),
            last_stats: None,
            guard: AnomalyGuard::new(GuardConfig::default()),
            healthy_lr: None,
            step_seq: 0,
            last_snapshot: None,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &PmmRecConfig {
        &self.cfg
    }

    /// Switches between pre-training (all of Eq. 12) and fine-tuning
    /// (DAP only, Section III-E2).
    pub fn set_pretraining(&mut self, on: bool) {
        self.pretraining = on;
    }

    /// Overrides the display name (useful for table labelling).
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Total trainable scalar parameters.
    pub fn n_params(&self) -> usize {
        self.store.total_numel()
    }

    /// Replaces the anomaly-guard policy. Resets the guard's escalation
    /// state and report.
    pub fn set_guard_config(&mut self, cfg: GuardConfig) {
        self.guard = AnomalyGuard::new(cfg);
    }

    /// Cumulative anomaly-guard activity (skips, rollbacks, recoveries)
    /// over this model's lifetime.
    pub fn guard_report(&self) -> GuardReport {
        self.guard.report()
    }

    /// Completed optimizer steps. Anomalous (skipped) steps do not
    /// advance this counter — the invariant chaos tests assert on.
    pub fn optimizer_steps(&self) -> u64 {
        self.opt.steps()
    }

    /// Read access to the parameter store, for external checkpointing
    /// (e.g. [`pmm_nn::checkpoint::CheckpointRotation`]).
    pub fn param_store(&self) -> &ParamStore {
        &self.store
    }

    /// Clones every parameter tensor, in store order.
    fn snapshot_params(&self) -> Vec<Tensor> {
        self.store.params().iter().map(pmm_nn::Param::value_cloned).collect()
    }

    /// Restores a snapshot taken by [`PmmRec::snapshot_params`].
    fn restore_params(&self, snap: &[Tensor]) {
        debug_assert_eq!(snap.len(), self.store.params().len());
        for (p, t) in self.store.params().iter().zip(snap) {
            p.set_value(t.clone());
        }
    }

    /// Saves the full parameter set.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
        checkpoint::save(&self.store, path)
    }

    /// Loads pre-trained components per the transfer setting. The model
    /// must have been constructed with the setting's modality (the
    /// architectures must agree).
    #[track_caller]
    pub fn load_transfer(
        &mut self,
        path: impl AsRef<Path>,
        setting: TransferSetting,
    ) -> Result<LoadReport, CheckpointError> {
        assert_eq!(
            self.cfg.modality,
            setting.modality(),
            "load_transfer: model runs {:?} but setting {:?} requires {:?}",
            self.cfg.modality,
            setting,
            setting.modality()
        );
        self.catalog.replace(CatalogCache::default());
        checkpoint::load_filtered(&self.store, path, setting.prefixes())
    }

    // ------------------------------------------------------------------
    // Forward passes
    // ------------------------------------------------------------------

    /// Encodes unique items into per-item representations, returning
    /// `(rep, text_cls, vision_cls)`; the CLS pair is present only on
    /// the dual-modality path.
    ///
    /// On the dual-modality path, items missing exactly one modality
    /// are served from the surviving encoder's CLS instead of the
    /// fusion output (whose other half would be padding) — the
    /// text-only / vision-only serving paths of the paper's transfer
    /// settings, applied per item.
    fn encode_unique(&self, ctx: &mut Ctx<'_>, ids: &[usize]) -> (Var, Option<(Var, Var)>) {
        match self.cfg.modality {
            Modality::Both => {
                let t = self.text.as_ref().expect("text encoder").forward(ctx, &self.corpus, ids);
                let v = self
                    .vision
                    .as_ref()
                    .expect("vision encoder")
                    .forward(ctx, &self.corpus, ids);
                let e = self.fusion.as_ref().expect("fusion").forward(ctx, &t, &v);
                let n = ids.len();
                let partial = ids.iter().any(|&i| {
                    self.corpus[i].tokens.is_empty() != self.corpus[i].patches.is_empty()
                });
                let rep = if partial {
                    // Row j of `combined` is the fused rep, row n+j the
                    // text CLS, row 2n+j the vision CLS of item j.
                    let combined = Var::concat0(&[e, t.cls.clone(), v.cls.clone()]);
                    let rows: Vec<usize> = ids
                        .iter()
                        .enumerate()
                        .map(|(j, &i)| {
                            let item = &self.corpus[i];
                            match (item.tokens.is_empty(), item.patches.is_empty()) {
                                (false, true) => n + j, // vision missing -> text CLS
                                (true, false) => 2 * n + j, // text missing -> vision CLS
                                _ => j,
                            }
                        })
                        .collect();
                    combined.gather_rows(&rows)
                } else {
                    e
                };
                (rep, Some((t.cls, v.cls)))
            }
            Modality::TextOnly => {
                let t = self.text.as_ref().expect("text encoder").forward(ctx, &self.corpus, ids);
                (t.cls, None)
            }
            Modality::VisionOnly => {
                let v = self
                    .vision
                    .as_ref()
                    .expect("vision encoder")
                    .forward(ctx, &self.corpus, ids);
                (v.cls, None)
            }
        }
    }

    /// One optimisation step over a batch; returns the loss value and
    /// its per-objective decomposition.
    fn step(&mut self, batch: &Batch, rng: &mut StdRng) -> StepOutcome {
        let idx = BatchIndex::new(batch);
        let (b, l) = (batch.b, batch.l);
        let valid_w = mask::row_weights(b, l, &batch.lens);

        // Corruption happens before the graph is built (it needs the rng).
        let corruption = (self.pretraining && (self.obj.nid || self.obj.rcl)).then(|| {
            let pool = &idx.unique;
            let mut corr = batch.items.clone();
            let mut labels = vec![0usize; b * l];
            for bi in 0..b {
                let len = batch.lens[bi];
                let (c, lab) = corrupt_sequence(
                    &batch.items[bi * l..bi * l + len],
                    pool,
                    &CorruptionConfig::default(),
                    rng,
                );
                corr[bi * l..bi * l + len].copy_from_slice(&c);
                for (t, la) in lab.iter().enumerate() {
                    labels[bi * l + t] = la.class();
                }
            }
            (corr, labels)
        });

        let fwd = pmm_obs::span("forward");
        let mut ctx = Ctx::train(rng);
        let (reps, cls_pair) = self.encode_unique(&mut ctx, &idx.unique);

        // Per-position representation rows (padding maps to column 0,
        // masked out of every loss).
        let pos_cols: Vec<usize> = (0..b * l)
            .map(|row| {
                let (bi, t) = (row / l, row % l);
                if t < batch.lens[bi] {
                    idx.col[&batch.items[row]]
                } else {
                    0
                }
            })
            .collect();
        let item_rows = reps.gather_rows(&pos_cols);
        let h = self.user.forward(&mut ctx, &item_rows, b, l, &batch.lens);

        // DAP (Eq. 5): always on.
        let sims = h.matmul_nt(&reps);
        let (pos_m, den_m, w) = dap_masks(batch, &idx);
        let mut loss = sims.group_contrastive_loss(&pos_m, &den_m, Some(&w));
        let mut out = StepOutcome { dap: loss.value().scalar_value(), ..Default::default() };
        let mut heads: Vec<(&'static str, Var)> = vec![("dap", loss.clone())];

        if self.pretraining {
            let aux = self.obj.aux_weight;
            // NICL (Eqs. 8-9): requires both modalities.
            if self.obj.nicl.enabled() {
                if let Some((t_cls, v_cls)) = &cls_pair {
                    let inv_t = 1.0 / self.obj.nicl_temperature.max(1e-3);
                    let t_n = t_cls.l2_normalize_rows();
                    let v_n = v_cls.l2_normalize_rows();
                    let (np, nd, nw) = nicl_masks(batch, &idx, self.obj.nicl);
                    let anchors_t = t_n.gather_rows(&pos_cols);
                    let m_t = Var::concat0(&[v_n.clone(), t_n.clone()]);
                    let l_t = anchors_t
                        .matmul_nt(&m_t)
                        .scale(inv_t)
                        .group_contrastive_loss(&np, &nd, Some(&nw));
                    let anchors_v = v_n.gather_rows(&pos_cols);
                    let m_v = Var::concat0(&[t_n, v_n]);
                    let l_v = anchors_v
                        .matmul_nt(&m_v)
                        .scale(inv_t)
                        .group_contrastive_loss(&np, &nd, Some(&nw));
                    let term = l_t.add(&l_v).scale(0.5 * aux);
                    out.nicl = term.value().scalar_value();
                    heads.push(("nicl", term.clone()));
                    loss = loss.add(&term);
                }
            }

            if let Some((corr_items, labels)) = &corruption {
                let corr_cols: Vec<usize> = (0..b * l)
                    .map(|row| {
                        let (bi, t) = (row / l, row % l);
                        if t < batch.lens[bi] {
                            idx.col[&corr_items[row]]
                        } else {
                            0
                        }
                    })
                    .collect();
                let corr_rows = reps.gather_rows(&corr_cols);
                let h_tilde = self.user.forward(&mut ctx, &corr_rows, b, l, &batch.lens);

                // NID (Eq. 10): 3-way classification with a ReLU head.
                if self.obj.nid {
                    let logits = self.nid_head.forward(&mut ctx, &h_tilde).relu();
                    let nid = logits.cross_entropy_logits(labels, Some(&valid_w));
                    let term = nid.scale(aux);
                    out.nid = term.value().scalar_value();
                    heads.push(("nid", term.clone()));
                    loss = loss.add(&term);
                }

                // RCL (Eq. 11): pooled original vs corrupted sequences.
                if self.obj.rcl {
                    let pooled = h.mean_pool(b, l, &valid_w);
                    let pooled_tilde = h_tilde.mean_pool(b, l, &valid_w);
                    let rcl_sims = pooled.matmul_nt(&pooled_tilde);
                    let (rp, rd) = rcl_masks(b);
                    let rcl = rcl_sims.group_contrastive_loss(&rp, &rd, None);
                    let term = rcl.scale(aux);
                    out.rcl = term.value().scalar_value();
                    heads.push(("rcl", term.clone()));
                    loss = loss.add(&term);
                }
            }
        }

        out.loss = loss.value().scalar_value();
        drop(fwd);
        if pmm_fault::trip_nan_loss() {
            // Deterministic chaos: pretend this batch diverged.
            out.loss = f32::NAN;
        }
        if !out.loss.is_finite() {
            // Backpropagating a poisoned loss would only spread the
            // non-finite values; leave the optimizer untouched and let
            // the anomaly guard in `train_epoch` decide what to do.
            return out;
        }
        if cfg!(debug_assertions) || pmm_audit::graph::enabled() {
            heads.push(("total", loss.clone()));
            self.audit_tape(&heads, &ctx);
        }
        loss.backward();
        let _sp = pmm_obs::span("optimizer");
        out.grad_norm = self.opt.step(&self.store, &ctx);
        out
    }

    /// Pre-backward structural audit of this step's autograd tape:
    /// acyclicity, per-op shape consistency, backward bookkeeping, and
    /// reachability of every trainable parameter from the loss. Always
    /// on in debug/test builds; opt-in in release via the bench
    /// `--audit-graph` flag or `PMM_AUDIT_GRAPH=1`.
    ///
    /// Panics on violations — a malformed tape means the gradients are
    /// wrong, which is not a recoverable per-batch condition.
    fn audit_tape(&mut self, heads: &[(&'static str, Var)], ctx: &Ctx) {
        let _sp = pmm_obs::span("graph_audit");
        let named: Vec<(&str, &Var)> = heads.iter().map(|(n, v)| (*n, v)).collect();
        let interned = ctx.interned();
        let params: Vec<(String, &Var, bool)> = interned
            .iter()
            .map(|(id, v)| {
                let (name, trainable) = self
                    .store
                    .params()
                    .iter()
                    .find(|p| p.id() == *id)
                    .map(|p| (p.name().to_string(), p.trainable()))
                    .unwrap_or_else(|| (format!("param#{id}"), false));
                (name, v, trainable)
            })
            .collect();
        let snap = pmm_audit::graph::capture(&named, &params);
        let violations = pmm_audit::audit_snapshot(&snap);
        self.last_snapshot = Some(snap);
        if violations.is_empty() {
            pmm_obs::counter::GRAPH_AUDITS.add(1);
        } else {
            let list: Vec<String> =
                violations.iter().map(|v| format!("  - {v}")).collect();
            panic!("autograd graph audit failed before backward:\n{}", list.join("\n"));
        }
    }

    /// The tape snapshot captured by the most recent audited step, if
    /// auditing was active. Tests tamper with this to prove the
    /// auditor rejects seeded defects on a real training graph.
    pub fn last_graph_snapshot(&self) -> Option<&pmm_audit::GraphSnapshot> {
        self.last_snapshot.as_ref()
    }

    /// Global L2 norm over all parameters (frozen ones included).
    fn param_norm(&self) -> f32 {
        let mut sq = 0.0f64;
        for p in self.store.params() {
            for v in p.value().data() {
                sq += f64::from(*v) * f64::from(*v);
            }
        }
        sq.sqrt() as f32
    }

    /// Whether this model has the encoders required to serve the given
    /// modality path: `Both` needs the fusion module, the single paths
    /// need the matching encoder. A dual-modality model therefore
    /// supports all three (the single paths rank against one encoder's
    /// CLS rows — the serving runtime's degraded tiers).
    pub fn supports_modality(&self, modality: Modality) -> bool {
        match modality {
            Modality::Both => self.fusion.is_some(),
            Modality::TextOnly => self.text.is_some(),
            Modality::VisionOnly => self.vision.is_some(),
        }
    }

    /// The modality degradation ladder this model can serve, best path
    /// first. `Both` models return all three rungs; single-modality
    /// models return just their own path.
    pub fn modality_ladder(&self) -> Vec<Modality> {
        [Modality::Both, Modality::TextOnly, Modality::VisionOnly]
            .into_iter()
            .filter(|&m| self.supports_modality(m))
            .collect()
    }

    /// Per-item representation for serving via an explicit modality
    /// path. The caller has already checked [`PmmRec::supports_modality`].
    fn encode_unique_via(&self, ctx: &mut Ctx<'_>, ids: &[usize], modality: Modality) -> Var {
        match modality {
            Modality::Both => self.encode_unique(ctx, ids).0,
            Modality::TextOnly => {
                self.text.as_ref().expect("text encoder").forward(ctx, &self.corpus, ids).cls
            }
            Modality::VisionOnly => {
                self.vision.as_ref().expect("vision encoder").forward(ctx, &self.corpus, ids).cls
            }
        }
    }

    // ------------------------------------------------------------------
    // Streaming ingestion (delta catalogue)
    // ------------------------------------------------------------------

    /// Number of items in the base (construction-time) corpus.
    pub fn base_len(&self) -> usize {
        self.base_items
    }

    /// Number of streamed items appended past the base corpus.
    pub fn delta_len(&self) -> usize {
        self.corpus.len() - self.base_items
    }

    /// Appends freshly ingested items to the serving corpus. Because
    /// the model is ID-free, this is pure inference: no weights change,
    /// and the new items become rankable the moment their content is
    /// encoded. The cached catalogue is *not* invalidated — the next
    /// catalogue access encodes only the appended tail and extends the
    /// cached rows in place, which is bit-identical to a cold rebuild
    /// over the union: every encoder op is row-independent (per-item
    /// layernorm/softmax/attention) and every matmul accumulates in
    /// strictly ascending-k order on all kernel paths, so an item's
    /// representation does not depend on which other items shared its
    /// encode chunk.
    pub fn ingest_items(&mut self, items: Vec<Item>) -> usize {
        let appended = items.len();
        self.corpus.extend(items);
        appended
    }

    /// Encodes the full catalogue with the current weights (cached).
    fn catalog_reps(&self) -> Tensor {
        self.catalog_reps_via(self.cfg.modality)
    }

    /// Encodes the full catalogue through the given modality path,
    /// caching per modality. For the model's native modality this is
    /// exactly the scoring catalogue; the other paths back the serving
    /// runtime's degraded tiers.
    ///
    /// When streamed items extended the corpus past a cached
    /// catalogue, only the missing tail is encoded and appended to the
    /// cached rows (see [`PmmRec::ingest_items`] for why that is
    /// bit-identical to a cold rebuild).
    pub(crate) fn catalog_reps_via(&self, modality: Modality) -> Tensor {
        const CHUNK: usize = 64;
        let n = self.corpus.len();
        let cached = self.catalog.borrow().get(modality);
        if let Some(cat) = &cached {
            if cat.shape()[0] == n {
                return cat.clone();
            }
        }
        let done = cached.as_ref().map_or(0, |c| c.shape()[0]);
        let mut data = Vec::with_capacity(n * self.cfg.d);
        if let Some(cat) = &cached {
            data.extend_from_slice(cat.data());
        }
        let mut start = done;
        while start < n {
            let ids: Vec<usize> = (start..(start + CHUNK).min(n)).collect();
            let mut ctx = Ctx::eval();
            let reps = self.encode_unique_via(&mut ctx, &ids, modality);
            data.extend_from_slice(reps.value().data());
            start += CHUNK;
        }
        let cat = Tensor::from_vec(data, &[n, self.cfg.d]).expect("catalog numel");
        *self.catalog.borrow_mut().slot(modality) = Some(cat.clone());
        cat
    }

    /// Int8 view of the catalogue for the quantized ranking path,
    /// derived from [`PmmRec::catalog_reps_via`] and cached per
    /// modality alongside the f32 rows (same invalidation). A stale
    /// row count (streamed items landed since quantization) re-derives
    /// from the extended f32 rows; quantization is per-row affine, so
    /// pre-existing rows requantize to identical bytes.
    pub(crate) fn quantized_catalog_via(&self, modality: Modality) -> QTensor {
        if let Some(q) = self.catalog.borrow().q_get(modality) {
            if q.rows() == self.corpus.len() {
                return q;
            }
        }
        let cat = self.catalog_reps_via(modality);
        let q = QTensor::quantize_rows(&cat);
        *self.catalog.borrow_mut().q_slot(modality) = Some(q.clone());
        q
    }

    /// Crate-internal access to the cached catalogue (see
    /// [`PmmRec::item_representations`]).
    pub(crate) fn catalog_for_export(&self) -> Tensor {
        self.catalog_reps()
    }

    /// Final user-encoder hidden state per sequence of a padded batch.
    pub(crate) fn user_hidden_last(&self, batch: &Batch) -> Tensor {
        self.user_hidden_last_with(&self.catalog_reps(), batch)
    }

    /// Like [`PmmRec::user_hidden_last`] but against an explicit
    /// catalogue (the serving runtime passes the tier's catalogue so
    /// user encoding and ranking see the same representations).
    pub(crate) fn user_hidden_last_with(&self, cat: &Tensor, batch: &Batch) -> Tensor {
        let (b, l) = (batch.b, batch.l);
        let rows = cat.gather_rows(&batch.items);
        let mut ctx = Ctx::eval();
        let h = self
            .user
            .forward(&mut ctx, &Var::constant(rows), b, l, &batch.lens);
        let last_rows: Vec<usize> = (0..b).map(|bi| bi * l + batch.lens[bi] - 1).collect();
        h.value().gather_rows(&last_rows)
    }
}

/// Freezes everything in the item encoders except the top `k` blocks
/// (mirrors "all text and vision encoders are fine-tuned with only the
/// top 2 Transformer blocks").
fn apply_block_freezing(store: &mut ParamStore, cfg: &PmmRecConfig) {
    let Some(top) = cfg.finetune_top_blocks else {
        return;
    };
    for (prefix, layers) in [
        ("text_encoder", cfg.text_layers),
        ("vision_encoder", cfg.vision_layers),
    ] {
        store.freeze_prefix(format!("{prefix}.embed"));
        store.freeze_prefix(format!("{prefix}.proj"));
        for i in 0..layers.saturating_sub(top) {
            store.freeze_prefix(format!("{prefix}.trm.blocks.{i}."));
        }
    }
}

impl SeqRecommender for PmmRec {
    fn name(&self) -> &str {
        &self.name
    }

    fn n_items(&self) -> usize {
        self.corpus.len()
    }

    fn train_epoch(&mut self, train: &[Vec<usize>], rng: &mut StdRng) -> f32 {
        self.catalog.replace(CatalogCache::default());
        // "Last good checkpoint" for rollbacks: the epoch-start weights,
        // held in memory so recovery never touches the filesystem.
        let snapshot = self.guard.config().enabled.then(|| self.snapshot_params());
        let mut sum = StepOutcome::default();
        let mut applied = 0usize;
        let mut skipped = 0u32;
        // Drive batching with a dedicated iterator RNG so the item-count
        // of corruption draws cannot desynchronise batch composition.
        let batch_list: Vec<Batch> =
            BatchIter::new(train, self.cfg.batch_size, self.cfg.max_len, rng).collect();
        for batch in &batch_list {
            self.step_seq += 1;
            let out = self.step(batch, rng);
            let finite = out.loss.is_finite() && out.grad_norm.is_finite();
            match self.guard.observe(finite) {
                GuardVerdict::Proceed => {
                    if let Some(lr) = self.healthy_lr.take() {
                        self.opt.set_lr(lr);
                        pmm_obs::counter::RECOVERIES.add(1);
                        pmm_obs::sink::emit_guard(
                            "recovery",
                            self.step_seq,
                            "finite step after anomaly; learning rate restored",
                        );
                    }
                    sum.loss += out.loss;
                    sum.dap += out.dap;
                    sum.nicl += out.nicl;
                    sum.nid += out.nid;
                    sum.rcl += out.rcl;
                    sum.grad_norm += out.grad_norm;
                    applied += 1;
                }
                GuardVerdict::Skip => {
                    skipped += 1;
                    let lr = self.opt.lr();
                    self.healthy_lr.get_or_insert(lr);
                    let backed = self.guard.backed_off_lr(lr);
                    self.opt.set_lr(backed);
                    pmm_obs::counter::ANOMALY_STEPS.add(1);
                    pmm_obs::sink::emit_guard(
                        "anomaly",
                        self.step_seq,
                        &format!(
                            "non-finite step (loss {}, grad_norm {}) skipped; lr {lr:e} -> {backed:e}",
                            out.loss, out.grad_norm
                        ),
                    );
                    pmm_obs::obs_warn!(
                        "guard",
                        "[{}] step {}: non-finite loss/grad; skipped, lr backed off to {backed:e}",
                        self.name,
                        self.step_seq
                    );
                }
                GuardVerdict::Rollback => {
                    skipped += 1;
                    pmm_obs::counter::ANOMALY_STEPS.add(1);
                    pmm_obs::counter::ROLLBACKS.add(1);
                    if let Some(snap) = &snapshot {
                        self.restore_params(snap);
                    }
                    self.opt.reset_state();
                    if let Some(lr) = self.healthy_lr.take() {
                        self.opt.set_lr(lr);
                    }
                    pmm_obs::sink::emit_guard(
                        "rollback",
                        self.step_seq,
                        "consecutive anomaly limit hit; epoch-start weights restored, optimizer state reset",
                    );
                    pmm_obs::obs_warn!(
                        "guard",
                        "[{}] step {}: {} consecutive anomalies; rolled back to epoch-start weights",
                        self.name,
                        self.step_seq,
                        self.guard.config().max_consecutive
                    );
                }
            }
        }
        if applied + skipped as usize == 0 {
            self.last_stats = None;
            return 0.0;
        }
        if applied == 0 {
            // Every step was anomalous: report a non-finite loss so the
            // harness can flag the epoch instead of mistaking 0 for
            // perfect convergence.
            let stats = EpochStats {
                loss: f32::NAN,
                breakdown: None,
                grad_norm: f32::NAN,
                param_norm: self.param_norm(),
                steps: 0,
                skipped,
            };
            self.last_stats = Some(stats);
            return stats.loss;
        }
        let inv = 1.0 / applied as f32;
        let stats = EpochStats {
            loss: sum.loss * inv,
            breakdown: Some(LossBreakdown {
                dap: sum.dap * inv,
                nicl: sum.nicl * inv,
                nid: sum.nid * inv,
                rcl: sum.rcl * inv,
            }),
            grad_norm: sum.grad_norm * inv,
            param_norm: self.param_norm(),
            steps: applied as u32,
            skipped,
        };
        self.last_stats = Some(stats);
        stats.loss
    }

    fn epoch_stats(&self) -> Option<EpochStats> {
        self.last_stats
    }

    fn set_guard_policy(&mut self, policy: pmm_eval::GuardPolicy) {
        self.set_guard_config(GuardConfig {
            enabled: policy.enabled,
            max_consecutive: policy.max_consecutive,
            lr_backoff: policy.lr_backoff,
            min_lr: policy.min_lr,
        });
    }

    fn score_cases(&self, cases: &[LeaveOneOut]) -> Vec<Vec<f32>> {
        if cases.is_empty() {
            return Vec::new();
        }
        let cat = self.catalog_reps();
        let max_len = self.cfg.max_len;
        let prefixes: Vec<&[usize]> = cases
            .iter()
            .map(|c| {
                let p = c.prefix.as_slice();
                &p[p.len().saturating_sub(max_len)..]
            })
            .collect();
        let batch = Batch::from_sequences(&prefixes, max_len);
        let b = batch.b;
        let h_last = self.user_hidden_last(&batch);
        let scores = h_last.matmul_t(&cat, false, true);
        let n = self.corpus.len();
        (0..b)
            .map(|bi| scores.data()[bi * n..(bi + 1) * n].to_vec())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmm_data::registry::{build_dataset, DatasetId, Scale};
    use pmm_data::world::{World, WorldConfig};
    use pmm_eval::{evaluate_cases, train_model, TrainConfig};
    use pmm_data::split::SplitDataset;
    use rand::SeedableRng;

    fn tiny_cfg() -> PmmRecConfig {
        PmmRecConfig {
            d: 16,
            heads: 2,
            text_layers: 1,
            vision_layers: 1,
            fusion_layers: 1,
            user_layers: 1,
            batch_size: 8,
            max_len: 8,
            dropout: 0.0,
            ..Default::default()
        }
    }

    fn tiny_split(id: DatasetId) -> SplitDataset {
        let world = World::new(WorldConfig::default());
        SplitDataset::new(build_dataset(&world, id, Scale::Tiny, 42))
    }

    #[test]
    fn finetune_step_reduces_loss() {
        let split = tiny_split(DatasetId::HmClothes);
        let mut rng = StdRng::seed_from_u64(0);
        let mut model = PmmRec::new(tiny_cfg(), &split.dataset, &mut rng);
        let first = model.train_epoch(&split.train, &mut rng);
        let mut last = first;
        for _ in 0..4 {
            last = model.train_epoch(&split.train, &mut rng);
        }
        assert!(last < first, "loss did not decrease: {first} -> {last}");
        assert!(last.is_finite());
    }

    #[test]
    fn pretraining_runs_all_objectives() {
        let split = tiny_split(DatasetId::Bili);
        let mut rng = StdRng::seed_from_u64(0);
        let mut model = PmmRec::new(tiny_cfg(), &split.dataset, &mut rng);
        model.set_pretraining(true);
        let loss = model.train_epoch(&split.train, &mut rng);
        assert!(loss.is_finite() && loss > 0.0);
    }

    #[test]
    fn epoch_stats_breakdown_sums_to_loss() {
        let split = tiny_split(DatasetId::Bili);
        let mut rng = StdRng::seed_from_u64(7);
        let mut model = PmmRec::new(tiny_cfg(), &split.dataset, &mut rng);
        model.set_pretraining(true);
        let loss = model.train_epoch(&split.train, &mut rng);
        let stats = model.epoch_stats().expect("stats after epoch");
        assert_eq!(stats.loss, loss);
        assert!(stats.steps > 0);
        assert!(stats.grad_norm > 0.0, "grad norm {}", stats.grad_norm);
        assert!(stats.param_norm > 0.0, "param norm {}", stats.param_norm);
        let b = stats.breakdown.expect("pmmrec reports a breakdown");
        assert!(
            (b.total() - loss).abs() <= 1e-4 * loss.abs().max(1.0),
            "components {b:?} sum {} != loss {loss}",
            b.total()
        );
        // All four objectives are active under the default config.
        assert!(b.dap > 0.0 && b.nicl > 0.0 && b.nid > 0.0 && b.rcl > 0.0, "{b:?}");
    }

    #[test]
    fn single_modality_variants_train() {
        let split = tiny_split(DatasetId::KwaiFood);
        for modality in [Modality::TextOnly, Modality::VisionOnly] {
            let mut rng = StdRng::seed_from_u64(0);
            let cfg = PmmRecConfig { modality, ..tiny_cfg() };
            let mut model = PmmRec::new(cfg, &split.dataset, &mut rng);
            let loss = model.train_epoch(&split.train, &mut rng);
            assert!(loss.is_finite(), "{modality:?}");
            let m = evaluate_cases(&model, &split.valid);
            assert_eq!(m.cases, split.valid.len());
        }
    }

    #[test]
    fn trained_model_beats_untrained_ranking() {
        let split = tiny_split(DatasetId::HmShoes);
        let mut rng = StdRng::seed_from_u64(1);
        let mut model = PmmRec::new(tiny_cfg(), &split.dataset, &mut rng);
        let before = evaluate_cases(&model, &split.valid);
        let cfg = TrainConfig {
            max_epochs: 12,
            patience: 0,
            eval_every: 4,
            log_level: pmm_obs::Level::Warn,
            start_epoch: 0,
            guard: pmm_eval::GuardPolicy::default(),
        };
        let result = train_model(&mut model, &split, &cfg, &mut rng);
        assert!(
            result.valid.ndcg10() > before.ndcg10(),
            "training did not help: {} -> {}",
            before.ndcg10(),
            result.valid.ndcg10()
        );
    }

    #[test]
    fn transfer_roundtrip_restores_components() -> Result<(), CheckpointError> {
        let split = tiny_split(DatasetId::Amazon);
        let mut rng = StdRng::seed_from_u64(2);
        let mut source = PmmRec::new(tiny_cfg(), &split.dataset, &mut rng);
        source.set_pretraining(true);
        source.train_epoch(&split.train, &mut rng);
        let path = std::env::temp_dir().join(format!("pmmrec_test_{}.ckpt", std::process::id()));
        source.save(&path)?;

        let target_split = tiny_split(DatasetId::AmazonShoes);
        let mut target = PmmRec::new(tiny_cfg(), &target_split.dataset, &mut rng);
        let report = target.load_transfer(&path, TransferSetting::Full)?;
        assert!(report.loaded.iter().any(|n| n.starts_with("user_encoder.")));
        assert!(report.loaded.iter().any(|n| n.starts_with("fusion.")));
        // Item-encoder-only transfer leaves the user encoder fresh.
        let mut target2 = PmmRec::new(tiny_cfg(), &target_split.dataset, &mut rng);
        let report2 = target2.load_transfer(&path, TransferSetting::ItemEncoders)?;
        assert!(report2.loaded.iter().all(|n| !n.starts_with("user_encoder.")));
        std::fs::remove_file(path).ok();
        Ok(())
    }

    #[test]
    #[should_panic(expected = "load_transfer")]
    fn transfer_modality_mismatch_is_rejected() {
        let split = tiny_split(DatasetId::AmazonShoes);
        let mut rng = StdRng::seed_from_u64(3);
        let mut model = PmmRec::new(tiny_cfg(), &split.dataset, &mut rng);
        let _ = model.load_transfer("/nonexistent", TransferSetting::TextOnly);
    }

    #[test]
    fn catalog_cache_is_invalidated_by_training() {
        let split = tiny_split(DatasetId::BiliFood);
        let mut rng = StdRng::seed_from_u64(4);
        let mut model = PmmRec::new(tiny_cfg(), &split.dataset, &mut rng);
        let before = model.catalog_reps();
        model.train_epoch(&split.train, &mut rng);
        let after = model.catalog_reps();
        assert_ne!(before.data(), after.data());
    }

    #[test]
    fn ingested_items_serve_bit_identically_to_a_cold_build() {
        let world = World::new(WorldConfig::default());
        let full = build_dataset(&world, DatasetId::Hm, Scale::Tiny, 42);
        let n = full.items.len();
        assert!(n > 12, "need a tail to stream in");
        let delta: Vec<Item> = full.items[n - 6..].to_vec();
        let mut base = full.clone();
        base.items.truncate(n - 6);

        // Same seed + same architecture dims → identical weights, so
        // the only difference is how the corpus arrived.
        let mut rng = StdRng::seed_from_u64(0);
        let cold = PmmRec::new(tiny_cfg(), &full, &mut rng);
        let mut rng = StdRng::seed_from_u64(0);
        let mut streamed = PmmRec::new(tiny_cfg(), &base, &mut rng);

        // Prime the cache over the base corpus first so the delta path
        // actually extends cached rows instead of cold-building.
        let base_cat = streamed.catalog_reps();
        assert_eq!(base_cat.shape()[0], n - 6);
        assert_eq!(streamed.ingest_items(delta), 6);
        assert_eq!(streamed.base_len(), n - 6);
        assert_eq!(streamed.delta_len(), 6);
        assert_eq!(streamed.n_items(), n);

        let cat_cold = cold.catalog_reps();
        let cat_streamed = streamed.catalog_reps();
        assert_eq!(cat_cold.shape(), cat_streamed.shape());
        assert_eq!(
            cat_cold.data(),
            cat_streamed.data(),
            "delta append must be bit-identical to a cold build over the union"
        );

        // Served top-k over base+delta == cold top-k, f32 and int8.
        let prefix = [0usize, 1, 2];
        assert_eq!(
            streamed.recommend_top_k(&prefix, 10, true).unwrap(),
            cold.recommend_top_k(&prefix, 10, true).unwrap(),
        );
        assert_eq!(
            streamed
                .recommend_top_k_with(crate::Precision::Int8, &prefix, 10, true)
                .unwrap(),
            cold.recommend_top_k_with(crate::Precision::Int8, &prefix, 10, true)
                .unwrap(),
        );
    }

    #[test]
    fn stale_quantized_catalog_requantizes_over_the_union() {
        let world = World::new(WorldConfig::default());
        let full = build_dataset(&world, DatasetId::Bili, Scale::Tiny, 42);
        let n = full.items.len();
        let delta: Vec<Item> = full.items[n - 5..].to_vec();
        let mut base = full.clone();
        base.items.truncate(n - 5);
        let mut rng = StdRng::seed_from_u64(0);
        let mut m = PmmRec::new(tiny_cfg(), &base, &mut rng);
        // Quantize over the base, then stream: the q cache is stale by
        // row count and must re-derive over the union.
        let q_base = m.quantized_catalog_via(Modality::Both);
        assert_eq!(q_base.rows(), n - 5);
        m.ingest_items(delta);
        let q_union = m.quantized_catalog_via(Modality::Both);
        assert_eq!(q_union.rows(), n);
    }

    #[test]
    fn ablation_variants_all_train() {
        let split = tiny_split(DatasetId::Kwai);
        for (name, obj) in ObjectiveConfig::table8_variants() {
            let mut rng = StdRng::seed_from_u64(5);
            let mut model = PmmRec::with_objectives(tiny_cfg(), obj, &split.dataset, &mut rng);
            model.set_pretraining(true);
            let loss = model.train_epoch(&split.train[..8.min(split.train.len())], &mut rng);
            assert!(loss.is_finite(), "{name}: loss {loss}");
        }
    }

    #[test]
    fn anomaly_guard_skips_injected_nan_step() {
        let _fg = pmm_fault::test_guard();
        let split = tiny_split(DatasetId::HmClothes);
        let mut rng = StdRng::seed_from_u64(8);
        let mut model = PmmRec::new(tiny_cfg(), &split.dataset, &mut rng);
        pmm_fault::install(pmm_fault::FaultPlan::parse("nan@0").unwrap());
        let loss = model.train_epoch(&split.train, &mut rng);
        pmm_fault::clear();
        assert!(loss.is_finite(), "healthy steps must still average to a finite loss");
        let r = model.guard_report();
        assert_eq!(r.anomalies, 1);
        assert_eq!(r.rollbacks, 0);
        assert_eq!(r.recoveries, 1, "the next finite step recovers");
        let stats = model.epoch_stats().expect("stats");
        assert_eq!(stats.skipped, 1);
        assert!(stats.steps > 0);
        // The poisoned step left no trace in the optimizer: only the
        // applied steps advanced AdamW (so no moments were written for
        // the skipped batch either).
        assert_eq!(model.optimizer_steps(), u64::from(stats.steps));
        // Recovery restored the pre-backoff learning rate.
        assert_eq!(model.opt.lr(), model.cfg.lr);
    }

    #[test]
    fn guard_rolls_back_to_epoch_start_after_k_anomalies() {
        let _fg = pmm_fault::test_guard();
        let split = tiny_split(DatasetId::Bili);
        let mut rng = StdRng::seed_from_u64(9);
        let mut model = PmmRec::new(tiny_cfg(), &split.dataset, &mut rng);
        model.set_guard_config(crate::guard::GuardConfig {
            max_consecutive: 2,
            ..Default::default()
        });
        let before = model.item_representations();
        // Poison every step of the epoch: the guard must roll back and
        // the epoch must end exactly where it started.
        let spec: Vec<String> = (0..200).map(|i| format!("nan@{i}")).collect();
        pmm_fault::install(pmm_fault::FaultPlan::parse(&spec.join(",")).unwrap());
        let loss = model.train_epoch(&split.train, &mut rng);
        pmm_fault::clear();
        assert!(loss.is_nan(), "an epoch with zero applied steps reports NaN, not 0");
        let r = model.guard_report();
        assert!(r.rollbacks >= 1, "{r:?}");
        assert_eq!(r.recoveries, 0);
        assert_eq!(model.optimizer_steps(), 0, "no optimizer state may survive");
        let stats = model.epoch_stats().expect("stats");
        assert_eq!(stats.steps, 0);
        assert!(stats.skipped > 0);
        let after = model.item_representations();
        assert_eq!(before.data(), after.data(), "rollback must restore epoch-start weights");
    }

    #[test]
    fn guard_recovers_training_after_rollback() {
        let _fg = pmm_fault::test_guard();
        let split = tiny_split(DatasetId::KwaiFood);
        let mut rng = StdRng::seed_from_u64(10);
        let mut model = PmmRec::new(tiny_cfg(), &split.dataset, &mut rng);
        model.set_guard_config(crate::guard::GuardConfig {
            max_consecutive: 2,
            ..Default::default()
        });
        // Two consecutive poisoned steps force a rollback; the rest of
        // the epoch trains normally from the restored weights.
        pmm_fault::install(pmm_fault::FaultPlan::parse("nan@0,nan@1").unwrap());
        let loss = model.train_epoch(&split.train, &mut rng);
        pmm_fault::clear();
        let r = model.guard_report();
        assert_eq!(r.rollbacks, 1);
        assert_eq!(r.anomalies, 2);
        assert!(loss.is_finite(), "post-rollback steps keep the run alive");
        assert!(model.optimizer_steps() > 0);
    }

    #[test]
    fn missing_modality_items_train_to_finite_loss() {
        let world = World::new(WorldConfig::default());
        let mut ds = build_dataset(&world, DatasetId::HmShoes, Scale::Tiny, 42);
        ds.items[1].tokens.clear(); // text missing
        ds.items[2].patches.clear(); // vision missing
        ds.items[3].tokens.clear();
        ds.items[3].patches.clear(); // both missing
        let split = SplitDataset::new(ds);
        let mut rng = StdRng::seed_from_u64(11);
        let mut model = PmmRec::new(tiny_cfg(), &split.dataset, &mut rng);
        model.set_pretraining(true);
        let loss = model.train_epoch(&split.train, &mut rng);
        assert!(loss.is_finite(), "degraded items must not poison training");
        assert_eq!(model.guard_report().anomalies, 0);
    }

    #[test]
    fn block_freezing_freezes_lower_layers() {
        let split = tiny_split(DatasetId::HmClothes);
        let mut rng = StdRng::seed_from_u64(6);
        let cfg = PmmRecConfig {
            text_layers: 2,
            vision_layers: 2,
            finetune_top_blocks: Some(1),
            ..tiny_cfg()
        };
        let model = PmmRec::new(cfg, &split.dataset, &mut rng);
        let emb = model.store.get("text_encoder.embed.weight").unwrap();
        assert!(model.store.is_frozen(emb));
        let top = model.store.get("text_encoder.trm.blocks.1.attn.wq.weight").unwrap();
        assert!(!model.store.is_frozen(top));
        let bottom = model.store.get("text_encoder.trm.blocks.0.attn.wq.weight").unwrap();
        assert!(model.store.is_frozen(bottom));
    }
}
