//! Observability and determinism of the degraded-encode path: items
//! whose text tokens or vision patches have the wrong length are
//! padded/clipped instead of erroring, and every such item bumps
//! `pmm_obs::counter::DEGRADED_ENCODES` exactly once per modality
//! encode.
//!
//! This lives in its own integration-test binary because the counter
//! is process-global: parallel unit tests that also encode would make
//! exact-delta assertions racy. Keep this file to a single `#[test]`.

use pmm_data::registry::{build_dataset, DatasetId, Scale};
use pmm_data::world::{World, WorldConfig};
use pmmrec::{PmmRec, PmmRecConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn degraded_encodes_count_exactly_and_stay_bit_identical_across_threads() {
    let world = World::new(WorldConfig::default());
    let mut ds = build_dataset(&world, DatasetId::HmClothes, Scale::Tiny, 42);
    assert!(ds.items.len() >= 4);
    // Damage four items: short text, long text, short patches, and one
    // item degraded in both modalities.
    ds.items[0].tokens.truncate(1);
    ds.items[1].tokens.push(3);
    let half = ds.items[2].patches.len() / 2;
    ds.items[2].patches.truncate(half);
    ds.items[3].tokens.clear();
    ds.items[3].patches.push(0.5);
    // A full-catalogue encode sees each item once per modality: text
    // pads/clips items {0, 1, 3}, vision pads/clips items {2, 3}.
    let expected = 3 + 2;

    let cfg = PmmRecConfig {
        d: 16,
        heads: 2,
        text_layers: 1,
        vision_layers: 1,
        fusion_layers: 1,
        user_layers: 1,
        dropout: 0.0,
        ..Default::default()
    };
    let model = |ds: &pmm_data::dataset::Dataset| {
        PmmRec::new(cfg, ds, &mut StdRng::seed_from_u64(11))
    };

    pmm_obs::set_enabled(true);
    let base = pmm_obs::counter::DEGRADED_ENCODES.get();

    pmm_par::set_threads(Some(1));
    let reps_1 = model(&ds).item_representations();
    let after_1 = pmm_obs::counter::DEGRADED_ENCODES.get();
    assert_eq!(
        pmm_obs::counter::DEGRADED_ENCODES.delta_since(base),
        expected,
        "one increment per padded/clipped item per modality encode"
    );
    assert!(reps_1.all_finite(), "degraded items still encode to finite representations");

    pmm_par::set_threads(Some(4));
    let reps_4 = model(&ds).item_representations();
    pmm_par::set_threads(None);
    assert_eq!(
        reps_1, reps_4,
        "catalogue representations are bit-identical at 1 and 4 threads"
    );
    assert_eq!(
        pmm_obs::counter::DEGRADED_ENCODES.delta_since(after_1),
        expected,
        "the degraded count is thread-count independent"
    );
}
