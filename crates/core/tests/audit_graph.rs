//! The graph auditor against real PMMRec training tapes.
//!
//! The test profile builds with `debug_assertions`, so every training
//! step runs the pre-backward audit. These tests prove two things:
//! the full four-objective pre-training graph audits clean (and the
//! audit actually ran), and the auditor rejects defects seeded into a
//! snapshot of that same real tape — a cycle, a shape lie, and a
//! parameter cut off from the loss. The defects are seeded into the
//! captured snapshot because the safe `Var` API cannot build a broken
//! graph, which is exactly why the auditor works on the value type.

use pmm_audit::{audit_snapshot, GraphSnapshot, GraphViolation};
use pmm_data::registry::{build_dataset, DatasetId, Scale};
use pmm_data::world::{World, WorldConfig};
use pmm_eval::SeqRecommender;
use pmmrec::{PmmRec, PmmRecConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Pre-trains one epoch with all four objectives (DAP + NICL + NID +
/// RCL) and returns the model with its last audited tape snapshot.
fn pretrained_model() -> PmmRec {
    let world = World::new(WorldConfig::default());
    let ds = build_dataset(&world, DatasetId::HmClothes, Scale::Tiny, 7);
    let cfg = PmmRecConfig {
        d: 16,
        heads: 2,
        text_layers: 1,
        vision_layers: 1,
        fusion_layers: 1,
        user_layers: 1,
        dropout: 0.1,
        ..Default::default()
    };
    let mut rng = StdRng::seed_from_u64(3);
    let mut model = PmmRec::new(cfg, &ds, &mut rng);
    model.set_pretraining(true);
    let loss = model.train_epoch(&ds.sequences, &mut rng);
    assert!(loss.is_finite());
    model
}

#[test]
fn four_objective_training_graph_audits_clean() {
    pmm_obs::set_enabled(true);
    let base = pmm_obs::counter::GRAPH_AUDITS.get();
    let model = pretrained_model();
    assert!(
        pmm_obs::counter::GRAPH_AUDITS.get() > base,
        "the pre-backward audit must actually run under debug_assertions"
    );
    let snap = model.last_graph_snapshot().expect("audited step keeps its snapshot");
    // All four objective heads plus the combined loss were audited.
    let mut heads: Vec<&str> = snap.heads.iter().map(|(n, _)| n.as_str()).collect();
    heads.sort_unstable();
    assert_eq!(heads, vec!["dap", "nicl", "nid", "rcl", "total"]);
    assert!(snap.nodes.len() > 100, "a real tape is not a toy graph: {}", snap.nodes.len());
    assert!(!snap.params.is_empty());
    assert_eq!(audit_snapshot(snap), Vec::new(), "the real tape audits clean");
}

fn tampered(model: &PmmRec) -> GraphSnapshot {
    model.last_graph_snapshot().expect("audited step keeps its snapshot").clone()
}

#[test]
fn auditor_rejects_seeded_defects_on_a_real_tape() {
    let model = pretrained_model();

    // Defect 1: a cycle — make an early node a child of the newest.
    let mut snap = tampered(&model);
    let newest = snap.nodes.last().expect("nonempty tape").id;
    snap.nodes[0].parents.push(newest);
    let v = audit_snapshot(&snap);
    assert!(
        v.iter().any(|x| matches!(x, GraphViolation::Cycle { .. })),
        "seeded cycle must be caught, got {v:?}"
    );

    // Defect 2: a shape lie on a matmul output.
    let mut snap = tampered(&model);
    let i = snap
        .nodes
        .iter()
        .position(|n| n.op == "matmul")
        .expect("a PMMRec tape contains matmuls");
    snap.nodes[i].shape = vec![1, 1];
    let v = audit_snapshot(&snap);
    assert!(
        v.iter().any(|x| matches!(x, GraphViolation::ShapeMismatch { .. })),
        "seeded shape lie must be caught, got {v:?}"
    );

    // Defect 3: a trainable parameter cut off from every loss head —
    // silently frozen training, the worst kind of quiet bug.
    let mut snap = tampered(&model);
    let cut = snap.params.first().expect("params present").id;
    for n in &mut snap.nodes {
        n.parents.retain(|&p| p != cut);
    }
    // Severing edges can orphan interior nodes too; the param check is
    // what this defect is about.
    let v = audit_snapshot(&snap);
    assert!(
        v.iter().any(|x| matches!(x, GraphViolation::UnreachableParam { .. })),
        "severed parameter must be caught, got {v:?}"
    );
}
