//! NextItNet: ID embeddings + stacked dilated causal convolutions with
//! residual connections (Yuan et al., 2019).

use crate::common::{Baseline, BaselineConfig, RecCore};
use pmm_data::batch::Batch;
use pmm_data::dataset::Dataset;
use pmm_nn::{Ctx, Dropout, Embedding, NextItNetBlock, ParamStore};
use pmm_tensor::Var;
use rand::rngs::StdRng;

/// The NextItNet model.
pub type NextItNet = Baseline<NextItNetCore>;

/// Model-specific pieces of NextItNet.
pub struct NextItNetCore {
    cfg: BaselineConfig,
    store: ParamStore,
    emb: Embedding,
    blocks: Vec<NextItNetBlock>,
    dropout: Dropout,
    n_items: usize,
}

/// Builds a NextItNet; `cfg.layers` residual blocks with dilations
/// 1, 4, 16, … (each block internally applies `dil` and `2*dil`).
pub fn build(cfg: BaselineConfig, dataset: &Dataset, rng: &mut StdRng) -> NextItNet {
    let mut store = ParamStore::new();
    let emb = Embedding::new(&mut store, "item_emb", dataset.items.len(), cfg.d, rng);
    let blocks = (0..cfg.layers)
        .map(|i| {
            let dilation = 1 << (2 * i.min(3));
            NextItNetBlock::new(&mut store, &format!("block.{i}"), cfg.d, 3, dilation, rng)
        })
        .collect();
    Baseline::new(NextItNetCore {
        dropout: Dropout::new(cfg.dropout),
        cfg,
        store,
        emb,
        blocks,
        n_items: dataset.items.len(),
    })
}

impl RecCore for NextItNetCore {
    fn name(&self) -> &str {
        "NextItNet"
    }

    fn n_items(&self) -> usize {
        self.n_items
    }

    fn store(&self) -> &ParamStore {
        &self.store
    }

    fn config(&self) -> &BaselineConfig {
        &self.cfg
    }

    fn encode_items(&self, ctx: &mut Ctx<'_>, ids: &[usize]) -> Var {
        self.emb.forward(ctx, ids)
    }

    fn encode_seq(&self, ctx: &mut Ctx<'_>, rows: &Var, batch: &Batch) -> Var {
        let mut h = self.dropout.forward(ctx, rows);
        for block in &self.blocks {
            h = block.forward(ctx, &h, batch.b, batch.l);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmm_data::registry::{build_dataset, DatasetId, Scale};
    use pmm_data::split::SplitDataset;
    use pmm_data::world::{World, WorldConfig};
    use pmm_eval::SeqRecommender;
    use rand::SeedableRng;

    #[test]
    fn nextitnet_trains() {
        let world = World::new(WorldConfig::default());
        let split = SplitDataset::new(build_dataset(&world, DatasetId::KwaiFood, Scale::Tiny, 42));
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = BaselineConfig {
            d: 16,
            layers: 2,
            dropout: 0.0,
            ..Default::default()
        };
        let mut model = build(cfg, &split.dataset, &mut rng);
        let first = model.train_epoch(&split.train, &mut rng);
        let mut last = first;
        for _ in 0..7 {
            last = model.train_epoch(&split.train, &mut rng);
        }
        assert!(last < first, "loss {first} -> {last}");
        // Scoring produces one row per case over the catalogue.
        let scores = model.score_cases(&split.valid[..2.min(split.valid.len())]);
        assert!(scores.iter().all(|s| s.len() == model.n_items()));
    }
}
