//! Shared baseline scaffolding: config, the [`RecCore`] abstraction and
//! the [`Baseline`] wrapper implementing [`SeqRecommender`].
//!
//! Every baseline reduces to two model-specific pieces — how items are
//! represented and how a sequence of item representations becomes
//! hidden states — while batching, the DAP-style in-batch softmax loss,
//! optimisation, catalogue caching and scoring are identical across
//! models (and identical to PMMRec's, for fairness).

use pmm_data::batch::{Batch, BatchIter};
use pmm_data::split::LeaveOneOut;
use pmm_eval::SeqRecommender;
use pmm_nn::{AdamW, AdamWConfig, Ctx, ParamStore};
use pmm_tensor::{Tensor, Var};
use pmmrec::objectives::{dap_masks, BatchIndex};
use rand::rngs::StdRng;
use std::cell::RefCell;

/// Hyper-parameters shared by all baselines (kept aligned with
/// [`pmmrec::PmmRecConfig`] defaults for a fair comparison).
#[derive(Debug, Clone, Copy)]
pub struct BaselineConfig {
    /// Hidden dimensionality.
    pub d: usize,
    /// Attention heads (attention-based models).
    pub heads: usize,
    /// Encoder depth.
    pub layers: usize,
    /// Feed-forward expansion.
    pub ff_mult: usize,
    /// Dropout probability.
    pub dropout: f32,
    /// AdamW learning rate.
    pub lr: f32,
    /// Sequences per batch.
    pub batch_size: usize,
    /// Maximum sequence length.
    pub max_len: usize,
}

impl Default for BaselineConfig {
    fn default() -> Self {
        BaselineConfig {
            d: 32,
            heads: 4,
            layers: 2,
            ff_mult: 2,
            dropout: 0.1,
            lr: 3e-3,
            batch_size: 32,
            max_len: 12,
        }
    }
}

/// The two model-specific pieces of a baseline.
pub trait RecCore {
    /// Display name.
    fn name(&self) -> &str;

    /// Catalogue size.
    fn n_items(&self) -> usize;

    /// Parameter store (for the optimizer).
    fn store(&self) -> &ParamStore;

    /// Config in force.
    fn config(&self) -> &BaselineConfig;

    /// Encodes the given item ids into `[ids.len(), d]` representations.
    fn encode_items(&self, ctx: &mut Ctx<'_>, ids: &[usize]) -> Var;

    /// Encodes per-position item representations `rows: [b*l, d]` into
    /// hidden states `[b*l, d]`. `batch` carries ids/lengths for models
    /// whose sequence encoder needs extra per-item inputs (FDSA).
    fn encode_seq(&self, ctx: &mut Ctx<'_>, rows: &Var, batch: &Batch) -> Var;
}

/// Wraps a [`RecCore`] with training/scoring plumbing and implements
/// [`SeqRecommender`].
pub struct Baseline<T: RecCore> {
    core: T,
    opt: AdamW,
    catalog: RefCell<Option<Tensor>>,
}

impl<T: RecCore> Baseline<T> {
    /// Wraps a core with a fresh AdamW.
    pub fn new(core: T) -> Baseline<T> {
        let lr = core.config().lr;
        Baseline {
            core,
            opt: AdamW::new(lr, AdamWConfig::default()),
            catalog: RefCell::new(None),
        }
    }

    /// Access to the inner model.
    pub fn core(&self) -> &T {
        &self.core
    }

    /// Mutable access to the inner model.
    pub fn core_mut(&mut self) -> &mut T {
        self.catalog.replace(None);
        &mut self.core
    }

    /// Saves all parameters (the baseline transfer mechanism; UniSRec,
    /// VQRec and MoRec++ have no per-item ID tables, so their full
    /// parameter sets are catalogue-independent).
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> Result<(), pmm_nn::checkpoint::CheckpointError> {
        pmm_nn::checkpoint::save(self.core.store(), path)
    }

    /// Loads parameters matching `prefixes` (empty = everything) from a
    /// checkpoint saved by a same-architecture model.
    pub fn load_filtered(
        &mut self,
        path: impl AsRef<std::path::Path>,
        prefixes: &[&str],
    ) -> Result<pmm_nn::checkpoint::LoadReport, pmm_nn::checkpoint::CheckpointError> {
        self.catalog.replace(None);
        pmm_nn::checkpoint::load_filtered(self.core.store(), path, prefixes)
    }

    fn step(&mut self, batch: &Batch, rng: &mut StdRng) -> f32 {
        let idx = BatchIndex::new(batch);
        let (b, l) = (batch.b, batch.l);
        let mut ctx = Ctx::train(rng);
        let reps = self.core.encode_items(&mut ctx, &idx.unique);
        let pos_cols: Vec<usize> = (0..b * l)
            .map(|row| {
                let (bi, t) = (row / l, row % l);
                if t < batch.lens[bi] {
                    idx.col[&batch.items[row]]
                } else {
                    0
                }
            })
            .collect();
        let rows = reps.gather_rows(&pos_cols);
        let h = self.core.encode_seq(&mut ctx, &rows, batch);
        let sims = h.matmul_nt(&reps);
        let (pos, den, w) = dap_masks(batch, &idx);
        let loss = sims.group_contrastive_loss(&pos, &den, Some(&w));
        let value = loss.value().scalar_value();
        loss.backward();
        self.opt.step(self.core.store(), &ctx);
        value
    }

    fn catalog_reps(&self) -> Tensor {
        if let Some(cat) = self.catalog.borrow().as_ref() {
            return cat.clone();
        }
        const CHUNK: usize = 128;
        let n = self.core.n_items();
        let d = self.core.config().d;
        let mut data = Vec::with_capacity(n * d);
        let mut start = 0usize;
        while start < n {
            let ids: Vec<usize> = (start..(start + CHUNK).min(n)).collect();
            let mut ctx = Ctx::eval();
            let reps = self.core.encode_items(&mut ctx, &ids);
            data.extend_from_slice(reps.value().data());
            start += CHUNK;
        }
        let cat = Tensor::from_vec(data, &[n, d]).expect("catalog numel");
        *self.catalog.borrow_mut() = Some(cat.clone());
        cat
    }
}

impl<T: RecCore> SeqRecommender for Baseline<T> {
    fn name(&self) -> &str {
        self.core.name()
    }

    fn n_items(&self) -> usize {
        self.core.n_items()
    }

    fn train_epoch(&mut self, train: &[Vec<usize>], rng: &mut StdRng) -> f32 {
        self.catalog.replace(None);
        let cfg = *self.core.config();
        let batches: Vec<Batch> =
            BatchIter::new(train, cfg.batch_size, cfg.max_len, rng).collect();
        if batches.is_empty() {
            return 0.0;
        }
        let mut total = 0.0f32;
        for batch in &batches {
            total += self.step(batch, rng);
        }
        total / batches.len() as f32
    }

    fn score_cases(&self, cases: &[LeaveOneOut]) -> Vec<Vec<f32>> {
        if cases.is_empty() {
            return Vec::new();
        }
        let cat = self.catalog_reps();
        let max_len = self.core.config().max_len;
        let prefixes: Vec<&[usize]> = cases
            .iter()
            .map(|c| {
                let p = c.prefix.as_slice();
                &p[p.len().saturating_sub(max_len)..]
            })
            .collect();
        let batch = Batch::from_sequences(&prefixes, max_len);
        let (b, l) = (batch.b, batch.l);
        let rows = cat.gather_rows(&batch.items);
        let mut ctx = Ctx::eval();
        let h = self.core.encode_seq(&mut ctx, &Var::constant(rows), &batch);
        let last_rows: Vec<usize> = (0..b).map(|bi| bi * l + batch.lens[bi] - 1).collect();
        let h_last = h.gather_rows(&last_rows);
        let scores = h_last.value().matmul_t(&cat, false, true);
        let n = self.core.n_items();
        (0..b)
            .map(|bi| scores.data()[bi * n..(bi + 1) * n].to_vec())
            .collect()
    }
}
