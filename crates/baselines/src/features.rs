//! Pre-extracted ("frozen") content features for the non-end-to-end
//! baselines (UniSRec, VQRec, and the context vectors of CARCA++).

use pmm_data::dataset::Dataset;
use pmm_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Simulates a frozen pre-trained language model: a fixed random token
/// projection table, mean-pooled over each item's tokens.
///
/// This mirrors ZESRec/UniSRec's "pre-extracted text embeddings": the
/// representation is informative (tokens encode the latent) but *not*
/// trainable end-to-end, which is exactly the weakness the paper
/// attributes to this model family.
pub fn frozen_text_embeddings(dataset: &Dataset, d_frozen: usize, seed: u64) -> Tensor {
    let vocab = dataset.content.vocab;
    let mut rng = StdRng::seed_from_u64(seed);
    let table = Tensor::randn(&[vocab, d_frozen], 1.0, &mut rng);
    let n = dataset.items.len();
    let mut out = vec![0.0f32; n * d_frozen];
    for (i, item) in dataset.items.iter().enumerate() {
        let inv = 1.0 / item.tokens.len().max(1) as f32;
        for &t in &item.tokens {
            for j in 0..d_frozen {
                out[i * d_frozen + j] += table.data()[t * d_frozen + j] * inv;
            }
        }
    }
    Tensor::from_vec(out, &[n, d_frozen]).expect("frozen text numel")
}

/// Mean patch vector per item: the cheap "image feature" used as
/// CARCA++'s visual context.
pub fn vision_mean_features(dataset: &Dataset) -> Tensor {
    let dv = dataset.content.patch_dim;
    let q = dataset.content.n_patches;
    let n = dataset.items.len();
    let mut out = vec![0.0f32; n * dv];
    for (i, item) in dataset.items.iter().enumerate() {
        for k in 0..q {
            for j in 0..dv {
                out[i * dv + j] += item.patches[k * dv + j] / q as f32;
            }
        }
    }
    Tensor::from_vec(out, &[n, dv]).expect("vision mean numel")
}

/// Bag-of-tokens multi-hot matrix `[n, vocab]` normalised per item
/// (FDSA's raw text feature before its trainable projection).
pub fn token_bow(dataset: &Dataset) -> Tensor {
    let vocab = dataset.content.vocab;
    let n = dataset.items.len();
    let mut out = vec![0.0f32; n * vocab];
    for (i, item) in dataset.items.iter().enumerate() {
        let inv = 1.0 / item.tokens.len().max(1) as f32;
        for &t in &item.tokens {
            out[i * vocab + t] += inv;
        }
    }
    Tensor::from_vec(out, &[n, vocab]).expect("bow numel")
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmm_data::registry::{build_dataset, DatasetId, Scale};
    use pmm_data::world::{World, WorldConfig};

    fn ds() -> Dataset {
        let world = World::new(WorldConfig::default());
        build_dataset(&world, DatasetId::HmClothes, Scale::Tiny, 42)
    }

    #[test]
    fn frozen_embeddings_are_deterministic_and_shaped() {
        let d = ds();
        let a = frozen_text_embeddings(&d, 24, 7);
        let b = frozen_text_embeddings(&d, 24, 7);
        assert_eq!(a.shape(), &[d.items.len(), 24]);
        assert_eq!(a.data(), b.data());
        let c = frozen_text_embeddings(&d, 24, 8);
        assert_ne!(a.data(), c.data());
    }

    #[test]
    fn frozen_embeddings_separate_items_with_different_tokens() {
        let d = ds();
        let e = frozen_text_embeddings(&d, 24, 7);
        // Find two items with different token multisets.
        let (i, j) = (0, d.items.len() - 1);
        if d.items[i].tokens != d.items[j].tokens {
            assert_ne!(&e.data()[i * 24..(i + 1) * 24], &e.data()[j * 24..(j + 1) * 24]);
        }
    }

    #[test]
    fn vision_mean_has_patch_dim_width() {
        let d = ds();
        let v = vision_mean_features(&d);
        assert_eq!(v.shape(), &[d.items.len(), d.content.patch_dim]);
        assert!(v.all_finite());
    }

    #[test]
    fn bow_rows_sum_to_one() {
        let d = ds();
        let b = token_bow(&d);
        for i in 0..d.items.len() {
            let s: f32 = b.data()[i * d.content.vocab..(i + 1) * d.content.vocab].iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
    }
}
