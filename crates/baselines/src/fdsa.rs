//! FDSA: feature-level deeper self-attention (Zhang et al., 2019).
//!
//! Two parallel causal self-attention branches — one over ID
//! embeddings, one over (trainably projected) item text features — whose
//! final states are combined by learned projections. Still ID-based:
//! the candidate representation contains the item-ID embedding, so the
//! model cannot transfer across catalogues.

use crate::common::{Baseline, BaselineConfig, RecCore};
use crate::features::token_bow;
use pmm_data::batch::Batch;
use pmm_data::dataset::Dataset;
use pmm_nn::{Ctx, Dropout, Embedding, Linear, Param, ParamStore, TransformerEncoder};
use pmm_tensor::{Tensor, Var};
use rand::rngs::StdRng;

/// The FDSA model.
pub type Fdsa = Baseline<FdsaCore>;

/// Model-specific pieces of FDSA.
pub struct FdsaCore {
    cfg: BaselineConfig,
    store: ParamStore,
    emb: Embedding,
    feat_proj: Linear,
    /// Frozen `[n_items, vocab]` bag-of-tokens features.
    bow: Tensor,
    pos: Param,
    item_branch: TransformerEncoder,
    feat_branch: TransformerEncoder,
    fuse_item: Linear,
    fuse_feat: Linear,
    dropout: Dropout,
    n_items: usize,
}

/// Builds an FDSA over the dataset.
pub fn build(cfg: BaselineConfig, dataset: &Dataset, rng: &mut StdRng) -> Fdsa {
    let mut store = ParamStore::new();
    let trm = |store: &mut ParamStore, name: &str, rng: &mut StdRng| {
        TransformerEncoder::new(
            store,
            name,
            pmm_nn::TransformerConfig {
                d: cfg.d,
                heads: cfg.heads,
                layers: cfg.layers,
                ff_mult: cfg.ff_mult,
                dropout: cfg.dropout,
                causal: true,
            },
            rng,
        )
    };
    let emb = Embedding::new(&mut store, "item_emb", dataset.items.len(), cfg.d, rng);
    let feat_proj = Linear::new(&mut store, "feat_proj", dataset.content.vocab, cfg.d, true, rng);
    let pos = store.register("pos", Tensor::randn(&[cfg.max_len, cfg.d], 0.02, rng));
    let item_branch = trm(&mut store, "item_trm", rng);
    let feat_branch = trm(&mut store, "feat_trm", rng);
    let fuse_item = Linear::new(&mut store, "fuse_item", cfg.d, cfg.d, true, rng);
    let fuse_feat = Linear::new(&mut store, "fuse_feat", cfg.d, cfg.d, false, rng);
    Baseline::new(FdsaCore {
        dropout: Dropout::new(cfg.dropout),
        bow: token_bow(dataset),
        cfg,
        store,
        emb,
        feat_proj,
        pos,
        item_branch,
        feat_branch,
        fuse_item,
        fuse_feat,
        n_items: dataset.items.len(),
    })
}

impl FdsaCore {
    /// Projected text feature rows for the given ids.
    fn feat_rows(&self, ctx: &mut Ctx<'_>, ids: &[usize]) -> Var {
        let raw = Var::constant(self.bow.gather_rows(ids));
        self.feat_proj.forward(ctx, &raw)
    }
}

impl RecCore for FdsaCore {
    fn name(&self) -> &str {
        "FDSA"
    }

    fn n_items(&self) -> usize {
        self.n_items
    }

    fn store(&self) -> &ParamStore {
        &self.store
    }

    fn config(&self) -> &BaselineConfig {
        &self.cfg
    }

    fn encode_items(&self, ctx: &mut Ctx<'_>, ids: &[usize]) -> Var {
        // Candidate representation: ID embedding + projected feature
        // (the dot-product scoring counterpart of the fused hidden).
        let id = self.emb.forward(ctx, ids);
        let feat = self.feat_rows(ctx, ids);
        id.add(&feat)
    }

    fn encode_seq(&self, ctx: &mut Ctx<'_>, _rows: &Var, batch: &Batch) -> Var {
        // FDSA re-derives both branch inputs from the batch ids: the
        // fused candidate rows are not separable into branches.
        let (b, l) = (batch.b, batch.l);
        let pos_ids: Vec<usize> = (0..b * l).map(|r| r % l).collect();
        let pos = ctx.var(&self.pos).gather_rows(&pos_ids);
        let id_rows = self.emb.forward(ctx, &batch.items).add(&pos);
        let id_rows = self.dropout.forward(ctx, &id_rows);
        let feat_rows = self.feat_rows(ctx, &batch.items).add(&pos);
        let feat_rows = self.dropout.forward(ctx, &feat_rows);
        let h_item = self.item_branch.forward(ctx, &id_rows, b, l, &batch.lens);
        let h_feat = self.feat_branch.forward(ctx, &feat_rows, b, l, &batch.lens);
        // Concat-then-project, expressed as a sum of projections.
        let a = self.fuse_item.forward(ctx, &h_item);
        let c = self.fuse_feat.forward(ctx, &h_feat);
        a.add(&c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmm_data::registry::{build_dataset, DatasetId, Scale};
    use pmm_data::split::SplitDataset;
    use pmm_data::world::{World, WorldConfig};
    use pmm_eval::SeqRecommender;
    use rand::SeedableRng;

    #[test]
    fn fdsa_trains_and_scores() {
        let world = World::new(WorldConfig::default());
        let split = SplitDataset::new(build_dataset(&world, DatasetId::AmazonShoes, Scale::Tiny, 42));
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = BaselineConfig {
            d: 16,
            heads: 2,
            layers: 1,
            dropout: 0.0,
            ..Default::default()
        };
        let mut model = build(cfg, &split.dataset, &mut rng);
        let first = model.train_epoch(&split.train, &mut rng);
        let mut last = first;
        for _ in 0..7 {
            last = model.train_epoch(&split.train, &mut rng);
        }
        assert!(last < first, "loss {first} -> {last}");
        let s = model.score_cases(&split.valid[..1]);
        assert_eq!(s[0].len(), model.n_items());
    }
}
