//! # pmm-baselines
//!
//! The paper's eight comparison systems, re-implemented on the same
//! tensor substrate and trained with the same in-batch softmax loss and
//! evaluation protocol as PMMRec:
//!
//! * **Pure ID-based** (`IDSR`): [`GruRec`], [`NextItNet`], [`SasRec`].
//! * **ID + side features** (`IDSR w. side feat.`): [`Fdsa`] (feature-
//!   level self-attention) and [`CarcaPP`] (cross-attention over
//!   multi-modal context; the paper's multi-modal upgrade of CARCA).
//! * **Transferable SR**: [`UniSRec`] (frozen text embeddings +
//!   whitening adaptor), [`VqRec`] (product-quantised text codes) and
//!   [`MoRecPP`] (trainable text+vision encoders with additive fusion —
//!   PMMRec's backbone without the alignment/denoising objectives).
//!
//! All models expose the [`pmm_eval::SeqRecommender`] interface via the
//! shared [`Baseline`] wrapper, so the experiment harness drives them
//! uniformly.

pub mod carca;
pub mod common;
pub mod fdsa;
pub mod features;
pub mod gru_rec;
pub mod morec;
pub mod nextitnet;
pub mod popularity;
pub mod sasrec;
pub mod unisrec;
pub mod vq;
pub mod vqrec;

pub use carca::CarcaPP;
pub use common::{Baseline, BaselineConfig};
pub use fdsa::Fdsa;
pub use gru_rec::GruRec;
pub use morec::MoRecPP;
pub use nextitnet::NextItNet;
pub use popularity::Popularity;
pub use sasrec::SasRec;
pub use unisrec::UniSRec;
pub use vqrec::VqRec;
