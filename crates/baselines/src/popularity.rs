//! Global popularity ranking: the non-personalised floor every
//! recommender must beat, and the bottom rung of the serving runtime's
//! degradation ladder — when every model path is unavailable, the
//! service still answers with the overall best-sellers.

/// Item ranking by global interaction count, built once from training
/// sequences. Scores are raw counts; ties resolve to the lower item id,
/// matching the stable ordering of `recommend_top_k`.
#[derive(Debug, Clone)]
pub struct Popularity {
    /// Interaction count per catalogue item.
    counts: Vec<u64>,
    /// All item ids sorted by descending count (ascending id on ties).
    ranked: Vec<usize>,
}

impl Popularity {
    /// Counts interactions over `train` for a catalogue of `n_items`.
    /// Out-of-range ids are ignored rather than panicking (serving
    /// infrastructure must tolerate stale logs).
    pub fn from_sequences(n_items: usize, train: &[Vec<usize>]) -> Popularity {
        let mut counts = vec![0u64; n_items];
        for seq in train {
            for &item in seq {
                if let Some(c) = counts.get_mut(item) {
                    *c += 1;
                }
            }
        }
        let mut ranked: Vec<usize> = (0..n_items).collect();
        ranked.sort_by(|&a, &b| counts[b].cmp(&counts[a]).then(a.cmp(&b)));
        Popularity { counts, ranked }
    }

    /// Catalogue size.
    pub fn n_items(&self) -> usize {
        self.counts.len()
    }

    /// Interaction count of one item (0 for out-of-range ids).
    pub fn count(&self, item: usize) -> u64 {
        self.counts.get(item).copied().unwrap_or(0)
    }

    /// The `k` most popular items with their counts as scores,
    /// optionally skipping items in `exclude` (the user's own history).
    pub fn top_k(&self, k: usize, exclude: &[usize]) -> Vec<(usize, u64)> {
        self.ranked
            .iter()
            .filter(|item| !exclude.contains(item))
            .take(k)
            .map(|&item| (item, self.counts[item]))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_by_count_with_id_tiebreak() {
        let train = vec![vec![2, 2, 2, 0], vec![1, 1, 0], vec![3]];
        let pop = Popularity::from_sequences(5, &train);
        assert_eq!(pop.count(2), 3);
        assert_eq!(pop.count(4), 0);
        // Item 0 and 1 tie at 2 interactions -> lower id first.
        let top: Vec<usize> = pop.top_k(5, &[]).into_iter().map(|(i, _)| i).collect();
        assert_eq!(top, vec![2, 0, 1, 3, 4]);
    }

    #[test]
    fn exclusion_and_truncation() {
        let train = vec![vec![0, 1, 2]];
        let pop = Popularity::from_sequences(3, &train);
        let top = pop.top_k(2, &[0]);
        assert_eq!(top, vec![(1, 1), (2, 1)]);
    }

    #[test]
    fn out_of_range_interactions_are_ignored() {
        let train = vec![vec![0, 99]];
        let pop = Popularity::from_sequences(2, &train);
        assert_eq!(pop.count(0), 1);
        assert_eq!(pop.top_k(10, &[]).len(), 2);
    }
}
