//! SASRec: ID embeddings + a unidirectional Transformer
//! (Kang & McAuley, 2018) — the strongest pure-ID baseline.

use crate::common::{Baseline, BaselineConfig, RecCore};
use pmm_data::batch::Batch;
use pmm_data::dataset::Dataset;
use pmm_nn::{Ctx, Dropout, Embedding, Param, ParamStore, TransformerEncoder};
use pmm_tensor::{Tensor, Var};
use rand::rngs::StdRng;

/// The SASRec model (wrapped in the shared training harness).
pub type SasRec = Baseline<SasRecCore>;

/// Model-specific pieces of SASRec.
pub struct SasRecCore {
    cfg: BaselineConfig,
    store: ParamStore,
    emb: Embedding,
    pos: Param,
    encoder: TransformerEncoder,
    dropout: Dropout,
    n_items: usize,
}

/// Builds a SASRec over the dataset's catalogue.
pub fn build(cfg: BaselineConfig, dataset: &Dataset, rng: &mut StdRng) -> SasRec {
    let mut store = ParamStore::new();
    let emb = Embedding::new(&mut store, "item_emb", dataset.items.len(), cfg.d, rng);
    let pos = store.register("pos", Tensor::randn(&[cfg.max_len, cfg.d], 0.02, rng));
    let encoder = TransformerEncoder::new(
        &mut store,
        "trm",
        pmm_nn::TransformerConfig {
            d: cfg.d,
            heads: cfg.heads,
            layers: cfg.layers,
            ff_mult: cfg.ff_mult,
            dropout: cfg.dropout,
            causal: true,
        },
        rng,
    );
    Baseline::new(SasRecCore {
        dropout: Dropout::new(cfg.dropout),
        cfg,
        store,
        emb,
        pos,
        encoder,
        n_items: dataset.items.len(),
    })
}

impl RecCore for SasRecCore {
    fn name(&self) -> &str {
        "SASRec"
    }

    fn n_items(&self) -> usize {
        self.n_items
    }

    fn store(&self) -> &ParamStore {
        &self.store
    }

    fn config(&self) -> &BaselineConfig {
        &self.cfg
    }

    fn encode_items(&self, ctx: &mut Ctx<'_>, ids: &[usize]) -> Var {
        self.emb.forward(ctx, ids)
    }

    fn encode_seq(&self, ctx: &mut Ctx<'_>, rows: &Var, batch: &Batch) -> Var {
        let (b, l) = (batch.b, batch.l);
        let pos_ids: Vec<usize> = (0..b * l).map(|r| r % l).collect();
        let pos = ctx.var(&self.pos).gather_rows(&pos_ids);
        let x = self.dropout.forward(ctx, &rows.add(&pos));
        self.encoder.forward(ctx, &x, b, l, &batch.lens)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmm_data::registry::{build_dataset, DatasetId, Scale};
    use pmm_data::split::SplitDataset;
    use pmm_data::world::{World, WorldConfig};
    use pmm_eval::{evaluate_cases, SeqRecommender};
    use rand::SeedableRng;

    #[test]
    fn sasrec_trains_and_improves() {
        let world = World::new(WorldConfig::default());
        let split = SplitDataset::new(build_dataset(&world, DatasetId::HmClothes, Scale::Tiny, 42));
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = BaselineConfig {
            d: 16,
            heads: 2,
            layers: 1,
            dropout: 0.0,
            ..Default::default()
        };
        let mut model = build(cfg, &split.dataset, &mut rng);
        let before = evaluate_cases(&model, &split.valid);
        let first = model.train_epoch(&split.train, &mut rng);
        let mut last = first;
        for _ in 0..9 {
            last = model.train_epoch(&split.train, &mut rng);
        }
        assert!(last < first, "loss {first} -> {last}");
        let after = evaluate_cases(&model, &split.valid);
        assert!(
            after.ndcg10() > before.ndcg10(),
            "no ranking gain: {} -> {}",
            before.ndcg10(),
            after.ndcg10()
        );
    }
}
