//! Product quantisation of frozen embeddings (the VQRec substrate).

use pmm_tensor::Tensor;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;

/// Lloyd's k-means over `n` points of dimension `dim` (flat data).
/// Returns `(centroids [k*dim], assignments [n])`.
pub fn kmeans(
    data: &[f32],
    n: usize,
    dim: usize,
    k: usize,
    iters: usize,
    rng: &mut StdRng,
) -> (Vec<f32>, Vec<usize>) {
    assert!(n > 0 && dim > 0 && k > 0, "kmeans: degenerate input");
    assert_eq!(data.len(), n * dim, "kmeans: data length");
    let k = k.min(n);
    // k-means++-lite: distinct random points as initial centroids.
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(rng);
    let mut centroids: Vec<f32> = order[..k]
        .iter()
        .flat_map(|&i| data[i * dim..(i + 1) * dim].iter().copied())
        .collect();
    let mut assign = vec![0usize; n];
    for _ in 0..iters {
        // Assignment step.
        for i in 0..n {
            let p = &data[i * dim..(i + 1) * dim];
            let mut best = (f32::INFINITY, 0usize);
            for c in 0..k {
                let q = &centroids[c * dim..(c + 1) * dim];
                let d2: f32 = p.iter().zip(q).map(|(&a, &b)| (a - b) * (a - b)).sum();
                if d2 < best.0 {
                    best = (d2, c);
                }
            }
            assign[i] = best.1;
        }
        // Update step (empty clusters keep their previous centroid).
        let mut sums = vec![0.0f32; k * dim];
        let mut counts = vec![0usize; k];
        for i in 0..n {
            counts[assign[i]] += 1;
            for j in 0..dim {
                sums[assign[i] * dim + j] += data[i * dim + j];
            }
        }
        for c in 0..k {
            if counts[c] > 0 {
                for j in 0..dim {
                    centroids[c * dim + j] = sums[c * dim + j] / counts[c] as f32;
                }
            }
        }
    }
    (centroids, assign)
}

/// Product quantiser: splits each embedding into `groups` contiguous
/// sub-vectors and k-means-codes each group independently.
///
/// The centroids are retained so a quantiser fitted on a *source*
/// corpus can [`ProductQuantizer::recode`] a *target* corpus — the
/// mechanism by which VQRec's code-embedding table transfers across
/// catalogues.
pub struct ProductQuantizer {
    /// Codes per item: `[n][groups]`, each in `0..k`.
    pub codes: Vec<Vec<usize>>,
    /// Per-group centroids: `[groups][k * sub_dim]`.
    centroids: Vec<Vec<f32>>,
    /// Sub-vector dimensionality.
    sub_dim: usize,
    /// Number of groups.
    pub groups: usize,
    /// Codebook size per group.
    pub k: usize,
}

impl ProductQuantizer {
    /// Quantises `[n, d]` embeddings into `groups × k` discrete codes.
    #[track_caller]
    pub fn fit(embeddings: &Tensor, groups: usize, k: usize, rng: &mut StdRng) -> ProductQuantizer {
        assert_eq!(embeddings.shape().len(), 2, "pq: embeddings must be rank 2");
        let (n, d) = (embeddings.shape()[0], embeddings.shape()[1]);
        assert_eq!(d % groups, 0, "pq: dim {d} not divisible into {groups} groups");
        let sub = d / groups;
        let mut codes = vec![vec![0usize; groups]; n];
        let mut centroids = Vec::with_capacity(groups);
        for g in 0..groups {
            // Extract the group slice of every item.
            let mut slice = Vec::with_capacity(n * sub);
            for i in 0..n {
                slice.extend_from_slice(&embeddings.data()[i * d + g * sub..i * d + (g + 1) * sub]);
            }
            let (cents, assign) = kmeans(&slice, n, sub, k, 8, rng);
            for (row, &a) in codes.iter_mut().zip(&assign) {
                row[g] = a;
            }
            centroids.push(cents);
        }
        ProductQuantizer {
            codes,
            centroids,
            sub_dim: sub,
            groups,
            k,
        }
    }

    /// Re-codes a different corpus' embeddings with this quantiser's
    /// centroids (codebook transfer). The embeddings must have the same
    /// width the quantiser was fitted on.
    #[track_caller]
    pub fn recode(&self, embeddings: &Tensor) -> ProductQuantizer {
        let (n, d) = (embeddings.shape()[0], embeddings.shape()[1]);
        assert_eq!(
            d,
            self.groups * self.sub_dim,
            "pq: embedding width {d} incompatible with fitted quantiser"
        );
        let sub = self.sub_dim;
        let mut codes = vec![vec![0usize; self.groups]; n];
        for g in 0..self.groups {
            let cents = &self.centroids[g];
            let k_eff = cents.len() / sub;
            for (i, code_row) in codes.iter_mut().enumerate() {
                let p = &embeddings.data()[i * d + g * sub..i * d + (g + 1) * sub];
                let mut best = (f32::INFINITY, 0usize);
                for c in 0..k_eff {
                    let q = &cents[c * sub..(c + 1) * sub];
                    let d2: f32 = p.iter().zip(q).map(|(&a, &b)| (a - b) * (a - b)).sum();
                    if d2 < best.0 {
                        best = (d2, c);
                    }
                }
                code_row[g] = best.1;
            }
        }
        ProductQuantizer {
            codes,
            centroids: self.centroids.clone(),
            sub_dim: sub,
            groups: self.groups,
            k: self.k,
        }
    }

    /// Flattened code-table index of item `i`'s group-`g` code.
    pub fn table_index(&self, i: usize, g: usize) -> usize {
        g * self.k + self.codes[i][g]
    }

    /// Size of the flat code-embedding table.
    pub fn table_size(&self) -> usize {
        self.groups * self.k
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn kmeans_separates_two_blobs() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut data = Vec::new();
        for i in 0..20 {
            let center = if i < 10 { -5.0 } else { 5.0 };
            data.push(center + (i % 3) as f32 * 0.1);
            data.push(center - (i % 2) as f32 * 0.1);
        }
        let (_, assign) = kmeans(&data, 20, 2, 2, 10, &mut rng);
        // All points in the same blob share a cluster.
        assert!(assign[..10].iter().all(|&a| a == assign[0]));
        assert!(assign[10..].iter().all(|&a| a == assign[10]));
        assert_ne!(assign[0], assign[10]);
    }

    #[test]
    fn kmeans_caps_k_at_n() {
        let mut rng = StdRng::seed_from_u64(1);
        let data = vec![1.0f32, 2.0, 3.0];
        let (centroids, assign) = kmeans(&data, 3, 1, 10, 4, &mut rng);
        assert_eq!(centroids.len(), 3);
        assert_eq!(assign.len(), 3);
    }

    #[test]
    fn pq_codes_are_in_range_and_deterministic_per_seed() {
        let mut rng = StdRng::seed_from_u64(2);
        let emb = Tensor::randn(&[30, 8], 1.0, &mut rng);
        let pq = ProductQuantizer::fit(&emb, 4, 4, &mut StdRng::seed_from_u64(3));
        assert_eq!(pq.table_size(), 16);
        for i in 0..30 {
            for g in 0..4 {
                assert!(pq.codes[i][g] < 4);
                assert!(pq.table_index(i, g) < 16);
            }
        }
        let pq2 = ProductQuantizer::fit(&emb, 4, 4, &mut StdRng::seed_from_u64(3));
        assert_eq!(pq.codes, pq2.codes);
    }

    #[test]
    fn similar_items_share_more_codes() {
        let mut rng = StdRng::seed_from_u64(4);
        // Two clusters of items.
        let mut data = Vec::new();
        for i in 0..20 {
            let c = if i < 10 { 3.0 } else { -3.0 };
            for _ in 0..8 {
                data.push(c + rng.random::<f32>() * 0.2);
            }
        }
        use rand::Rng;
        let emb = Tensor::from_vec(data, &[20, 8]).unwrap();
        let pq = ProductQuantizer::fit(&emb, 2, 2, &mut rng);
        let share = |a: usize, b: usize| {
            (0..2).filter(|&g| pq.codes[a][g] == pq.codes[b][g]).count()
        };
        assert!(share(0, 1) >= share(0, 15));
    }
}
