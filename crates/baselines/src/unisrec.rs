//! UniSRec: universal sequence representation via frozen text
//! embeddings and a whitening adaptor (Hou et al., 2022).
//!
//! Item text is embedded by a *frozen* extractor (here: the random
//! projection in [`crate::features::frozen_text_embeddings`], playing
//! the role of a frozen BERT); a trainable mixture-of-whitening adaptor
//! maps it into the recommendation space; a causal Transformer encodes
//! the sequence. The model never fine-tunes the text representation
//! end-to-end — the limitation the paper's experiments expose.

use crate::common::{Baseline, BaselineConfig, RecCore};
use crate::features::frozen_text_embeddings;
use pmm_data::batch::Batch;
use pmm_data::dataset::Dataset;
use pmm_nn::{Ctx, Dropout, LayerNorm, Linear, Param, ParamStore, TransformerEncoder};
use pmm_tensor::{Tensor, Var};
use rand::rngs::StdRng;

/// Frozen text-embedding width (the stand-in for BERT's hidden size).
pub const FROZEN_DIM: usize = 24;
/// Number of whitening experts in the adaptor.
const EXPERTS: usize = 2;

/// The UniSRec model.
pub type UniSRec = Baseline<UniSRecCore>;

/// Model-specific pieces of UniSRec.
pub struct UniSRecCore {
    cfg: BaselineConfig,
    store: ParamStore,
    /// Frozen `[n_items, FROZEN_DIM]` text embeddings.
    frozen: Tensor,
    experts: Vec<Linear>,
    gate: Linear,
    adaptor_ln: LayerNorm,
    pos: Param,
    encoder: TransformerEncoder,
    dropout: Dropout,
    n_items: usize,
}

/// Builds a UniSRec over the dataset.
pub fn build(cfg: BaselineConfig, dataset: &Dataset, rng: &mut StdRng) -> UniSRec {
    let mut store = ParamStore::new();
    let experts = (0..EXPERTS)
        .map(|e| Linear::new(&mut store, &format!("whiten.{e}"), FROZEN_DIM, cfg.d, true, rng))
        .collect();
    let gate = Linear::new(&mut store, "gate", FROZEN_DIM, EXPERTS, true, rng);
    let adaptor_ln = LayerNorm::new(&mut store, "adaptor_ln", cfg.d);
    let pos = store.register("pos", Tensor::randn(&[cfg.max_len, cfg.d], 0.02, rng));
    let encoder = TransformerEncoder::new(
        &mut store,
        "trm",
        pmm_nn::TransformerConfig {
            d: cfg.d,
            heads: cfg.heads,
            layers: cfg.layers,
            ff_mult: cfg.ff_mult,
            dropout: cfg.dropout,
            causal: true,
        },
        rng,
    );
    Baseline::new(UniSRecCore {
        dropout: Dropout::new(cfg.dropout),
        frozen: frozen_text_embeddings(dataset, FROZEN_DIM, 0xC0FFEE),
        cfg,
        store,
        experts,
        gate,
        adaptor_ln,
        pos,
        encoder,
        n_items: dataset.items.len(),
    })
}

impl RecCore for UniSRecCore {
    fn name(&self) -> &str {
        "UniSRec"
    }

    fn n_items(&self) -> usize {
        self.n_items
    }

    fn store(&self) -> &ParamStore {
        &self.store
    }

    fn config(&self) -> &BaselineConfig {
        &self.cfg
    }

    fn encode_items(&self, ctx: &mut Ctx<'_>, ids: &[usize]) -> Var {
        // MoE whitening adaptor: softmax-gated mixture of linear
        // whitening transforms over the frozen embedding.
        let raw = Var::constant(self.frozen.gather_rows(ids));
        let gates = self.gate.forward(ctx, &raw).softmax_last(); // [n, E]
        let mut mixed: Option<Var> = None;
        for (e, expert) in self.experts.iter().enumerate() {
            let out = expert.forward(ctx, &raw); // [n, d]
            // Scale rows by gate column e (broadcast across d).
            let cols: Vec<usize> = (0..ids.len()).map(|i| i * EXPERTS + e).collect();
            let g = gates.reshape(&[ids.len() * EXPERTS, 1]).gather_rows(&cols);
            let gd = broadcast_cols(&g, self.cfg.d);
            let term = out.mul(&gd);
            mixed = Some(match mixed {
                Some(m) => m.add(&term),
                None => term,
            });
        }
        self.adaptor_ln.forward(ctx, &mixed.expect("at least one expert"))
    }

    fn encode_seq(&self, ctx: &mut Ctx<'_>, rows: &Var, batch: &Batch) -> Var {
        let (b, l) = (batch.b, batch.l);
        let pos_ids: Vec<usize> = (0..b * l).map(|r| r % l).collect();
        let pos = ctx.var(&self.pos).gather_rows(&pos_ids);
        let x = self.dropout.forward(ctx, &rows.add(&pos));
        self.encoder.forward(ctx, &x, b, l, &batch.lens)
    }
}

/// Expands a `[n, 1]` column into `[n, d]` by repeating the column.
fn broadcast_cols(col: &Var, d: usize) -> Var {
    // gather_rows over the flattened [n*1] view repeated d times per row.
    let n = col.shape()[0];
    let idx: Vec<usize> = (0..n * d).map(|r| r / d).collect();
    col.reshape(&[n, 1]).gather_rows(&idx).reshape(&[n, d])
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmm_data::registry::{build_dataset, DatasetId, Scale};
    use pmm_data::split::SplitDataset;
    use pmm_data::world::{World, WorldConfig};
    use pmm_eval::SeqRecommender;
    use rand::SeedableRng;

    #[test]
    fn unisrec_trains() {
        let world = World::new(WorldConfig::default());
        let split = SplitDataset::new(build_dataset(&world, DatasetId::BiliMovie, Scale::Tiny, 42));
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = BaselineConfig {
            d: 16,
            heads: 2,
            layers: 1,
            dropout: 0.0,
            ..Default::default()
        };
        let mut model = build(cfg, &split.dataset, &mut rng);
        let first = model.train_epoch(&split.train, &mut rng);
        let mut last = first;
        for _ in 0..7 {
            last = model.train_epoch(&split.train, &mut rng);
        }
        assert!(last < first, "loss {first} -> {last}");
    }

    #[test]
    fn broadcast_cols_repeats_column() {
        let c = Var::constant(Tensor::from_vec(vec![1.0, 2.0], &[2, 1]).unwrap());
        let b = broadcast_cols(&c, 3);
        assert_eq!(b.value().data(), &[1.0, 1.0, 1.0, 2.0, 2.0, 2.0]);
    }
}
