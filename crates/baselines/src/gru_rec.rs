//! GRURec (GRU4Rec): ID embeddings + a gated recurrent sequence
//! encoder (Hidasi et al., 2015).

use crate::common::{Baseline, BaselineConfig, RecCore};
use pmm_data::batch::Batch;
use pmm_data::dataset::Dataset;
use pmm_nn::{Ctx, Dropout, Embedding, Gru, ParamStore};
use pmm_tensor::Var;
use rand::rngs::StdRng;

/// The GRURec model.
pub type GruRec = Baseline<GruRecCore>;

/// Model-specific pieces of GRURec.
pub struct GruRecCore {
    cfg: BaselineConfig,
    store: ParamStore,
    emb: Embedding,
    gru: Gru,
    dropout: Dropout,
    n_items: usize,
}

/// Builds a GRURec over the dataset's catalogue.
pub fn build(cfg: BaselineConfig, dataset: &Dataset, rng: &mut StdRng) -> GruRec {
    let mut store = ParamStore::new();
    let emb = Embedding::new(&mut store, "item_emb", dataset.items.len(), cfg.d, rng);
    let gru = Gru::new(&mut store, "gru", cfg.d, cfg.d, rng);
    Baseline::new(GruRecCore {
        dropout: Dropout::new(cfg.dropout),
        cfg,
        store,
        emb,
        gru,
        n_items: dataset.items.len(),
    })
}

impl RecCore for GruRecCore {
    fn name(&self) -> &str {
        "GRURec"
    }

    fn n_items(&self) -> usize {
        self.n_items
    }

    fn store(&self) -> &ParamStore {
        &self.store
    }

    fn config(&self) -> &BaselineConfig {
        &self.cfg
    }

    fn encode_items(&self, ctx: &mut Ctx<'_>, ids: &[usize]) -> Var {
        self.emb.forward(ctx, ids)
    }

    fn encode_seq(&self, ctx: &mut Ctx<'_>, rows: &Var, batch: &Batch) -> Var {
        let x = self.dropout.forward(ctx, rows);
        self.gru.forward(ctx, &x, batch.b, batch.l)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmm_data::registry::{build_dataset, DatasetId, Scale};
    use pmm_data::split::SplitDataset;
    use pmm_data::world::{World, WorldConfig};
    use pmm_eval::SeqRecommender;
    use rand::SeedableRng;

    #[test]
    fn grurec_loss_decreases() {
        let world = World::new(WorldConfig::default());
        let split = SplitDataset::new(build_dataset(&world, DatasetId::BiliFood, Scale::Tiny, 42));
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = BaselineConfig {
            d: 16,
            dropout: 0.0,
            ..Default::default()
        };
        let mut model = build(cfg, &split.dataset, &mut rng);
        let first = model.train_epoch(&split.train, &mut rng);
        // GRUs move slowly on the tiny fixture; the best epoch within a
        // modest budget must still improve on the first.
        let best = (0..15)
            .map(|_| model.train_epoch(&split.train, &mut rng))
            .fold(f32::INFINITY, f32::min);
        assert!(best < first, "loss never improved: {first} -> best {best}");
        assert_eq!(model.name(), "GRURec");
    }
}
