//! CARCA++: context- and attribute-aware cross-attention (Rashed et
//! al., 2022), upgraded to multi-modal context exactly as the paper
//! does for its strongest side-feature baseline.
//!
//! Item representations enrich ID embeddings with projected text and
//! vision context; the sequence encoder is a causal Transformer whose
//! output cross-attends back over the enriched sequence.

use crate::common::{Baseline, BaselineConfig, RecCore};
use crate::features::{token_bow, vision_mean_features};
use pmm_data::batch::Batch;
use pmm_data::dataset::Dataset;
use pmm_nn::{
    mask, Ctx, Dropout, Embedding, LayerNorm, Linear, MultiHeadAttention, Param, ParamStore,
    TransformerEncoder,
};
use pmm_tensor::{Tensor, Var};
use rand::rngs::StdRng;

/// The CARCA++ model.
pub type CarcaPP = Baseline<CarcaCore>;

/// Model-specific pieces of CARCA++.
pub struct CarcaCore {
    cfg: BaselineConfig,
    store: ParamStore,
    emb: Embedding,
    text_proj: Linear,
    vis_proj: Linear,
    bow: Tensor,
    vis: Tensor,
    pos: Param,
    encoder: TransformerEncoder,
    cross: MultiHeadAttention,
    cross_ln: LayerNorm,
    dropout: Dropout,
    n_items: usize,
}

/// Builds a CARCA++ over the dataset.
pub fn build(cfg: BaselineConfig, dataset: &Dataset, rng: &mut StdRng) -> CarcaPP {
    let mut store = ParamStore::new();
    let emb = Embedding::new(&mut store, "item_emb", dataset.items.len(), cfg.d, rng);
    let text_proj = Linear::new(&mut store, "text_proj", dataset.content.vocab, cfg.d, true, rng);
    let vis_proj = Linear::new(&mut store, "vis_proj", dataset.content.patch_dim, cfg.d, true, rng);
    let pos = store.register("pos", Tensor::randn(&[cfg.max_len, cfg.d], 0.02, rng));
    let encoder = TransformerEncoder::new(
        &mut store,
        "trm",
        pmm_nn::TransformerConfig {
            d: cfg.d,
            heads: cfg.heads,
            layers: cfg.layers,
            ff_mult: cfg.ff_mult,
            dropout: cfg.dropout,
            causal: true,
        },
        rng,
    );
    let cross = MultiHeadAttention::new(&mut store, "cross", cfg.d, cfg.heads, cfg.dropout, rng);
    let cross_ln = LayerNorm::new(&mut store, "cross_ln", cfg.d);
    Baseline::new(CarcaCore {
        dropout: Dropout::new(cfg.dropout),
        bow: token_bow(dataset),
        vis: vision_mean_features(dataset),
        cfg,
        store,
        emb,
        text_proj,
        vis_proj,
        pos,
        encoder,
        cross,
        cross_ln,
        n_items: dataset.items.len(),
    })
}

impl RecCore for CarcaCore {
    fn name(&self) -> &str {
        "CARCA++"
    }

    fn n_items(&self) -> usize {
        self.n_items
    }

    fn store(&self) -> &ParamStore {
        &self.store
    }

    fn config(&self) -> &BaselineConfig {
        &self.cfg
    }

    fn encode_items(&self, ctx: &mut Ctx<'_>, ids: &[usize]) -> Var {
        let id = self.emb.forward(ctx, ids);
        let text = self
            .text_proj
            .forward(ctx, &Var::constant(self.bow.gather_rows(ids)));
        let vis = self
            .vis_proj
            .forward(ctx, &Var::constant(self.vis.gather_rows(ids)));
        id.add(&text).add(&vis)
    }

    fn encode_seq(&self, ctx: &mut Ctx<'_>, rows: &Var, batch: &Batch) -> Var {
        let (b, l) = (batch.b, batch.l);
        let pos_ids: Vec<usize> = (0..b * l).map(|r| r % l).collect();
        let pos = ctx.var(&self.pos).gather_rows(&pos_ids);
        let x = self.dropout.forward(ctx, &rows.add(&pos));
        let h = self.encoder.forward(ctx, &x, b, l, &batch.lens);
        // Cross-attention: hidden states query the enriched sequence
        // (causal mask keeps the model autoregressive).
        let causal = mask::attention_mask(b, self.cfg.heads, l, &batch.lens, true);
        let ca = self.cross.forward_kv(ctx, &h, rows, b, l, l, &causal);
        self.cross_ln.forward(ctx, &h.add(&ca))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmm_data::registry::{build_dataset, DatasetId, Scale};
    use pmm_data::split::SplitDataset;
    use pmm_data::world::{World, WorldConfig};
    use pmm_eval::{evaluate_cases, SeqRecommender};
    use rand::SeedableRng;

    #[test]
    fn carca_trains_and_improves_ranking() {
        let world = World::new(WorldConfig::default());
        let split = SplitDataset::new(build_dataset(&world, DatasetId::HmShoes, Scale::Tiny, 42));
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = BaselineConfig {
            d: 16,
            heads: 2,
            layers: 1,
            dropout: 0.0,
            ..Default::default()
        };
        let mut model = build(cfg, &split.dataset, &mut rng);
        let before = evaluate_cases(&model, &split.valid);
        for _ in 0..8 {
            model.train_epoch(&split.train, &mut rng);
        }
        let after = evaluate_cases(&model, &split.valid);
        assert!(
            after.ndcg10() > before.ndcg10(),
            "{} -> {}",
            before.ndcg10(),
            after.ndcg10()
        );
    }
}
