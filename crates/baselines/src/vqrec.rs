//! VQRec: vector-quantised item representations (Hou et al., 2023).
//!
//! Frozen text embeddings are product-quantised into discrete codes at
//! build time; the model learns only a code-embedding table (and the
//! sequence encoder). Codes transfer across catalogues in the original
//! paper; here, as there, the representation bottleneck costs accuracy
//! against end-to-end multi-modal training.

use crate::common::{Baseline, BaselineConfig, RecCore};
use crate::features::frozen_text_embeddings;
use crate::vq::ProductQuantizer;
use pmm_data::batch::Batch;
use pmm_data::dataset::Dataset;
use pmm_nn::{Ctx, Dropout, Embedding, Param, ParamStore, TransformerEncoder};
use pmm_tensor::{Tensor, Var};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Frozen embedding width before quantisation.
const FROZEN_DIM: usize = 24;
/// Code groups.
const GROUPS: usize = 4;
/// Codebook size per group.
const CODEBOOK: usize = 16;

/// The VQRec model.
pub type VqRec = Baseline<VqRecCore>;

/// Model-specific pieces of VQRec.
pub struct VqRecCore {
    cfg: BaselineConfig,
    store: ParamStore,
    pq: ProductQuantizer,
    code_emb: Embedding,
    pos: Param,
    encoder: TransformerEncoder,
    dropout: Dropout,
    n_items: usize,
}

/// Fits a product quantiser on this dataset's frozen text embeddings
/// (deterministic in the dataset).
pub fn fit_quantizer(dataset: &Dataset) -> ProductQuantizer {
    let frozen = frozen_text_embeddings(dataset, FROZEN_DIM, 0xC0FFEE);
    ProductQuantizer::fit(&frozen, GROUPS, CODEBOOK, &mut StdRng::seed_from_u64(0xBEEF))
}

/// Re-codes a target dataset with a quantiser fitted elsewhere (the
/// transfer path: source codebook, target codes).
pub fn recode_for(pq: &ProductQuantizer, dataset: &Dataset) -> ProductQuantizer {
    let frozen = frozen_text_embeddings(dataset, FROZEN_DIM, 0xC0FFEE);
    pq.recode(&frozen)
}

/// Builds a VQRec over the dataset (quantisation is deterministic in
/// the dataset and a fixed internal seed).
pub fn build(cfg: BaselineConfig, dataset: &Dataset, rng: &mut StdRng) -> VqRec {
    build_with_quantizer(cfg, dataset, fit_quantizer(dataset), rng)
}

/// Builds a VQRec whose codes come from a caller-supplied quantiser
/// (e.g. one fitted on the pre-training sources).
pub fn build_with_quantizer(
    cfg: BaselineConfig,
    dataset: &Dataset,
    pq: ProductQuantizer,
    rng: &mut StdRng,
) -> VqRec {
    assert_eq!(
        pq.codes.len(),
        dataset.items.len(),
        "vqrec: quantiser codes do not cover the catalogue"
    );
    let mut store = ParamStore::new();
    let code_emb = Embedding::new(&mut store, "code_emb", pq.table_size(), cfg.d, rng);
    let pos = store.register("pos", Tensor::randn(&[cfg.max_len, cfg.d], 0.02, rng));
    let encoder = TransformerEncoder::new(
        &mut store,
        "trm",
        pmm_nn::TransformerConfig {
            d: cfg.d,
            heads: cfg.heads,
            layers: cfg.layers,
            ff_mult: cfg.ff_mult,
            dropout: cfg.dropout,
            causal: true,
        },
        rng,
    );
    Baseline::new(VqRecCore {
        dropout: Dropout::new(cfg.dropout),
        cfg,
        store,
        pq,
        code_emb,
        pos,
        encoder,
        n_items: dataset.items.len(),
    })
}

impl RecCore for VqRecCore {
    fn name(&self) -> &str {
        "VQRec"
    }

    fn n_items(&self) -> usize {
        self.n_items
    }

    fn store(&self) -> &ParamStore {
        &self.store
    }

    fn config(&self) -> &BaselineConfig {
        &self.cfg
    }

    fn encode_items(&self, ctx: &mut Ctx<'_>, ids: &[usize]) -> Var {
        // Item rep = mean of its group-code embeddings.
        let mut code_ids = Vec::with_capacity(ids.len() * GROUPS);
        for &i in ids {
            for g in 0..GROUPS {
                code_ids.push(self.pq.table_index(i, g));
            }
        }
        let codes = self.code_emb.forward(ctx, &code_ids); // [n*G, d]
        codes.mean_pool(ids.len(), GROUPS, &vec![1.0; ids.len() * GROUPS])
    }

    fn encode_seq(&self, ctx: &mut Ctx<'_>, rows: &Var, batch: &Batch) -> Var {
        let (b, l) = (batch.b, batch.l);
        let pos_ids: Vec<usize> = (0..b * l).map(|r| r % l).collect();
        let pos = ctx.var(&self.pos).gather_rows(&pos_ids);
        let x = self.dropout.forward(ctx, &rows.add(&pos));
        self.encoder.forward(ctx, &x, b, l, &batch.lens)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmm_data::registry::{build_dataset, DatasetId, Scale};
    use pmm_data::split::SplitDataset;
    use pmm_data::world::{World, WorldConfig};
    use pmm_eval::SeqRecommender;
    use rand::SeedableRng;

    #[test]
    fn vqrec_trains_and_scores() {
        let world = World::new(WorldConfig::default());
        let split = SplitDataset::new(build_dataset(&world, DatasetId::KwaiCartoon, Scale::Tiny, 42));
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = BaselineConfig {
            d: 16,
            heads: 2,
            layers: 1,
            dropout: 0.0,
            ..Default::default()
        };
        let mut model = build(cfg, &split.dataset, &mut rng);
        let first = model.train_epoch(&split.train, &mut rng);
        let mut last = first;
        for _ in 0..7 {
            last = model.train_epoch(&split.train, &mut rng);
        }
        assert!(last < first, "loss {first} -> {last}");
        let s = model.score_cases(&split.valid[..1]);
        assert_eq!(s[0].len(), model.n_items());
    }

    #[test]
    fn items_with_same_codes_share_representation() {
        let world = World::new(WorldConfig::default());
        let split = SplitDataset::new(build_dataset(&world, DatasetId::KwaiCartoon, Scale::Tiny, 42));
        let mut rng = StdRng::seed_from_u64(0);
        let model = build(BaselineConfig { d: 16, heads: 2, ..Default::default() }, &split.dataset, &mut rng);
        let core = model.core();
        // Find two items with identical codes, if any.
        let n = core.n_items;
        for i in 0..n {
            for j in (i + 1)..n {
                if core.pq.codes[i] == core.pq.codes[j] {
                    let mut ctx = Ctx::eval();
                    let reps = core.encode_items(&mut ctx, &[i, j]);
                    let d = reps.value().data();
                    let (a, b) = d.split_at(16);
                    assert_eq!(a, b);
                    return;
                }
            }
        }
        // No collision in this corpus is also acceptable.
    }
}
