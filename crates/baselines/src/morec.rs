//! MoRec++: the paper's multi-modal upgrade of MoRec (Yuan et al.,
//! 2023) — trainable text and vision encoders whose CLS embeddings are
//! *additively* fused and fed to a SASRec user encoder, trained with
//! next-item prediction only.
//!
//! Architecturally this is PMMRec's backbone without the merge-
//! attention fusion and without NICL/NID/RCL: the ablation that the
//! paper's Tables III/IV use to isolate the value of alignment and
//! denoising.

use crate::common::{Baseline, BaselineConfig, RecCore};
use pmm_data::batch::Batch;
use pmm_data::dataset::Dataset;
use pmm_data::world::Item;
use pmm_nn::{Ctx, ParamStore};
use pmm_tensor::Var;
use pmmrec::config::{Modality, PmmRecConfig};
use pmmrec::encoders::{TextEncoder, VisionEncoder};
use pmmrec::user_encoder::UserEncoder;
use rand::rngs::StdRng;

/// The MoRec++ model.
pub type MoRecPP = Baseline<MoRecCore>;

/// Model-specific pieces of MoRec++.
pub struct MoRecCore {
    cfg: BaselineConfig,
    store: ParamStore,
    corpus: Vec<Item>,
    text: TextEncoder,
    vision: VisionEncoder,
    user: UserEncoder,
}

fn to_pmm_cfg(cfg: &BaselineConfig) -> PmmRecConfig {
    PmmRecConfig {
        d: cfg.d,
        heads: cfg.heads,
        text_layers: cfg.layers,
        vision_layers: cfg.layers,
        fusion_layers: 1,
        user_layers: cfg.layers,
        ff_mult: cfg.ff_mult,
        dropout: cfg.dropout,
        modality: Modality::Both,
        lr: cfg.lr,
        batch_size: cfg.batch_size,
        max_len: cfg.max_len,
        finetune_top_blocks: None,
    }
}

/// Builds a MoRec++ over the dataset.
pub fn build(cfg: BaselineConfig, dataset: &Dataset, rng: &mut StdRng) -> MoRecPP {
    let pmm_cfg = to_pmm_cfg(&cfg);
    let spec = dataset.content;
    let mut store = ParamStore::new();
    let text = TextEncoder::new(&mut store, "text_encoder", &pmm_cfg, spec.vocab, spec.text_len, rng);
    let vision = VisionEncoder::new(
        &mut store,
        "vision_encoder",
        &pmm_cfg,
        spec.n_patches,
        spec.patch_dim,
        rng,
    );
    let user = UserEncoder::new(&mut store, "user_encoder", &pmm_cfg, rng);
    Baseline::new(MoRecCore {
        cfg,
        store,
        corpus: dataset.items.clone(),
        text,
        vision,
        user,
    })
}

impl RecCore for MoRecCore {
    fn name(&self) -> &str {
        "MoRec++"
    }

    fn n_items(&self) -> usize {
        self.corpus.len()
    }

    fn store(&self) -> &ParamStore {
        &self.store
    }

    fn config(&self) -> &BaselineConfig {
        &self.cfg
    }

    fn encode_items(&self, ctx: &mut Ctx<'_>, ids: &[usize]) -> Var {
        // Additive fusion of the two modality CLS embeddings.
        let t = self.text.forward(ctx, &self.corpus, ids);
        let v = self.vision.forward(ctx, &self.corpus, ids);
        t.cls.add(&v.cls).scale(0.5)
    }

    fn encode_seq(&self, ctx: &mut Ctx<'_>, rows: &Var, batch: &Batch) -> Var {
        self.user.forward(ctx, rows, batch.b, batch.l, &batch.lens)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmm_data::registry::{build_dataset, DatasetId, Scale};
    use pmm_data::split::SplitDataset;
    use pmm_data::world::{World, WorldConfig};
    use pmm_eval::{evaluate_cases, SeqRecommender};
    use rand::SeedableRng;

    #[test]
    fn morec_trains_and_improves() {
        let world = World::new(WorldConfig::default());
        let split = SplitDataset::new(build_dataset(&world, DatasetId::AmazonClothes, Scale::Tiny, 42));
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = BaselineConfig {
            d: 16,
            heads: 2,
            layers: 1,
            dropout: 0.0,
            ..Default::default()
        };
        let mut model = build(cfg, &split.dataset, &mut rng);
        let before = evaluate_cases(&model, &split.valid);
        for _ in 0..8 {
            model.train_epoch(&split.train, &mut rng);
        }
        let after = evaluate_cases(&model, &split.valid);
        assert!(
            after.ndcg10() > before.ndcg10(),
            "{} -> {}",
            before.ndcg10(),
            after.ndcg10()
        );
    }
}
