//! Startup replay and post-fold segment retirement.
//!
//! [`replay`] walks every segment in index order and recovers every
//! fully-written record, in append order, exactly once. A torn or
//! corrupt *tail* — a partial frame header, an implausible length, a
//! CRC mismatch, or a payload that no longer decodes — is truncated
//! off the segment file (`set_len` back to the last good frame
//! boundary), counted in the `wal_truncated` counter, and logged; the
//! walk then continues with the **next** segment, so damage in one
//! segment never shadows records that were durably appended after the
//! writer rotated past it. Replay never panics on disk corruption.
//!
//! [`fold`] deletes every segment after the replayed items have been
//! baked into a base snapshot (the serving stack does this under
//! `swap_snapshot`, so the WAL shrinks only once the new snapshot is
//! live).

use crate::codec::decode_item;
use crate::wal::{self, io_at, WalError, MAGIC, MAX_RECORD_BYTES};
use pmm_data::world::Item;
use pmm_nn::checkpoint::crc32;
use pmm_obs::counter as ctr;
use pmm_obs::obs_warn;
use std::fs::{self, OpenOptions};
use std::path::Path;

/// What a replay recovered.
#[derive(Debug)]
pub struct Replay {
    /// Every fully-written item, in append order.
    pub items: Vec<Item>,
    /// Segments visited.
    pub segments: usize,
    /// Segments whose tail was truncated (torn or corrupt).
    pub truncated: usize,
    /// Total bytes cut off across all truncations.
    pub truncated_bytes: u64,
}

/// Parse one segment's bytes. Returns the recovered items and the
/// byte offset of the first damaged frame (`None` when the segment is
/// clean to its end).
fn parse_segment(bytes: &[u8], path: &Path) -> (Vec<Item>, Option<(u64, String)>) {
    let mut items = Vec::new();
    if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
        return (items, Some((0, format!("bad segment header in {}", path.display()))));
    }
    let mut pos = MAGIC.len();
    loop {
        let rest = bytes.len() - pos;
        if rest == 0 {
            return (items, None);
        }
        if rest < 8 {
            return (items, Some((pos as u64, format!("torn frame header ({rest} bytes)"))));
        }
        let len = u32::from_le_bytes([bytes[pos], bytes[pos + 1], bytes[pos + 2], bytes[pos + 3]]);
        let want = u32::from_le_bytes([
            bytes[pos + 4],
            bytes[pos + 5],
            bytes[pos + 6],
            bytes[pos + 7],
        ]);
        if len > MAX_RECORD_BYTES {
            return (items, Some((pos as u64, format!("implausible record length {len}"))));
        }
        if rest - 8 < len as usize {
            return (
                items,
                Some((pos as u64, format!("torn payload ({} of {len} bytes)", rest - 8))),
            );
        }
        let payload = &bytes[pos + 8..pos + 8 + len as usize];
        let got = crc32(payload);
        if got != want {
            return (
                items,
                Some((pos as u64, format!("crc mismatch {got:#010x} != {want:#010x}"))),
            );
        }
        match decode_item(payload) {
            Ok(item) => items.push(item),
            Err(e) => return (items, Some((pos as u64, format!("undecodable payload: {e}")))),
        }
        pos += 8 + len as usize;
    }
}

/// Replay every segment in `dir`. See the module docs for the
/// recovery contract. An absent directory replays as empty.
pub fn replay(dir: &Path) -> Result<Replay, WalError> {
    let segments = wal::segment_paths(dir)?;
    let mut out = Replay {
        items: Vec::new(),
        segments: segments.len(),
        truncated: 0,
        truncated_bytes: 0,
    };
    for seg in &segments {
        let bytes = fs::read(seg).map_err(io_at(seg))?;
        let (mut items, damage) = parse_segment(&bytes, seg);
        ctr::WAL_REPLAYED.add(items.len() as u64);
        out.items.append(&mut items);
        if let Some((good_end, why)) = damage {
            let cut = bytes.len() as u64 - good_end;
            // Truncate the damage off so the next replay (and any
            // future appender that validates tails) sees a clean
            // segment. Damage at offset 0 (a foreign or headerless
            // file) removes the whole file's content.
            let f = OpenOptions::new().write(true).open(seg).map_err(io_at(seg))?;
            f.set_len(good_end).map_err(io_at(seg))?;
            f.sync_all().map_err(io_at(seg))?;
            ctr::WAL_TRUNCATED.add(1);
            out.truncated += 1;
            out.truncated_bytes += cut;
            obs_warn!(
                "ingest",
                "wal replay truncated {} at byte {}: {} ({} bytes cut)",
                seg.display(),
                good_end,
                why,
                cut
            );
        }
    }
    ctr::INGEST_ITEMS.add(out.items.len() as u64);
    Ok(out)
}

/// Retire every segment in `dir` after its items were folded into a
/// base snapshot. Returns how many segment files were removed.
pub fn fold(dir: &Path) -> Result<usize, WalError> {
    let segments = wal::segment_paths(dir)?;
    for seg in &segments {
        fs::remove_file(seg).map_err(io_at(seg))?;
    }
    if !segments.is_empty() {
        ctr::INGEST_FOLDS.add(1);
        ctr::record_wal_tail_bytes(0);
    }
    Ok(segments.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::tests::sample_item;
    use crate::codec::encode_item;
    use crate::wal::tests::tmp_dir;
    use crate::wal::{Wal, WalConfig};

    fn item_bits(i: &Item) -> (usize, Vec<u32>, Vec<usize>, Vec<u32>, bool) {
        (
            i.category,
            i.latent.iter().map(|x| x.to_bits()).collect(),
            i.tokens.clone(),
            i.patches.iter().map(|x| x.to_bits()).collect(),
            i.mismatched,
        )
    }

    #[test]
    fn replay_recovers_every_acknowledged_item_across_rotations() {
        let dir = tmp_dir("roundtrip");
        let written: Vec<Item> = (0..7).map(sample_item).collect();
        {
            let mut wal = Wal::with_config(&dir, WalConfig { segment_bytes: 128 }).unwrap();
            for item in &written {
                assert!(wal.append(item).unwrap());
            }
        }
        let rep = replay(&dir).unwrap();
        assert!(rep.segments > 1, "rotation produced several segments");
        assert_eq!(rep.truncated, 0);
        assert_eq!(
            rep.items.iter().map(item_bits).collect::<Vec<_>>(),
            written.iter().map(item_bits).collect::<Vec<_>>(),
            "every item, in order, bit-exactly"
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_truncated_and_later_segments_still_replay() {
        let _fg = pmm_fault::test_guard();
        let dir = tmp_dir("torn_tail");
        pmm_fault::install(pmm_fault::FaultPlan::parse("wal_corrupt@2").unwrap());
        let mut wal = Wal::open(&dir).unwrap();
        let mut durable = Vec::new();
        for seed in 0..5 {
            let item = sample_item(seed);
            if wal.append(&item).unwrap() {
                durable.push(item);
            }
        }
        pmm_fault::clear();
        assert_eq!(durable.len(), 4, "exactly the injected append was torn");
        let torn_len_before: u64 = wal::segment_paths(&dir)
            .unwrap()
            .iter()
            .map(|p| fs::metadata(p).unwrap().len())
            .sum();
        let rep = replay(&dir).unwrap();
        assert_eq!(rep.truncated, 1, "one segment had its tail cut");
        assert!(rep.truncated_bytes > 0);
        assert_eq!(
            rep.items.iter().map(item_bits).collect::<Vec<_>>(),
            durable.iter().map(item_bits).collect::<Vec<_>>(),
            "all durable items recovered exactly once; the torn one is gone"
        );
        // The truncation is persistent: a second replay is clean and
        // recovers the same items from strictly fewer bytes.
        let len_after: u64 = wal::segment_paths(&dir)
            .unwrap()
            .iter()
            .map(|p| fs::metadata(p).unwrap().len())
            .sum();
        assert!(len_after < torn_len_before);
        let again = replay(&dir).unwrap();
        assert_eq!(again.truncated, 0);
        assert_eq!(again.items.len(), durable.len());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bitflip_in_a_middle_segment_loses_only_that_segment_tail() {
        let dir = tmp_dir("bitflip");
        let written: Vec<Item> = (0..6).map(sample_item).collect();
        {
            // Two records per segment.
            let payload_frame = 8 + encode_item(&sample_item(0)).len();
            let seg_budget = (MAGIC.len() + 2 * payload_frame) as u64;
            let mut wal = Wal::with_config(&dir, WalConfig { segment_bytes: seg_budget }).unwrap();
            for item in &written {
                wal.append(item).unwrap();
            }
        }
        let segs = wal::segment_paths(&dir).unwrap();
        assert!(segs.len() >= 3, "{segs:?}");
        // Flip one payload byte in the middle segment's first record.
        let victim = &segs[1];
        let mut bytes = fs::read(victim).unwrap();
        let idx = MAGIC.len() + 8 + 3;
        bytes[idx] ^= 0xFF;
        fs::write(victim, &bytes).unwrap();

        let rep = replay(&dir).unwrap();
        assert_eq!(rep.truncated, 1);
        // Segment 0's two records and segment 2's records all survive;
        // the middle segment contributes nothing past the flip.
        let got: Vec<_> = rep.items.iter().map(item_bits).collect();
        assert!(got.len() == written.len() - 2, "lost exactly the damaged segment's records");
        assert_eq!(got[..2], written[..2].iter().map(item_bits).collect::<Vec<_>>()[..]);
        assert_eq!(got[2..], written[4..].iter().map(item_bits).collect::<Vec<_>>()[..]);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn implausible_length_and_bad_header_truncate_without_panicking() {
        let dir = tmp_dir("implausible");
        {
            let mut wal = Wal::open(&dir).unwrap();
            wal.append(&sample_item(0)).unwrap();
        }
        let segs = wal::segment_paths(&dir).unwrap();
        let seg = segs.first().unwrap();
        // Append a frame header claiming a multi-gigabyte record.
        let mut bytes = fs::read(seg).unwrap();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        fs::write(seg, &bytes).unwrap();
        let rep = replay(&dir).unwrap();
        assert_eq!((rep.items.len(), rep.truncated), (1, 1));

        // A segment with a foreign header contributes nothing.
        let alien = dir.join("wal-00000009.seg");
        fs::write(&alien, b"NOTAWAL!junk").unwrap();
        let rep2 = replay(&dir).unwrap();
        assert_eq!(rep2.items.len(), 1);
        assert_eq!(rep2.truncated, 1, "the alien segment was cut to empty");
        assert_eq!(fs::metadata(&alien).unwrap().len(), 0);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fold_retires_every_segment() {
        let dir = tmp_dir("fold");
        {
            let mut wal = Wal::with_config(&dir, WalConfig { segment_bytes: 64 }).unwrap();
            for seed in 0..4 {
                wal.append(&sample_item(seed)).unwrap();
            }
        }
        let n = wal::segment_paths(&dir).unwrap().len();
        assert!(n >= 2);
        assert_eq!(fold(&dir).unwrap(), n);
        assert!(wal::segment_paths(&dir).unwrap().is_empty());
        assert_eq!(replay(&dir).unwrap().items.len(), 0, "a folded wal replays empty");
        assert_eq!(fold(&dir).unwrap(), 0, "folding an empty wal is a no-op");
        fs::remove_dir_all(&dir).ok();
    }
}
