//! # pmm-ingest
//!
//! Crash-safe streaming item ingestion: an append-only write-ahead
//! log for new catalog items, replay with torn-tail recovery, and a
//! fold step that retires replayed segments once their items are
//! baked into a base snapshot.
//!
//! ```text
//! append(item) ──frame──> wal-00000000.seg ──rotate──> wal-00000001.seg ...
//!                              │ crash?
//! replay(dir) ─────────────────┴─> items (torn tail truncated, counted)
//! fold(dir)   ─────────────────────> segments deleted after snapshot bake
//! ```
//!
//! The on-disk discipline mirrors the checkpoint codec
//! (`pmm_nn::checkpoint`): little-endian fields, an explicit magic
//! header per segment, CRC32 (IEEE) integrity on every record, and
//! atomic creation via a tmp sibling + rename. Every append is
//! fsynced before it is acknowledged, so a record the writer
//! confirmed survives any crash; a record interrupted mid-write is a
//! *torn tail* that [`replay`] truncates and counts
//! (`wal_truncated`) instead of panicking.

pub mod codec;
pub mod replay;
pub mod wal;

pub use codec::{decode_item, encode_item};
pub use replay::{fold, replay, Replay};
pub use wal::{Wal, WalConfig, WalError};
