//! The append-only write-ahead log.
//!
//! A WAL directory holds numbered segment files (`wal-00000000.seg`,
//! `wal-00000001.seg`, ...). Each segment starts with the magic
//! header [`MAGIC`]; records follow as `[u32 len][u32 crc][payload]`
//! frames (little-endian, CRC32/IEEE over the payload — the same
//! integrity discipline as the checkpoint codec). Segments are
//! created atomically (tmp sibling + rename, like
//! `pmm_nn::checkpoint::save`) and every acknowledged append is
//! fsynced, so:
//!
//! * an append that returned durable **survives any crash**, and
//! * a crash mid-append leaves a torn tail the replayer truncates —
//!   never a half-record that parses as garbage.
//!
//! The injected `wal_corrupt@N` fault ([`pmm_fault::trip_wal_corrupt`])
//! simulates that crash deterministically: the Nth append writes only
//! a torn prefix of its frame, then the writer rotates to a fresh
//! segment so later appends land after the damage, exactly as a
//! restarted process would.

use pmm_data::world::Item;
use pmm_nn::checkpoint::crc32;
use pmm_obs::counter as ctr;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// Segment header magic: identifies a PMM WAL segment, version 1.
pub const MAGIC: &[u8; 8] = b"PMMWAL01";

/// Upper bound on one record's payload; a parsed length beyond this
/// is corruption, not a large item.
pub const MAX_RECORD_BYTES: u32 = 1 << 26;

/// Why a WAL operation failed.
#[derive(Debug)]
pub enum WalError {
    /// Underlying I/O failure, with the path it happened on.
    Io {
        /// The file or directory the operation touched.
        path: PathBuf,
        /// The OS error.
        source: io::Error,
    },
    /// A record or segment violates the on-disk format.
    Format(String),
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io { path, source } => {
                write!(f, "wal io error at {}: {source}", path.display())
            }
            WalError::Format(m) => write!(f, "wal format error: {m}"),
        }
    }
}

impl std::error::Error for WalError {}

/// Tag an io::Error with the path it happened on.
pub(crate) fn io_at(path: &Path) -> impl FnOnce(io::Error) -> WalError + '_ {
    move |source| WalError::Io { path: path.to_path_buf(), source }
}

/// WAL tuning.
#[derive(Debug, Clone, Copy)]
pub struct WalConfig {
    /// Rotate to a new segment once the current one reaches this many
    /// bytes (header included). Small segments bound how much one
    /// corrupt tail can take down.
    pub segment_bytes: u64,
}

impl Default for WalConfig {
    fn default() -> Self {
        WalConfig { segment_bytes: 64 * 1024 }
    }
}

/// The live segment files of a WAL directory, sorted by segment
/// index (their names embed it zero-padded, so lexicographic order is
/// numeric order). An absent directory is an empty WAL.
pub fn segment_paths(dir: &Path) -> Result<Vec<PathBuf>, WalError> {
    let entries = match fs::read_dir(dir) {
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        other => other.map_err(io_at(dir))?,
    };
    let mut segs: Vec<PathBuf> = entries
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("wal-") && n.ends_with(".seg"))
        })
        .collect();
    segs.sort();
    Ok(segs)
}

fn segment_name(index: u64) -> String {
    format!("wal-{index:08}.seg")
}

/// The append side of the log. One writer owns the tail segment;
/// replay and fold operate on the directory independently.
pub struct Wal {
    dir: PathBuf,
    file: File,
    seg_path: PathBuf,
    next_index: u64,
    seg_bytes: u64,
    tail_bytes: u64,
    cfg: WalConfig,
}

impl Wal {
    /// Open a WAL in `dir` (created if absent) with default tuning.
    pub fn open(dir: &Path) -> Result<Wal, WalError> {
        Wal::with_config(dir, WalConfig::default())
    }

    /// Open a WAL in `dir`. Existing segments are left untouched for
    /// replay; appends always start a fresh segment after the highest
    /// existing index, so a writer never extends a file whose tail it
    /// has not validated.
    pub fn with_config(dir: &Path, cfg: WalConfig) -> Result<Wal, WalError> {
        fs::create_dir_all(dir).map_err(io_at(dir))?;
        let existing = segment_paths(dir)?;
        let next_index = existing
            .iter()
            .filter_map(|p| {
                p.file_name()?
                    .to_str()?
                    .strip_prefix("wal-")?
                    .strip_suffix(".seg")?
                    .parse::<u64>()
                    .ok()
            })
            .max()
            .map_or(0, |last| last + 1);
        let tail_bytes: u64 = existing
            .iter()
            .map(|p| fs::metadata(p).map(|m| m.len()).unwrap_or(0))
            .sum();
        let mut wal = Wal {
            dir: dir.to_path_buf(),
            // Placeholder; create_segment installs the real handle.
            file: File::open(dir).map_err(io_at(dir))?,
            seg_path: PathBuf::new(),
            next_index,
            seg_bytes: 0,
            tail_bytes,
            cfg,
        };
        wal.create_segment()?;
        Ok(wal)
    }

    /// Atomically create the next segment: header written and synced
    /// into a tmp sibling, then renamed into place, so a visible
    /// `wal-*.seg` always carries a complete magic header.
    fn create_segment(&mut self) -> Result<(), WalError> {
        let path = self.dir.join(segment_name(self.next_index));
        let tmp = self.dir.join(format!(".{}.tmp.{}", segment_name(self.next_index), std::process::id()));
        {
            let mut f = File::create(&tmp).map_err(io_at(&tmp))?;
            // pmm-audit: allow(wal-durability) — fixed 8-byte magic header, no record payload to checksum; synced below
            f.write_all(MAGIC).map_err(io_at(&tmp))?;
            f.sync_all().map_err(io_at(&tmp))?;
        }
        if let Err(e) = fs::rename(&tmp, &path) {
            fs::remove_file(&tmp).ok();
            return Err(io_at(&path)(e));
        }
        self.file = OpenOptions::new().append(true).open(&path).map_err(io_at(&path))?;
        self.seg_path = path;
        self.next_index += 1;
        self.seg_bytes = MAGIC.len() as u64;
        self.tail_bytes += MAGIC.len() as u64;
        ctr::WAL_SEGMENTS.add(1);
        Ok(())
    }

    /// Append one item. `Ok(true)` means the record is durably on
    /// disk (framed, CRC'd, fsynced) and will be recovered by every
    /// future [`crate::replay`]. `Ok(false)` means the injected
    /// `wal_corrupt` fault tore this write mid-frame — the record was
    /// *not* acknowledged and replay will truncate it; the writer has
    /// already rotated past the damage so later appends are safe.
    pub fn append(&mut self, item: &Item) -> Result<bool, WalError> {
        let payload = crate::codec::encode_item(item);
        if payload.len() as u64 > MAX_RECORD_BYTES as u64 {
            return Err(WalError::Format(format!(
                "record payload of {} bytes exceeds the {MAX_RECORD_BYTES}-byte cap",
                payload.len()
            )));
        }
        let mut frame = Vec::with_capacity(8 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);

        if pmm_fault::trip_wal_corrupt() {
            // A deterministic torn write: the frame header and half
            // the payload land on disk, the rest never does — the
            // shape a real crash mid-append leaves behind.
            let torn = &frame[..8 + payload.len() / 2];
            self.file.write_all(torn).map_err(io_at(&self.seg_path))?;
            self.file.sync_all().map_err(io_at(&self.seg_path))?;
            self.seg_bytes += torn.len() as u64;
            self.tail_bytes += torn.len() as u64;
            ctr::record_wal_tail_bytes(self.tail_bytes);
            // Rotate so subsequent appends land after the damage,
            // exactly as a restarted writer would.
            self.create_segment()?;
            return Ok(false);
        }

        self.file.write_all(&frame).map_err(io_at(&self.seg_path))?;
        // The durability contract: the record is acknowledged only
        // after fsync. (pmm-audit wal-durability rule: every
        // acknowledged WAL write is CRC-framed and synced.)
        self.file.sync_all().map_err(io_at(&self.seg_path))?;
        self.seg_bytes += frame.len() as u64;
        self.tail_bytes += frame.len() as u64;
        ctr::WAL_APPENDS.add(1);
        ctr::record_wal_tail_bytes(self.tail_bytes);
        if self.seg_bytes >= self.cfg.segment_bytes {
            self.create_segment()?;
        }
        Ok(true)
    }

    /// The directory this WAL writes into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Total bytes across every live segment — the unfolded tail the
    /// `wal_tail_peak_bytes` gauge tracks.
    pub fn tail_bytes(&self) -> u64 {
        self.tail_bytes
    }

    /// The path of the segment currently being appended to.
    pub fn current_segment(&self) -> &Path {
        &self.seg_path
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::codec::tests::sample_item;
    use std::sync::atomic::{AtomicU64, Ordering};

    pub(crate) fn tmp_dir(name: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let d = std::env::temp_dir().join(format!(
            "pmm_wal_test_{name}_{}_{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        fs::remove_dir_all(&d).ok();
        d
    }

    #[test]
    fn segments_start_with_the_magic_header() {
        let dir = tmp_dir("magic");
        let mut wal = Wal::open(&dir).unwrap();
        assert!(wal.append(&sample_item(0)).unwrap());
        let bytes = fs::read(wal.current_segment()).unwrap();
        assert_eq!(&bytes[..8], MAGIC);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn small_segment_budget_rotates_and_new_writers_never_reuse_indices() {
        let dir = tmp_dir("rotate");
        {
            let mut wal = Wal::with_config(&dir, WalConfig { segment_bytes: 64 }).unwrap();
            for seed in 0..3 {
                wal.append(&sample_item(seed)).unwrap();
            }
        }
        let after_first = segment_paths(&dir).unwrap();
        assert!(after_first.len() >= 3, "64-byte segments hold one record each: {after_first:?}");
        // A reopened writer starts a fresh segment strictly after the
        // highest existing index.
        let mut wal = Wal::open(&dir).unwrap();
        wal.append(&sample_item(9)).unwrap();
        let all = segment_paths(&dir).unwrap();
        assert!(all.len() > after_first.len());
        let mut sorted = all.clone();
        sorted.sort();
        assert_eq!(all, sorted, "segment names sort in creation order");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn injected_torn_write_is_unacknowledged_and_rotates_past_the_damage() {
        let _fg = pmm_fault::test_guard();
        let dir = tmp_dir("torn");
        pmm_fault::install(pmm_fault::FaultPlan::parse("wal_corrupt@1").unwrap());
        let mut wal = Wal::open(&dir).unwrap();
        assert!(wal.append(&sample_item(0)).unwrap(), "append 0 is durable");
        let torn_seg = wal.current_segment().to_path_buf();
        let before = fs::metadata(&torn_seg).unwrap().len();
        assert!(!wal.append(&sample_item(1)).unwrap(), "append 1 is torn");
        assert!(wal.append(&sample_item(2)).unwrap(), "append 2 is durable again");
        let (wal_fired, _) = pmm_fault::fired_ingest();
        pmm_fault::clear();
        assert_eq!(wal_fired, 1);
        // The torn frame landed in the old segment (shorter than a
        // full frame would be) and the next append went elsewhere.
        let after = fs::metadata(&torn_seg).unwrap().len();
        assert!(after > before, "the torn prefix did hit the disk");
        assert_ne!(wal.current_segment(), torn_seg.as_path());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_directory_lists_as_an_empty_wal() {
        let dir = tmp_dir("absent");
        assert!(segment_paths(&dir).unwrap().is_empty());
    }
}
