//! The WAL record payload codec for [`pmm_data::world::Item`].
//!
//! Little-endian throughout, mirroring the checkpoint codec: a u64
//! category, then each variable-length field as a u32 count followed
//! by its elements (f32 bit patterns for floats, u64 for token ids),
//! then the mismatch flag as one byte. Float bit patterns round-trip
//! exactly — replayed items are bit-identical to the appended ones,
//! which is what lets a delta catalog built from a replay serve
//! bit-identically to a cold build.

use crate::wal::WalError;
use pmm_data::world::Item;

fn push_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn push_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Serialize one item into a WAL record payload.
pub fn encode_item(item: &Item) -> Vec<u8> {
    let mut buf = Vec::with_capacity(
        8 + 4
            + item.latent.len() * 4
            + 4
            + item.tokens.len() * 8
            + 4
            + item.patches.len() * 4
            + 1,
    );
    push_u64(&mut buf, item.category as u64);
    push_u32(&mut buf, item.latent.len() as u32);
    for &v in &item.latent {
        buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    push_u32(&mut buf, item.tokens.len() as u32);
    for &t in &item.tokens {
        push_u64(&mut buf, t as u64);
    }
    push_u32(&mut buf, item.patches.len() as u32);
    for &v in &item.patches {
        buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    buf.push(u8::from(item.mismatched));
    buf
}

/// A cursor over a record payload; every read is bounds-checked so a
/// corrupt payload that slipped past the CRC (or a hand-truncated
/// fixture) surfaces as a format error, never a panic.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], WalError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len()).ok_or_else(|| {
            WalError::Format(format!(
                "record payload truncated: wanted {n} bytes at offset {}, have {}",
                self.pos,
                self.buf.len()
            ))
        })?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u32(&mut self) -> Result<u32, WalError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, WalError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    fn f32s(&mut self, n: usize) -> Result<Vec<f32>, WalError> {
        let b = self.take(n.checked_mul(4).ok_or_else(|| {
            WalError::Format(format!("record float count {n} overflows"))
        })?)?;
        Ok(b.chunks_exact(4)
            .map(|c| f32::from_bits(u32::from_le_bytes([c[0], c[1], c[2], c[3]])))
            .collect())
    }
}

/// Deserialize one record payload back into an item.
pub fn decode_item(payload: &[u8]) -> Result<Item, WalError> {
    let mut r = Reader { buf: payload, pos: 0 };
    let category = r.u64()? as usize;
    let n_latent = r.u32()? as usize;
    let latent = r.f32s(n_latent)?;
    let n_tokens = r.u32()? as usize;
    let mut tokens = Vec::with_capacity(n_tokens.min(payload.len() / 8 + 1));
    for _ in 0..n_tokens {
        tokens.push(r.u64()? as usize);
    }
    let n_patches = r.u32()? as usize;
    let patches = r.f32s(n_patches)?;
    let mismatched = r.take(1)?[0] != 0;
    if r.pos != payload.len() {
        return Err(WalError::Format(format!(
            "record payload has {} trailing bytes",
            payload.len() - r.pos
        )));
    }
    Ok(Item { category, latent, tokens, patches, mismatched })
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    pub(crate) fn sample_item(seed: usize) -> Item {
        Item {
            category: seed * 3 + 1,
            latent: (0..4).map(|i| (seed * 7 + i) as f32 * 0.125 - 1.0).collect(),
            tokens: (0..6).map(|i| seed * 11 + i).collect(),
            patches: (0..8).map(|i| ((seed + i) as f32).sin()).collect(),
            mismatched: seed % 2 == 1,
        }
    }

    #[test]
    fn items_round_trip_bit_exactly() {
        for seed in 0..5 {
            let item = sample_item(seed);
            let back = decode_item(&encode_item(&item)).unwrap();
            assert_eq!(back.category, item.category);
            assert_eq!(back.tokens, item.tokens);
            assert_eq!(back.mismatched, item.mismatched);
            // Bit-level float equality, not approximate: the replayed
            // delta catalog must encode identically to the original.
            let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&back.latent), bits(&item.latent));
            assert_eq!(bits(&back.patches), bits(&item.patches));
        }
    }

    #[test]
    fn non_finite_floats_survive_the_round_trip() {
        let mut item = sample_item(0);
        item.patches = vec![f32::NAN, f32::INFINITY, -0.0, f32::MIN_POSITIVE / 2.0];
        let back = decode_item(&encode_item(&item)).unwrap();
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&back.patches), bits(&item.patches));
    }

    #[test]
    fn truncated_payload_is_a_format_error_not_a_panic() {
        let full = encode_item(&sample_item(2));
        for cut in [0, 5, full.len() / 2, full.len() - 1] {
            let err = decode_item(&full[..cut]).unwrap_err();
            assert!(matches!(err, WalError::Format(_)), "cut={cut}: {err}");
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut buf = encode_item(&sample_item(1));
        buf.push(0xAB);
        assert!(matches!(decode_item(&buf).unwrap_err(), WalError::Format(_)));
    }
}
