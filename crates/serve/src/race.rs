//! Yield-point hooks wiring the serving stack into `pmm-audit`'s
//! deterministic interleaving harness.
//!
//! The protocol entry points the static auditor flags as risky — reply
//! claim vs wedge takeover, swap-epoch publish vs worker rebuild,
//! shard quarantine vs revive — each call [`yield_point`] before
//! taking any lock. Disarmed (the production state, and every test
//! that never arms) that is one relaxed-cost atomic load; armed, it
//! forwards to the installed hook, which parks the thread until the
//! harness scheduler hands the grant back. Yield points sit strictly
//! *outside* critical sections: a thread parked while holding a real
//! mutex would be a deadlock the scheduler cannot schedule its way out
//! of (see `pmm_audit::sched` ground rules).
//!
//! Arming is one-way and process-wide. Threads the harness did not
//! spawn fall through the hook as a no-op, so the rest of the test
//! suite is unaffected even after a race test has armed the hook.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, PoisonError};

static ARMED: AtomicBool = AtomicBool::new(false);
static HOOK: Mutex<Option<fn(&str)>> = Mutex::new(None);

/// Install `hook` and arm every yield point. Idempotent; never
/// disarmed (the hook itself no-ops on non-harness threads).
#[cfg(test)]
pub(crate) fn arm(hook: fn(&str)) {
    let mut guard = HOOK.lock().unwrap_or_else(PoisonError::into_inner);
    *guard = Some(hook);
    drop(guard);
    ARMED.store(true, Ordering::Release);
}

/// A schedulable point in a cross-thread protocol. Free when disarmed.
#[inline]
pub(crate) fn yield_point(site: &str) {
    if ARMED.load(Ordering::Acquire) {
        parked(site);
    }
}

#[cold]
fn parked(site: &str) {
    // Copy the hook out before calling it: the hook parks this thread
    // until the scheduler re-grants it, and holding `HOOK` while
    // parked would stall every other yielding thread for real.
    let hook = {
        let guard = HOOK.lock().unwrap_or_else(PoisonError::into_inner);
        *guard
    };
    if let Some(h) = hook {
        h(site);
    }
}

#[cfg(test)]
mod tests {
    use crate::server::{Response, ServeError};
    use crate::shards::{ShardConfig, ShardHealth, ShardPool};
    use crate::supervisor::WorkerSlot;
    use crate::swap::Snapshots;
    use pmm_audit::sched::{explore, yield_here, Case, ThreadFn};
    use pmm_trace::{Stage, Tracer};
    use pmmrec::{PartialShards, Recommendation};
    use std::sync::{mpsc, Arc, Mutex};
    use std::time::Instant;

    fn armed() {
        super::arm(yield_here);
    }

    // --- Protocol 1: reply claim vs wedge takeover -------------------

    /// One parked request, three contenders: the owning worker claiming
    /// at its live generation, the watchdog wedging the slot over, and
    /// a stale tenant claiming at a retired generation. `racy` swaps
    /// the worker's `claim_if` for the seeded TOCTOU peek.
    fn claim_case(racy: bool) -> Case {
        let slot = Arc::new(WorkerSlot::new(0, Instant::now()));
        let gen = slot.install_tenant();
        let (tx, rx) = mpsc::channel::<Result<Response, ServeError>>();
        let worker_tx = tx.clone();
        let stale_tx = tx.clone();
        slot.race_park(tx);

        let w_slot = Arc::clone(&slot);
        let worker: ThreadFn = Box::new(move || {
            yield_here("worker-start");
            if racy {
                if let Some(reply) = w_slot.race_claim_peek(gen) {
                    let _ = reply.send(Err(ServeError::DeadlineExceeded { stage: "race-worker" }));
                }
            } else if w_slot.claim_if(gen) {
                let _ = worker_tx.send(Err(ServeError::DeadlineExceeded { stage: "race-worker" }));
            }
        });

        let d_slot = Arc::clone(&slot);
        let watchdog: ThreadFn = Box::new(move || {
            yield_here("watchdog-start");
            if let Some(inflight) = d_slot.wedge_take() {
                let _ =
                    inflight.reply.send(Err(ServeError::DeadlineExceeded { stage: "race-wedged" }));
            }
        });

        let s_slot = Arc::clone(&slot);
        let stale: ThreadFn = Box::new(move || {
            yield_here("stale-start");
            if s_slot.claim_if(gen.wrapping_sub(1)) {
                let _ = stale_tx.send(Err(ServeError::DeadlineExceeded { stage: "race-stale" }));
            }
        });

        Case {
            threads: vec![worker, watchdog, stale],
            check: Box::new(move || {
                let replies = rx.try_iter().count();
                if replies == 1 {
                    Ok(())
                } else {
                    Err(format!("exactly-one-reply violated: {replies} replies sent"))
                }
            }),
        }
    }

    /// The shipped claim protocol: exactly one reply on every schedule.
    #[test]
    fn claim_vs_wedge_is_exactly_one_reply() {
        armed();
        let exp = explore("claim-vs-wedge", 0x0C1A_1140, 600, 200, |_| claim_case(false));
        assert!(exp.distinct >= 200, "only {} distinct schedules", exp.distinct);
        assert!(exp.violations.is_empty(), "real protocol double-replied: {:?}", exp.violations);
    }

    /// The seeded TOCTOU peek double-replies on some schedule, and the
    /// printed seed replays it alone.
    #[test]
    fn seeded_claim_peek_double_replies_and_replays() {
        armed();
        let exp = explore("claim-peek-seeded", 0x0C1A_1141, 3000, 200, |_| claim_case(true));
        assert!(exp.distinct >= 200, "only {} distinct schedules", exp.distinct);
        assert!(!exp.violations.is_empty(), "sweep failed to find the seeded double-reply");
        let (seed, msg) = exp.violations[0].clone();
        assert!(msg.contains("exactly-one-reply"), "unexpected violation: {msg}");
        let replay = explore("claim-peek-replay", seed, 1, 1, |_| claim_case(true));
        assert_eq!(replay.violations.len(), 1, "replay seed {seed} did not reproduce");
        assert_eq!(replay.violations[0].0, seed);
    }

    // --- Protocol 2: swap-epoch publish vs worker rebuild ------------

    /// A publisher sweeping epochs 1..=2 against two rebuilding
    /// readers. Factories are rigged so a consistent read always has
    /// `factory() == epoch` and `cut == 10 * epoch`; any unpaired
    /// combination is a worker building epoch N's engine from epoch
    /// N+1's parts. `racy` swaps `current()` for the seeded
    /// epoch-outside-the-lock read.
    fn swap_case(racy: bool) -> Case {
        let snaps: Arc<Snapshots<u64>> = Arc::new(Snapshots::new(Arc::new(|| 0)));
        let seen: Arc<Mutex<Vec<(u64, u64, u64)>>> = Arc::new(Mutex::new(Vec::new()));

        let p_snaps = Arc::clone(&snaps);
        let publisher: ThreadFn = Box::new(move || {
            for v in 1u64..=2 {
                yield_here("publisher-step");
                p_snaps.publish(Arc::new(move || v), v * 10);
            }
        });

        let threads: Vec<ThreadFn> = std::iter::once(publisher)
            .chain((0..2).map(|_| {
                let r_snaps = Arc::clone(&snaps);
                let r_seen = Arc::clone(&seen);
                Box::new(move || {
                    for _ in 0..2 {
                        yield_here("reader-step");
                        let (factory, epoch, cut) = if racy {
                            r_snaps.race_current_unpaired()
                        } else {
                            r_snaps.current()
                        };
                        r_seen.lock().unwrap().push((factory(), epoch, cut));
                    }
                }) as ThreadFn
            }))
            .collect();

        Case {
            threads,
            check: Box::new(move || {
                let reads = seen.lock().unwrap();
                for &(built, epoch, cut) in reads.iter() {
                    if built != epoch || cut != epoch * 10 {
                        return Err(format!(
                            "no-epoch-pairing violated: built snapshot {built} \
                             tagged epoch {epoch} with cut {cut}"
                        ));
                    }
                }
                Ok(())
            }),
        }
    }

    /// `Snapshots::current` reads factory, epoch, and cut under one
    /// guard: no schedule can tear them apart.
    #[test]
    fn swap_publish_never_pairs_epochs_apart() {
        armed();
        let exp = explore("swap-pairing", 0x51AB_0001, 600, 200, |_| swap_case(false));
        assert!(exp.distinct >= 200, "only {} distinct schedules", exp.distinct);
        assert!(exp.violations.is_empty(), "consistent read tore: {:?}", exp.violations);
    }

    /// The seeded epoch-outside-the-lock read tears on some schedule
    /// and replays from its seed.
    #[test]
    fn seeded_unpaired_epoch_read_tears_and_replays() {
        armed();
        let exp = explore("swap-unpaired-seeded", 0x51AB_0002, 3000, 200, |_| swap_case(true));
        assert!(exp.distinct >= 200, "only {} distinct schedules", exp.distinct);
        assert!(!exp.violations.is_empty(), "sweep failed to find the seeded unpaired read");
        let (seed, msg) = exp.violations[0].clone();
        assert!(msg.contains("no-epoch-pairing"), "unexpected violation: {msg}");
        let replay = explore("swap-unpaired-replay", seed, 1, 1, |_| swap_case(true));
        assert_eq!(replay.violations.len(), 1, "replay seed {seed} did not reproduce");
    }

    // --- Protocol 3: shard quarantine vs revive under rank -----------

    fn exhaustive(scores: &[f32], k: usize) -> Vec<Recommendation> {
        let mut all: Vec<Recommendation> = scores
            .iter()
            .enumerate()
            .map(|(item, &score)| Recommendation { item, score })
            .collect();
        all.sort_by(|a, b| b.score.total_cmp(&a.score));
        all.truncate(k);
        all
    }

    /// A ranker scatter-gathering twice while a chaos thread
    /// quarantines shards mid-flight and a swap thread revives the
    /// pool — the quarantine-vs-revive protocol, plus coverage for
    /// `merge_shard_top_k` under concurrent health transitions: on
    /// every schedule the merge must stay sorted, duplicate-free, and
    /// bit-identical to the exhaustive sort whenever coverage is full.
    fn shard_case() -> Case {
        let pool = Arc::new(ShardPool::new(ShardConfig { shards: Some(4), max_rebuilds: 1 }));
        let results: Arc<Mutex<Vec<(Vec<Recommendation>, PartialShards)>>> =
            Arc::new(Mutex::new(Vec::new()));

        let r_pool = Arc::clone(&pool);
        let r_results = Arc::clone(&results);
        let ranker: ThreadFn = Box::new(move || {
            let scores: Vec<f32> = (0..40).map(|i| ((i * 13) % 17) as f32).collect();
            for _ in 0..2 {
                yield_here("ranker-step");
                let mut tracer = Tracer::start();
                let got =
                    r_pool.rank(&scores, &[], 10, false, &tracer.begin(Stage::Rank), &mut tracer);
                r_results.lock().unwrap().push(got);
            }
        });

        let c_pool = Arc::clone(&pool);
        let chaos: ThreadFn = Box::new(move || {
            yield_here("chaos-step");
            c_pool.note_panic(1);
            yield_here("chaos-step");
            c_pool.note_panic(2);
        });

        let v_pool = Arc::clone(&pool);
        let reviver: ThreadFn = Box::new(move || {
            yield_here("reviver-step");
            v_pool.revive();
            yield_here("reviver-step");
            let _ = v_pool.health();
        });

        let h_pool = Arc::clone(&pool);
        Case {
            threads: vec![ranker, chaos, reviver],
            check: Box::new(move || {
                let scores: Vec<f32> = (0..40).map(|i| ((i * 13) % 17) as f32).collect();
                let want_full = exhaustive(&scores, 10);
                let runs = results.lock().unwrap();
                if runs.len() != 2 {
                    return Err(format!("ranker completed {} of 2 rank calls", runs.len()));
                }
                for (recs, cov) in runs.iter() {
                    if recs.len() > 10 {
                        return Err(format!("merge returned {} > k items", recs.len()));
                    }
                    for pair in recs.windows(2) {
                        if pair[1].score > pair[0].score {
                            return Err("merge output not sorted by score".to_string());
                        }
                    }
                    let mut items: Vec<usize> = recs.iter().map(|r| r.item).collect();
                    items.sort_unstable();
                    items.dedup();
                    if items.len() != recs.len() {
                        return Err("merge output contains duplicate items".to_string());
                    }
                    if cov.total != 4 || cov.served > cov.total {
                        return Err(format!("incoherent coverage {cov:?}"));
                    }
                    if cov.served == cov.total && *recs != want_full {
                        return Err("full coverage but merge differs from exhaustive".to_string());
                    }
                }
                // Whatever interleaved, every shard must land on a
                // legal rung of the ladder.
                for h in h_pool.health() {
                    match h {
                        ShardHealth::Healthy | ShardHealth::Quarantined | ShardHealth::GivenUp => {}
                    }
                }
                Ok(())
            }),
        }
    }

    /// Satellite coverage: `merge_shard_top_k` stays correct while
    /// quarantine and revive race the scatter-gather. Seed-pinned —
    /// the sweep is deterministic end to end.
    #[test]
    fn merge_top_k_survives_concurrent_quarantine_and_revive() {
        armed();
        // Serialize against every fault-plan-installing test: rank()
        // consumes the global fault plan during admission.
        let _fg = pmm_fault::test_guard();
        let exp = explore("shard-quarantine-vs-revive", 0x5AAD_0003, 600, 200, |_| shard_case());
        assert!(exp.distinct >= 200, "only {} distinct schedules", exp.distinct);
        assert!(exp.violations.is_empty(), "merge invariants broke: {:?}", exp.violations);
    }
}
