//! Sharded scatter-gather ranking with per-shard quarantine.
//!
//! The catalog is partitioned into contiguous item-id ranges
//! (shard-per-core by default). A request's exhaustive score row is
//! scattered across the shards, each shard selects its local top-k
//! under panic isolation, and the gather merges the per-shard lists
//! **bit-identically** to the exhaustive path (`pmmrec::shard_top_k`
//! / `pmmrec::merge_shard_top_k` share the exhaustive sort's
//! tie-breaking discipline, so shard count never changes an answer).
//!
//! Health follows the supervisor's restart-budget ladder, per shard:
//! a panicking shard is **quarantined** (skipped; the gather returns a
//! partial result tagged [`pmmrec::PartialShards`]); the next request
//! probes it with a **rebuild** attempt while budget remains; a shard
//! that exhausts its rebuild budget is **given up** and stays dark
//! until a snapshot swap revives the pool with a fresh budget. Every
//! transition is counted (`serve_shard_*`) and the served/total shard
//! ratio feeds the `shard_miss_rate` coverage SLO (≥ 75% by default).

use pmm_obs::counter as ctr;
use pmm_trace::{Stage, StageClock, Tracer};
use pmmrec::{merge_shard_top_k, shard_ranges, shard_top_k, PartialShards, Recommendation};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Instant;

/// Scatter-gather tuning.
#[derive(Debug, Clone, Copy)]
pub struct ShardConfig {
    /// Catalog shards; `None` follows [`pmm_par::threads`]
    /// (shard-per-core), so the `--threads` knob governs sharding too.
    pub shards: Option<usize>,
    /// Rebuild attempts a quarantined shard may burn before it is
    /// given up until the next snapshot swap.
    pub max_rebuilds: u32,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig { shards: None, max_rebuilds: 3 }
    }
}

/// One shard's health rung.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardHealth {
    /// Serving normally.
    Healthy,
    /// Panicked on its last attempt; the next request probes a rebuild.
    Quarantined,
    /// Rebuild budget exhausted; dark until a snapshot swap revives it.
    GivenUp,
}

struct ShardState {
    health: ShardHealth,
    /// Rebuilds burned since the last revive.
    rebuilds: u32,
}

/// Shared shard health for the whole pool (every worker ranks through
/// the same shard map, so quarantine decisions are global, like
/// breakers).
pub(crate) struct ShardPool {
    n: usize,
    cfg: ShardConfig,
    states: Vec<Mutex<ShardState>>,
}

fn lock_state(m: &Mutex<ShardState>) -> MutexGuard<'_, ShardState> {
    // Health + rebuild count are valid at every instruction boundary.
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl ShardPool {
    pub(crate) fn new(cfg: ShardConfig) -> ShardPool {
        let n = cfg.shards.unwrap_or_else(pmm_par::threads).max(1);
        ShardPool {
            n,
            cfg,
            states: (0..n)
                .map(|_| Mutex::new(ShardState { health: ShardHealth::Healthy, rebuilds: 0 }))
                .collect(),
        }
    }

    /// Shard count.
    pub(crate) fn len(&self) -> usize {
        self.n
    }

    /// Every shard's current health rung.
    pub(crate) fn health(&self) -> Vec<ShardHealth> {
        self.states.iter().map(|s| lock_state(s).health).collect()
    }

    /// Fresh budgets after a snapshot swap: a new snapshot is new code
    /// for shard crash loops too (mirrors the worker-slot revive).
    pub(crate) fn revive(&self) {
        crate::race::yield_point("shard-revive");
        for s in &self.states {
            let mut st = lock_state(s);
            st.health = ShardHealth::Healthy;
            st.rebuilds = 0;
        }
    }

    /// Admission decision for shard `i`, advancing the quarantine
    /// ladder: quarantined shards spend a rebuild (probe) while budget
    /// remains, then give up.
    pub(crate) fn admit(&self, i: usize) -> bool {
        crate::race::yield_point("shard-admit");
        // pmm-audit: allow(hot-index) — i ranges over 0..self.n and states has n entries by construction
        let mut st = lock_state(&self.states[i]);
        match st.health {
            ShardHealth::Healthy => true,
            ShardHealth::GivenUp => false,
            ShardHealth::Quarantined => {
                if st.rebuilds < self.cfg.max_rebuilds {
                    st.rebuilds += 1;
                    st.health = ShardHealth::Healthy;
                    ctr::SERVE_SHARD_REBUILDS.add(1);
                    true
                } else {
                    st.health = ShardHealth::GivenUp;
                    ctr::SERVE_SHARD_GIVEUPS.add(1);
                    false
                }
            }
        }
    }

    pub(crate) fn note_panic(&self, i: usize) {
        crate::race::yield_point("shard-note-panic");
        // pmm-audit: allow(hot-index) — i ranges over 0..self.n and states has n entries by construction
        let mut st = lock_state(&self.states[i]);
        st.health = ShardHealth::Quarantined;
        ctr::SERVE_SHARD_PANICS.add(1);
        ctr::SERVE_SHARD_QUARANTINES.add(1);
    }

    /// Scatter-gather top-k over one exhaustive score row. Healthy
    /// shards select their local top-k in parallel under panic
    /// isolation; the gather merges whatever served and tags the
    /// answer with its shard coverage. With every shard healthy the
    /// result is bit-identical to the exhaustive sort.
    /// Per-shard trace events are anchored at `anchor` (the enclosing
    /// rank stage's clock): shards overlap in time, so giving the
    /// siblings one shared start keeps causal chains monotonic.
    pub(crate) fn rank(
        &self,
        scores: &[f32],
        prefix: &[usize],
        k: usize,
        exclude_seen: bool,
        anchor: &StageClock,
        tracer: &mut Tracer,
    ) -> (Vec<Recommendation>, PartialShards) {
        let ranges = shard_ranges(scores.len(), self.n);
        // Admission and fault-plan consumption happen sequentially in
        // shard order, so `shard_panic@N` occurrences map to shards
        // deterministically at every thread count.
        let tasks: Vec<(usize, std::ops::Range<usize>, bool)> = ranges
            .into_iter()
            .enumerate()
            .filter(|(i, _)| self.admit(*i))
            .map(|(i, r)| (i, r, pmm_fault::trip_shard_panic()))
            .collect();
        let total = self.n;

        // Scatter: rank admitted shards in parallel. Panics are caught
        // inside the closure — map_chunks itself must never see one.
        // One attempt is (shard index, elapsed ns, local top-k or panic).
        type ShardAttempt = (usize, u64, Result<Vec<Recommendation>, ()>);
        let results: Vec<Vec<ShardAttempt>> =
            pmm_par::map_chunks(&tasks, 1, |_, block| {
                block
                    .iter()
                    .map(|(i, range, injected)| {
                        let t0 = Instant::now();
                        let got = catch_unwind(AssertUnwindSafe(|| {
                            if *injected {
                                // pmm-audit: allow(hot-panic) — deterministic fault-injection point; the quarantine ladder is the feature under test
                                panic!("injected shard panic (shard_panic@N)");
                            }
                            shard_top_k(scores, range.clone(), prefix, k, exclude_seen)
                        }));
                        (*i, t0.elapsed().as_nanos() as u64, got.map_err(|_| ()))
                    })
                    .collect()
            });

        // Gather: per-shard parts arrive in ascending shard order
        // (map_chunks preserves block order), which the merge's
        // tie-breaking relies on.
        let mut parts = Vec::with_capacity(tasks.len());
        let mut served = 0usize;
        for (i, ns, got) in results.into_iter().flatten() {
            let dur = std::time::Duration::from_nanos(ns);
            match got {
                Ok(part) => {
                    tracer.observe_at(Stage::Shard, anchor, dur, "ok", &format!("shard={i}"));
                    served += 1;
                    parts.push(part);
                }
                Err(()) => {
                    tracer.observe_at(Stage::Shard, anchor, dur, "panic", &format!("shard={i}"));
                    self.note_panic(i);
                }
            }
        }
        ctr::SERVE_SHARDS_SERVED.add(served as u64);
        ctr::SERVE_SHARDS_TOTAL.add(total as u64);
        let coverage = PartialShards { served, total };
        if coverage.is_partial() {
            ctr::SERVE_PARTIAL.add(1);
        }
        (merge_shard_top_k(parts, k), coverage)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(n: usize, max_rebuilds: u32) -> ShardPool {
        ShardPool::new(ShardConfig { shards: Some(n), max_rebuilds })
    }

    fn scores() -> Vec<f32> {
        (0..40).map(|i| ((i * 13) % 17) as f32).collect()
    }

    fn exhaustive(scores: &[f32], k: usize) -> Vec<Recommendation> {
        let mut all: Vec<Recommendation> = scores
            .iter()
            .enumerate()
            .map(|(item, &score)| Recommendation { item, score })
            .collect();
        all.sort_by(|a, b| b.score.total_cmp(&a.score));
        all.truncate(k);
        all
    }

    #[test]
    fn healthy_pool_matches_the_exhaustive_sort_at_every_shard_count() {
        let _fg = pmm_fault::test_guard();
        let s = scores();
        let want = exhaustive(&s, 10);
        for n in [1, 2, 4, 7] {
            let p = pool(n, 3);
            let mut tracer = Tracer::start();
            let (got, cov) = p.rank(&s, &[], 10, false, &tracer.begin(Stage::Rank), &mut tracer);
            assert_eq!(got, want, "shards={n}");
            assert_eq!(cov, PartialShards { served: n, total: n });
            assert!(!cov.is_partial());
        }
    }

    #[test]
    fn panicking_shard_is_quarantined_and_the_gather_stays_partial_not_panicking() {
        let _fg = pmm_fault::test_guard();
        // Occurrence 1 = shard 1 of the first request (admissions are
        // consumed in shard order).
        pmm_fault::install(pmm_fault::FaultPlan::parse("shard_panic@1").unwrap());
        let p = pool(4, 1);
        let s = scores();
        let mut tracer = Tracer::start();
        let (got, cov) = p.rank(&s, &[], 10, false, &tracer.begin(Stage::Rank), &mut tracer);
        pmm_fault::clear();
        assert_eq!(cov, PartialShards { served: 3, total: 4 });
        assert!(cov.is_partial());
        assert!((cov.coverage() - 0.75).abs() < 1e-9);
        assert_eq!(p.health(), vec![
            ShardHealth::Healthy,
            ShardHealth::Quarantined,
            ShardHealth::Healthy,
            ShardHealth::Healthy,
        ]);
        // The gather is exactly the exhaustive sort minus shard 1's
        // id range.
        let ranges = shard_ranges(s.len(), 4);
        let missing = ranges.get(1).cloned().unwrap();
        let want: Vec<Recommendation> = exhaustive(&s, s.len())
            .into_iter()
            .filter(|r| !missing.contains(&r.item))
            .take(10)
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn rebuild_budget_heals_then_gives_up_until_revive() {
        let _fg = pmm_fault::test_guard();
        // Shard 0 panics on its first attempt and again on its rebuild
        // probe (occurrence 4 = shard 0 of request 2: request 1
        // consumed occurrences 0-3).
        pmm_fault::install(pmm_fault::FaultPlan::parse("shard_panic@0,shard_panic@4").unwrap());
        let p = pool(4, 1);
        let s = scores();
        let mut tracer = Tracer::start();
        let (_, cov1) = p.rank(&s, &[], 5, false, &tracer.begin(Stage::Rank), &mut tracer);
        assert_eq!(cov1.served, 3, "first panic quarantines shard 0");
        let (_, cov2) = p.rank(&s, &[], 5, false, &tracer.begin(Stage::Rank), &mut tracer);
        assert_eq!(cov2.served, 3, "the rebuild probe panics again");
        assert_eq!(p.health().first(), Some(&ShardHealth::Quarantined));
        let (_, cov3) = p.rank(&s, &[], 5, false, &tracer.begin(Stage::Rank), &mut tracer);
        pmm_fault::clear();
        assert_eq!(cov3.served, 3, "budget exhausted: shard 0 is given up, not probed");
        assert_eq!(p.health().first(), Some(&ShardHealth::GivenUp));
        // A snapshot swap revives the shard with a fresh budget.
        p.revive();
        assert_eq!(p.health(), vec![ShardHealth::Healthy; 4]);
        let mut tracer = Tracer::start();
        let (got, cov) = p.rank(&s, &[], 10, false, &tracer.begin(Stage::Rank), &mut tracer);
        assert_eq!(cov.served, 4);
        assert_eq!(got, exhaustive(&s, 10));
    }

    #[test]
    fn prefix_exclusion_matches_the_exhaustive_filtered_sort() {
        let _fg = pmm_fault::test_guard();
        let s = scores();
        let prefix = vec![3, 16, 21];
        let want: Vec<Recommendation> = exhaustive(&s, s.len())
            .into_iter()
            .filter(|r| !prefix.contains(&r.item))
            .take(8)
            .collect();
        for n in [2, 5] {
            let p = pool(n, 3);
            let mut tracer = Tracer::start();
            let (got, _) = p.rank(&s, &prefix, 8, true, &tracer.begin(Stage::Rank), &mut tracer);
            assert_eq!(got, want, "shards={n}");
        }
    }
}
