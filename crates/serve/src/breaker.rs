//! Per-component circuit breakers.
//!
//! A component that keeps failing (injected errors, timeouts) should
//! stop being asked: every doomed attempt burns deadline budget the
//! rest of the pipeline needs. The breaker watches a rolling outcome
//! window and trips open when failures accumulate; while open it
//! denies admission so the serving loop routes straight to the next
//! degradation rung. Recovery is probed, not assumed: after a
//! cooldown the breaker admits exactly one half-open probe, and only
//! a successful probe closes it again.
//!
//! The state machine is deliberately clock-free — cooldown is counted
//! in *denied admissions*, not wall time — so chaos tests step it
//! deterministically.

/// Breaker tuning.
#[derive(Debug, Clone, Copy)]
pub struct BreakerConfig {
    /// Rolling outcome window length.
    pub window: usize,
    /// Failures within the window that trip the breaker open.
    pub trip_failures: usize,
    /// Denied admissions before an open breaker half-opens for a probe.
    pub cooldown_denials: u64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig { window: 8, trip_failures: 3, cooldown_denials: 4 }
    }
}

/// Observable breaker state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy; all traffic admitted.
    Closed,
    /// Tripped; traffic denied while the cooldown elapses.
    Open,
    /// Cooldown elapsed; exactly one probe is in flight.
    HalfOpen,
}

/// One breaker; the server keeps one per [`crate::Component`] behind a
/// mutex shared by all workers.
#[derive(Debug)]
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    state: BreakerState,
    /// Rolling outcomes in the closed state (`true` = success).
    window: std::collections::VecDeque<bool>,
    /// Denials counted since the breaker opened.
    denials: u64,
    /// A half-open probe has been admitted and not yet reported.
    probe_in_flight: bool,
    /// Lifetime trip count.
    trips: u64,
    /// When the current outage began, for telemetry only: set on the
    /// first trip of an outage, kept across failed probes, and
    /// accounted into `serve_breaker_open_ns` when the breaker closes.
    /// Decisions stay clock-free; an outage still open at shutdown is
    /// accounted by [`CircuitBreaker::flush_open_time`].
    opened_at: Option<std::time::Instant>,
}

impl CircuitBreaker {
    /// A closed breaker under `cfg`.
    pub fn new(cfg: BreakerConfig) -> CircuitBreaker {
        CircuitBreaker {
            cfg,
            state: BreakerState::Closed,
            window: std::collections::VecDeque::new(),
            denials: 0,
            probe_in_flight: false,
            trips: 0,
            opened_at: None,
        }
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Lifetime trips.
    pub fn trips(&self) -> u64 {
        self.trips
    }

    /// Asks to route one request through the component. A denial is
    /// the caller's cue to skip to the next degradation rung.
    pub fn admit(&mut self) -> bool {
        match self.state {
            BreakerState::Closed => true,
            BreakerState::Open => {
                self.denials += 1;
                if self.denials >= self.cfg.cooldown_denials.max(1) {
                    self.state = BreakerState::HalfOpen;
                    self.probe_in_flight = true;
                    true // this call becomes the probe
                } else {
                    false
                }
            }
            BreakerState::HalfOpen => {
                if self.probe_in_flight {
                    false // one probe at a time
                } else {
                    self.probe_in_flight = true;
                    true
                }
            }
        }
    }

    /// Returns an admission without an outcome — the request was
    /// aborted before the component ran (e.g. a sibling component on
    /// the same rung denied). A half-open probe slot is handed back so
    /// the next admission can probe instead.
    pub fn release(&mut self) {
        if self.state == BreakerState::HalfOpen {
            self.probe_in_flight = false;
        }
    }

    /// Reports the outcome of an admitted request.
    pub fn record(&mut self, ok: bool) {
        match self.state {
            BreakerState::Closed => {
                self.window.push_back(ok);
                while self.window.len() > self.cfg.window.max(1) {
                    self.window.pop_front();
                }
                let failures = self.window.iter().filter(|&&o| !o).count();
                if failures >= self.cfg.trip_failures.max(1) {
                    self.trip();
                }
            }
            BreakerState::HalfOpen => {
                self.probe_in_flight = false;
                if ok {
                    self.state = BreakerState::Closed;
                    self.window.clear();
                    if let Some(t0) = self.opened_at.take() {
                        pmm_obs::counter::SERVE_BREAKER_OPEN_NS
                            .add(t0.elapsed().as_nanos() as u64);
                    }
                } else {
                    self.trip();
                }
            }
            // A late report after the breaker already tripped (another
            // worker's failure raced ahead); nothing to update.
            BreakerState::Open => {}
        }
    }

    /// Accounts the open time of a still-open outage into
    /// `serve_breaker_open_ns` without closing the breaker. The outage
    /// clock is re-stamped so a later close (or another flush) only
    /// charges the remainder — never the same interval twice. The
    /// server calls this at shutdown so an outage that never healed
    /// still reaches the SLO counter.
    pub fn flush_open_time(&mut self) {
        if let Some(t0) = self.opened_at {
            pmm_obs::counter::SERVE_BREAKER_OPEN_NS.add(t0.elapsed().as_nanos() as u64);
            self.opened_at = Some(std::time::Instant::now());
        }
    }

    fn trip(&mut self) {
        self.state = BreakerState::Open;
        self.window.clear();
        self.denials = 0;
        self.probe_in_flight = false;
        self.trips += 1;
        if self.opened_at.is_none() {
            self.opened_at = Some(std::time::Instant::now());
        }
        pmm_obs::counter::SERVE_BREAKER_TRIPS.add(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> BreakerConfig {
        BreakerConfig { window: 4, trip_failures: 2, cooldown_denials: 3 }
    }

    #[test]
    fn failures_in_window_trip_open() {
        let mut b = CircuitBreaker::new(cfg());
        assert!(b.admit());
        b.record(true);
        assert!(b.admit());
        b.record(false);
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.admit());
        b.record(false);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips(), 1);
        assert!(!b.admit(), "open breaker denies traffic");
    }

    #[test]
    fn old_failures_roll_out_of_the_window() {
        let mut b = CircuitBreaker::new(cfg());
        b.record(false);
        // Four successes push the failure out of the 4-wide window.
        for _ in 0..4 {
            b.record(true);
        }
        b.record(false);
        assert_eq!(b.state(), BreakerState::Closed, "one failure per window never trips");
    }

    #[test]
    fn cooldown_then_successful_probe_closes() {
        let mut b = CircuitBreaker::new(cfg());
        b.record(false);
        b.record(false); // trip
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.admit()); // denial 1
        assert!(!b.admit()); // denial 2
        assert!(b.admit(), "denial 3 reaches the cooldown and admits the probe");
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(!b.admit(), "only one probe in flight");
        b.record(true);
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.admit());
    }

    #[test]
    fn closing_accounts_open_time_into_the_counter() {
        pmm_obs::set_enabled(true);
        let before = pmm_obs::counter::SERVE_BREAKER_OPEN_NS.get();
        let mut b = CircuitBreaker::new(cfg());
        b.record(false);
        b.record(false); // trip: the outage clock starts
        std::thread::sleep(std::time::Duration::from_millis(2));
        assert!(!b.admit());
        assert!(!b.admit());
        assert!(b.admit()); // probe
        b.record(true); // close: the outage is accounted
        assert!(
            pmm_obs::counter::SERVE_BREAKER_OPEN_NS.delta_since(before) >= 2_000_000,
            "open time should cover the 2 ms outage"
        );
    }

    #[test]
    fn flush_accounts_still_open_outage_without_double_charge() {
        pmm_obs::set_enabled(true);
        let before = pmm_obs::counter::SERVE_BREAKER_OPEN_NS.get();
        let mut b = CircuitBreaker::new(cfg());
        b.record(false);
        b.record(false); // trip: the outage clock starts
        std::thread::sleep(std::time::Duration::from_millis(2));
        b.flush_open_time(); // shutdown-style flush while still open
        let flushed = pmm_obs::counter::SERVE_BREAKER_OPEN_NS.delta_since(before);
        assert!(flushed >= 2_000_000, "the flush accounts the open outage: {flushed}ns");
        // Healing after the flush only charges the post-flush
        // remainder, not the whole outage again.
        assert!(!b.admit());
        assert!(!b.admit());
        assert!(b.admit()); // probe
        b.record(true); // close
        let total = pmm_obs::counter::SERVE_BREAKER_OPEN_NS.delta_since(before);
        assert!(
            total - flushed < 2_000_000,
            "the close must not re-charge the flushed interval: flushed={flushed}ns total={total}ns"
        );
        // A closed breaker has nothing to flush.
        b.flush_open_time();
        assert_eq!(pmm_obs::counter::SERVE_BREAKER_OPEN_NS.delta_since(before), total);
    }

    #[test]
    fn failed_probe_reopens_and_restarts_cooldown() {
        let mut b = CircuitBreaker::new(cfg());
        b.record(false);
        b.record(false);
        assert!(!b.admit());
        assert!(!b.admit());
        assert!(b.admit()); // probe
        b.record(false);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips(), 2);
        assert!(!b.admit(), "cooldown restarts after a failed probe");
    }
}
